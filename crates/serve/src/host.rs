//! One serving host as a reusable, externally-clocked state machine.
//!
//! [`HostCore`] is the multi-layer extraction behind `tpu_cluster`: it
//! owns everything *inside* one host — per-tenant queues, batching
//! timers, the die pool, the seeded service-jitter stream, committed
//! latencies — but not the clock and not the arrival streams. Callers
//! feed it deliveries and events and pass a `sched` closure through
//! which it schedules its own future [`HostEvent`]s:
//!
//! * `tpu_serve::run` drives one `HostCore` from its own
//!   [`crate::event::EventQueue`], generating arrivals locally;
//! * `tpu_cluster` drives many under a single fleet-level queue,
//!   routing front-end arrivals onto hosts and injecting failures.
//!
//! Latencies are committed when a batch *completes* (the die-free
//! event), not when it dispatches — so a host crash can return both its
//! queued and its in-flight requests for fleet-level retry. Die
//! selection breaks busy-time ties by die index explicitly, keeping
//! dispatch a pure function of host state.

use crate::policy::BatchPolicy;
use crate::report::{percentile, DieReport, ServeReport, TenantReport};
use crate::service::ServiceCurve;
use crate::sim;
use crate::tenant::TenantSpec;
use crate::weights::{DieWeights, ModelWeights};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::VecDeque;
pub use tpu_platforms::server::Dispatch;
use tpu_telemetry::{HostProbe, RequestProbe};

/// An event a host schedules for itself. The embedding simulation maps
/// these onto its own event enum (see [`crate::event::Event`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HostEvent {
    /// A batching timer for tenant slot `slot` fires; stale timers are
    /// skipped via `generation`.
    Timer {
        /// Index into the host's slot table.
        slot: usize,
        /// Queue generation the timer was armed against.
        generation: u64,
    },
    /// `die` finishes its current batch; stale events (the die failed
    /// and was cleared since this batch dispatched) are skipped via
    /// `generation`.
    DieFree {
        /// Index into the host's die table.
        die: usize,
        /// Die generation the batch dispatched against (always 0 on a
        /// host that never loses a die).
        generation: u64,
    },
    /// The weight FIFO finishes streaming a new model's weights into
    /// `die` (scheduled only when co-located slots carry
    /// [`ModelWeights`]; a weight-free host never emits it).
    WeightSwap {
        /// Index into the host's die table.
        die: usize,
    },
}

/// A batch that just completed on a die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompletedBatch {
    /// Tenant slot the batch belonged to.
    pub slot: usize,
    /// Requests in the batch (their latencies are now committed).
    pub completions: usize,
    /// Dispatch time, ms (`end - start - swap` is the on-die service
    /// time the health monitor's straggler detector scores).
    pub start_ms: f64,
    /// Weight-swap stall the batch paid at dispatch, ms.
    pub swap_ms: f64,
    /// Completion time, ms.
    pub end_ms: f64,
}

/// One tenant's residency on this host.
struct Slot {
    spec: TenantSpec,
    curve: ServiceCurve,
    queue: VecDeque<f64>,
    draining: bool,
    timer_generation: u64,
    latencies: Vec<f64>,
    batches: usize,
    dispatched: usize,
    busy_ms: f64,
    /// The model identity behind this slot's weights; `None` (the
    /// default) keeps the slot outside the weight-swap model entirely.
    weights: Option<ModelWeights>,
    /// Swaps this slot's batches initiated.
    swaps: usize,
    /// Total swap stall this slot's batches paid, ms.
    swap_ms: f64,
}

/// A batch in flight on a die. `start_ms`/`swap_ms` exist for the
/// telemetry probe (span reconstruction at completion); the scheduler
/// itself never reads them.
struct Inflight {
    slot: usize,
    start_ms: f64,
    swap_ms: f64,
    end_ms: f64,
    arrivals: Vec<f64>,
}

struct DieState {
    busy: bool,
    busy_ms: f64,
    batches: usize,
    inflight: Option<Inflight>,
    /// Which model's weights this die holds (co-located serving).
    weights: DieWeights,
    /// Whether the die is in the dispatch pool (die-level degradation
    /// takes it out; `true` on every healthy host).
    enabled: bool,
    /// Per-die service-time multiplier (1.0 = full speed), composing
    /// multiplicatively with the host-level straggler factor.
    slow: f64,
    /// Bumped when the die fails so in-flight [`HostEvent::DieFree`]
    /// events scheduled against the old incarnation go stale.
    generation: u64,
}

/// The per-host serving state machine (see module docs).
pub struct HostCore {
    slots: Vec<Slot>,
    dies: Vec<DieState>,
    dispatch: Dispatch,
    rr_next: usize,
    service_rng: StdRng,
    makespan_ms: f64,
    slow_factor: f64,
    /// Bumped whenever some die's loaded/loading weight set changes
    /// (swap begin, swap completion, crash wipe). External warmth
    /// caches ([`Self::slot_has_warm_die`] consumers, e.g. the fleet's
    /// swap-affinity router index) compare it to decide whether a
    /// refresh is needed.
    weights_epoch: u64,
    /// Recycled batch arrival buffers: a completed batch's `Vec` goes
    /// back here instead of being freed, so steady-state dispatch
    /// allocates nothing (bounded by the die count; crash-displaced
    /// buffers leave the pool with their requests).
    spare_batches: Vec<Vec<f64>>,
    /// Telemetry probe recording this host's spans; `None` (the
    /// default) keeps every hook to a single branch.
    probe: Option<Box<HostProbe>>,
    /// Request-log probe recording one record per served request;
    /// `None` (the default) keeps the completion hook to one branch.
    reqlog: Option<Box<RequestProbe>>,
    /// Opt-in dispatch log for the fleet's hedging layer: every
    /// dispatched request's `(slot, arrived_ms)` is appended so the
    /// front end can resolve tied requests first-wins at dispatch
    /// time. `None` (the default) keeps the hot path to one branch.
    dispatch_log: Option<Vec<(usize, f64)>>,
}

impl HostCore {
    /// An idle host: `dies` dies, a dispatch discipline, and a service
    /// jitter stream derived from `host_seed` (see
    /// [`sim::service_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `dies` is zero.
    pub fn new(dies: usize, dispatch: Dispatch, host_seed: u64) -> Self {
        assert!(dies > 0, "need at least one die");
        HostCore {
            slots: Vec::new(),
            dies: (0..dies)
                .map(|_| DieState {
                    busy: false,
                    busy_ms: 0.0,
                    batches: 0,
                    inflight: None,
                    weights: DieWeights::new(),
                    enabled: true,
                    slow: 1.0,
                    generation: 0,
                })
                .collect(),
            dispatch,
            rr_next: 0,
            service_rng: StdRng::seed_from_u64(sim::service_seed(host_seed)),
            makespan_ms: 0.0,
            slow_factor: 1.0,
            weights_epoch: 0,
            spare_batches: Vec::new(),
            probe: None,
            reqlog: None,
            dispatch_log: None,
        }
    }

    /// Turn on the dispatch log: [`Self::try_dispatch`] now records
    /// every dispatched request's `(slot, arrived_ms)` for
    /// [`Self::drain_dispatched`]. Purely observational.
    pub fn enable_dispatch_log(&mut self) {
        self.dispatch_log = Some(Vec::new());
    }

    /// Move the dispatch log's accumulated `(slot, arrived_ms)` pairs
    /// into `out` (a no-op when the log is off).
    pub fn drain_dispatched(&mut self, out: &mut Vec<(usize, f64)>) {
        if let Some(log) = &mut self.dispatch_log {
            out.append(log);
        }
    }

    /// Attach a telemetry probe: batch completions and crashes now
    /// record spans into it (see [`HostProbe`]). Purely observational —
    /// scheduling decisions, RNG draws, and reports are unchanged.
    pub fn set_probe(&mut self, probe: HostProbe) {
        self.probe = Some(Box::new(probe));
    }

    /// Detach the probe (end of run) to absorb its spans into the run
    /// tracer.
    pub fn take_probe(&mut self) -> Option<HostProbe> {
        self.probe.take().map(|b| *b)
    }

    /// Attach a request-log probe: each completed batch now records one
    /// [`tpu_telemetry::RequestRecord`] per request. Purely
    /// observational, like [`HostCore::set_probe`].
    pub fn set_request_probe(&mut self, probe: RequestProbe) {
        self.reqlog = Some(Box::new(probe));
    }

    /// Detach the request-log probe (end of run) to absorb its records
    /// into the run's [`tpu_telemetry::RequestLog`].
    pub fn take_request_probe(&mut self) -> Option<RequestProbe> {
        self.reqlog.take().map(|b| *b)
    }

    /// Add a tenant slot (replica); returns its index. Slots can be
    /// added mid-simulation (fleet autoscaling).
    ///
    /// # Panics
    ///
    /// Panics if the spec's policy has a zero batch bound.
    pub fn add_slot(&mut self, spec: TenantSpec, curve: ServiceCurve) -> usize {
        assert!(
            spec.policy.max_batch() > 0,
            "tenant {} has a zero batch",
            spec.name
        );
        self.slots.push(Slot {
            curve,
            queue: VecDeque::new(),
            draining: false,
            timer_generation: 0,
            latencies: Vec::new(),
            batches: 0,
            dispatched: 0,
            busy_ms: 0.0,
            weights: None,
            swaps: 0,
            swap_ms: 0.0,
            spec,
        });
        self.slots.len() - 1
    }

    /// Enter a slot into the weight-swap model: its batches now pay
    /// `weights.swap_ms` whenever they dispatch onto a die whose active
    /// model differs (see [`crate::weights`]). Hosts whose slots never
    /// call this are byte-identical to the pre-subsystem engine.
    pub fn set_slot_weights(&mut self, slot: usize, weights: ModelWeights) {
        assert!(
            weights.swap_ms.is_finite() && weights.swap_ms >= 0.0,
            "swap cost must be finite and nonnegative"
        );
        self.slots[slot].weights = Some(weights);
    }

    /// Number of tenant slots.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of dies.
    pub fn die_count(&self) -> usize {
        self.dies.len()
    }

    /// The spec a slot was created with.
    pub fn slot_spec(&self, slot: usize) -> &TenantSpec {
        &self.slots[slot].spec
    }

    /// The slot's effective service curve.
    pub fn slot_curve(&self, slot: usize) -> &ServiceCurve {
        &self.slots[slot].curve
    }

    /// Queue a delivered request (front-end arrival time `arrived_ms`).
    #[inline]
    pub fn enqueue(&mut self, slot: usize, arrived_ms: f64) {
        self.slots[slot].queue.push_back(arrived_ms);
    }

    /// Mark a slot as draining: partial batches flush immediately
    /// because no further arrivals are expected.
    pub fn set_draining(&mut self, slot: usize, draining: bool) {
        self.slots[slot].draining = draining;
    }

    /// Whether a slot is draining.
    pub fn is_draining(&self, slot: usize) -> bool {
        self.slots[slot].draining
    }

    /// Re-arm the slot's batching timer after an arrival when the policy
    /// needs it. A `Timeout` deadline depends only on the oldest
    /// request, so it needs (re)arming only when this arrival *is* the
    /// new oldest; `SloAdaptive`'s depends on queue length too, so every
    /// arrival moves it. Skipping the no-op re-arms keeps the heap free
    /// of one stale timer per request.
    pub fn after_arrival(
        &mut self,
        slot: usize,
        now_ms: f64,
        sched: &mut impl FnMut(f64, HostEvent),
    ) {
        let rearm = match self.slots[slot].spec.policy {
            BatchPolicy::Fixed { .. } => false,
            BatchPolicy::Timeout { .. } => self.slots[slot].queue.len() == 1,
            BatchPolicy::SloAdaptive { .. } => true,
        };
        if rearm {
            self.arm_timer(slot, now_ms, sched);
        }
    }

    /// Handle a timer event; returns `false` for stale timers (the
    /// queue changed since the timer was armed), which the caller should
    /// ignore without attempting dispatch.
    #[inline]
    pub fn on_timer(&mut self, slot: usize, generation: u64) -> bool {
        self.slots[slot].timer_generation == generation
    }

    /// Handle a die-free event: commit the completed batch's latencies
    /// and free the die. Returns `None` if the die held no batch (e.g.
    /// it was cleared by a crash and the event is stale), or if
    /// `generation` doesn't match the die's current incarnation (the
    /// die failed since the batch dispatched — its batch was already
    /// displaced, and a newer incarnation's work must not be freed
    /// early by the stale event).
    pub fn on_die_free(&mut self, die: usize, generation: u64) -> Option<CompletedBatch> {
        let d = &mut self.dies[die];
        if d.generation != generation {
            return None;
        }
        d.busy = false;
        let inflight = d.inflight.take()?;
        // Makespan counts *completed* batches only, so a crash that
        // aborts an in-flight batch never leaves a phantom completion
        // time behind.
        self.makespan_ms = self.makespan_ms.max(inflight.end_ms);
        let slot = &mut self.slots[inflight.slot];
        let completions = inflight.arrivals.len();
        for &arrived in &inflight.arrivals {
            slot.latencies.push(inflight.end_ms - arrived);
        }
        if let Some(p) = self.probe.as_deref_mut() {
            p.batch_complete(
                die,
                &slot.spec.name,
                inflight.start_ms,
                inflight.swap_ms,
                inflight.end_ms,
                &inflight.arrivals,
            );
        }
        if let Some(r) = self.reqlog.as_deref_mut() {
            r.batch_complete(
                die,
                &slot.spec.name,
                slot.spec.slo_ms,
                inflight.start_ms,
                inflight.swap_ms,
                inflight.end_ms,
                &inflight.arrivals,
            );
        }
        let mut spare = inflight.arrivals;
        spare.clear();
        self.spare_batches.push(spare);
        Some(CompletedBatch {
            slot: inflight.slot,
            completions,
            start_ms: inflight.start_ms,
            swap_ms: inflight.swap_ms,
            end_ms: inflight.end_ms,
        })
    }

    /// Handle a weight-swap completion: the die's pending model becomes
    /// active. Returns the model, or `None` for a stale event (the die
    /// was wiped by a crash since the swap began).
    pub fn on_weight_swap(&mut self, die: usize) -> Option<usize> {
        let model = self.dies[die].weights.complete_swap();
        if model.is_some() {
            self.weights_epoch += 1;
        }
        model
    }

    /// The warmth epoch: bumped whenever some die's loaded/loading
    /// weight set changes, so callers caching
    /// [`Self::slot_has_warm_die`] answers can skip refreshes while it
    /// is unchanged.
    pub fn weights_epoch(&self) -> u64 {
        self.weights_epoch
    }

    /// Whether some die is *warm* for this slot's model — its weights
    /// are loaded or loading, so a dispatch may avoid the swap. Slots
    /// outside the weight model are always warm. The fleet front end's
    /// swap-affinity router reads this per candidate replica.
    pub fn slot_has_warm_die(&self, slot: usize) -> bool {
        match self.slots[slot].weights {
            None => true,
            Some(mw) => self.dies.iter().any(|d| d.weights.warm(mw.model)),
        }
    }

    /// Swaps a slot's batches have initiated.
    pub fn slot_swaps(&self, slot: usize) -> usize {
        self.slots[slot].swaps
    }

    /// Total swap stall a slot's batches have paid, ms.
    pub fn slot_swap_ms(&self, slot: usize) -> f64 {
        self.slots[slot].swap_ms
    }

    /// Weight swaps initiated across all dies.
    pub fn swaps(&self) -> usize {
        self.dies.iter().map(|d| d.weights.swaps()).sum()
    }

    /// Total swap stall across all dies, ms.
    pub fn swap_ms(&self) -> f64 {
        self.dies.iter().map(|d| d.weights.swap_ms()).sum()
    }

    /// Straggler injection: scale all *future* batch service times.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive factor.
    pub fn set_slow_factor(&mut self, factor: f64) {
        assert!(factor > 0.0, "slow factor must be positive");
        self.slow_factor = factor;
    }

    /// Current straggler factor (1.0 = healthy).
    pub fn slow_factor(&self) -> f64 {
        self.slow_factor
    }

    /// Fail one die (partial degradation): it leaves the dispatch pool
    /// and its weights are wiped; the in-flight batch, if any, is
    /// displaced and returned as `(slot, front-end arrival times)` for
    /// the caller to retry elsewhere, with the un-elapsed remainder of
    /// its die time refunded exactly as [`Self::crash`] does. The
    /// die's generation is bumped so its already-scheduled
    /// [`HostEvent::DieFree`] goes stale.
    pub fn fail_die(&mut self, die: usize, now_ms: f64) -> Option<(usize, Vec<f64>)> {
        if let Some(p) = self.probe.as_deref_mut() {
            p.instant("fault", "die-fail", now_ms);
        }
        let d = &mut self.dies[die];
        d.enabled = false;
        d.generation += 1;
        d.busy = false;
        d.weights.clear();
        self.weights_epoch += 1; // the wipe cools the die
        let inflight = d.inflight.take()?;
        let refund = (inflight.end_ms - now_ms).max(0.0);
        d.busy_ms -= refund;
        d.batches -= 1;
        let s = &mut self.slots[inflight.slot];
        s.busy_ms -= refund;
        s.batches -= 1;
        s.dispatched -= inflight.arrivals.len();
        Some((inflight.slot, inflight.arrivals))
    }

    /// A failed die rejoins the dispatch pool, idle and cold.
    pub fn recover_die(&mut self, die: usize) {
        self.dies[die].enabled = true;
    }

    /// Whether a die is in the dispatch pool.
    pub fn die_enabled(&self, die: usize) -> bool {
        self.dies[die].enabled
    }

    /// Per-die slowdown injection: scale the die's *future* batch
    /// service times by `factor` (1.0 restores full speed); composes
    /// multiplicatively with [`Self::set_slow_factor`].
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive factor.
    pub fn set_die_slow(&mut self, die: usize, factor: f64) {
        assert!(factor > 0.0, "die slow factor must be positive");
        self.dies[die].slow = factor;
    }

    /// Remove the still-queued copy of a hedged request — identified
    /// by its exact arrival-timestamp bits — from `slot`'s queue,
    /// re-arming the slot's batching timer around the removal (the
    /// removed request may have been the oldest, which the timer
    /// deadline keys on). Returns `false` when no such request is
    /// queued (it already dispatched or was displaced).
    pub fn cancel_queued(
        &mut self,
        slot: usize,
        arrived_ms: f64,
        now_ms: f64,
        sched: &mut impl FnMut(f64, HostEvent),
    ) -> bool {
        let s = &mut self.slots[slot];
        let Some(pos) = s
            .queue
            .iter()
            .position(|q| q.to_bits() == arrived_ms.to_bits())
        else {
            return false;
        };
        s.queue.remove(pos);
        self.arm_timer(slot, now_ms, sched);
        true
    }

    /// Crash the host at time `now_ms`: every queued and in-flight
    /// request is displaced and returned as `(slot, front-end arrival
    /// times)` for the caller to retry elsewhere; dies go idle. Busy
    /// time that actually elapsed and committed latencies are kept, but
    /// the un-elapsed remainder of aborted batches is refunded so
    /// utilization never counts die time that never happened. The
    /// caller is responsible for ignoring this host's already-scheduled
    /// events (e.g. by epoch-tagging them).
    pub fn crash(&mut self, now_ms: f64) -> Vec<(usize, Vec<f64>)> {
        if let Some(p) = self.probe.as_deref_mut() {
            p.instant("fault", "crash", now_ms);
        }
        let mut displaced: Vec<(usize, Vec<f64>)> = Vec::new();
        self.weights_epoch += 1; // the wipe below cools every die
        for d in &mut self.dies {
            d.busy = false;
            // The crash wipes whatever weights were loaded or loading;
            // a restarted die reloads from DDR3 (cold) on next dispatch.
            d.weights.clear();
            if let Some(inflight) = d.inflight.take() {
                let refund = (inflight.end_ms - now_ms).max(0.0);
                d.busy_ms -= refund;
                d.batches -= 1;
                let s = &mut self.slots[inflight.slot];
                s.busy_ms -= refund;
                s.batches -= 1;
                s.dispatched -= inflight.arrivals.len();
                displaced.push((inflight.slot, inflight.arrivals));
            }
        }
        for (i, s) in self.slots.iter_mut().enumerate() {
            s.timer_generation += 1; // invalidate armed timers
            if !s.queue.is_empty() {
                displaced.push((i, s.queue.drain(..).collect()));
            }
        }
        displaced
    }

    /// Requests queued at a slot (not yet dispatched).
    pub fn queued(&self, slot: usize) -> usize {
        self.slots[slot].queue.len()
    }

    /// Requests of a slot currently in flight on dies.
    pub fn in_flight(&self, slot: usize) -> usize {
        self.dies
            .iter()
            .filter_map(|d| d.inflight.as_ref())
            .filter(|b| b.slot == slot)
            .map(|b| b.arrivals.len())
            .sum()
    }

    /// Queued plus in-flight requests for a slot (the routing signal
    /// behind least-outstanding-requests).
    pub fn outstanding(&self, slot: usize) -> usize {
        self.queued(slot) + self.in_flight(slot)
    }

    /// Busy time a slot has accumulated on this host's dies, ms.
    pub fn slot_busy_ms(&self, slot: usize) -> f64 {
        self.slots[slot].busy_ms
    }

    /// Latencies committed for a slot so far.
    pub fn latency_count(&self, slot: usize) -> usize {
        self.slots[slot].latencies.len()
    }

    /// Total busy time across dies, ms.
    pub fn busy_ms(&self) -> f64 {
        self.dies.iter().map(|d| d.busy_ms).sum()
    }

    /// Busy time one die has accumulated, ms (telemetry's per-die
    /// utilization probe).
    pub fn die_busy_ms(&self, die: usize) -> f64 {
        self.dies[die].busy_ms
    }

    /// Dies currently streaming a weight swap (telemetry's pending
    /// weight-set probe).
    pub fn pending_swaps(&self) -> usize {
        self.dies
            .iter()
            .filter(|d| d.weights.pending().is_some())
            .count()
    }

    /// Completion time of the latest batch dispatched so far, ms.
    pub fn makespan_ms(&self) -> f64 {
        self.makespan_ms
    }

    /// Dispatch ready batches onto free dies until nothing can move.
    /// Ready slots contend by (priority desc, oldest wait asc, slot
    /// index asc); free dies by the dispatch discipline with explicit
    /// index tie-breaks. Any event can unblock a dispatch: a batch may
    /// have become ready (arrival/timer) or capacity may have appeared
    /// (die free).
    pub fn try_dispatch(&mut self, now_ms: f64, sched: &mut impl FnMut(f64, HostEvent)) {
        loop {
            if !self.dies.iter().any(|d| !d.busy && d.enabled) {
                return;
            }
            let ready = self
                .slots
                .iter()
                .enumerate()
                .filter(|(_, s)| {
                    s.spec.policy.should_dispatch(
                        now_ms,
                        s.queue.front().copied().unwrap_or(f64::INFINITY),
                        s.queue.len(),
                        s.draining,
                        &s.curve,
                    )
                })
                .min_by(|(ia, a), (ib, b)| {
                    b.spec
                        .priority
                        .cmp(&a.spec.priority)
                        .then(
                            a.queue
                                .front()
                                .partial_cmp(&b.queue.front())
                                .expect("finite arrivals"),
                        )
                        .then(ia.cmp(ib))
                })
                .map(|(i, _)| i);
            let Some(slot) = ready else { return };

            // Weighted slots prefer a free die already warm for their
            // model (no reload to dispatch there); weight-free slots
            // keep the plain discipline, bit for bit.
            let die = match self.slots[slot].weights {
                Some(mw) => pick_die_warm(&self.dies, self.dispatch, &mut self.rr_next, mw.model),
                None => pick_die(&self.dies, self.dispatch, &mut self.rr_next),
            };
            // Weight swap: a batch whose model is not the one the die's
            // weight FIFO last streamed pays the DDR3 load first.
            let swap = self.slots[slot]
                .weights
                .filter(|mw| self.dies[die].weights.needs_swap(mw.model));
            let swap_ms = swap.map_or(0.0, |mw| mw.swap_ms);
            let die_slow = self.dies[die].slow;
            let s = &mut self.slots[slot];
            let batch = s.queue.len().min(s.spec.policy.max_batch());
            let jitter = sim::lognormal_multiplier(&mut self.service_rng, s.curve.jitter_sigma);
            let service = s.curve.service_ms(batch) * jitter * self.slow_factor * die_slow;
            let end = now_ms + swap_ms + service;

            let mut arrivals = self.spare_batches.pop().unwrap_or_default();
            arrivals.extend(s.queue.drain(..batch));
            if let Some(log) = &mut self.dispatch_log {
                log.extend(arrivals.iter().map(|&a| (slot, a)));
            }
            s.batches += 1;
            s.dispatched += batch;
            s.busy_ms += swap_ms + service;
            if let Some(mw) = swap {
                s.swaps += 1;
                s.swap_ms += mw.swap_ms;
            }
            self.arm_timer(slot, now_ms, sched);

            let d = &mut self.dies[die];
            d.busy = true;
            d.busy_ms += swap_ms + service;
            d.batches += 1;
            d.inflight = Some(Inflight {
                slot,
                start_ms: now_ms,
                swap_ms,
                end_ms: end,
                arrivals,
            });
            if let Some(mw) = swap {
                d.weights.begin_swap(mw.model, mw.swap_ms);
                self.weights_epoch += 1;
                sched(now_ms + swap_ms, HostEvent::WeightSwap { die });
            }
            let generation = self.dies[die].generation;
            sched(end, HostEvent::DieFree { die, generation });
        }
    }

    /// Arm (or re-arm) the slot's dispatch timer for its current oldest
    /// request. Each queue mutation bumps the generation so earlier
    /// timers become no-ops.
    fn arm_timer(&mut self, slot: usize, now_ms: f64, sched: &mut impl FnMut(f64, HostEvent)) {
        let s = &mut self.slots[slot];
        s.timer_generation += 1;
        if let Some(&oldest) = s.queue.front() {
            if let Some(deadline) = s
                .spec
                .policy
                .next_deadline_ms(oldest, s.queue.len(), &s.curve)
            {
                sched(
                    deadline.max(now_ms),
                    HostEvent::Timer {
                        slot,
                        generation: s.timer_generation,
                    },
                );
            }
        }
    }

    /// Build the host's [`ServeReport`] (per-slot percentiles and SLO
    /// attainment against `makespan_ms`, per-die utilization). The host
    /// state is left untouched, so fleet-level reports can merge raw
    /// latencies afterwards.
    pub fn report(&self, makespan_ms: f64, events_processed: u64) -> ServeReport {
        let tenants: Vec<TenantReport> = self
            .slots
            .iter()
            .map(|s| {
                let mut sorted = s.latencies.clone();
                sorted.sort_unstable_by(|a, b| a.total_cmp(b)); // finite, ±0-free: same order, no float Option
                let n = sorted.len();
                let slo_hits = sorted.iter().filter(|&&l| l <= s.spec.slo_ms).count();
                TenantReport {
                    name: s.spec.name.clone(),
                    workload: s.spec.workload.clone(),
                    priority: s.spec.priority,
                    requests: n,
                    batches: s.batches,
                    mean_batch: s.dispatched as f64 / s.batches.max(1) as f64,
                    mean_ms: sorted.iter().sum::<f64>() / n.max(1) as f64,
                    p50_ms: percentile(&sorted, 0.50),
                    p95_ms: percentile(&sorted, 0.95),
                    p99_ms: percentile(&sorted, 0.99),
                    slo_ms: s.spec.slo_ms,
                    slo_attainment: slo_hits as f64 / n.max(1) as f64,
                    throughput_rps: n as f64 / makespan_ms.max(f64::MIN_POSITIVE) * 1000.0,
                }
            })
            .collect();
        let dies: Vec<DieReport> = self
            .dies
            .iter()
            .map(|d| DieReport {
                batches: d.batches,
                busy_ms: d.busy_ms,
                utilization: (d.busy_ms / makespan_ms.max(f64::MIN_POSITIVE)).min(1.0),
            })
            .collect();
        ServeReport {
            tenants,
            dies,
            makespan_ms,
            events_processed,
        }
    }

    /// A copy of one slot's committed latencies, in commit order (for
    /// fleet-level merging across replicas).
    pub fn slot_latencies(&self, slot: usize) -> Vec<f64> {
        self.slots[slot].latencies.clone()
    }

    /// The latencies committed for a slot since index `from` (the
    /// autoscaler's sliding window; pair with [`Self::latency_count`]).
    pub fn slot_latencies_from(&self, slot: usize, from: usize) -> Vec<f64> {
        self.slots[slot].latencies[from..].to_vec()
    }

    /// Batches dispatched by a slot so far.
    pub fn slot_batches(&self, slot: usize) -> usize {
        self.slots[slot].batches
    }

    /// Requests dispatched by a slot so far (sum of batch sizes).
    pub fn slot_dispatched(&self, slot: usize) -> usize {
        self.slots[slot].dispatched
    }
}

/// Choose a free die. Round-robin cycles the pool (skipping busy dies);
/// least-loaded picks the free die with the least accumulated busy
/// time, breaking exact ties by die index so dispatch never depends on
/// iteration accidents.
fn pick_die(dies: &[DieState], dispatch: Dispatch, rr_next: &mut usize) -> usize {
    match dispatch {
        Dispatch::RoundRobin => {
            let n = dies.len();
            for k in 0..n {
                let d = (*rr_next + k) % n;
                if !dies[d].busy && dies[d].enabled {
                    *rr_next = (d + 1) % n;
                    return d;
                }
            }
            unreachable!("caller checked a free die exists")
        }
        Dispatch::LeastLoaded => dies
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.busy && d.enabled)
            .min_by(|a, b| {
                a.1.busy_ms
                    .partial_cmp(&b.1.busy_ms)
                    .expect("finite busy times")
                    .then(a.0.cmp(&b.0))
            })
            .map(|(i, _)| i)
            .expect("caller checked a free die exists"),
    }
}

/// Choose a free die for a *weighted* slot: prefer dies already warm
/// for `model` (its weights loaded or loading — dispatching there
/// charges no swap), falling back to every free die when none is warm;
/// within the preferred set, the configured discipline decides exactly
/// as [`pick_die`] would.
fn pick_die_warm(
    dies: &[DieState],
    dispatch: Dispatch,
    rr_next: &mut usize,
    model: usize,
) -> usize {
    let warm_exists = dies
        .iter()
        .any(|d| !d.busy && d.enabled && d.weights.warm(model));
    let eligible = |d: &DieState| !d.busy && d.enabled && (!warm_exists || d.weights.warm(model));
    match dispatch {
        Dispatch::RoundRobin => {
            let n = dies.len();
            for k in 0..n {
                let d = (*rr_next + k) % n;
                if eligible(&dies[d]) {
                    *rr_next = (d + 1) % n;
                    return d;
                }
            }
            unreachable!("caller checked a free die exists")
        }
        Dispatch::LeastLoaded => dies
            .iter()
            .enumerate()
            .filter(|(_, d)| eligible(d))
            .min_by(|a, b| {
                a.1.busy_ms
                    .partial_cmp(&b.1.busy_ms)
                    .expect("finite busy times")
                    .then(a.0.cmp(&b.0))
            })
            .map(|(i, _)| i)
            .expect("caller checked a free die exists"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tenant::ArrivalProcess;

    fn spec(policy: BatchPolicy) -> TenantSpec {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 1000.0 },
            policy,
            7.0,
            100,
        )
    }

    fn fresh_host(dies: usize) -> HostCore {
        let mut h = HostCore::new(dies, Dispatch::LeastLoaded, 42);
        h.add_slot(
            spec(BatchPolicy::Fixed { batch: 2 }),
            ServiceCurve::new(1.0, 0.1, 0.0),
        );
        h
    }

    /// Regression: equal-load ties must break by die index, lowest
    /// first, so cluster-level determinism never leans on heap or
    /// iterator accidents.
    #[test]
    fn least_loaded_breaks_ties_by_die_index() {
        let mut h = fresh_host(4);
        let mut scheduled = Vec::new();
        // All four dies idle at 0.0 busy: the first dispatch must land
        // on die 0, the next (with die 0 busy, 1..3 still tied) on 1.
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.0);
        h.try_dispatch(0.0, &mut |at, e| scheduled.push((at, e)));
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.0);
        h.try_dispatch(0.0, &mut |at, e| scheduled.push((at, e)));
        let dies: Vec<usize> = scheduled
            .iter()
            .filter_map(|(_, e)| match e {
                HostEvent::DieFree { die, .. } => Some(*die),
                _ => None,
            })
            .collect();
        assert_eq!(dies, vec![0, 1], "ties break toward the lowest index");
    }

    #[test]
    fn latencies_commit_at_completion_not_dispatch() {
        let mut h = fresh_host(1);
        let mut scheduled = Vec::new();
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.5);
        h.try_dispatch(1.0, &mut |at, e| scheduled.push((at, e)));
        assert_eq!(h.latency_count(0), 0, "in flight, not committed");
        assert_eq!(h.in_flight(0), 2);
        let done = h.on_die_free(0, 0).expect("batch completes");
        assert_eq!(done.completions, 2);
        assert_eq!(h.latency_count(0), 2);
        assert_eq!(h.in_flight(0), 0);
    }

    #[test]
    fn crash_displaces_queued_and_inflight_requests() {
        let mut h = fresh_host(1);
        let mut scheduled = Vec::new();
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.1);
        h.try_dispatch(0.2, &mut |at, e| scheduled.push((at, e)));
        let busy_before = h.busy_ms();
        h.enqueue(0, 0.3); // queued behind the busy die
        let displaced = h.crash(0.4);
        let total: usize = displaced.iter().map(|(_, v)| v.len()).sum();
        assert_eq!(total, 3, "both in-flight and queued come back");
        assert_eq!(h.latency_count(0), 0, "nothing was committed");
        assert_eq!(h.on_die_free(0, 0), None, "stale die-free is a no-op");
        // The batch was dispatched at 0.2 and aborted at 0.4: only the
        // 0.2 ms that elapsed stays on the books, and the aborted batch
        // no longer counts as executed.
        assert_eq!(h.slot_batches(0), 0);
        assert_eq!(h.slot_dispatched(0), 0);
        assert!(
            (h.busy_ms() - 0.2).abs() < 1e-12,
            "busy {} vs dispatched {busy_before}",
            h.busy_ms()
        );
        assert_eq!(h.makespan_ms(), 0.0, "no batch ever completed");
    }

    #[test]
    fn slow_factor_scales_service_times() {
        let mut fast = fresh_host(1);
        let mut slow = fresh_host(1);
        slow.set_slow_factor(4.0);
        let mut ends = Vec::new();
        for h in [&mut fast, &mut slow] {
            h.enqueue(0, 0.0);
            h.enqueue(0, 0.0);
            let mut got = Vec::new();
            h.try_dispatch(0.0, &mut |at, _| got.push(at));
            ends.push(got[0]);
        }
        assert!((ends[1] - 4.0 * ends[0]).abs() < 1e-12);
    }

    /// Die-level degradation: a failed die displaces its in-flight
    /// batch with a refund (exactly like a crash, but scoped to one
    /// die), its scheduled die-free goes stale via the generation, and
    /// dispatch flows to the surviving dies until it recovers.
    #[test]
    fn die_failure_displaces_and_disables_until_recovery() {
        let mut h = fresh_host(2);
        let mut sched: Vec<(f64, HostEvent)> = Vec::new();
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.0);
        h.try_dispatch(0.0, &mut |at, e| sched.push((at, e)));
        assert_eq!(h.in_flight(0), 2, "batch in flight on die 0");

        let displaced = h.fail_die(0, 0.1).expect("in-flight work comes back");
        assert_eq!(displaced.0, 0);
        assert_eq!(displaced.1.len(), 2);
        assert!(!h.die_enabled(0));
        assert_eq!(
            h.on_die_free(0, 0),
            None,
            "the old incarnation's die-free is stale"
        );
        assert!(
            (h.busy_ms() - 0.1).abs() < 1e-12,
            "only elapsed die time stays on the books"
        );

        // Dispatch lands on die 1 (the only enabled die), even though
        // die 0 has less accumulated busy time.
        sched.clear();
        h.enqueue(0, 0.2);
        h.enqueue(0, 0.2);
        h.try_dispatch(0.2, &mut |at, e| sched.push((at, e)));
        let frees: Vec<(usize, u64)> = sched
            .iter()
            .filter_map(|(_, e)| match e {
                HostEvent::DieFree { die, generation } => Some((*die, *generation)),
                _ => None,
            })
            .collect();
        assert_eq!(frees, vec![(1, 0)]);

        // An idle failed die accepts no work at all.
        sched.clear();
        h.enqueue(0, 0.3);
        h.enqueue(0, 0.3);
        h.try_dispatch(0.3, &mut |at, e| sched.push((at, e)));
        assert!(sched.is_empty(), "no free enabled die");

        // Recovery: the die rejoins (cold) at its bumped generation.
        h.recover_die(0);
        assert!(h.die_enabled(0));
        h.try_dispatch(0.3, &mut |at, e| sched.push((at, e)));
        let frees: Vec<(usize, u64)> = sched
            .iter()
            .filter_map(|(_, e)| match e {
                HostEvent::DieFree { die, generation } => Some((*die, *generation)),
                _ => None,
            })
            .collect();
        assert_eq!(frees, vec![(0, 1)], "new incarnation's generation");
    }

    #[test]
    fn die_slow_scales_only_that_die() {
        let mut base = fresh_host(2);
        let mut degraded = fresh_host(2);
        degraded.set_die_slow(0, 3.0);
        let ends = |h: &mut HostCore| -> Vec<(usize, f64)> {
            let mut got = Vec::new();
            h.enqueue(0, 0.0);
            h.enqueue(0, 0.0);
            h.try_dispatch(0.0, &mut |at, e| {
                if let HostEvent::DieFree { die, .. } = e {
                    got.push((die, at));
                }
            });
            got
        };
        let b = ends(&mut base);
        let d = ends(&mut degraded);
        assert_eq!(b[0].0, 0, "both dispatch onto die 0");
        assert_eq!(d[0].0, 0);
        assert!((d[0].1 - 3.0 * b[0].1).abs() < 1e-12, "die 0 is 3× slow");
        // Restore: the next batch (same jitter stream position) runs
        // at full speed again.
        degraded.on_die_free(0, 0);
        base.on_die_free(0, 0);
        degraded.set_die_slow(0, 1.0);
        let b = ends(&mut base);
        let d = ends(&mut degraded);
        assert!((d[0].1 - b[0].1).abs() < 1e-12);
    }

    /// The hedging hooks: the dispatch log records exactly what
    /// dispatched, and `cancel_queued` removes a queued copy by
    /// timestamp bits (re-arming the timer) without touching anything
    /// in flight.
    #[test]
    fn dispatch_log_and_queue_cancellation() {
        let mut h = HostCore::new(1, Dispatch::LeastLoaded, 42);
        h.add_slot(
            spec(BatchPolicy::Fixed { batch: 2 }),
            ServiceCurve::new(1.0, 0.1, 0.0),
        );
        h.enable_dispatch_log();
        let mut sched: Vec<(f64, HostEvent)> = Vec::new();
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.25);
        h.try_dispatch(0.25, &mut |at, e| sched.push((at, e)));
        let mut dispatched = Vec::new();
        h.drain_dispatched(&mut dispatched);
        assert_eq!(dispatched, vec![(0, 0.0), (0, 0.25)]);
        h.drain_dispatched(&mut dispatched);
        assert_eq!(dispatched.len(), 2, "drain empties the log");

        // Queue two more; cancel one by its exact timestamp.
        h.enqueue(0, 0.5);
        h.enqueue(0, 0.75);
        assert!(h.cancel_queued(0, 0.5, 0.8, &mut |_, _| {}));
        assert!(!h.cancel_queued(0, 0.5, 0.8, &mut |_, _| {}), "gone");
        assert!(
            !h.cancel_queued(0, 0.0, 0.8, &mut |_, _| {}),
            "the dispatched copy is not queued"
        );
        assert_eq!(h.queued(0), 1);
        // The survivor still dispatches once the die frees.
        h.on_die_free(0, 0);
        h.set_draining(0, true);
        sched.clear();
        h.try_dispatch(1.5, &mut |at, e| sched.push((at, e)));
        h.drain_dispatched(&mut dispatched);
        assert_eq!(dispatched.last(), Some(&(0, 0.75)));
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_rejected() {
        let _ = HostCore::new(0, Dispatch::LeastLoaded, 1);
    }

    /// Co-location: alternating models on one die pay the swap stall,
    /// repeat batches of the warm model do not, and the swap completion
    /// event lands on the queue at dispatch + swap_ms.
    #[test]
    fn weight_swaps_charge_only_on_model_change() {
        let mut h = HostCore::new(1, Dispatch::LeastLoaded, 42);
        let curve = ServiceCurve::new(1.0, 0.0, 0.0); // flat 1 ms, no jitter
        let a = h.add_slot(spec(BatchPolicy::Fixed { batch: 1 }), curve);
        let b = h.add_slot(spec(BatchPolicy::Fixed { batch: 1 }), curve);
        h.set_slot_weights(
            a,
            ModelWeights {
                model: 0,
                bytes: 10,
                swap_ms: 0.5,
            },
        );
        h.set_slot_weights(
            b,
            ModelWeights {
                model: 1,
                bytes: 10,
                swap_ms: 0.25,
            },
        );
        let mut sched: Vec<(f64, HostEvent)> = Vec::new();

        // Cold die: slot a's first batch pays its 0.5 ms load.
        h.enqueue(a, 0.0);
        h.try_dispatch(0.0, &mut |at, e| sched.push((at, e)));
        assert_eq!(
            sched,
            vec![
                (0.5, HostEvent::WeightSwap { die: 0 }),
                (
                    1.5,
                    HostEvent::DieFree {
                        die: 0,
                        generation: 0
                    }
                ),
            ]
        );
        assert!(!h.slot_has_warm_die(b));
        assert_eq!(h.on_weight_swap(0), Some(0));
        assert!(h.slot_has_warm_die(a));
        assert_eq!(h.on_die_free(0, 0).unwrap().end_ms, 1.5);

        // Warm model: no swap, no WeightSwap event, plain 1 ms batch.
        sched.clear();
        h.enqueue(a, 1.5);
        h.try_dispatch(1.5, &mut |at, e| sched.push((at, e)));
        assert_eq!(
            sched,
            vec![(
                2.5,
                HostEvent::DieFree {
                    die: 0,
                    generation: 0
                }
            )]
        );
        h.on_die_free(0, 0);

        // Model change: slot b evicts a's weights, paying 0.25 ms.
        sched.clear();
        h.enqueue(b, 2.5);
        h.try_dispatch(2.5, &mut |at, e| sched.push((at, e)));
        assert_eq!(
            sched,
            vec![
                (2.75, HostEvent::WeightSwap { die: 0 }),
                (
                    3.75,
                    HostEvent::DieFree {
                        die: 0,
                        generation: 0
                    }
                ),
            ]
        );
        assert_eq!(h.on_weight_swap(0), Some(1));
        h.on_die_free(0, 0);

        assert_eq!((h.slot_swaps(a), h.slot_swaps(b)), (1, 1));
        assert_eq!(h.swaps(), 2);
        assert!((h.swap_ms() - 0.75).abs() < 1e-12);
        assert!((h.slot_swap_ms(b) - 0.25).abs() < 1e-12);
        // Swap stalls count as die busy time (the FIFO occupies the die).
        assert!((h.busy_ms() - 3.75).abs() < 1e-12);
    }

    /// A host whose slots carry no weights never schedules a swap event
    /// and never charges a stall — the opt-in contract behind the
    /// byte-identity of all pre-existing scenarios.
    #[test]
    fn weight_free_slots_never_swap() {
        let mut h = fresh_host(1);
        let mut sched = Vec::new();
        h.enqueue(0, 0.0);
        h.enqueue(0, 0.0);
        h.try_dispatch(0.0, &mut |at, e| sched.push((at, e)));
        assert!(sched
            .iter()
            .all(|(_, e)| !matches!(e, HostEvent::WeightSwap { .. })));
        assert_eq!(h.swaps(), 0);
        assert_eq!(h.swap_ms(), 0.0);
        assert!(h.slot_has_warm_die(0), "weight-free slots are always warm");
    }

    /// An attached probe records swap/service spans whose totals match
    /// the host's own counters, and recording changes no observable
    /// host state (same latencies, same busy time as a probe-free run).
    #[test]
    fn probe_spans_agree_with_swap_counters() {
        let run = |probed: bool| {
            let mut h = HostCore::new(1, Dispatch::LeastLoaded, 42);
            let curve = ServiceCurve::new(1.0, 0.0, 0.0);
            let a = h.add_slot(spec(BatchPolicy::Fixed { batch: 1 }), curve);
            h.set_slot_weights(
                a,
                ModelWeights {
                    model: 0,
                    bytes: 10,
                    swap_ms: 0.5,
                },
            );
            if probed {
                h.set_probe(HostProbe::new(0, "host 0", 1));
            }
            let mut sched = Vec::new();
            h.enqueue(a, 0.0);
            h.try_dispatch(0.0, &mut |at, e| sched.push((at, e)));
            h.on_weight_swap(0);
            h.on_die_free(0, 0);
            h
        };
        let mut probed = run(true);
        let bare = run(false);
        assert_eq!(probed.slot_latencies(0), bare.slot_latencies(0));
        assert_eq!(probed.busy_ms(), bare.busy_ms());
        let tracer = probed.take_probe().expect("probe attached").into_tracer();
        let rows = tracer.summary();
        let total = |cat: &str| {
            rows.iter()
                .filter(|r| r.cat == cat)
                .map(|r| r.total_ms)
                .sum::<f64>()
        };
        assert!((total("swap") - probed.slot_swap_ms(0)).abs() < 1e-12);
        assert!((total("swap") + total("service") - probed.busy_ms()).abs() < 1e-12);
    }

    /// An attached request probe records one decomposed record per
    /// served request, agreeing with the slot's committed latencies,
    /// and changes no observable host state.
    #[test]
    fn request_probe_records_agree_with_latencies() {
        let run = |probed: bool| {
            let mut h = HostCore::new(1, Dispatch::LeastLoaded, 42);
            let curve = ServiceCurve::new(1.0, 0.0, 0.0);
            let a = h.add_slot(spec(BatchPolicy::Fixed { batch: 2 }), curve);
            h.set_slot_weights(
                a,
                ModelWeights {
                    model: 0,
                    bytes: 10,
                    swap_ms: 0.5,
                },
            );
            if probed {
                h.set_request_probe(RequestProbe::new(7));
            }
            let mut sched = Vec::new();
            h.enqueue(a, 0.0);
            h.enqueue(a, 0.25);
            h.try_dispatch(0.25, &mut |at, e| sched.push((at, e)));
            h.on_weight_swap(0);
            h.on_die_free(0, 0);
            h
        };
        let mut probed = run(true);
        let bare = run(false);
        assert_eq!(probed.slot_latencies(0), bare.slot_latencies(0));
        assert_eq!(probed.busy_ms(), bare.busy_ms());
        let probe = probed.take_request_probe().expect("probe attached");
        let mut log = tpu_telemetry::RequestLog::new();
        log.absorb(probe);
        assert_eq!(log.len(), 2);
        let latencies: Vec<f64> = log.records().iter().map(|r| r.latency_ms()).collect();
        assert_eq!(latencies, probed.slot_latencies(0));
        for r in log.records() {
            assert_eq!(r.host, 7);
            assert_eq!(r.die, 0);
            assert_eq!(r.swap_ms, 0.5);
            assert!((r.queue_ms() + r.swap_ms + r.service_ms() - r.latency_ms()).abs() < 1e-12);
        }
        assert_eq!(log.tenant_name(0), "MLP0");
        assert_eq!(log.tenant_slo_ms(0), 7.0);
    }
}
