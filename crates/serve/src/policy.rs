//! Batch-dispatch policies, evaluated inside the event loop.
//!
//! The paper's Section 8 fallacy — datacenter inference values the tail,
//! not raw throughput — turns into a dispatch decision: *when* does a
//! tenant's queue become a batch?
//!
//! * [`BatchPolicy::Fixed`] waits for exactly `batch` requests (Table 4's
//!   measured discipline);
//! * [`BatchPolicy::Timeout`] dispatches when full **or** once the oldest
//!   request has waited `t_max_ms` — the SLO mechanism production
//!   serving uses to bound accumulation delay;
//! * [`BatchPolicy::SloAdaptive`] works backwards from the tenant's
//!   latency target: it keeps growing the batch while the oldest request
//!   can still finish inside `slo_ms - margin_ms`, given the tenant's
//!   calibrated service curve.

use crate::service::ServiceCurve;
use serde::{Deserialize, Serialize};

/// When a tenant's queued requests become a dispatchable batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Dispatch exactly `batch` requests at a time.
    Fixed {
        /// The fixed batch size.
        batch: usize,
    },
    /// Dispatch at `max_batch` requests, or when the oldest queued
    /// request has waited `t_max_ms`, whichever comes first.
    Timeout {
        /// Upper bound on the batch size.
        max_batch: usize,
        /// Longest accumulation wait for the oldest request, ms.
        t_max_ms: f64,
    },
    /// Dispatch at `max_batch`, or at the last moment the oldest request
    /// can still meet `slo_ms` with `margin_ms` of safety.
    SloAdaptive {
        /// Upper bound on the batch size.
        max_batch: usize,
        /// Per-request latency target, ms.
        slo_ms: f64,
        /// Safety margin subtracted from the target, ms.
        margin_ms: f64,
    },
}

impl BatchPolicy {
    /// The largest batch this policy will ever dispatch.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fixed { batch } => batch,
            BatchPolicy::Timeout { max_batch, .. } | BatchPolicy::SloAdaptive { max_batch, .. } => {
                max_batch
            }
        }
    }

    /// Whether a queue of `queued` requests, whose oldest member arrived
    /// at `oldest_ms`, should dispatch at time `now_ms`. `draining` is
    /// true once the tenant has no future arrivals (tail batches flush).
    pub fn should_dispatch(
        &self,
        now_ms: f64,
        oldest_ms: f64,
        queued: usize,
        draining: bool,
        curve: &ServiceCurve,
    ) -> bool {
        if queued == 0 {
            return false;
        }
        if queued >= self.max_batch() || draining {
            return true;
        }
        match *self {
            BatchPolicy::Fixed { .. } => false,
            BatchPolicy::Timeout { t_max_ms, .. } => now_ms - oldest_ms >= t_max_ms - 1e-9,
            BatchPolicy::SloAdaptive {
                slo_ms, margin_ms, ..
            } => {
                // Waiting for one more request would finish the oldest at
                // (its arrival + wait) + service(queued + 1); dispatch as
                // soon as even the *current* start time cannot be pushed
                // further without breaching the target.
                let budget = slo_ms - margin_ms;
                now_ms + curve.service_ms(queued + 1) >= oldest_ms + budget - 1e-9
            }
        }
    }

    /// The next absolute time at which `should_dispatch` could flip from
    /// false to true without another arrival, or `None` if only a new
    /// arrival (or a die becoming free) can trigger dispatch. Drives the
    /// engine's timer events.
    pub fn next_deadline_ms(
        &self,
        oldest_ms: f64,
        queued: usize,
        curve: &ServiceCurve,
    ) -> Option<f64> {
        if queued == 0 {
            return None;
        }
        match *self {
            BatchPolicy::Fixed { .. } => None,
            BatchPolicy::Timeout { t_max_ms, .. } => Some(oldest_ms + t_max_ms),
            BatchPolicy::SloAdaptive {
                slo_ms, margin_ms, ..
            } => Some(oldest_ms + (slo_ms - margin_ms) - curve.service_ms(queued + 1)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn curve() -> ServiceCurve {
        ServiceCurve::new(1.0, 0.01, 0.0)
    }

    #[test]
    fn fixed_waits_for_exactly_batch() {
        let p = BatchPolicy::Fixed { batch: 4 };
        assert!(!p.should_dispatch(100.0, 0.0, 3, false, &curve()));
        assert!(p.should_dispatch(100.0, 0.0, 4, false, &curve()));
        assert_eq!(p.next_deadline_ms(0.0, 3, &curve()), None);
    }

    #[test]
    fn fixed_flushes_partial_batches_when_draining() {
        let p = BatchPolicy::Fixed { batch: 4 };
        assert!(p.should_dispatch(0.0, 0.0, 1, true, &curve()));
    }

    #[test]
    fn timeout_fires_on_oldest_wait() {
        let p = BatchPolicy::Timeout {
            max_batch: 64,
            t_max_ms: 2.0,
        };
        assert!(!p.should_dispatch(1.5, 0.0, 8, false, &curve()));
        assert!(p.should_dispatch(2.0, 0.0, 8, false, &curve()));
        assert_eq!(p.next_deadline_ms(5.0, 8, &curve()), Some(7.0));
    }

    #[test]
    fn slo_adaptive_dispatches_before_breach() {
        let p = BatchPolicy::SloAdaptive {
            max_batch: 64,
            slo_ms: 7.0,
            margin_ms: 1.0,
        };
        let c = curve();
        // Budget 6 ms; service(9) = 1.09 ms, so the latest safe start for
        // an oldest arrival at t=0 is ~4.91 ms.
        assert!(!p.should_dispatch(3.0, 0.0, 8, false, &c));
        assert!(p.should_dispatch(5.0, 0.0, 8, false, &c));
        let dl = p.next_deadline_ms(0.0, 8, &c).unwrap();
        assert!((dl - (6.0 - c.service_ms(9))).abs() < 1e-9);
    }

    #[test]
    fn empty_queues_never_dispatch() {
        for p in [
            BatchPolicy::Fixed { batch: 1 },
            BatchPolicy::Timeout {
                max_batch: 1,
                t_max_ms: 0.0,
            },
            BatchPolicy::SloAdaptive {
                max_batch: 1,
                slo_ms: 1.0,
                margin_ms: 0.0,
            },
        ] {
            assert!(!p.should_dispatch(10.0, 0.0, 0, true, &curve()));
        }
    }
}
