//! The extracted event core: a generic, deterministic discrete-event
//! queue plus the seeded-RNG stream plumbing, shared by `tpu_serve`
//! (one host) and `tpu_cluster` (a fleet of hosts under one clock).
//!
//! Everything here is deliberately free of serving semantics:
//!
//! * [`EventQueue`] is generic over the event payload `E`. Events pop in
//!   `(time, sequence)` order, so simulations are bit-identical from a
//!   seed even when events share a timestamp — `tpu_serve` instantiates
//!   it with its host-level [`crate::event::Event`], `tpu_cluster` with
//!   a fleet-level event that wraps per-host events;
//! * [`stream_seed`] / [`service_seed`] derive independent RNG streams
//!   from one master seed. Stream 0 *is* the master seed
//!   (`stream_seed(s, 0) == s`), which is what lets a 1-host fleet
//!   reproduce a single-host `tpu_serve` run bit for bit;
//! * [`lognormal_multiplier`] is the shared service-jitter model — a
//!   re-export of [`tpu_platforms::jitter::lognormal_multiplier`], the
//!   single Box–Muller sampler both `queue_sim` and this engine draw
//!   from. It draws from the RNG **only when** `sigma > 0`, so
//!   deterministic (TPU-like) curves leave the stream untouched.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
pub use tpu_platforms::jitter::lognormal_multiplier;

/// Weyl-sequence increment (2^64 / φ) used to derive per-stream seeds.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derive the seed of an indexed RNG stream from a master seed.
///
/// Stream 0 is the master seed itself, so single-stream simulations
/// (one tenant, one host) reproduce legacy seeding exactly.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    master.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA))
}

/// Derive the service-jitter stream for a host from its seed. XORing
/// keeps it out of the [`stream_seed`] additive orbit.
pub fn service_seed(host_seed: u64) -> u64 {
    host_seed ^ 0x5bd1_e995_9e37_79b9
}

#[derive(Debug, Clone, Copy)]
struct Scheduled<E> {
    at_ms: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower sequence number.
        // Times are finite by construction (asserted on push).
        other
            .at_ms
            .partial_cmp(&self.at_ms)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list, generic over the event payload.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    next_seq: u64,
    now_ms: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now_ms: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in milliseconds (the timestamp of the last
    /// popped event).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedule `event` at absolute time `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite or lies in the simulated past.
    pub fn schedule(&mut self, at_ms: f64, event: E) {
        assert!(at_ms.is_finite(), "event time must be finite");
        assert!(
            at_ms >= self.now_ms,
            "cannot schedule into the past: {at_ms} < {}",
            self.now_ms
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at_ms, seq, event });
    }

    /// Pop the next event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let s = self.heap.pop()?;
        self.now_ms = s.at_ms;
        Some((s.at_ms, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stream_zero_is_the_master_seed() {
        assert_eq!(stream_seed(42, 0), 42);
        assert_ne!(stream_seed(42, 1), 42);
        assert_ne!(stream_seed(42, 1), stream_seed(42, 2));
    }

    #[test]
    fn service_seed_leaves_the_stream_orbit() {
        for s in 0..64u64 {
            assert_ne!(service_seed(7), stream_seed(7, s));
        }
    }

    #[test]
    fn zero_sigma_jitter_is_exactly_one_and_draws_nothing() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(lognormal_multiplier(&mut a, 0.0), 1.0);
        // The RNG state must be untouched: the next draws agree.
        let x: f64 = a.gen_range(0.0..1.0);
        let y: f64 = b.gen_range(0.0..1.0);
        assert_eq!(x, y);
    }

    #[test]
    fn positive_sigma_jitter_is_positive_and_seeded() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let x = lognormal_multiplier(&mut a, 0.3);
        let y = lognormal_multiplier(&mut b, 0.3);
        assert!(x > 0.0);
        assert_eq!(x, y, "same seed, same jitter");
    }

    #[test]
    fn generic_queue_pops_time_then_fifo() {
        let mut q: EventQueue<&'static str> = EventQueue::new();
        q.schedule(2.0, "late");
        q.schedule(1.0, "first");
        q.schedule(1.0, "second");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["first", "second", "late"]);
    }
}
