//! The extracted event core: a generic, deterministic discrete-event
//! queue plus the seeded-RNG stream plumbing, shared by `tpu_serve`
//! (one host) and `tpu_cluster` (a fleet of hosts under one clock).
//!
//! Everything here is deliberately free of serving semantics:
//!
//! * [`EventQueue`] is generic over the event payload `E`. Events pop in
//!   `(time, sequence)` order, so simulations are bit-identical from a
//!   seed even when events share a timestamp — `tpu_serve` instantiates
//!   it with its host-level [`crate::event::Event`], `tpu_cluster` with
//!   a fleet-level event that wraps per-host events;
//! * [`stream_seed`] / [`service_seed`] derive independent RNG streams
//!   from one master seed. Stream 0 *is* the master seed
//!   (`stream_seed(s, 0) == s`), which is what lets a 1-host fleet
//!   reproduce a single-host `tpu_serve` run bit for bit;
//! * [`lognormal_multiplier`] is the shared service-jitter model — a
//!   re-export of [`tpu_platforms::jitter::lognormal_multiplier`], the
//!   single Box–Muller sampler both `queue_sim` and this engine draw
//!   from. It draws from the RNG **only when** `sigma > 0`, so
//!   deterministic (TPU-like) curves leave the stream untouched.
//!
//! # The timer wheel
//!
//! The future-event list is a hierarchical timer wheel (a 64-ary radix
//! heap / calendar queue) rather than a binary heap. Event times are
//! finite, non-negative `f64` milliseconds, and for such floats the IEEE
//! bit pattern is *monotone*: `a <= b` iff `a.to_bits() <= b.to_bits()`.
//! Each event is therefore keyed by the `u64` time-bits of its
//! timestamp, and every comparison the scheduler makes is an integer
//! comparison — no `partial_cmp` on floats anywhere in the hot path.
//!
//! The wheel has [`WHEEL_LEVELS`] levels of 64 slots each; level `l`
//! buckets keys by bit range `[6l, 6l+6)` relative to the *hand* (the
//! key prefix of the most recently drained slot). Scheduling hashes the
//! key into the level of its highest bit differing from the hand —
//! O(1). Below the levels sits the **bottom rung**: the most recently
//! drained slot, sorted once, from which pops are O(1). When the rung
//! runs dry the wheel rolls forward: the lowest occupied slot of the
//! lowest occupied level (the overflow levels re-bucket on rollover)
//! holds exactly the globally smallest keys and becomes the next rung.
//! Because simulated time is monotone (scheduling into the past is
//! rejected), every event is drained into the rung at most once — never
//! re-cascaded level by level — so schedule/pop are O(1) amortized.
//! Equal-key events stay in FIFO (sequence) order end to end: slot
//! buckets are FIFO, the rung sort is stable, and late same-key inserts
//! land after their elders — so pops remain *exactly* `(time,
//! sequence)` ordered. The differential proptest in
//! `tests/event_queue_props.rs` pins the wheel against the reference
//! binary heap on arbitrary schedules.
//!
//! The pre-wheel `BinaryHeap` implementation is kept as
//! [`QueueBackend::BinaryHeap`] — it is the reference for differential
//! tests and the in-run baseline for the `bench_cluster` throughput
//! gate. `EventQueue::new` picks the wheel unless the
//! `TPU_SIM_EVENT_QUEUE=heap` environment variable asks for the
//! reference backend; the two are observationally identical (same pops,
//! same panics), so the switch can never change a report.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
pub use tpu_platforms::jitter::lognormal_multiplier;
use tpu_telemetry::WheelProfile;

/// Weyl-sequence increment (2^64 / φ) used to derive per-stream seeds.
pub const GOLDEN_GAMMA: u64 = 0x9e37_79b9_7f4a_7c15;

/// Derive the seed of an indexed RNG stream from a master seed.
///
/// Stream 0 is the master seed itself, so single-stream simulations
/// (one tenant, one host) reproduce legacy seeding exactly.
pub fn stream_seed(master: u64, stream: u64) -> u64 {
    master.wrapping_add(stream.wrapping_mul(GOLDEN_GAMMA))
}

/// Derive the service-jitter stream for a host from its seed. XORing
/// keeps it out of the [`stream_seed`] additive orbit.
pub fn service_seed(host_seed: u64) -> u64 {
    host_seed ^ 0x5bd1_e995_9e37_79b9
}

/// Bits per wheel level (64 slots).
const LEVEL_BITS: u32 = 6;
/// Slots per wheel level.
const SLOTS: usize = 1 << LEVEL_BITS;
/// Levels covering the full 64-bit key space (the upper levels are the
/// overflow levels that re-bucket on rollover).
pub const WHEEL_LEVELS: usize = 11; // ceil(64 / 6)

/// Bottom-rung spill threshold. A push whose key lands inside the
/// rung's range pays a sorted insert — O(rung length) of memmove — so
/// a single slot accumulating a huge equal-time burst would degrade
/// the rung toward an ever-growing sorted list. Once the rung holds
/// this many entries, a push at or above the rung's *maximum* key
/// spills into the wheel instead (shrinking the rung's claimed key
/// range), which is always order-safe: the spilled key is ≥ every rung
/// key, and equal keys keep FIFO order because wheel buckets drain
/// after the rung. Pushes strictly below the rung maximum still insert
/// (they must, to pop before it), so the bound applies exactly to the
/// degenerate case that hurts: long runs of equal or increasing keys.
pub const RUNG_SPILL_THRESHOLD: usize = 128;

/// The monotone integer key of a finite, non-negative event time.
/// `+ 0.0` collapses `-0.0` to `+0.0` so the one non-monotone bit
/// pattern in the accepted domain is normalized away.
#[inline]
fn time_key(at_ms: f64) -> u64 {
    (at_ms + 0.0).to_bits()
}

#[derive(Debug, Clone, Copy)]
struct Scheduled<E> {
    at_ms: f64,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}

impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower sequence number.
        // Times are finite by construction (asserted on push).
        other
            .at_ms
            .partial_cmp(&self.at_ms)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// One pending event inside the wheel.
#[derive(Debug, Clone, Copy)]
struct Entry<E> {
    key: u64,
    event: E,
}

/// Stable ascending sort by key for one drained slot. Insertion sort
/// for the common handful of entries (in place, no allocation), the
/// standard library's stable sort above that; both preserve the FIFO
/// order of equal keys, which *is* the sequence order.
fn sort_rung<E>(rung: &mut [Entry<E>]) {
    if rung.len() <= 32 {
        for i in 1..rung.len() {
            let mut j = i;
            while j > 0 && rung[j - 1].key > rung[j].key {
                rung.swap(j - 1, j);
                j -= 1;
            }
        }
    } else {
        rung.sort_by_key(|e| e.key);
    }
}

/// Lifetime counters the wheel keeps about itself. All updates happen
/// in the `#[cold]` `advance` path, the rare spill branch, or the
/// already-O(rung) sorted insert, so the hot push/pop paths are
/// untouched; `EventQueue::wheel_profile` snapshots them for
/// `--engine-stats`.
#[derive(Debug, Clone)]
struct WheelStats {
    /// Times `advance` drained a slot from each level.
    drains_per_level: [u64; WHEEL_LEVELS],
    /// Rung length at each drain, in power-of-two buckets (index =
    /// `floor(log2 len)`).
    rung_hist: [u64; 32],
    /// Longest bottom rung observed (at drain or after a rung insert).
    max_rung: usize,
    /// Times `advance` ran.
    advances: u64,
    /// Pushes diverted into the wheel by the [`RUNG_SPILL_THRESHOLD`]
    /// guard.
    spills: u64,
}

impl WheelStats {
    fn new() -> Self {
        WheelStats {
            drains_per_level: [0; WHEEL_LEVELS],
            rung_hist: [0; 32],
            max_rung: 0,
            advances: 0,
            spills: 0,
        }
    }
}

/// The hierarchical timer wheel (see the module docs).
#[derive(Debug)]
struct Wheel<E> {
    /// `slots[level * 64 + slot]`; each bucket is FIFO in sequence
    /// order (pushes happen in sequence order).
    slots: Vec<VecDeque<Entry<E>>>,
    /// Per-level occupancy bitmaps: bit `s` set iff slot `s` non-empty.
    occupied: [u64; WHEEL_LEVELS],
    /// Key prefix of the most recently drained slot. Wheel entries are
    /// bucketed relative to it; all wheel keys exceed `bottom_bound`.
    hand: u64,
    /// Inclusive upper key bound of the bottom rung: the top of the
    /// most recently drained slot's key range.
    bottom_bound: u64,
    /// The bottom rung: the most recently drained slot, sorted
    /// ascending by `(key, sequence)`. Pops come off the front in O(1);
    /// newly scheduled keys at or below `bottom_bound` sorted-insert
    /// here (equal keys after their elders, keeping FIFO).
    bottom: VecDeque<Entry<E>>,
    len: usize,
    /// Boxed so the counters don't bloat the `Fel` enum variant.
    stats: Box<WheelStats>,
}

impl<E> Wheel<E> {
    fn new() -> Self {
        Wheel {
            slots: (0..WHEEL_LEVELS * SLOTS).map(|_| VecDeque::new()).collect(),
            occupied: [0; WHEEL_LEVELS],
            hand: 0,
            bottom_bound: 0,
            bottom: VecDeque::new(),
            len: 0,
            stats: Box::new(WheelStats::new()),
        }
    }

    /// The (level, slot) a key hashes to, relative to the hand.
    #[inline]
    fn bucket(hand: u64, key: u64) -> (usize, usize) {
        let diff = hand ^ key;
        if diff == 0 {
            (0, (key & (SLOTS as u64 - 1)) as usize)
        } else {
            let level = ((63 - diff.leading_zeros()) / LEVEL_BITS) as usize;
            let slot = ((key >> (level as u32 * LEVEL_BITS)) & (SLOTS as u64 - 1)) as usize;
            (level, slot)
        }
    }

    #[inline]
    fn push(&mut self, key: u64, event: E) {
        self.len += 1;
        if key <= self.bottom_bound {
            // Spill: the rung is at its threshold and this key is at or
            // above every key in it, so handing it to the wheel cannot
            // reorder anything (wheel entries pop after the rung, and
            // equal keys pushed later carry higher sequence numbers).
            // Shrinking `bottom_bound` below the key sends the rest of
            // the burst the same way — the rung stops growing. Keys of
            // exactly 0 cannot shrink the bound further and fall back
            // to the (bounded, since every key ≥ 0 now spills) insert.
            if self.bottom.len() >= RUNG_SPILL_THRESHOLD {
                let rung_max = self.bottom.back().expect("rung at threshold").key;
                if key >= rung_max && key > 0 {
                    self.stats.spills += 1;
                    self.bottom_bound = key - 1;
                    let (level, slot) = Self::bucket(self.hand, key);
                    self.occupied[level] |= 1 << slot;
                    self.slots[level * SLOTS + slot].push_back(Entry { key, event });
                    return;
                }
            }
            // Lands inside the bottom rung's key range: sorted insert,
            // after any entries sharing the key (they have lower
            // sequence numbers).
            let at = self.bottom.partition_point(|e| e.key <= key);
            self.bottom.insert(at, Entry { key, event });
            if self.bottom.len() > self.stats.max_rung {
                self.stats.max_rung = self.bottom.len();
            }
            return;
        }
        let (level, slot) = Self::bucket(self.hand, key);
        self.occupied[level] |= 1 << slot;
        self.slots[level * SLOTS + slot].push_back(Entry { key, event });
    }

    #[inline]
    fn pop(&mut self) -> Option<Entry<E>> {
        if let Some(entry) = self.bottom.pop_front() {
            self.len -= 1;
            return Some(entry);
        }
        if self.len == 0 {
            return None;
        }
        self.advance();
        self.len -= 1;
        self.bottom.pop_front()
    }

    /// Roll the wheel forward: drain the lowest occupied slot of the
    /// lowest occupied level — by construction every key in it is `<=`
    /// every key elsewhere in the wheel — into the (empty) bottom rung,
    /// sort it once, and advance the hand to the slot's key-range
    /// prefix. Each event is drained at most once (straight into the
    /// rung it pops from, never re-cascaded level by level), so
    /// schedule/pop stay O(1) amortized even though adjacent `f64`
    /// times differ deep in the mantissa.
    #[cold]
    fn advance(&mut self) {
        debug_assert!(self.bottom.is_empty(), "checked by pop");
        let level = (0..WHEEL_LEVELS)
            .find(|&l| self.occupied[l] != 0)
            .expect("len > 0 with an empty bottom rung means a slot is occupied");
        let slot = self.occupied[level].trailing_zeros() as usize;
        self.occupied[level] &= !(1u64 << slot);
        // The slot's buffer becomes the bottom rung; the old (empty)
        // rung buffer takes its place — no allocation either way.
        std::mem::swap(&mut self.bottom, &mut self.slots[level * SLOTS + slot]);
        sort_rung(self.bottom.make_contiguous());
        self.stats.advances += 1;
        self.stats.drains_per_level[level] += 1;
        let n = self.bottom.len();
        self.stats.rung_hist[((usize::BITS - 1 - n.leading_zeros()) as usize).min(31)] += 1;
        if n > self.stats.max_rung {
            self.stats.max_rung = n;
        }
        let shift = level as u32 * LEVEL_BITS;
        self.hand = (self.bottom.front().expect("occupancy bit was set").key >> shift) << shift;
        // The rung is entitled to the drained slot's whole key range,
        // but claiming only up to its current maximum keeps it small:
        // later keys land in the wheel's lower levels (relative to the
        // advanced hand) instead of sorted-inserting into an
        // ever-growing rung. Only keys tying or interleaving the
        // already-drained ones pay the rung insert.
        self.bottom_bound = self.bottom.back().expect("occupancy bit was set").key;
    }
}

/// Which future-event-list implementation an [`EventQueue`] runs on.
///
/// Both backends pop in exactly `(time, sequence)` order — the choice
/// can never change a simulation result, only its speed. The reference
/// heap exists for differential testing and for measuring the wheel's
/// speedup inside one `bench_cluster` run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueBackend {
    /// The hierarchical timer wheel (default).
    TimerWheel,
    /// The pre-wheel `BinaryHeap` reference implementation.
    BinaryHeap,
}

impl QueueBackend {
    /// The backend `EventQueue::new` uses: the wheel, unless the
    /// `TPU_SIM_EVENT_QUEUE=heap` environment variable selects the
    /// reference heap (a benchmarking escape hatch).
    pub fn from_env() -> Self {
        match std::env::var("TPU_SIM_EVENT_QUEUE").as_deref() {
            Ok("heap") => QueueBackend::BinaryHeap,
            _ => QueueBackend::TimerWheel,
        }
    }
}

#[derive(Debug)]
enum Fel<E> {
    Wheel(Wheel<E>),
    Heap(BinaryHeap<Scheduled<E>>),
}

/// A deterministic future-event list, generic over the event payload.
#[derive(Debug)]
pub struct EventQueue<E> {
    fel: Fel<E>,
    next_seq: u64,
    now_ms: f64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero, on the environment-selected backend
    /// (see [`QueueBackend::from_env`]; the timer wheel by default).
    pub fn new() -> Self {
        Self::with_backend(QueueBackend::from_env())
    }

    /// An empty queue at time zero on an explicit backend.
    pub fn with_backend(backend: QueueBackend) -> Self {
        EventQueue {
            fel: match backend {
                QueueBackend::TimerWheel => Fel::Wheel(Wheel::new()),
                QueueBackend::BinaryHeap => Fel::Heap(BinaryHeap::new()),
            },
            next_seq: 0,
            now_ms: 0.0,
        }
    }

    /// The backend this queue runs on.
    pub fn backend(&self) -> QueueBackend {
        match self.fel {
            Fel::Wheel(_) => QueueBackend::TimerWheel,
            Fel::Heap(_) => QueueBackend::BinaryHeap,
        }
    }

    /// Current simulated time in milliseconds (the timestamp of the last
    /// popped event).
    #[inline]
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedule `event` at absolute time `at_ms`. Scheduling *at* the
    /// current time is allowed (the event pops after everything already
    /// pending at that timestamp); scheduling before it is not.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite or lies in the simulated past.
    #[inline]
    pub fn schedule(&mut self, at_ms: f64, event: E) {
        assert!(at_ms.is_finite(), "event time must be finite");
        let seq = self.next_seq;
        assert!(
            at_ms >= self.now_ms,
            "cannot schedule into the past: event seq {seq} at {at_ms} < now {}",
            self.now_ms
        );
        self.next_seq += 1;
        match &mut self.fel {
            Fel::Wheel(w) => w.push(time_key(at_ms), event),
            Fel::Heap(h) => h.push(Scheduled { at_ms, seq, event }),
        }
    }

    /// Pop the next event, advancing simulated time to it.
    #[inline]
    pub fn pop(&mut self) -> Option<(f64, E)> {
        let (at_ms, event) = match &mut self.fel {
            Fel::Wheel(w) => {
                let e = w.pop()?;
                (f64::from_bits(e.key), e.event)
            }
            Fel::Heap(h) => {
                let s = h.pop()?;
                (s.at_ms, s.event)
            }
        };
        self.now_ms = at_ms;
        Some((at_ms, event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.fel {
            Fel::Wheel(w) => w.len,
            Fel::Heap(h) => h.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Entries currently in the wheel's sorted bottom rung (always 0 on
    /// the heap backend). Exposed so the spill-threshold tests can
    /// assert the rung stays bounded under equal-time bursts (see
    /// [`RUNG_SPILL_THRESHOLD`]).
    pub fn rung_len(&self) -> usize {
        match &self.fel {
            Fel::Wheel(w) => w.bottom.len(),
            Fel::Heap(_) => 0,
        }
    }

    /// Snapshot the wheel's self-profile for `--engine-stats`: drains
    /// per level, current occupied-slot counts, the rung-length
    /// histogram, and the [`RUNG_SPILL_THRESHOLD`] spill counter.
    /// `None` on the reference heap backend, which keeps no statistics.
    pub fn wheel_profile(&self) -> Option<WheelProfile> {
        match &self.fel {
            Fel::Wheel(w) => {
                let mut rung_hist = w.stats.rung_hist.to_vec();
                while rung_hist.last() == Some(&0) {
                    rung_hist.pop();
                }
                Some(WheelProfile {
                    slots_per_level: SLOTS,
                    drains_per_level: w.stats.drains_per_level.to_vec(),
                    occupied_slots: w.occupied.iter().map(|b| b.count_ones()).collect(),
                    rung_hist,
                    max_rung: w.stats.max_rung,
                    advances: w.stats.advances,
                    spills: w.stats.spills,
                    pending: w.len,
                })
            }
            Fel::Heap(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn stream_zero_is_the_master_seed() {
        assert_eq!(stream_seed(42, 0), 42);
        assert_ne!(stream_seed(42, 1), 42);
        assert_ne!(stream_seed(42, 1), stream_seed(42, 2));
    }

    #[test]
    fn service_seed_leaves_the_stream_orbit() {
        for s in 0..64u64 {
            assert_ne!(service_seed(7), stream_seed(7, s));
        }
    }

    #[test]
    fn zero_sigma_jitter_is_exactly_one_and_draws_nothing() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(lognormal_multiplier(&mut a, 0.0), 1.0);
        // The RNG state must be untouched: the next draws agree.
        let x: f64 = a.gen_range(0.0..1.0);
        let y: f64 = b.gen_range(0.0..1.0);
        assert_eq!(x, y);
    }

    #[test]
    fn positive_sigma_jitter_is_positive_and_seeded() {
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        let x = lognormal_multiplier(&mut a, 0.3);
        let y = lognormal_multiplier(&mut b, 0.3);
        assert!(x > 0.0);
        assert_eq!(x, y, "same seed, same jitter");
    }

    const BOTH: [QueueBackend; 2] = [QueueBackend::TimerWheel, QueueBackend::BinaryHeap];

    #[test]
    fn generic_queue_pops_time_then_fifo() {
        for backend in BOTH {
            let mut q: EventQueue<&'static str> = EventQueue::with_backend(backend);
            q.schedule(2.0, "late");
            q.schedule(1.0, "first");
            q.schedule(1.0, "second");
            let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
            assert_eq!(order, vec!["first", "second", "late"], "{backend:?}");
        }
    }

    /// Boundary pinned for the scheduler swap: after popping at time t,
    /// scheduling *at* t is accepted and the event pops next.
    #[test]
    fn equal_time_schedule_after_pop_is_accepted() {
        for backend in BOTH {
            let mut q: EventQueue<u32> = EventQueue::with_backend(backend);
            q.schedule(3.5, 0);
            q.schedule(3.5, 1);
            assert_eq!(q.pop(), Some((3.5, 0)), "{backend:?}");
            assert_eq!(q.now_ms(), 3.5);
            q.schedule(3.5, 2); // at_ms == now_ms: boundary, not the past
            assert_eq!(q.pop(), Some((3.5, 1)), "{backend:?}");
            assert_eq!(q.pop(), Some((3.5, 2)), "{backend:?}");
            assert_eq!(q.pop(), None);
        }
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past: event seq 2")]
    fn past_time_panic_names_the_event_sequence() {
        let mut q: EventQueue<u32> = EventQueue::new();
        q.schedule(1.0, 0); // seq 0
        q.schedule(2.0, 1); // seq 1
        q.pop();
        q.pop();
        q.schedule(1.5, 2); // seq 2, in the past of now = 2.0
    }

    #[test]
    fn negative_zero_time_is_normalized() {
        let mut q: EventQueue<u32> = EventQueue::with_backend(QueueBackend::TimerWheel);
        q.schedule(-0.0, 7);
        q.schedule(0.0, 8);
        assert_eq!(q.pop(), Some((0.0, 7)));
        assert_eq!(q.pop(), Some((0.0, 8)));
    }

    /// The wheel's overflow levels: keys spanning many orders of
    /// magnitude re-bucket down without losing (time, seq) order.
    #[test]
    fn wheel_handles_wide_time_ranges() {
        let mut q: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let times = [
            0.0,
            1e-9,
            0.25,
            0.250000000001,
            1.0,
            3.0,
            1024.0,
            1e6,
            1e6,
            1e12,
        ];
        for (i, &t) in times.iter().enumerate().rev() {
            q.schedule(t, i);
        }
        let mut got = Vec::new();
        while let Some((t, i)) = q.pop() {
            got.push((t, i));
        }
        // Sorted by time; the two equal timestamps pop in schedule
        // order (8 was scheduled before 7 by the .rev()).
        let popped_times: Vec<f64> = got.iter().map(|&(t, _)| t).collect();
        let mut sorted = popped_times.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(popped_times, sorted);
        let equal_pair: Vec<usize> = got
            .iter()
            .filter(|&&(t, _)| t == 1e6)
            .map(|&(_, i)| i)
            .collect();
        assert_eq!(equal_pair, vec![8, 7], "FIFO among equal timestamps");
    }

    /// Differential smoke test (the heavyweight version with arbitrary
    /// interleavings lives in `tests/event_queue_props.rs`).
    #[test]
    fn wheel_and_heap_agree_on_an_interleaved_schedule() {
        let mut rng = StdRng::seed_from_u64(2024);
        let mut wheel: EventQueue<u64> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut heap: EventQueue<u64> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut payload = 0u64;
        for _ in 0..5_000 {
            if rng.gen_range(0.0..1.0) < 0.6 || wheel.is_empty() {
                // Quantized offsets force frequent exact-time collisions.
                let delta = rng.gen_range(0u32..32) as f64 * 0.25;
                let at = wheel.now_ms() + delta;
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            } else {
                assert_eq!(wheel.pop(), heap.pop());
            }
            assert_eq!(wheel.len(), heap.len());
        }
        while !wheel.is_empty() {
            assert_eq!(wheel.pop(), heap.pop());
        }
        assert_eq!(heap.pop(), None);
    }

    /// The spill threshold: an equal-time burst aimed at the bottom
    /// rung stops growing it at the threshold (later entries go to the
    /// wheel), and the drain order is still exactly (time, sequence).
    #[test]
    fn equal_time_burst_spills_out_of_the_bottom_rung() {
        let mut q: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        // Establish a rung at t = 1.0 (schedule + pop puts the hand and
        // bottom_bound at that key).
        q.schedule(1.0, usize::MAX);
        assert_eq!(q.pop(), Some((1.0, usize::MAX)));
        // Single-slot burst: every event at the same timestamp, which
        // is exactly the rung's upper bound.
        let burst = RUNG_SPILL_THRESHOLD * 8;
        for i in 0..burst {
            q.schedule(1.0, i);
            assert!(
                q.rung_len() <= RUNG_SPILL_THRESHOLD,
                "rung grew past the spill threshold at push {i}: {}",
                q.rung_len()
            );
        }
        for want in 0..burst {
            assert_eq!(q.pop(), Some((1.0, want)), "FIFO across the spill");
        }
        assert!(q.is_empty());
    }

    /// Spilling must not reorder anything: equal-time runs long enough
    /// to trip the threshold, interleaved with pops and nearby keys,
    /// drain in exactly the reference heap's (time, sequence) order.
    #[test]
    fn spill_keeps_interleaved_schedules_ordered() {
        let mut wheel: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut heap: EventQueue<usize> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut payload = 0usize;
        for round in 0..6 {
            let base = wheel.now_ms();
            // A run of equal-time events well past the threshold, with
            // a sprinkle of earlier and later keys mixed in.
            for i in 0..(RUNG_SPILL_THRESHOLD * 2 + 17) {
                let at = match i % 9 {
                    0 => base + 0.25,
                    1 => base + 1.75,
                    _ => base + 1.0,
                };
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
            }
            // Drain part of it so the hand advances mid-burst.
            for _ in 0..(RUNG_SPILL_THRESHOLD + round) {
                assert_eq!(wheel.pop(), heap.pop());
            }
        }
        while !wheel.is_empty() {
            assert_eq!(wheel.pop(), heap.pop());
        }
        assert_eq!(heap.pop(), None);
    }

    /// The self-profile counters observe exactly what the engine did:
    /// the spill path increments `spills`, drains land in the level
    /// histogram, and the heap backend reports no profile at all.
    #[test]
    fn wheel_profile_counts_spills_drains_and_occupancy() {
        let mut q: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        assert_eq!(
            q.wheel_profile().expect("wheel backend profiles").advances,
            0
        );
        q.schedule(1.0, usize::MAX);
        assert_eq!(q.pop(), Some((1.0, usize::MAX)));
        for i in 0..(RUNG_SPILL_THRESHOLD * 2) {
            q.schedule(1.0, i);
        }
        let mid = q.wheel_profile().expect("wheel backend profiles");
        assert!(mid.spills > 0, "equal-time burst must trip the spill path");
        assert!(mid.occupied_slots.iter().sum::<u32>() > 0);
        assert_eq!(mid.pending, RUNG_SPILL_THRESHOLD * 2);
        while q.pop().is_some() {}
        let done = q.wheel_profile().expect("wheel backend profiles");
        assert_eq!(done.pending, 0);
        assert!(done.advances > mid.advances);
        assert_eq!(
            done.drains_per_level.iter().sum::<u64>(),
            done.advances,
            "every advance drains exactly one slot"
        );
        assert_eq!(done.rung_hist.iter().sum::<u64>(), done.advances);
        assert!(done.max_rung >= RUNG_SPILL_THRESHOLD);
        assert_eq!(
            EventQueue::<usize>::with_backend(QueueBackend::BinaryHeap).wheel_profile(),
            None
        );
    }

    #[test]
    fn explicit_backends_report_themselves() {
        assert_eq!(
            EventQueue::<u8>::with_backend(QueueBackend::TimerWheel).backend(),
            QueueBackend::TimerWheel
        );
        assert_eq!(
            EventQueue::<u8>::with_backend(QueueBackend::BinaryHeap).backend(),
            QueueBackend::BinaryHeap
        );
    }
}
