//! The discrete-event, multi-tenant serving engine.
//!
//! Generalizes the closed-form serving models of `tpu_platforms`
//! (`queue_sim`, `batching`, `server`) into one seeded scheduler:
//! Poisson (or bursty) request streams per tenant, policy-driven batch
//! formation, priority admission onto a pool of accelerator dies, and
//! per-request end-to-end latency accounting. With a single tenant,
//! a [`BatchPolicy::Fixed`] policy and one die, the engine reproduces
//! `queue_sim::simulate` exactly (same seed, same arrival stream, same
//! dispatch instants) — the integration tests pin that equivalence.
//!
//! Everything is deterministic from [`ClusterSpec::seed`]: arrival
//! streams are per-tenant seeded RNGs, ties in the event queue break by
//! schedule order, and die selection is a pure function of engine state.

use crate::event::{Event, EventQueue};
use crate::policy::BatchPolicy;
use crate::report::{percentile, DieReport, ServeReport, TenantReport};
use crate::service::ServiceCurve;
use crate::tenant::TenantSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use tpu_core::TpuConfig;
pub use tpu_platforms::server::Dispatch;

/// The die pool the tenants share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of accelerator dies behind the host.
    pub dies: usize,
    /// How ready batches are routed to free dies.
    pub dispatch: Dispatch,
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
}

impl ClusterSpec {
    /// A pool of `dies` dies with least-loaded dispatch.
    pub fn new(dies: usize, seed: u64) -> Self {
        ClusterSpec {
            dies,
            dispatch: Dispatch::LeastLoaded,
            seed,
        }
    }

    /// Select the dispatch discipline.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }
}

struct TenantState {
    spec: TenantSpec,
    curve: ServiceCurve,
    queue: VecDeque<f64>,
    remaining: usize,
    arrival_rng: StdRng,
    timer_generation: u64,
    latencies: Vec<f64>,
    batches: usize,
    dispatched: usize,
}

impl TenantState {
    fn draining(&self) -> bool {
        self.remaining == 0
    }

    fn next_gap_ms(&mut self, now_ms: f64) -> f64 {
        let rate = self.spec.arrivals.rate_at(now_ms);
        assert!(rate > 0.0, "arrival rate must stay positive");
        let u: f64 = self.arrival_rng.gen_range(f64::EPSILON..1.0);
        -(1000.0 / rate) * u.ln()
    }
}

struct DieState {
    busy: bool,
    busy_ms: f64,
    batches: usize,
}

/// Run the serving simulation to completion and report.
///
/// # Panics
///
/// Panics on a degenerate setup: no dies, no tenants, a tenant with no
/// requests, or a nonpositive arrival rate.
pub fn run(cluster: &ClusterSpec, tenants: &[TenantSpec], cfg: &TpuConfig) -> ServeReport {
    assert!(cluster.dies > 0, "need at least one die");
    assert!(!tenants.is_empty(), "need at least one tenant");

    let mut states: Vec<TenantState> = tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            assert!(spec.requests > 0, "tenant {} has no requests", spec.name);
            spec.arrivals.validate();
            assert!(
                spec.policy.max_batch() > 0,
                "tenant {} has a zero batch",
                spec.name
            );
            TenantState {
                curve: spec.effective_curve(cfg),
                queue: VecDeque::new(),
                remaining: spec.requests,
                // Tenant 0 shares the master seed so a single-tenant run
                // reproduces queue_sim's arrival stream bit for bit.
                arrival_rng: StdRng::seed_from_u64(
                    cluster
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
                ),
                timer_generation: 0,
                latencies: Vec::with_capacity(spec.requests),
                batches: 0,
                dispatched: 0,
                spec: spec.clone(),
            }
        })
        .collect();

    let mut service_rng = StdRng::seed_from_u64(cluster.seed ^ 0x5bd1_e995_9e37_79b9);
    let mut dies: Vec<DieState> = (0..cluster.dies)
        .map(|_| DieState {
            busy: false,
            busy_ms: 0.0,
            batches: 0,
        })
        .collect();
    let mut rr_next = 0usize;

    let mut q = EventQueue::new();
    for (i, t) in states.iter_mut().enumerate() {
        let gap = t.next_gap_ms(0.0);
        q.schedule(gap, Event::Arrival { tenant: i });
    }

    let mut events_processed = 0u64;
    let mut makespan_ms = 0.0f64;

    while let Some((now, event)) = q.pop() {
        events_processed += 1;
        match event {
            Event::Arrival { tenant } => {
                let t = &mut states[tenant];
                debug_assert!(t.remaining > 0, "arrival after stream end");
                t.queue.push_back(now);
                t.remaining -= 1;
                if t.remaining > 0 {
                    let gap = t.next_gap_ms(now);
                    q.schedule(now + gap, Event::Arrival { tenant });
                }
                // A Timeout deadline depends only on the oldest request,
                // so it needs (re)arming only when this arrival *is* the
                // new oldest; SloAdaptive's depends on queue length too,
                // so every arrival moves it. Skipping the no-op re-arms
                // keeps the heap free of one stale timer per request.
                let rearm = match t.spec.policy {
                    BatchPolicy::Fixed { .. } => false,
                    BatchPolicy::Timeout { .. } => t.queue.len() == 1,
                    BatchPolicy::SloAdaptive { .. } => true,
                };
                if rearm {
                    arm_timer(&mut q, tenant, &mut states[tenant], now);
                }
            }
            Event::Timer { tenant, generation } => {
                if states[tenant].timer_generation != generation {
                    continue; // stale timer; the queue changed since
                }
            }
            Event::DieFree { die } => {
                dies[die].busy = false;
            }
        }

        // Any event can unblock a dispatch: a batch may have become
        // ready (arrival/timer) or capacity may have appeared (die free).
        try_dispatch(
            &mut q,
            &mut states,
            &mut dies,
            cluster.dispatch,
            &mut rr_next,
            &mut service_rng,
            now,
            &mut makespan_ms,
        );
    }

    for (i, t) in states.iter().enumerate() {
        assert!(
            t.queue.is_empty() && t.remaining == 0,
            "tenant {i} finished with work left (engine bug)"
        );
    }

    build_report(states, dies, makespan_ms, events_processed)
}

/// Arm (or re-arm) the tenant's dispatch timer for its current oldest
/// request. Each queue mutation bumps the generation so earlier timers
/// become no-ops.
fn arm_timer(q: &mut EventQueue, tenant: usize, t: &mut TenantState, now_ms: f64) {
    t.timer_generation += 1;
    if let Some(&oldest) = t.queue.front() {
        if let Some(deadline) = t
            .spec
            .policy
            .next_deadline_ms(oldest, t.queue.len(), &t.curve)
        {
            q.schedule(
                deadline.max(now_ms),
                Event::Timer {
                    tenant,
                    generation: t.timer_generation,
                },
            );
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn try_dispatch(
    q: &mut EventQueue,
    states: &mut [TenantState],
    dies: &mut [DieState],
    dispatch: Dispatch,
    rr_next: &mut usize,
    service_rng: &mut StdRng,
    now_ms: f64,
    makespan_ms: &mut f64,
) {
    loop {
        if !dies.iter().any(|d| !d.busy) {
            return;
        }
        // Ready tenants, contended by (priority desc, oldest wait asc,
        // index asc).
        let ready = states
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.spec.policy.should_dispatch(
                    now_ms,
                    t.queue.front().copied().unwrap_or(f64::INFINITY),
                    t.queue.len(),
                    t.draining(),
                    &t.curve,
                )
            })
            .min_by(|(ia, a), (ib, b)| {
                b.spec
                    .priority
                    .cmp(&a.spec.priority)
                    .then(
                        a.queue
                            .front()
                            .partial_cmp(&b.queue.front())
                            .expect("finite arrivals"),
                    )
                    .then(ia.cmp(ib))
            })
            .map(|(i, _)| i);
        let Some(tenant) = ready else { return };

        let die = pick_die(dies, dispatch, rr_next);
        let t = &mut states[tenant];
        let batch = t.queue.len().min(t.spec.policy.max_batch());
        let jitter = lognormal_multiplier(service_rng, t.curve.jitter_sigma);
        let service = t.curve.service_ms(batch) * jitter;
        let end = now_ms + service;

        for _ in 0..batch {
            let arrival = t.queue.pop_front().expect("batch within queue");
            t.latencies.push(end - arrival);
        }
        t.batches += 1;
        t.dispatched += batch;
        arm_timer(q, tenant, t, now_ms);

        let d = &mut dies[die];
        d.busy = true;
        d.busy_ms += service;
        d.batches += 1;
        *makespan_ms = makespan_ms.max(end);
        q.schedule(end, Event::DieFree { die });
    }
}

/// Choose a free die. Round-robin cycles the pool (skipping busy dies);
/// least-loaded picks the free die with the least accumulated busy time.
fn pick_die(dies: &[DieState], dispatch: Dispatch, rr_next: &mut usize) -> usize {
    match dispatch {
        Dispatch::RoundRobin => {
            let n = dies.len();
            for k in 0..n {
                let d = (*rr_next + k) % n;
                if !dies[d].busy {
                    *rr_next = (d + 1) % n;
                    return d;
                }
            }
            unreachable!("caller checked a free die exists")
        }
        Dispatch::LeastLoaded => dies
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.busy)
            .min_by(|a, b| {
                a.1.busy_ms
                    .partial_cmp(&b.1.busy_ms)
                    .expect("finite busy times")
            })
            .map(|(i, _)| i)
            .expect("caller checked a free die exists"),
    }
}

/// Unit-median lognormal multiplier via Box–Muller, matching the jitter
/// model of `tpu_platforms::queue_sim`.
fn lognormal_multiplier(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

fn build_report(
    states: Vec<TenantState>,
    dies: Vec<DieState>,
    makespan_ms: f64,
    events_processed: u64,
) -> ServeReport {
    let tenants: Vec<TenantReport> = states
        .into_iter()
        .map(|mut t| {
            t.latencies
                .sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
            let n = t.latencies.len();
            let slo_hits = t.latencies.iter().filter(|&&l| l <= t.spec.slo_ms).count();
            TenantReport {
                name: t.spec.name.clone(),
                workload: t.spec.workload.clone(),
                priority: t.spec.priority,
                requests: n,
                batches: t.batches,
                mean_batch: t.dispatched as f64 / t.batches.max(1) as f64,
                mean_ms: t.latencies.iter().sum::<f64>() / n.max(1) as f64,
                p50_ms: percentile(&t.latencies, 0.50),
                p95_ms: percentile(&t.latencies, 0.95),
                p99_ms: percentile(&t.latencies, 0.99),
                slo_ms: t.spec.slo_ms,
                slo_attainment: slo_hits as f64 / n.max(1) as f64,
                throughput_rps: n as f64 / makespan_ms.max(f64::MIN_POSITIVE) * 1000.0,
            }
        })
        .collect();
    let dies: Vec<DieReport> = dies
        .into_iter()
        .map(|d| DieReport {
            batches: d.batches,
            busy_ms: d.busy_ms,
            utilization: (d.busy_ms / makespan_ms.max(f64::MIN_POSITIVE)).min(1.0),
        })
        .collect();
    ServeReport {
        tenants,
        dies,
        makespan_ms,
        events_processed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BatchPolicy;
    use crate::tenant::ArrivalProcess;

    fn mlp0_tenant(rate: f64, policy: BatchPolicy, requests: usize) -> TenantSpec {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: rate },
            policy,
            7.0,
            requests,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4())
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(2, 42),
            &[
                mlp0_tenant(50_000.0, BatchPolicy::Fixed { batch: 64 }, 5_000),
                mlp0_tenant(
                    20_000.0,
                    BatchPolicy::Timeout {
                        max_batch: 64,
                        t_max_ms: 2.0,
                    },
                    3_000,
                ),
            ],
            &cfg,
        );
        assert_eq!(r.tenants[0].requests, 5_000);
        assert_eq!(r.tenants[1].requests, 3_000);
        assert_eq!(r.total_requests(), 8_000);
        let batch_total: usize = r.dies.iter().map(|d| d.batches).sum();
        assert_eq!(
            batch_total,
            r.tenants.iter().map(|t| t.batches).sum::<usize>()
        );
    }

    #[test]
    fn same_seed_same_report() {
        let cfg = TpuConfig::paper();
        let spec = ClusterSpec::new(4, 7);
        let tenants = [
            mlp0_tenant(100_000.0, BatchPolicy::Fixed { batch: 128 }, 10_000),
            mlp0_tenant(
                10_000.0,
                BatchPolicy::Timeout {
                    max_batch: 200,
                    t_max_ms: 1.5,
                },
                2_000,
            ),
        ];
        let a = run(&spec, &tenants, &cfg);
        let b = run(&spec, &tenants, &cfg);
        assert_eq!(
            format!("{a}"),
            format!("{b}"),
            "seeded runs must be bit-identical"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TpuConfig::paper();
        let tenants = [mlp0_tenant(
            100_000.0,
            BatchPolicy::Fixed { batch: 128 },
            5_000,
        )];
        let a = run(&ClusterSpec::new(2, 1), &tenants, &cfg);
        let b = run(&ClusterSpec::new(2, 2), &tenants, &cfg);
        assert_ne!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn utilization_is_bounded_and_positive() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(4, 11),
            &[mlp0_tenant(
                200_000.0,
                BatchPolicy::Fixed { batch: 200 },
                20_000,
            )],
            &cfg,
        );
        for d in &r.dies {
            assert!(
                d.utilization > 0.0 && d.utilization <= 1.0,
                "{}",
                d.utilization
            );
        }
    }

    #[test]
    fn round_robin_balances_batches() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(4, 3).with_dispatch(Dispatch::RoundRobin),
            &[mlp0_tenant(
                150_000.0,
                BatchPolicy::Fixed { batch: 100 },
                20_000,
            )],
            &cfg,
        );
        let max = r.dies.iter().map(|d| d.batches).max().unwrap();
        let min = r.dies.iter().map(|d| d.batches).min().unwrap();
        assert!(max - min <= 2, "round robin should balance: {max} vs {min}");
    }

    #[test]
    fn higher_priority_tenant_sees_tighter_tail_under_contention() {
        // Two identical tenants drive 2 dies near saturation; the
        // high-priority tenant wins contended dies and keeps its tail.
        let cfg = TpuConfig::paper();
        let mk = |prio: u8| {
            mlp0_tenant(110_000.0, BatchPolicy::Fixed { batch: 128 }, 20_000)
                .with_priority(prio)
                .named(if prio > 1 { "hi" } else { "lo" })
        };
        let r = run(&ClusterSpec::new(2, 19), &[mk(9), mk(1)], &cfg);
        let hi = &r.tenants[0];
        let lo = &r.tenants[1];
        assert!(
            hi.p99_ms <= lo.p99_ms,
            "priority should not hurt the tail: hi {} vs lo {}",
            hi.p99_ms,
            lo.p99_ms
        );
    }

    #[test]
    fn bursty_arrivals_inflate_the_tail() {
        let cfg = TpuConfig::paper();
        let steady = mlp0_tenant(80_000.0, BatchPolicy::Fixed { batch: 128 }, 20_000);
        let mut bursty = steady.clone();
        bursty.arrivals = ArrivalProcess::Bursty {
            rate_rps: 80_000.0,
            burst_factor: 4.0,
            period_ms: 20.0,
            duty: 0.2,
        };
        let rs = run(&ClusterSpec::new(1, 5), &[steady], &cfg);
        let rb = run(&ClusterSpec::new(1, 5), &[bursty], &cfg);
        assert!(
            rb.tenants[0].p99_ms > rs.tenants[0].p99_ms,
            "bursts must stretch the tail: {} vs {}",
            rb.tenants[0].p99_ms,
            rs.tenants[0].p99_ms
        );
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_panics() {
        let cfg = TpuConfig::paper();
        let _ = run(
            &ClusterSpec {
                dies: 0,
                dispatch: Dispatch::RoundRobin,
                seed: 1,
            },
            &[mlp0_tenant(1000.0, BatchPolicy::Fixed { batch: 1 }, 500)],
            &cfg,
        );
    }
}
