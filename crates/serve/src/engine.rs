//! The discrete-event, multi-tenant serving engine for one host.
//!
//! Generalizes the closed-form serving models of `tpu_platforms`
//! (`queue_sim`, `batching`, `server`) into one seeded scheduler:
//! Poisson (or bursty) request streams per tenant, policy-driven batch
//! formation, priority admission onto a pool of accelerator dies, and
//! per-request end-to-end latency accounting. With a single tenant,
//! a [`crate::policy::BatchPolicy::Fixed`] policy and one die, the engine reproduces
//! `queue_sim::simulate` exactly (same seed, same arrival stream, same
//! dispatch instants) — the integration tests pin that equivalence.
//!
//! Since the fleet refactor, this module is a thin orchestration layer:
//! the host state machine lives in [`crate::host::HostCore`], the event
//! queue in [`crate::sim`], and arrival generation in
//! [`crate::workload`] — the engine pulls timestamps from a boxed
//! [`ArrivalSource`] per tenant and never looks at the stream's shape
//! (Poisson, bursty, diurnal, or trace replay all plug in). `run` wires
//! one host to its own queue and locally-generated arrivals;
//! `tpu_cluster::run_fleet` wires many hosts to one shared queue with
//! front-end routing. Everything is deterministic from
//! [`ClusterSpec::seed`]: arrival streams are per-tenant seeded RNGs
//! (stream `i` = [`crate::sim::stream_seed`] of the master seed), ties
//! in the event queue break by schedule order, and die selection is a
//! pure function of engine state.

use crate::event::{Event, EventQueue};
use crate::host::{HostCore, HostEvent};
use crate::report::ServeReport;
use crate::sim;
use crate::tenant::TenantSpec;
use crate::workload::ArrivalSource;
use serde::{Deserialize, Serialize};
use tpu_core::TpuConfig;
pub use tpu_platforms::server::Dispatch;
use tpu_telemetry::{HostProbe, MetricsRecorder, RequestProbe, RunTelemetry};

impl From<HostEvent> for Event {
    fn from(e: HostEvent) -> Event {
        match e {
            HostEvent::Timer { slot, generation } => Event::Timer {
                tenant: slot,
                generation,
            },
            // Single-host runs never fail a die, so the generation is
            // always 0 and the serve-level event needn't carry it.
            HostEvent::DieFree { die, .. } => Event::DieFree { die },
            HostEvent::WeightSwap { die } => Event::WeightSwap { die },
        }
    }
}

/// The die pool the tenants share.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of accelerator dies behind the host.
    pub dies: usize,
    /// How ready batches are routed to free dies.
    pub dispatch: Dispatch,
    /// Master seed; every stochastic stream derives from it.
    pub seed: u64,
}

impl ClusterSpec {
    /// A pool of `dies` dies with least-loaded dispatch.
    pub fn new(dies: usize, seed: u64) -> Self {
        ClusterSpec {
            dies,
            dispatch: Dispatch::LeastLoaded,
            seed,
        }
    }

    /// Select the dispatch discipline.
    pub fn with_dispatch(mut self, dispatch: Dispatch) -> Self {
        self.dispatch = dispatch;
        self
    }
}

/// Run the serving simulation to completion and report.
///
/// # Panics
///
/// Panics on a degenerate setup: no dies, no tenants, a tenant with no
/// requests, or a nonpositive arrival rate.
pub fn run(cluster: &ClusterSpec, tenants: &[TenantSpec], cfg: &TpuConfig) -> ServeReport {
    run_telemetry(cluster, tenants, cfg, &mut RunTelemetry::off())
}

/// [`run`] with telemetry instruments attached (see
/// [`tpu_telemetry::RunTelemetry`]). The instruments only observe —
/// they never schedule events or draw from an RNG — so the returned
/// report is bit-identical to the plain [`run`]'s; with every
/// instrument `None` this *is* [`run`].
///
/// # Panics
///
/// As [`run`].
pub fn run_telemetry(
    cluster: &ClusterSpec,
    tenants: &[TenantSpec],
    cfg: &TpuConfig,
    tel: &mut RunTelemetry,
) -> ServeReport {
    assert!(cluster.dies > 0, "need at least one die");
    assert!(!tenants.is_empty(), "need at least one tenant");

    let mut host = HostCore::new(cluster.dies, cluster.dispatch, cluster.seed);
    let mut sources: Vec<Box<dyn ArrivalSource>> = tenants
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            assert!(spec.requests > 0, "tenant {} has no requests", spec.name);
            host.add_slot(spec.clone(), spec.effective_curve(cfg));
            // Tenant 0 shares the master seed so a single-tenant run
            // reproduces queue_sim's arrival stream bit for bit.
            spec.arrivals.source(
                &spec.name,
                spec.requests,
                sim::stream_seed(cluster.seed, i as u64),
            )
        })
        .collect();
    if tel.tracer.is_some() {
        host.set_probe(HostProbe::new(0, "host 0", cluster.dies));
    }
    if tel.requests.is_some() {
        host.set_request_probe(RequestProbe::new(0));
    }

    let mut q = EventQueue::new();
    for (i, s) in sources.iter_mut().enumerate() {
        let at = s
            .next_arrival_ms(0.0)
            .expect("a source emits at least one arrival");
        q.schedule(at, Event::Arrival { tenant: i });
    }

    // Per-event-type tallies for the engine profile (plain adds, no
    // branches; folded into `tel.profile` after the loop).
    let mut counts = [0u64; 4];
    let mut events_processed = 0u64;
    while let Some((now, event)) = q.pop() {
        events_processed += 1;
        if let Some(m) = tel.metrics.as_mut() {
            if m.due(now) {
                let t = m.advance(now);
                sample_host(m, t, now, &host, tenants);
            }
        }
        if let Some(mon) = tel.monitor.as_mut() {
            if mon.due(now) {
                let t = mon.advance(now);
                host_gauges(now, &host, tenants, &mut |name, v| mon.record(&name, v));
                mon.close_sample(t);
            }
        }
        match event {
            Event::Arrival { tenant } => {
                counts[0] += 1;
                host.enqueue(tenant, now);
                match sources[tenant].next_arrival_ms(now) {
                    Some(at) => q.schedule(at, Event::Arrival { tenant }),
                    None => host.set_draining(tenant, true),
                }
                host.after_arrival(tenant, now, &mut |at, e| q.schedule(at, e.into()));
            }
            Event::Timer { tenant, generation } => {
                counts[1] += 1;
                if !host.on_timer(tenant, generation) {
                    continue; // stale timer; the queue changed since
                }
            }
            Event::DieFree { die } => {
                counts[2] += 1;
                let done = host.on_die_free(die, 0);
                if let Some(m) = tel.metrics.as_mut() {
                    if let Some(done) = done {
                        // The batch's latencies were just committed at
                        // the end of the slot's buffer; feed them to the
                        // per-tenant sketch (slot index == tenant index).
                        let from = host.latency_count(done.slot) - done.completions;
                        let series = format!("latency/{}", tenants[done.slot].name);
                        for l in host.slot_latencies_from(done.slot, from) {
                            m.observe(&series, l);
                        }
                    }
                }
                if let Some(mon) = tel.monitor.as_mut() {
                    if let Some(done) = done {
                        let spec = &tenants[done.slot];
                        let from = host.latency_count(done.slot) - done.completions;
                        for l in host.slot_latencies_from(done.slot, from) {
                            mon.observe_latency(&spec.name, l, spec.slo_ms);
                        }
                        mon.observe_service(
                            &spec.name,
                            0,
                            die,
                            done.end_ms - done.start_ms - done.swap_ms,
                            done.completions,
                        );
                    }
                }
            }
            Event::WeightSwap { die } => {
                counts[3] += 1;
                // Bookkeeping only (the die stays busy until DieFree);
                // fires only when slots carry weight identities.
                host.on_weight_swap(die);
                continue;
            }
        }

        // Any event can unblock a dispatch: a batch may have become
        // ready (arrival/timer) or capacity may have appeared (die free).
        host.try_dispatch(now, &mut |at, e| q.schedule(at, e.into()));
    }

    for (i, s) in sources.iter().enumerate() {
        assert!(
            s.remaining() == 0 && host.outstanding(i) == 0,
            "tenant {i} finished with work left (engine bug)"
        );
        assert_eq!(
            host.latency_count(i),
            tenants[i].requests,
            "tenant {i} lost requests (engine bug)"
        );
    }

    if let Some(tr) = tel.tracer.as_mut() {
        if let Some(p) = host.take_probe() {
            tr.absorb(p.into_tracer());
        }
    }
    if let Some(log) = tel.requests.as_mut() {
        if let Some(p) = host.take_request_probe() {
            log.absorb(p);
        }
    }
    if let Some(m) = tel.metrics.as_mut() {
        // The final partial interval's latency percentiles.
        m.flush_sketches(host.makespan_ms());
    }
    if let Some(mon) = tel.monitor.as_mut() {
        mon.finish();
    }
    if let Some(pr) = tel.profile.as_mut() {
        pr.event_counts = [
            ("arrival", counts[0]),
            ("timer", counts[1]),
            ("die-free", counts[2]),
            ("weight-swap", counts[3]),
        ]
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
        pr.wheel = q.wheel_profile();
    }

    host.report(host.makespan_ms(), events_processed)
}

/// Emit one cadence sample's host gauges (state as of `now`):
/// per-tenant queue depth and mean batch occupancy, per-die
/// utilization, the host's raw busy-time, and the count of dies
/// mid-swap. Shared by the metrics recorder and the health monitor so
/// an offline monitor replay from the metrics artifact sees exactly
/// the gauge values the online monitor saw.
fn host_gauges(
    now: f64,
    host: &HostCore,
    tenants: &[TenantSpec],
    emit: &mut dyn FnMut(String, f64),
) {
    for (i, spec) in tenants.iter().enumerate() {
        emit(format!("queued/{}", spec.name), host.queued(i) as f64);
        let batches = host.slot_batches(i);
        if batches > 0 {
            emit(
                format!("batch_mean/{}", spec.name),
                host.slot_dispatched(i) as f64 / batches as f64,
            );
        }
    }
    for d in 0..host.die_count() {
        let util = if now > 0.0 {
            (host.die_busy_ms(d) / now).min(1.0)
        } else {
            0.0
        };
        emit(format!("util/die{d}"), util);
    }
    emit("busy/host0".to_string(), host.busy_ms());
    let backlog: usize = (0..host.slot_count()).map(|s| host.outstanding(s)).sum();
    emit("backlog/host0".to_string(), backlog as f64);
    emit("pending_swaps".to_string(), host.pending_swaps() as f64);
}

/// Record one cadence sample of the host probe series at stamp `t`.
fn sample_host(m: &mut MetricsRecorder, t: f64, now: f64, host: &HostCore, tenants: &[TenantSpec]) {
    host_gauges(now, host, tenants, &mut |name, v| m.record(&name, t, v));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BatchPolicy;
    use crate::service::ServiceCurve;
    use crate::tenant::ArrivalProcess;

    fn mlp0_tenant(rate: f64, policy: BatchPolicy, requests: usize) -> TenantSpec {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: rate },
            policy,
            7.0,
            requests,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4())
    }

    #[test]
    fn serves_every_request_exactly_once() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(2, 42),
            &[
                mlp0_tenant(50_000.0, BatchPolicy::Fixed { batch: 64 }, 5_000),
                mlp0_tenant(
                    20_000.0,
                    BatchPolicy::Timeout {
                        max_batch: 64,
                        t_max_ms: 2.0,
                    },
                    3_000,
                ),
            ],
            &cfg,
        );
        assert_eq!(r.tenants[0].requests, 5_000);
        assert_eq!(r.tenants[1].requests, 3_000);
        assert_eq!(r.total_requests(), 8_000);
        let batch_total: usize = r.dies.iter().map(|d| d.batches).sum();
        assert_eq!(
            batch_total,
            r.tenants.iter().map(|t| t.batches).sum::<usize>()
        );
    }

    #[test]
    fn same_seed_same_report() {
        let cfg = TpuConfig::paper();
        let spec = ClusterSpec::new(4, 7);
        let tenants = [
            mlp0_tenant(100_000.0, BatchPolicy::Fixed { batch: 128 }, 10_000),
            mlp0_tenant(
                10_000.0,
                BatchPolicy::Timeout {
                    max_batch: 200,
                    t_max_ms: 1.5,
                },
                2_000,
            ),
        ];
        let a = run(&spec, &tenants, &cfg);
        let b = run(&spec, &tenants, &cfg);
        assert_eq!(
            format!("{a}"),
            format!("{b}"),
            "seeded runs must be bit-identical"
        );
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = TpuConfig::paper();
        let tenants = [mlp0_tenant(
            100_000.0,
            BatchPolicy::Fixed { batch: 128 },
            5_000,
        )];
        let a = run(&ClusterSpec::new(2, 1), &tenants, &cfg);
        let b = run(&ClusterSpec::new(2, 2), &tenants, &cfg);
        assert_ne!(format!("{a}"), format!("{b}"));
    }

    #[test]
    fn utilization_is_bounded_and_positive() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(4, 11),
            &[mlp0_tenant(
                200_000.0,
                BatchPolicy::Fixed { batch: 200 },
                20_000,
            )],
            &cfg,
        );
        for d in &r.dies {
            assert!(
                d.utilization > 0.0 && d.utilization <= 1.0,
                "{}",
                d.utilization
            );
        }
    }

    #[test]
    fn round_robin_balances_batches() {
        let cfg = TpuConfig::paper();
        let r = run(
            &ClusterSpec::new(4, 3).with_dispatch(Dispatch::RoundRobin),
            &[mlp0_tenant(
                150_000.0,
                BatchPolicy::Fixed { batch: 100 },
                20_000,
            )],
            &cfg,
        );
        let max = r.dies.iter().map(|d| d.batches).max().unwrap();
        let min = r.dies.iter().map(|d| d.batches).min().unwrap();
        assert!(max - min <= 2, "round robin should balance: {max} vs {min}");
    }

    #[test]
    fn higher_priority_tenant_sees_tighter_tail_under_contention() {
        // Two identical tenants drive 2 dies near saturation; the
        // high-priority tenant wins contended dies and keeps its tail.
        let cfg = TpuConfig::paper();
        let mk = |prio: u8| {
            mlp0_tenant(110_000.0, BatchPolicy::Fixed { batch: 128 }, 20_000)
                .with_priority(prio)
                .named(if prio > 1 { "hi" } else { "lo" })
        };
        let r = run(&ClusterSpec::new(2, 19), &[mk(9), mk(1)], &cfg);
        let hi = &r.tenants[0];
        let lo = &r.tenants[1];
        assert!(
            hi.p99_ms <= lo.p99_ms,
            "priority should not hurt the tail: hi {} vs lo {}",
            hi.p99_ms,
            lo.p99_ms
        );
    }

    #[test]
    fn bursty_arrivals_inflate_the_tail() {
        let cfg = TpuConfig::paper();
        let steady = mlp0_tenant(80_000.0, BatchPolicy::Fixed { batch: 128 }, 20_000);
        let mut bursty = steady.clone();
        bursty.arrivals = ArrivalProcess::Bursty {
            rate_rps: 80_000.0,
            burst_factor: 4.0,
            period_ms: 20.0,
            duty: 0.2,
        };
        let rs = run(&ClusterSpec::new(1, 5), &[steady], &cfg);
        let rb = run(&ClusterSpec::new(1, 5), &[bursty], &cfg);
        assert!(
            rb.tenants[0].p99_ms > rs.tenants[0].p99_ms,
            "bursts must stretch the tail: {} vs {}",
            rb.tenants[0].p99_ms,
            rs.tenants[0].p99_ms
        );
    }

    /// The telemetry contract at engine level: a fully-instrumented run
    /// returns the same report as the plain one, the profile's event
    /// tally matches `events_processed`, and the request spans cover
    /// every request.
    #[test]
    fn telemetry_observes_without_perturbing() {
        use tpu_telemetry::{MetricsConfig, TelemetryConfig};
        let cfg = TpuConfig::paper();
        let spec = ClusterSpec::new(2, 42);
        let tenants = [mlp0_tenant(
            50_000.0,
            BatchPolicy::Timeout {
                max_batch: 64,
                t_max_ms: 2.0,
            },
            2_000,
        )];
        let plain = run(&spec, &tenants, &cfg);
        let mut tel = RunTelemetry::from_config(&TelemetryConfig {
            trace: true,
            metrics: Some(MetricsConfig::default()),
            profile: true,
            requests: true,
        });
        let instrumented = run_telemetry(&spec, &tenants, &cfg, &mut tel);
        assert_eq!(
            format!("{plain}"),
            format!("{instrumented}"),
            "instruments must not change the report"
        );
        let profile = tel.profile.expect("profile filled");
        assert_eq!(profile.total_events(), instrumented.events_processed);
        assert!(profile.wheel.expect("wheel backend").advances > 0);
        let tracer = tel.tracer.expect("tracer filled");
        let requests = tracer
            .summary()
            .into_iter()
            .find(|r| r.cat == "request" && r.name == "MLP0")
            .expect("request spans recorded");
        assert_eq!(requests.count as usize, tenants[0].requests);
        let metrics = tel.metrics.expect("metrics filled");
        assert!(metrics.points("util/die0").len() > 1);
        // The latency sketch saw every request and flushed percentile
        // points on the cadence.
        let sketch = metrics.sketch("latency/MLP0").expect("sketch filled");
        assert_eq!(sketch.count() as usize, tenants[0].requests);
        assert!(!metrics.points("latency/MLP0.p99").is_empty());
        // The request log holds one decomposed record per request, with
        // component sums telling the same story as the report.
        let log = tel.requests.expect("request log filled");
        assert_eq!(log.len(), tenants[0].requests);
        let sum: f64 = log.records().iter().map(|r| r.latency_ms()).sum();
        let report_sum = instrumented.tenants[0].mean_ms * tenants[0].requests as f64;
        assert!(
            (sum - report_sum).abs() < 1e-6 * report_sum.max(1.0),
            "request-log latency sum {sum} vs report {report_sum}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_panics() {
        let cfg = TpuConfig::paper();
        let _ = run(
            &ClusterSpec {
                dies: 0,
                dispatch: Dispatch::RoundRobin,
                seed: 1,
            },
            &[mlp0_tenant(1000.0, BatchPolicy::Fixed { batch: 1 }, 500)],
            &cfg,
        );
    }
}
