//! # tpu-serve — a seeded, discrete-event, multi-tenant serving runtime
//!
//! The paper's serving argument (Sections 2 and 8) is about the *tail*:
//! the 99th-percentile SLO — not throughput — dictates batch size, and
//! deterministic execution wins the tail. The analytic models in
//! `tpu_platforms` demonstrate that with closed forms; this crate turns
//! it into an actual scheduler:
//!
//! * [`sim`] — the extracted event core: a generic binary-heap event
//!   queue over simulated milliseconds plus seeded RNG-stream plumbing,
//!   shared with `tpu_cluster` (no wall clock, no threads, bit-identical
//!   results from a seed);
//! * [`event`] — the host-level event vocabulary instantiating [`sim`];
//! * [`host`] — one host as an externally-clocked state machine
//!   ([`host::HostCore`]): queues, timers, dies, committed latencies —
//!   reused verbatim by the fleet simulator;
//! * [`policy`] — batch formation: fixed-size, timeout-bounded
//!   (dispatch when full *or* after `t_max` ms), and SLO-adaptive;
//! * [`tenant`] — multi-tenant admission: the six Table 1 workloads as
//!   tenants with per-tenant arrival processes, priorities, and latency
//!   targets;
//! * [`weights`] — the weight-memory subsystem: per-die resident-model
//!   state against the 8 GiB DDR3 budget and the deterministic
//!   DDR3-bandwidth-derived weight-swap cost charged when a die
//!   changes models (multi-model co-location; opt-in, used by
//!   `tpu_cluster`);
//! * [`workload`] — the pluggable arrival layer: a trait-based
//!   [`workload::ArrivalSource`] (seeded, deterministic, resettable)
//!   with Poisson, bursty/MMPP, piecewise-linear diurnal, and
//!   file-backed trace-replay implementations, plus the versioned
//!   `tpu-trace` record/replay format shared with `tpu_cluster`;
//! * [`service`] — per-batch service times calibrated from the Section 7
//!   analytic model and Table 5 host overheads, not hardcoded constants;
//! * [`engine`] — the scheduler itself: policy-driven batch formation,
//!   priority admission onto a shared die pool, round-robin or
//!   least-loaded multi-die dispatch (subsuming
//!   `tpu_platforms::server`);
//! * [`report`] — per-tenant p50/p95/p99, SLO attainment, and per-die
//!   utilization, renderable as text or JSON;
//! * [`scenario`] — named end-to-end scenarios (`mlp0-burst`,
//!   `mixed-tenants`, `cnn-batch-sweep`, `fixed-vs-timeout`) behind the
//!   `tpu_serve` CLI.
//!
//! With one tenant, a fixed batch, and one die, the engine reproduces
//! `tpu_platforms::queue_sim::simulate` exactly — the integration tests
//! pin that equivalence, so the event-driven generalization stays
//! anchored to the calibrated Table 4 models.
//!
//! ```
//! use tpu_serve::{run, BatchPolicy, ClusterSpec, ServiceCurve, TenantSpec};
//! use tpu_serve::tenant::ArrivalProcess;
//!
//! let cfg = tpu_core::TpuConfig::paper();
//! let tenant = TenantSpec::new(
//!     "MLP0",
//!     ArrivalProcess::Poisson { rate_rps: 120_000.0 },
//!     BatchPolicy::Timeout { max_batch: 200, t_max_ms: 2.0 },
//!     7.0,
//!     20_000,
//! )
//! .with_curve(ServiceCurve::tpu_mlp0_table4());
//! let report = run(&ClusterSpec::new(2, 42), &[tenant], &cfg);
//! assert!(report.tenant("MLP0").unwrap().p99_ms < 7.0);
//! ```

#![warn(missing_docs)]

pub mod engine;
pub mod event;
pub mod host;
pub mod policy;
pub mod report;
pub mod scenario;
pub mod service;
pub mod sim;
pub mod tenant;
pub mod weights;
pub mod workload;

pub use engine::{run, run_telemetry, ClusterSpec, Dispatch};
pub use host::{CompletedBatch, HostCore, HostEvent};
pub use policy::BatchPolicy;
pub use report::{DieReport, ServeReport, TenantReport};
pub use scenario::{all_scenarios, scenario_by_name, Scenario, ScenarioRun};
pub use service::ServiceCurve;
pub use tenant::{ArrivalProcess, TenantSpec};
pub use weights::{ModelWeights, WeightSet};
pub use workload::{ArrivalSource, DiurnalProfile, Trace, TraceTenant};
