//! The pluggable workload layer: who sends traffic, in what shape.
//!
//! The paper's latency-bound analysis (Sections 2 and 8) is grounded in
//! production-shaped request streams; this module is where those shapes
//! live. An [`ArrivalSource`] is a seeded, deterministic, resettable
//! generator of one tenant's arrival timestamps, pulled one arrival at
//! a time by the single-host engine ([`crate::engine::run`]) and the
//! fleet front-end (`tpu_cluster::run_fleet`) alike:
//!
//! * [`PoissonSource`] — stationary Poisson arrivals by inversion
//!   sampling (one uniform draw per arrival);
//! * [`BurstySource`] — an on/off modulated Poisson process (MMPP):
//!   `burst_factor`× the base rate for the duty fraction of every
//!   period, a complementary trickle otherwise;
//! * [`DiurnalSource`] — a cyclic piecewise-linear rate profile
//!   ([`DiurnalProfile`]), the production diurnal curve in miniature;
//! * [`TraceSource`] — file-backed replay of recorded, per-tenant
//!   timestamped arrivals ([`Trace`]).
//!
//! [`ArrivalProcess`] is the serializable *description* of a stream —
//! scenarios and CLIs carry it around, and [`ArrivalProcess::source`]
//! instantiates the matching source.
//!
//! # Determinism and the record/replay contract
//!
//! Arrival generation is **open loop**: the next timestamp depends only
//! on the previous one, never on simulation state. Both engines exploit
//! this by always pulling with `now_ms` equal to the previous arrival's
//! timestamp, which means a stream can be materialized *outside* any
//! simulation ([`record_stream`]) and the simulation replayed from the
//! recording with bit-identical results. [`Trace::record`] captures
//! every tenant of a scenario this way (tenant `i` draws from RNG
//! stream [`crate::sim::stream_seed`]`(seed, i)`, exactly as the
//! engines seed them), and replaying the trace through either
//! `tpu_serve` or a 1-host `tpu_cluster` reproduces the synthetic run
//! bit for bit — the `trace_replay` integration tests pin it.
//!
//! # Trace file format (`tpu-trace`, version 1)
//!
//! A trace is one JSON document:
//!
//! ```json
//! {
//!   "format": "tpu-trace",
//!   "version": 1,
//!   "seed": "42",
//!   "source": "fleet-steady/steady",
//!   "tenants": [
//!     { "name": "MLP0", "arrivals_ms": [0.0193, 0.0236, 0.031] }
//!   ]
//! }
//! ```
//!
//! * `format` / `version` — the header; loaders reject anything else.
//! * `seed` / `source` — provenance only (the master seed and a label
//!   for the run that was recorded); replay never reads them.
//! * `tenants[*].name` — matched against [`TenantSpec::name`] at replay
//!   time; a trace may carry more tenants than a run uses.
//! * `tenants[*].arrivals_ms` — absolute simulated timestamps in
//!   milliseconds: finite, non-negative, non-decreasing.
//!
//! Timestamps are rendered with Rust's shortest-roundtrip `f64`
//! formatting and parsed with `str::parse`, so a serialize → parse
//! cycle is bit-exact — the determinism contract is that **replaying a
//! trace schedules every arrival at the recorded bit pattern**, no
//! accumulation, no rounding.

use crate::sim;
use crate::tenant::TenantSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use serde_json::Value;
use std::fmt;

/// The trace format name expected in the file header.
pub const TRACE_FORMAT: &str = "tpu-trace";
/// The trace format version this build reads and writes.
pub const TRACE_VERSION: u64 = 1;

/// A seeded, deterministic, resettable generator of one tenant's
/// arrival timestamps.
///
/// Sources are **pull-based and open loop**: [`Self::next_arrival_ms`]
/// is always called with the previous arrival's timestamp (or `0.0`
/// before the first), and the returned stream is a pure function of the
/// source's construction — which is what makes record/replay exact (see
/// the module docs).
pub trait ArrivalSource: fmt::Debug + Send {
    /// Emit the next arrival's absolute timestamp, given the previous
    /// arrival's timestamp `now_ms` (`0.0` before the first). Returns
    /// `None` once the stream is exhausted.
    fn next_arrival_ms(&mut self, now_ms: f64) -> Option<f64>;

    /// Arrivals not yet emitted.
    fn remaining(&self) -> usize;

    /// Arrivals the full stream will emit.
    fn total(&self) -> usize;

    /// Rewind to the freshly-constructed state (same seed, same
    /// stream).
    fn reset(&mut self);
}

/// Materialize a source's full stream without running a simulation.
///
/// Resets the source, then pulls arrivals feeding each timestamp back
/// as the next `now_ms` — exactly the call pattern of both engines, so
/// the recorded stream equals what a simulation would generate. The
/// source is left exhausted; `reset` it to reuse.
pub fn record_stream(source: &mut dyn ArrivalSource) -> Vec<f64> {
    source.reset();
    let mut out = Vec::with_capacity(source.remaining());
    let mut now = 0.0;
    while let Some(t) = source.next_arrival_ms(now) {
        out.push(t);
        now = t;
    }
    out
}

/// How many `ln(u)` values [`Inversion`] pre-draws per refill. The
/// uniform draws are rate-independent, so batching them changes neither
/// the RNG consumption order nor any emitted timestamp — it only
/// amortizes the RNG and `ln` calls across arrivals.
const LN_BATCH: usize = 256;

/// The shared inversion sampler: exponential gaps at the process's
/// instantaneous rate, one uniform draw per arrival.
///
/// Two hot-path optimizations, both bit-identical to the naive
/// one-draw-one-divide form: the `-(1000.0 / rate)` scale is cached
/// and only recomputed when the instantaneous rate changes (exact
/// `f64` comparison — stationary and piecewise-constant processes pay
/// one divide per segment instead of one per arrival), and `ln(u)`
/// values are pre-drawn in blocks of [`LN_BATCH`] (uniform draws do
/// not depend on the rate, so the RNG stream is consumed in exactly
/// the original order).
#[derive(Debug, Clone)]
struct Inversion {
    total: usize,
    emitted: usize,
    seed: u64,
    rng: StdRng,
    /// Pre-drawn `ln(u)` values in draw order; `ln_next` indexes the
    /// next unconsumed entry.
    ln_buf: Vec<f64>,
    ln_next: usize,
    /// The rate that produced `neg_scale`; `NaN` until the first draw.
    cached_rate: f64,
    /// `-(1000.0 / cached_rate)`, hoisted out of the per-draw path.
    neg_scale: f64,
}

impl Inversion {
    fn new(requests: usize, seed: u64) -> Self {
        assert!(requests > 0, "arrival stream needs at least one request");
        Inversion {
            total: requests,
            emitted: 0,
            seed,
            rng: StdRng::seed_from_u64(seed),
            ln_buf: Vec::new(),
            ln_next: 0,
            cached_rate: f64::NAN,
            neg_scale: f64::NAN,
        }
    }

    /// Draw the next arrival after `now_ms` at instantaneous `rate`
    /// requests/second.
    fn next(&mut self, now_ms: f64, rate: f64) -> Option<f64> {
        if self.emitted == self.total {
            return None;
        }
        self.emitted += 1;
        assert!(rate > 0.0, "arrival rate must stay positive");
        if rate != self.cached_rate {
            self.cached_rate = rate;
            self.neg_scale = -(1000.0 / rate);
        }
        if self.ln_next == self.ln_buf.len() {
            self.refill();
        }
        let ln_u = self.ln_buf[self.ln_next];
        self.ln_next += 1;
        Some(now_ms + self.neg_scale * ln_u)
    }

    /// Pre-draw `ln(u)` for the next block of arrivals. `emitted`
    /// already counts the arrival being drawn, so the outstanding
    /// budget includes it — the RNG is never advanced past what the
    /// stream will emit.
    fn refill(&mut self) {
        let n = (self.total - self.emitted + 1).min(LN_BATCH);
        self.ln_buf.clear();
        self.ln_next = 0;
        for _ in 0..n {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.ln_buf.push(u.ln());
        }
    }

    fn remaining(&self) -> usize {
        self.total - self.emitted
    }

    fn reset(&mut self) {
        self.emitted = 0;
        self.rng = StdRng::seed_from_u64(self.seed);
        self.ln_buf.clear();
        self.ln_next = 0;
        self.cached_rate = f64::NAN;
        self.neg_scale = f64::NAN;
    }
}

/// Stationary Poisson arrivals at a fixed mean rate.
#[derive(Debug, Clone)]
pub struct PoissonSource {
    rate_rps: f64,
    core: Inversion,
}

impl PoissonSource {
    /// A stream of `requests` arrivals at `rate_rps`, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive rate or zero requests.
    pub fn new(rate_rps: f64, requests: usize, seed: u64) -> Self {
        assert!(rate_rps > 0.0, "arrival rate must be positive");
        PoissonSource {
            rate_rps,
            core: Inversion::new(requests, seed),
        }
    }
}

impl ArrivalSource for PoissonSource {
    fn next_arrival_ms(&mut self, now_ms: f64) -> Option<f64> {
        self.core.next(now_ms, self.rate_rps)
    }
    fn remaining(&self) -> usize {
        self.core.remaining()
    }
    fn total(&self) -> usize {
        self.core.total
    }
    fn reset(&mut self) {
        self.core.reset();
    }
}

/// The instantaneous rate of an on/off (MMPP) process at `now_ms`.
fn bursty_rate(rate_rps: f64, burst_factor: f64, period_ms: f64, duty: f64, now_ms: f64) -> f64 {
    let phase = (now_ms / period_ms).fract();
    if phase < duty {
        rate_rps * burst_factor
    } else {
        // Complement keeps the long-run mean at rate_rps.
        let off = (1.0 - burst_factor * duty) / (1.0 - duty);
        rate_rps * off.max(0.0)
    }
}

/// An on/off modulated Poisson process: `burst_factor`× the base rate
/// for the first `duty` fraction of every `period_ms` window and a
/// complementary trickle for the rest, so the long-run mean stays
/// `rate_rps`.
#[derive(Debug, Clone)]
pub struct BurstySource {
    rate_rps: f64,
    burst_factor: f64,
    period_ms: f64,
    duty: f64,
    core: Inversion,
}

impl BurstySource {
    /// A stream of `requests` bursty arrivals, seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (see
    /// [`ArrivalProcess::validate`]).
    pub fn new(
        rate_rps: f64,
        burst_factor: f64,
        period_ms: f64,
        duty: f64,
        requests: usize,
        seed: u64,
    ) -> Self {
        ArrivalProcess::Bursty {
            rate_rps,
            burst_factor,
            period_ms,
            duty,
        }
        .validate();
        BurstySource {
            rate_rps,
            burst_factor,
            period_ms,
            duty,
            core: Inversion::new(requests, seed),
        }
    }
}

impl ArrivalSource for BurstySource {
    fn next_arrival_ms(&mut self, now_ms: f64) -> Option<f64> {
        let rate = bursty_rate(
            self.rate_rps,
            self.burst_factor,
            self.period_ms,
            self.duty,
            now_ms,
        );
        self.core.next(now_ms, rate)
    }
    fn remaining(&self) -> usize {
        self.core.remaining()
    }
    fn total(&self) -> usize {
        self.core.total
    }
    fn reset(&mut self) {
        self.core.reset();
    }
}

/// A cyclic piecewise-linear request-rate profile: the diurnal curve.
///
/// `points` are `(phase_ms, rate_rps)` knots over one period, sorted by
/// phase with the first knot pinned at phase 0; the rate interpolates
/// linearly between knots and wraps from the last knot back to the
/// first at the period boundary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiurnalProfile {
    /// Length of one cycle, ms.
    pub period_ms: f64,
    /// `(phase_ms, rate_rps)` knots (see type docs).
    pub points: Vec<(f64, f64)>,
}

impl DiurnalProfile {
    /// A validated profile.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive period, fewer than two knots, a first
    /// knot off phase 0, unsorted or out-of-range phases, or
    /// nonpositive rates.
    pub fn new(period_ms: f64, points: Vec<(f64, f64)>) -> Self {
        let p = DiurnalProfile { period_ms, points };
        p.validate();
        p
    }

    /// The simplest day/night cycle: a triangle wave from `trough_rps`
    /// at phase 0 up to `peak_rps` at half period and back.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < trough_rps <= peak_rps` and the period is
    /// positive.
    pub fn day_night(trough_rps: f64, peak_rps: f64, period_ms: f64) -> Self {
        assert!(
            trough_rps <= peak_rps,
            "trough must not exceed peak: {trough_rps} vs {peak_rps}"
        );
        DiurnalProfile::new(
            period_ms,
            vec![(0.0, trough_rps), (period_ms / 2.0, peak_rps)],
        )
    }

    /// Reject degenerate profiles up front.
    ///
    /// # Panics
    ///
    /// See [`Self::new`].
    pub fn validate(&self) {
        assert!(self.period_ms > 0.0, "diurnal period must be positive");
        assert!(
            self.points.len() >= 2,
            "diurnal profile needs at least two knots"
        );
        assert_eq!(
            self.points[0].0, 0.0,
            "the first diurnal knot must sit at phase 0"
        );
        for w in self.points.windows(2) {
            assert!(
                w[0].0 < w[1].0,
                "diurnal knot phases must increase: {} then {}",
                w[0].0,
                w[1].0
            );
        }
        let last = self.points.last().expect("nonempty");
        assert!(
            last.0 < self.period_ms,
            "diurnal knot phase {} must lie inside the period {}",
            last.0,
            self.period_ms
        );
        for &(phase, rate) in &self.points {
            assert!(
                rate > 0.0 && rate.is_finite(),
                "diurnal rate at phase {phase} must be positive and finite"
            );
        }
    }

    /// Instantaneous rate at simulated time `t_ms` (cyclic).
    pub fn rate_at(&self, t_ms: f64) -> f64 {
        let phase = t_ms.rem_euclid(self.period_ms);
        // Find the knot pair bracketing the phase; the last segment
        // wraps to the first knot at the period boundary.
        let n = self.points.len();
        for i in 0..n {
            let (p0, r0) = self.points[i];
            let (p1, r1) = if i + 1 < n {
                self.points[i + 1]
            } else {
                (self.period_ms, self.points[0].1)
            };
            if phase >= p0 && phase < p1 {
                let f = (phase - p0) / (p1 - p0);
                return r0 + (r1 - r0) * f;
            }
        }
        // phase == period_ms can only happen through float edge cases.
        self.points[0].1
    }

    /// The time-averaged rate over one period (trapezoid rule over the
    /// knots, including the wrap segment).
    pub fn mean_rate_rps(&self) -> f64 {
        let n = self.points.len();
        let mut area = 0.0;
        for i in 0..n {
            let (p0, r0) = self.points[i];
            let (p1, r1) = if i + 1 < n {
                self.points[i + 1]
            } else {
                (self.period_ms, self.points[0].1)
            };
            area += 0.5 * (r0 + r1) * (p1 - p0);
        }
        area / self.period_ms
    }
}

/// Arrivals following a [`DiurnalProfile`], sampled by inversion at the
/// instantaneous rate (the same approximation the bursty process uses:
/// each gap is exponential at the rate in force when it starts).
#[derive(Debug, Clone)]
pub struct DiurnalSource {
    profile: DiurnalProfile,
    core: Inversion,
}

impl DiurnalSource {
    /// A stream of `requests` arrivals along `profile`, seeded with
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate profile or zero requests.
    pub fn new(profile: DiurnalProfile, requests: usize, seed: u64) -> Self {
        profile.validate();
        DiurnalSource {
            profile,
            core: Inversion::new(requests, seed),
        }
    }
}

impl ArrivalSource for DiurnalSource {
    fn next_arrival_ms(&mut self, now_ms: f64) -> Option<f64> {
        let rate = self.profile.rate_at(now_ms);
        self.core.next(now_ms, rate)
    }
    fn remaining(&self) -> usize {
        self.core.remaining()
    }
    fn total(&self) -> usize {
        self.core.total
    }
    fn reset(&mut self) {
        self.core.reset();
    }
}

/// Replay of a recorded arrival stream: emits the stored timestamps in
/// order, no RNG involved.
#[derive(Debug, Clone)]
pub struct TraceSource {
    arrivals_ms: Vec<f64>,
    cursor: usize,
}

impl TraceSource {
    /// Replay the first `requests` timestamps of `arrivals_ms`.
    ///
    /// # Panics
    ///
    /// Panics on zero requests, a stream shorter than `requests`, or
    /// timestamps that are not finite, non-negative, and
    /// non-decreasing.
    pub fn new(mut arrivals_ms: Vec<f64>, requests: usize) -> Self {
        assert!(requests > 0, "arrival stream needs at least one request");
        assert!(
            requests <= arrivals_ms.len(),
            "replay wants {requests} arrivals but the trace holds only {}",
            arrivals_ms.len()
        );
        arrivals_ms.truncate(requests);
        validate_arrivals(&arrivals_ms);
        TraceSource {
            arrivals_ms,
            cursor: 0,
        }
    }
}

impl ArrivalSource for TraceSource {
    fn next_arrival_ms(&mut self, now_ms: f64) -> Option<f64> {
        let &t = self.arrivals_ms.get(self.cursor)?;
        assert!(
            t >= now_ms,
            "trace arrival {t} ms lies before the previous one at {now_ms} ms"
        );
        self.cursor += 1;
        Some(t)
    }
    fn remaining(&self) -> usize {
        self.arrivals_ms.len() - self.cursor
    }
    fn total(&self) -> usize {
        self.arrivals_ms.len()
    }
    fn reset(&mut self) {
        self.cursor = 0;
    }
}

/// Validate one recorded stream: finite, non-negative, non-decreasing.
///
/// # Panics
///
/// Panics on the first violation; [`check_arrivals`] is the fallible
/// twin used when parsing untrusted trace files.
fn validate_arrivals(arrivals_ms: &[f64]) {
    if let Err(e) = check_arrivals(arrivals_ms) {
        panic!("{e}");
    }
}

/// The fallible twin of [`validate_arrivals`].
fn check_arrivals(arrivals_ms: &[f64]) -> Result<(), String> {
    let mut prev = 0.0f64;
    for (i, &t) in arrivals_ms.iter().enumerate() {
        if !(t.is_finite() && t >= 0.0) {
            return Err(format!(
                "trace arrival {i} is not a finite non-negative timestamp: {t}"
            ));
        }
        if t < prev {
            return Err(format!(
                "trace arrivals must be non-decreasing: [{i}] = {t} after {prev}"
            ));
        }
        prev = t;
    }
    Ok(())
}

/// The serializable description of a tenant's request stream. Scenarios
/// and CLIs carry this; [`Self::source`] instantiates the matching
/// [`ArrivalSource`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Stationary Poisson arrivals at `rate_rps` requests/second.
    Poisson {
        /// Mean offered load, requests per second.
        rate_rps: f64,
    },
    /// An on/off modulated Poisson process: `burst_factor`× the base
    /// rate for the first `duty` fraction of every `period_ms` window,
    /// and a complementary trickle for the rest (the mean stays
    /// `rate_rps`).
    Bursty {
        /// Mean offered load, requests per second.
        rate_rps: f64,
        /// Rate multiplier during the on-phase (> 1).
        burst_factor: f64,
        /// Length of one on/off cycle, ms.
        period_ms: f64,
        /// Fraction of the period spent in the on-phase (0, 1).
        duty: f64,
    },
    /// A cyclic piecewise-linear rate profile (the diurnal curve).
    Diurnal {
        /// The rate profile.
        profile: DiurnalProfile,
    },
    /// Replay of a recorded stream carried inline.
    Recorded {
        /// Absolute arrival timestamps, ms (finite, non-negative,
        /// non-decreasing).
        arrivals_ms: Vec<f64>,
    },
    /// Replay of a recorded stream from a trace file; the tenant is
    /// matched by name at source-construction time.
    Trace {
        /// Path of a [`Trace`] file (see the module docs for the
        /// format).
        path: String,
    },
}

impl ArrivalProcess {
    /// Mean offered load in requests per second, when the process knows
    /// it analytically: `None` for a file-backed trace, the empirical
    /// mean for an inline recording.
    pub fn mean_rate_rps(&self) -> Option<f64> {
        match self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                Some(*rate_rps)
            }
            ArrivalProcess::Diurnal { profile } => Some(profile.mean_rate_rps()),
            ArrivalProcess::Recorded { arrivals_ms } => arrivals_ms
                .last()
                .filter(|&&end| end > 0.0)
                .map(|&end| arrivals_ms.len() as f64 / end * 1000.0),
            ArrivalProcess::Trace { .. } => None,
        }
    }

    /// Reject degenerate processes at admission time rather than
    /// mid-simulation.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive mean rate; for bursty processes on a
    /// nonpositive period, a duty outside (0, 1), a burst factor below
    /// 1, or `burst_factor * duty >= 1` (which would drive the
    /// off-phase rate to zero and stall the arrival stream); for
    /// diurnal processes on a degenerate profile; for recorded streams
    /// on empty or non-monotone timestamps; and for trace files on an
    /// empty path.
    pub fn validate(&self) {
        match self {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_ms,
                duty,
            } => {
                assert!(*rate_rps > 0.0, "arrival rate must be positive");
                assert!(*period_ms > 0.0, "burst period must be positive");
                assert!(
                    *duty > 0.0 && *duty < 1.0,
                    "burst duty must lie strictly inside (0, 1)"
                );
                assert!(*burst_factor >= 1.0, "burst factor must be at least 1");
                assert!(
                    burst_factor * duty < 1.0,
                    "burst_factor * duty must stay below 1, or the off-phase \
                     rate hits zero and the arrival stream stalls"
                );
            }
            ArrivalProcess::Diurnal { profile } => profile.validate(),
            ArrivalProcess::Recorded { arrivals_ms } => {
                assert!(!arrivals_ms.is_empty(), "recorded stream is empty");
                validate_arrivals(arrivals_ms);
            }
            ArrivalProcess::Trace { path } => {
                assert!(!path.is_empty(), "trace path is empty");
            }
        }
    }

    /// Instantaneous rate at simulated time `now_ms` for the
    /// rate-modulated (synthetic) processes.
    ///
    /// # Panics
    ///
    /// Panics for trace-backed processes, which have no analytic rate.
    pub fn rate_at(&self, now_ms: f64) -> f64 {
        match self {
            ArrivalProcess::Poisson { rate_rps } => *rate_rps,
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_ms,
                duty,
            } => bursty_rate(*rate_rps, *burst_factor, *period_ms, *duty, now_ms),
            ArrivalProcess::Diurnal { profile } => profile.rate_at(now_ms),
            ArrivalProcess::Recorded { .. } | ArrivalProcess::Trace { .. } => {
                panic!("trace-backed processes have no analytic rate")
            }
        }
    }

    /// Instantiate the source for `tenant`'s stream of `requests`
    /// arrivals, seeded with `seed` (derive per-tenant seeds via
    /// [`crate::sim::stream_seed`]).
    ///
    /// For trace-backed processes the first `requests` recorded
    /// arrivals replay (so scaled-down runs replay a prefix), `seed` is
    /// unused, and `tenant` selects the stream by name from the trace
    /// file.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate process, zero requests, an unreadable or
    /// malformed trace file, a trace that lacks `tenant`, or a trace
    /// shorter than `requests`.
    pub fn source(&self, tenant: &str, requests: usize, seed: u64) -> Box<dyn ArrivalSource> {
        self.validate();
        match self {
            ArrivalProcess::Poisson { rate_rps } => {
                Box::new(PoissonSource::new(*rate_rps, requests, seed))
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_ms,
                duty,
            } => Box::new(BurstySource::new(
                *rate_rps,
                *burst_factor,
                *period_ms,
                *duty,
                requests,
                seed,
            )),
            ArrivalProcess::Diurnal { profile } => {
                Box::new(DiurnalSource::new(profile.clone(), requests, seed))
            }
            ArrivalProcess::Recorded { arrivals_ms } => {
                Box::new(TraceSource::new(arrivals_ms.clone(), requests))
            }
            ArrivalProcess::Trace { path } => {
                let trace =
                    Trace::load(path).unwrap_or_else(|e| panic!("cannot load trace {path:?}: {e}"));
                let t = trace.tenant(tenant).unwrap_or_else(|| {
                    panic!(
                        "trace {path:?} has no tenant {tenant:?} (it has {:?})",
                        trace.tenants.iter().map(|t| &t.name).collect::<Vec<_>>()
                    )
                });
                Box::new(TraceSource::new(t.arrivals_ms.clone(), requests))
            }
        }
    }
}

/// One tenant's recorded stream inside a [`Trace`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceTenant {
    /// The tenant's display name ([`TenantSpec::name`]).
    pub name: String,
    /// Absolute arrival timestamps, ms.
    pub arrivals_ms: Vec<f64>,
}

/// A recorded workload: per-tenant timestamped arrival streams plus
/// provenance, serializable to the versioned `tpu-trace` JSON format
/// (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The master seed of the run that was recorded (provenance only).
    pub seed: u64,
    /// A human-readable label for what was recorded (provenance only).
    pub source: String,
    /// The recorded streams, in stream-index order.
    pub tenants: Vec<TraceTenant>,
}

impl Trace {
    /// Record the arrival streams `tenants` would generate under master
    /// seed `seed` — tenant `i` draws from RNG stream
    /// [`sim::stream_seed`]`(seed, i)`, exactly as [`crate::engine::run`]
    /// and `tpu_cluster::run_fleet` seed them — without running a
    /// simulation (arrival generation is open loop; see the module
    /// docs).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate tenant (no requests, invalid process).
    pub fn record(tenants: &[TenantSpec], seed: u64, source: &str) -> Trace {
        let recorded = tenants
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut src = spec.arrivals.source(
                    &spec.name,
                    spec.requests,
                    sim::stream_seed(seed, i as u64),
                );
                TraceTenant {
                    name: spec.name.clone(),
                    arrivals_ms: record_stream(src.as_mut()),
                }
            })
            .collect();
        Trace {
            seed,
            source: source.to_string(),
            tenants: recorded,
        }
    }

    /// Look a recorded stream up by tenant name.
    pub fn tenant(&self, name: &str) -> Option<&TraceTenant> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Rewrite `tenants` to replay this trace: each tenant's arrivals
    /// become its recorded stream (matched by name, carried inline) and
    /// its request count the stream length — or, when the spec already
    /// asks for fewer requests than the recording holds, a prefix of it
    /// (which, by the open-loop property, equals generating fewer
    /// requests from the recording seed). Scaled-down replays therefore
    /// compose with `--requests-scale`.
    ///
    /// # Panics
    ///
    /// Panics when the trace lacks one of the tenants; [`Self::covers`]
    /// is the fallible pre-check CLIs use.
    pub fn apply(&self, tenants: &mut [TenantSpec]) {
        for spec in tenants {
            let t = self.tenant(&spec.name).unwrap_or_else(|| {
                panic!(
                    "trace ({}) has no tenant {:?}; it has {:?}",
                    self.source,
                    spec.name,
                    self.tenants.iter().map(|t| &t.name).collect::<Vec<_>>()
                )
            });
            spec.requests = spec.requests.min(t.arrivals_ms.len());
            spec.arrivals = ArrivalProcess::Recorded {
                arrivals_ms: t.arrivals_ms.clone(),
            };
        }
    }

    /// Check that every name in `tenants` has a recorded stream;
    /// returns the first missing name otherwise.
    pub fn covers<'a>(&self, tenants: impl IntoIterator<Item = &'a str>) -> Result<(), String> {
        for name in tenants {
            if self.tenant(name).is_none() {
                return Err(format!(
                    "trace ({}) has no tenant {name:?}; it has {:?}",
                    self.source,
                    self.tenants.iter().map(|t| &t.name).collect::<Vec<_>>()
                ));
            }
        }
        Ok(())
    }

    /// The trace as a JSON document (the on-disk format).
    pub fn to_json(&self) -> Value {
        Value::object([
            (
                "format".to_string(),
                Value::String(TRACE_FORMAT.to_string()),
            ),
            ("version".to_string(), Value::Number(TRACE_VERSION as f64)),
            // A string, not a number: u64 seeds above 2^53 would lose
            // bits through the f64-backed JSON number representation.
            ("seed".to_string(), Value::String(self.seed.to_string())),
            ("source".to_string(), Value::String(self.source.clone())),
            (
                "tenants".to_string(),
                Value::Array(
                    self.tenants
                        .iter()
                        .map(|t| {
                            Value::object([
                                ("name".to_string(), Value::String(t.name.clone())),
                                (
                                    "arrivals_ms".to_string(),
                                    Value::Array(
                                        t.arrivals_ms.iter().map(|&x| Value::Number(x)).collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parse a trace from its JSON text.
    ///
    /// Errors on malformed JSON, a wrong format name, an unsupported
    /// version, or missing/ill-typed fields.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let doc = serde_json::from_str(text).map_err(|e| e.to_string())?;
        let obj = as_object(&doc, "trace document")?;
        let format = as_string(field(obj, "format")?, "format")?;
        if format != TRACE_FORMAT {
            return Err(format!("not a {TRACE_FORMAT} file (format {format:?})"));
        }
        let version = as_number(field(obj, "version")?, "version")?;
        if version != TRACE_VERSION as f64 {
            return Err(format!(
                "unsupported trace version {version} (this build reads {TRACE_VERSION})"
            ));
        }
        // Written as a string (u64-exact); a plain JSON number is also
        // accepted for hand-authored traces.
        let seed = match field(obj, "seed")? {
            Value::String(s) => s
                .parse::<u64>()
                .map_err(|_| format!("seed {s:?} is not a u64"))?,
            Value::Number(n) => *n as u64,
            _ => return Err("seed must be a string or number".to_string()),
        };
        let source = as_string(field(obj, "source")?, "source")?.to_string();
        let Value::Array(items) = field(obj, "tenants")? else {
            return Err("`tenants` must be an array".to_string());
        };
        let mut tenants = Vec::with_capacity(items.len());
        for item in items {
            let t = as_object(item, "tenant entry")?;
            let name = as_string(field(t, "name")?, "tenant name")?.to_string();
            let Value::Array(raw) = field(t, "arrivals_ms")? else {
                return Err(format!("tenant {name:?}: `arrivals_ms` must be an array"));
            };
            let mut arrivals_ms = Vec::with_capacity(raw.len());
            for v in raw {
                arrivals_ms.push(as_number(v, "arrival timestamp")?);
            }
            if arrivals_ms.is_empty() {
                return Err(format!("tenant {name:?}: recorded stream is empty"));
            }
            check_arrivals(&arrivals_ms).map_err(|e| format!("tenant {name:?}: {e}"))?;
            tenants.push(TraceTenant { name, arrivals_ms });
        }
        Ok(Trace {
            seed,
            source,
            tenants,
        })
    }

    /// Import an external CSV trace into `tpu-trace` v1.
    ///
    /// Each non-empty row is `timestamp,tenant`: an absolute arrival
    /// timestamp in milliseconds and the tenant name it belongs to.
    /// A leading `timestamp,tenant` header row is skipped. Tenants
    /// appear in the output in first-appearance order; each tenant's
    /// arrivals are stably sorted by timestamp (external traces are
    /// usually globally time-ordered, which per-tenant order survives,
    /// but row order within a tenant need not be monotone). The
    /// resulting trace carries `seed: 0` (no RNG was involved) and
    /// `source` as provenance, and replays through either CLI exactly
    /// like a recorded one.
    ///
    /// Errors name the offending line: malformed rows, unparseable or
    /// non-finite/negative timestamps, empty tenant names, or an empty
    /// file.
    pub fn from_csv(text: &str, source: &str) -> Result<Trace, String> {
        let mut tenants: Vec<TraceTenant> = Vec::new();
        let mut saw_row = false;
        for (i, raw) in text.lines().enumerate() {
            // Tolerate a UTF-8 BOM and surrounding whitespace; blank
            // lines are skipped anywhere.
            let line = raw.trim_start_matches('\u{feff}').trim();
            if line.is_empty() {
                continue;
            }
            let (ts, name) = line
                .split_once(',')
                .ok_or_else(|| format!("csv line {}: expected `timestamp,tenant`", i + 1))?;
            let (ts, name) = (ts.trim(), name.trim());
            if !saw_row && ts.eq_ignore_ascii_case("timestamp") {
                continue; // header row (first non-empty line)
            }
            saw_row = true;
            let t: f64 = ts
                .parse()
                .map_err(|_| format!("csv line {}: bad timestamp {ts:?}", i + 1))?;
            if !(t.is_finite() && t >= 0.0) {
                return Err(format!(
                    "csv line {}: timestamp must be finite and non-negative, got {t}",
                    i + 1
                ));
            }
            if name.is_empty() {
                return Err(format!("csv line {}: empty tenant name", i + 1));
            }
            match tenants.iter_mut().find(|t| t.name == name) {
                Some(tt) => tt.arrivals_ms.push(t),
                None => tenants.push(TraceTenant {
                    name: name.to_string(),
                    arrivals_ms: vec![t],
                }),
            }
        }
        if tenants.is_empty() {
            return Err("csv holds no `timestamp,tenant` rows".to_string());
        }
        for t in &mut tenants {
            // Stable: rows sharing a timestamp keep their file order.
            t.arrivals_ms.sort_by(|a, b| a.total_cmp(b));
            check_arrivals(&t.arrivals_ms).map_err(|e| format!("tenant {:?}: {e}", t.name))?;
        }
        Ok(Trace {
            seed: 0,
            source: source.to_string(),
            tenants,
        })
    }

    /// Write the trace to `path` (compact JSON, one document).
    pub fn save(&self, path: &str) -> Result<(), String> {
        std::fs::write(path, serde_json::to_string(&self.to_json()))
            .map_err(|e| format!("cannot write trace {path:?}: {e}"))
    }

    /// Load a trace from `path`.
    pub fn load(path: &str) -> Result<Trace, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read trace {path:?}: {e}"))?;
        Trace::parse(&text)
    }

    /// Total recorded arrivals across tenants.
    pub fn total_arrivals(&self) -> usize {
        self.tenants.iter().map(|t| t.arrivals_ms.len()).sum()
    }
}

fn as_object<'a>(
    v: &'a Value,
    what: &str,
) -> Result<&'a std::collections::BTreeMap<String, Value>, String> {
    match v {
        Value::Object(m) => Ok(m),
        _ => Err(format!("{what} must be a JSON object")),
    }
}

fn field<'a>(
    obj: &'a std::collections::BTreeMap<String, Value>,
    key: &str,
) -> Result<&'a Value, String> {
    obj.get(key).ok_or_else(|| format!("missing field `{key}`"))
}

fn as_string<'a>(v: &'a Value, what: &str) -> Result<&'a str, String> {
    match v {
        Value::String(s) => Ok(s),
        _ => Err(format!("{what} must be a string")),
    }
}

fn as_number(v: &Value, what: &str) -> Result<f64, String> {
    match v {
        Value::Number(n) => Ok(*n),
        _ => Err(format!("{what} must be a number")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bursty_mean_rate_is_preserved() {
        let a = ArrivalProcess::Bursty {
            rate_rps: 1000.0,
            burst_factor: 3.0,
            period_ms: 100.0,
            duty: 0.2,
        };
        // Time-average of rate_at over one period ≈ rate_rps.
        let steps = 10_000;
        let mean: f64 = (0..steps)
            .map(|i| a.rate_at(100.0 * i as f64 / steps as f64))
            .sum::<f64>()
            / steps as f64;
        assert!((mean - 1000.0).abs() / 1000.0 < 0.01, "mean {mean}");
        a.validate();
    }

    #[test]
    #[should_panic(expected = "burst_factor * duty")]
    fn saturated_duty_cycle_is_rejected_at_admission() {
        ArrivalProcess::Bursty {
            rate_rps: 10_000.0,
            burst_factor: 5.0,
            period_ms: 20.0,
            duty: 0.25,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "duty must lie strictly inside")]
    fn degenerate_duty_is_rejected() {
        ArrivalProcess::Bursty {
            rate_rps: 1.0,
            burst_factor: 2.0,
            period_ms: 10.0,
            duty: 1.0,
        }
        .validate();
    }

    #[test]
    fn sources_are_deterministic_and_resettable() {
        let processes = [
            ArrivalProcess::Poisson { rate_rps: 5_000.0 },
            ArrivalProcess::Bursty {
                rate_rps: 5_000.0,
                burst_factor: 3.0,
                period_ms: 20.0,
                duty: 0.2,
            },
            ArrivalProcess::Diurnal {
                profile: DiurnalProfile::day_night(1_000.0, 10_000.0, 50.0),
            },
        ];
        for p in &processes {
            let mut a = p.source("t", 500, 42);
            let mut b = p.source("t", 500, 42);
            let sa = record_stream(a.as_mut());
            let sb = record_stream(b.as_mut());
            assert_eq!(sa, sb, "{p:?}: same seed, same stream");
            assert_eq!(a.remaining(), 0);
            a.reset();
            assert_eq!(a.remaining(), 500);
            assert_eq!(record_stream(a.as_mut()), sa, "{p:?}: reset replays");
            let mut c = p.source("t", 500, 43);
            assert_ne!(record_stream(c.as_mut()), sa, "{p:?}: seeds differ");
            assert!(sa.windows(2).all(|w| w[0] <= w[1]), "{p:?}: monotone");
        }
    }

    #[test]
    fn batched_sampler_matches_the_naive_form_bit_for_bit() {
        // The hot-path form (cached `-(1000/rate)` scale, block-drawn
        // `ln(u)`) must reproduce the naive one-draw-one-divide
        // sampler exactly. 600 requests crosses the `LN_BATCH` refill
        // boundary twice; the bursty/diurnal cases exercise the
        // rate-change invalidation of the cached scale.
        let processes = [
            ArrivalProcess::Poisson { rate_rps: 5_000.0 },
            ArrivalProcess::Bursty {
                rate_rps: 5_000.0,
                burst_factor: 3.0,
                period_ms: 20.0,
                duty: 0.2,
            },
            ArrivalProcess::Diurnal {
                profile: DiurnalProfile::day_night(1_000.0, 10_000.0, 50.0),
            },
        ];
        for p in &processes {
            let mut src = p.source("t", 600, 42);
            let mut rng = StdRng::seed_from_u64(42);
            let mut now = 0.0;
            for k in 0..600 {
                let rate = match p {
                    ArrivalProcess::Poisson { rate_rps } => *rate_rps,
                    ArrivalProcess::Bursty {
                        rate_rps,
                        burst_factor,
                        period_ms,
                        duty,
                    } => bursty_rate(*rate_rps, *burst_factor, *period_ms, *duty, now),
                    ArrivalProcess::Diurnal { profile } => profile.rate_at(now),
                    ArrivalProcess::Recorded { .. } | ArrivalProcess::Trace { .. } => {
                        unreachable!()
                    }
                };
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let expected = now + -(1000.0 / rate) * u.ln();
                let got = src.next_arrival_ms(now).unwrap();
                assert_eq!(got.to_bits(), expected.to_bits(), "{p:?}: draw {k}");
                now = got;
            }
            assert_eq!(src.next_arrival_ms(now), None);
        }
    }

    #[test]
    fn diurnal_profile_interpolates_and_wraps() {
        let p = DiurnalProfile::new(100.0, vec![(0.0, 100.0), (50.0, 300.0)]);
        assert_eq!(p.rate_at(0.0), 100.0);
        assert_eq!(p.rate_at(25.0), 200.0);
        assert_eq!(p.rate_at(50.0), 300.0);
        // Wrap segment: 300 at 50 back down to 100 at 100 (== phase 0).
        assert_eq!(p.rate_at(75.0), 200.0);
        assert_eq!(p.rate_at(125.0), 200.0, "cyclic");
        assert!((p.mean_rate_rps() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn diurnal_stream_is_denser_at_the_peak() {
        let profile = DiurnalProfile::day_night(500.0, 20_000.0, 100.0);
        let mut src = DiurnalSource::new(profile, 4_000, 7);
        let stream = record_stream(&mut src);
        // Count arrivals by phase quarter; the peak quarter (around
        // phase 50) must dominate the trough quarter (around phase 0).
        let mut quarters = [0usize; 4];
        for t in &stream {
            quarters[((t.rem_euclid(100.0)) / 25.0) as usize % 4] += 1;
        }
        // Triangle 500..20k: the two peak quarters average ~15.1k rps
        // vs ~5.4k for the trough quarters, a ~2.8× density ratio.
        assert!(
            quarters[1] + quarters[2] > 2 * (quarters[0] + quarters[3]),
            "peak quarters must dominate: {quarters:?}"
        );
    }

    #[test]
    #[should_panic(expected = "first diurnal knot")]
    fn diurnal_profile_requires_a_phase_zero_knot() {
        DiurnalProfile::new(100.0, vec![(10.0, 1.0), (50.0, 2.0)]);
    }

    #[test]
    fn trace_source_replays_a_prefix() {
        let mut src = TraceSource::new(vec![1.0, 2.0, 3.0, 4.0], 3);
        assert_eq!(src.total(), 3);
        assert_eq!(src.next_arrival_ms(0.0), Some(1.0));
        assert_eq!(src.next_arrival_ms(1.0), Some(2.0));
        assert_eq!(src.next_arrival_ms(2.0), Some(3.0));
        assert_eq!(src.next_arrival_ms(3.0), None);
        src.reset();
        assert_eq!(src.next_arrival_ms(0.0), Some(1.0));
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_trace_is_rejected() {
        TraceSource::new(vec![2.0, 1.0], 2);
    }

    #[test]
    #[should_panic(expected = "holds only")]
    fn oversubscribed_replay_is_rejected() {
        TraceSource::new(vec![1.0, 2.0], 3);
    }

    #[test]
    fn trace_json_roundtrip_is_bit_exact() {
        let trace = Trace {
            seed: 42,
            source: "unit/roundtrip".to_string(),
            tenants: vec![
                TraceTenant {
                    name: "MLP0".to_string(),
                    arrivals_ms: vec![0.012345678901234567, 1.0, 2.5, 1e-12 + 3.0],
                },
                TraceTenant {
                    name: "CNN0".to_string(),
                    arrivals_ms: vec![0.1],
                },
            ],
        };
        let text = serde_json::to_string(&trace.to_json());
        let back = Trace::parse(&text).expect("parses");
        assert_eq!(back, trace);
        for (a, b) in trace.tenants.iter().zip(&back.tenants) {
            for (x, y) in a.arrivals_ms.iter().zip(&b.arrivals_ms) {
                assert_eq!(x.to_bits(), y.to_bits(), "bit-exact timestamps");
            }
        }
    }

    #[test]
    fn trace_header_is_enforced() {
        assert!(Trace::parse("{}").is_err(), "missing header");
        let wrong_format = r#"{"format":"csv","version":1,"seed":0,"source":"","tenants":[]}"#;
        assert!(Trace::parse(wrong_format).unwrap_err().contains("format"));
        let wrong_version =
            r#"{"format":"tpu-trace","version":99,"seed":0,"source":"","tenants":[]}"#;
        assert!(Trace::parse(wrong_version).unwrap_err().contains("version"));
    }

    #[test]
    fn parse_rejects_corrupt_streams_as_errors_not_panics() {
        let mk = |arrivals: &str| {
            format!(
                r#"{{"format":"tpu-trace","version":1,"seed":0,"source":"x",
                     "tenants":[{{"name":"MLP0","arrivals_ms":{arrivals}}}]}}"#
            )
        };
        assert!(Trace::parse(&mk("[2.0,1.0]"))
            .unwrap_err()
            .contains("non-decreasing"));
        assert!(Trace::parse(&mk("[-1.0]"))
            .unwrap_err()
            .contains("non-negative"));
        assert!(Trace::parse(&mk("[]")).unwrap_err().contains("empty"));
    }

    #[test]
    fn csv_import_groups_tenants_and_roundtrips_through_tpu_trace() {
        let csv = "timestamp,tenant\n0.5,MLP0\n0.75,LSTM0\n1.0,MLP0\n1.0,LSTM0\n2.25,MLP0\n";
        let trace = Trace::from_csv(csv, "csv:unit").expect("imports");
        assert_eq!(trace.seed, 0);
        assert_eq!(trace.source, "csv:unit");
        assert_eq!(trace.tenants.len(), 2);
        assert_eq!(trace.tenants[0].name, "MLP0", "first-appearance order");
        assert_eq!(trace.tenants[0].arrivals_ms, vec![0.5, 1.0, 2.25]);
        assert_eq!(trace.tenants[1].arrivals_ms, vec![0.75, 1.0]);
        // Round trip: the imported trace serializes to tpu-trace v1 and
        // parses back bit-exactly.
        let back = Trace::parse(&serde_json::to_string(&trace.to_json())).expect("parses");
        assert_eq!(back, trace);
        // And it replays like any recorded trace.
        let mut src = TraceSource::new(back.tenants[0].arrivals_ms.clone(), 3);
        assert_eq!(record_stream(&mut src), vec![0.5, 1.0, 2.25]);
    }

    #[test]
    fn csv_import_sorts_out_of_order_rows_per_tenant() {
        let csv = "3.0,A\n1.0,A\n2.0,A\n";
        let trace = Trace::from_csv(csv, "csv").unwrap();
        assert_eq!(trace.tenants[0].arrivals_ms, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn csv_import_skips_the_header_past_blank_lines_and_a_bom() {
        let csv = "\n\u{feff}Timestamp,Tenant\n1.0,A\n";
        let trace = Trace::from_csv(csv, "csv").unwrap();
        assert_eq!(trace.tenants.len(), 1);
        assert_eq!(trace.tenants[0].arrivals_ms, vec![1.0]);
        // A tenant literally named "timestamp" still works once rows
        // have started: only the first non-empty line can be a header.
        let tricky = "1.0,A\n2.0,timestamp\n";
        let t2 = Trace::from_csv(tricky, "csv").unwrap();
        assert_eq!(t2.tenants.len(), 2);
    }

    #[test]
    fn csv_import_rejects_bad_rows_with_line_numbers() {
        assert!(Trace::from_csv("", "x")
            .unwrap_err()
            .contains("no `timestamp,tenant`"));
        assert!(Trace::from_csv("nonsense\n", "x")
            .unwrap_err()
            .contains("line 1"));
        assert!(Trace::from_csv("1.0,A\noops,B\n", "x")
            .unwrap_err()
            .contains("line 2"));
        assert!(Trace::from_csv("-1.0,A\n", "x")
            .unwrap_err()
            .contains("non-negative"));
        assert!(Trace::from_csv("1.0,\n", "x")
            .unwrap_err()
            .contains("empty tenant name"));
    }

    #[test]
    fn seeds_above_2_pow_53_roundtrip_exactly() {
        let trace = Trace {
            seed: u64::MAX - 1,
            source: "unit".to_string(),
            tenants: vec![TraceTenant {
                name: "MLP0".to_string(),
                arrivals_ms: vec![1.0],
            }],
        };
        let back = Trace::parse(&serde_json::to_string(&trace.to_json())).unwrap();
        assert_eq!(back.seed, u64::MAX - 1);
        assert_eq!(back, trace);
    }

    #[test]
    fn file_backed_trace_variant_replays_the_saved_stream() {
        use crate::policy::BatchPolicy;
        let spec = TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 2_000.0 },
            BatchPolicy::Fixed { batch: 4 },
            7.0,
            48,
        );
        let trace = Trace::record(std::slice::from_ref(&spec), 11, "unit/file");
        let path = std::env::temp_dir().join(format!(
            "tpu_workload_file_variant_{}.trace.json",
            std::process::id()
        ));
        let path = path.to_str().expect("utf-8 temp path");
        trace.save(path).expect("trace writes");
        let mut src = ArrivalProcess::Trace {
            path: path.to_string(),
        }
        .source("MLP0", 48, 0);
        assert_eq!(record_stream(src.as_mut()), trace.tenants[0].arrivals_ms);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn deeply_nested_trace_json_errors_instead_of_overflowing() {
        let bomb = "[".repeat(100_000);
        assert!(Trace::parse(&bomb).is_err(), "parse must return, not crash");
    }

    #[test]
    fn covers_reports_the_missing_tenant() {
        let trace = Trace {
            seed: 0,
            source: "unit".to_string(),
            tenants: vec![TraceTenant {
                name: "MLP0".to_string(),
                arrivals_ms: vec![1.0],
            }],
        };
        assert!(trace.covers(["MLP0"]).is_ok());
        assert!(trace.covers(["MLP0", "CNN1"]).unwrap_err().contains("CNN1"));
    }

    #[test]
    fn apply_replays_a_prefix_when_the_spec_asks_for_fewer_requests() {
        use crate::policy::BatchPolicy;
        let mut tenants = vec![TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 1_000.0 },
            BatchPolicy::Fixed { batch: 4 },
            7.0,
            40,
        )];
        let trace = Trace::record(&tenants, 3, "unit");
        tenants[0].requests = 10;
        trace.apply(&mut tenants);
        assert_eq!(tenants[0].requests, 10, "prefix replay keeps the ask");
        tenants[0].requests = 500;
        trace.apply(&mut tenants);
        assert_eq!(tenants[0].requests, 40, "capped at the recording");
    }

    #[test]
    fn recording_matches_the_engine_seeding() {
        use crate::policy::BatchPolicy;
        // Trace::record seeds tenant i with stream_seed(master, i); the
        // recorded stream must equal pulling the source by hand.
        let spec = TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 1_000.0 },
            BatchPolicy::Fixed { batch: 8 },
            7.0,
            64,
        );
        let trace = Trace::record(std::slice::from_ref(&spec), 42, "unit");
        let mut src = spec.arrivals.source("MLP0", 64, sim::stream_seed(42, 0));
        assert_eq!(trace.tenants[0].arrivals_ms, record_stream(src.as_mut()));
        assert_eq!(trace.total_arrivals(), 64);
    }

    #[test]
    fn apply_rewrites_tenants_to_inline_replay() {
        use crate::policy::BatchPolicy;
        let mut tenants = vec![TenantSpec::new(
            "LSTM0",
            ArrivalProcess::Poisson { rate_rps: 500.0 },
            BatchPolicy::Fixed { batch: 4 },
            50.0,
            32,
        )];
        let trace = Trace::record(&tenants, 7, "unit");
        trace.apply(&mut tenants);
        match &tenants[0].arrivals {
            ArrivalProcess::Recorded { arrivals_ms } => {
                assert_eq!(arrivals_ms, &trace.tenants[0].arrivals_ms)
            }
            other => panic!("expected Recorded, got {other:?}"),
        }
        assert_eq!(tenants[0].requests, 32);
    }
}
