//! Named end-to-end serving scenarios.
//!
//! Each scenario is a reproducible experiment: a die pool plus a set of
//! tenants, sometimes swept over a parameter (batch size, arrival
//! shape, batching policy). The `tpu_serve` CLI runs them by name; the
//! integration tests pin their qualitative outcomes (e.g. that
//! timeout-bounded batching beats fixed batching's p99 at equal load).
//!
//! Arrival rates are sized against the calibrated per-die capacities of
//! the Table 1 workloads (see `ServiceCurve::from_workload`): MLP0
//! ~242k rps/die, LSTM0 ~27k, CNN0 ~8.3k, CNN1 ~2.8k.

use crate::engine::{run, run_telemetry, ClusterSpec, Dispatch};
use crate::policy::BatchPolicy;
use crate::report::ServeReport;
use crate::service::ServiceCurve;
use crate::tenant::{ArrivalProcess, TenantSpec};
use crate::workload::Trace;
use tpu_core::TpuConfig;

/// One concrete run within a scenario.
#[derive(Debug, Clone)]
pub struct ScenarioRun {
    /// Label distinguishing this run within the scenario.
    pub label: String,
    /// The die pool.
    pub cluster: ClusterSpec,
    /// The tenants admitted to it.
    pub tenants: Vec<TenantSpec>,
}

/// A named, reproducible serving experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// CLI name, e.g. `mixed-tenants`.
    pub name: &'static str,
    /// One-line description for `tpu_serve list`.
    pub description: &'static str,
    /// The runs, executed in order.
    pub runs: Vec<ScenarioRun>,
}

impl Scenario {
    /// Execute every run and pair it with its label.
    pub fn execute(&self, cfg: &TpuConfig) -> Vec<(String, ServeReport)> {
        self.runs
            .iter()
            .map(|r| (r.label.clone(), run(&r.cluster, &r.tenants, cfg)))
            .collect()
    }

    /// [`Self::execute`] with one [`tpu_telemetry::RunTelemetry`] per
    /// run (the CLI's `--chrome-trace` / `--metrics-out` /
    /// `--engine-stats` path). Reports are bit-identical to
    /// [`Self::execute`]'s.
    ///
    /// # Panics
    ///
    /// Panics unless `tel.len() == self.runs.len()`.
    pub fn execute_telemetry(
        &self,
        cfg: &TpuConfig,
        tel: &mut [tpu_telemetry::RunTelemetry],
    ) -> Vec<(String, ServeReport)> {
        assert_eq!(tel.len(), self.runs.len(), "one RunTelemetry per run");
        self.runs
            .iter()
            .zip(tel)
            .map(|(r, t)| {
                (
                    r.label.clone(),
                    run_telemetry(&r.cluster, &r.tenants, cfg, t),
                )
            })
            .collect()
    }

    /// Re-seed every run (CLI `--seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        for r in &mut self.runs {
            r.cluster.seed = seed;
        }
        self
    }

    /// Scale every tenant's request count by `factor` (CLI
    /// `--requests-scale`), keeping at least one request per tenant.
    /// Tenants replaying an inline recording are capped at the
    /// recording's length (they replay a prefix; there is nothing to
    /// scale up into).
    pub fn scale_requests(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale must be positive");
        for r in &mut self.runs {
            for t in &mut r.tenants {
                t.scale_requests(factor);
            }
        }
        self
    }

    /// Record the arrival streams of one run — by label, or the first
    /// run when `run_label` is `None` — without simulating (see
    /// [`crate::workload::record_stream`]). The CLI's `trace record`
    /// writes the result to disk.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run label.
    pub fn record_trace(&self, run_label: Option<&str>) -> Trace {
        let run = match run_label {
            None => &self.runs[0],
            Some(l) => self
                .runs
                .iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("scenario {} has no run {l:?}", self.name)),
        };
        Trace::record(
            &run.tenants,
            run.cluster.seed,
            &format!("{}/{}", self.name, run.label),
        )
    }

    /// Drive every run's tenants from a recorded trace (CLI `--trace`):
    /// each tenant replays its recorded stream, matched by name, with
    /// its request count capped at the stream length (a scaled-down
    /// scenario replays a prefix — see [`Trace::apply`]).
    ///
    /// # Panics
    ///
    /// Panics when the trace lacks one of the scenario's tenants
    /// (pre-check with [`Trace::covers`]).
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        for r in &mut self.runs {
            trace.apply(&mut r.tenants);
        }
        self
    }
}

/// The datacenter mix: all six Table 1 workloads sharing four dies, with
/// user-facing MLPs at high priority and the throughput-tolerant CNNs at
/// low priority. Offered load sits near 60% of pool capacity.
fn mixed_tenants() -> Scenario {
    let t = |workload: &str,
             rate: f64,
             max_batch: usize,
             t_max_ms: f64,
             slo_ms: f64,
             priority: u8,
             requests: usize| {
        TenantSpec::new(
            workload,
            ArrivalProcess::Poisson { rate_rps: rate },
            BatchPolicy::Timeout {
                max_batch,
                t_max_ms,
            },
            slo_ms,
            requests,
        )
        .with_priority(priority)
    };
    Scenario {
        name: "mixed-tenants",
        description: "all six Table 1 workloads share 4 dies at ~60% load",
        runs: vec![ScenarioRun {
            label: "mixed".into(),
            cluster: ClusterSpec::new(4, 42),
            tenants: vec![
                t("MLP0", 150_000.0, 200, 2.0, 7.0, 3, 45_000),
                t("MLP1", 80_000.0, 168, 2.0, 7.0, 3, 24_000),
                t("LSTM0", 12_000.0, 64, 5.0, 50.0, 2, 3_600),
                t("LSTM1", 20_000.0, 96, 5.0, 50.0, 2, 6_000),
                t("CNN0", 3_000.0, 8, 10.0, 30.0, 1, 900),
                t("CNN1", 800.0, 32, 20.0, 60.0, 1, 240),
            ],
        }],
    }
}

/// MLP0 under the Table 4 measured curve: a steady Poisson stream versus
/// the same mean load arriving in 4x bursts. Determinism keeps the
/// steady tail flat; the bursts show what the SLO headroom is for.
fn mlp0_burst() -> Scenario {
    let tenant = |arrivals: ArrivalProcess| {
        TenantSpec::new(
            "MLP0",
            arrivals,
            BatchPolicy::Timeout {
                max_batch: 200,
                t_max_ms: 2.0,
            },
            7.0,
            60_000,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4())
    };
    let cluster = ClusterSpec::new(2, 42);
    Scenario {
        name: "mlp0-burst",
        description: "MLP0 on 2 dies: steady Poisson vs 4x on/off bursts",
        runs: vec![
            ScenarioRun {
                label: "steady".into(),
                cluster: cluster.clone(),
                tenants: vec![tenant(ArrivalProcess::Poisson {
                    rate_rps: 300_000.0,
                })],
            },
            ScenarioRun {
                label: "burst-4x".into(),
                cluster,
                tenants: vec![tenant(ArrivalProcess::Bursty {
                    rate_rps: 300_000.0,
                    burst_factor: 4.0,
                    period_ms: 20.0,
                    duty: 0.2,
                })],
            },
        ],
    }
}

/// CNN0 on one die swept across fixed batch sizes: the Table 4 story —
/// throughput rises with batch while the tail pays accumulation delay,
/// and under-batching pays queueing delay instead.
fn cnn_batch_sweep() -> Scenario {
    let runs = [1usize, 2, 4, 8, 16, 32]
        .into_iter()
        .map(|batch| ScenarioRun {
            label: format!("batch-{batch}"),
            cluster: ClusterSpec::new(1, 42),
            tenants: vec![TenantSpec::new(
                "CNN0",
                ArrivalProcess::Poisson { rate_rps: 2_000.0 },
                BatchPolicy::Fixed { batch },
                30.0,
                4_000,
            )],
        })
        .collect();
    Scenario {
        name: "cnn-batch-sweep",
        description: "CNN0 on 1 die, fixed batch 1..32: batch vs p99 tradeoff",
        runs,
    }
}

/// The SLO mechanism head-to-head: at identical offered load, fixed
/// batch-200 waits out its accumulation delay and breaches 7 ms, while
/// the timeout-bounded and SLO-adaptive policies dispatch partial
/// batches and meet it.
fn fixed_vs_timeout() -> Scenario {
    let tenant = |policy: BatchPolicy| {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 30_000.0 },
            policy,
            7.0,
            15_000,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4())
    };
    let cluster = ClusterSpec::new(1, 42);
    Scenario {
        name: "fixed-vs-timeout",
        description: "MLP0 at equal load: fixed-200 vs 2ms timeout vs SLO-adaptive",
        runs: vec![
            ScenarioRun {
                label: "fixed-200".into(),
                cluster: cluster.clone(),
                tenants: vec![tenant(BatchPolicy::Fixed { batch: 200 })],
            },
            ScenarioRun {
                label: "timeout-2ms".into(),
                cluster: cluster.clone(),
                tenants: vec![tenant(BatchPolicy::Timeout {
                    max_batch: 200,
                    t_max_ms: 2.0,
                })],
            },
            ScenarioRun {
                label: "slo-adaptive".into(),
                cluster,
                tenants: vec![tenant(BatchPolicy::SloAdaptive {
                    max_batch: 200,
                    slo_ms: 7.0,
                    margin_ms: 1.0,
                })],
            },
        ],
    }
}

/// Scale-out: the same 300k rps MLP0 stream on 1, 2, then 4 dies. One
/// die is 33% over capacity — its queue and tail grow without bound —
/// while two dies absorb the load and four run with full headroom.
/// Round-robin dispatch here also demonstrates that the engine's
/// central queue is work-conserving: batches only ever launch onto free
/// dies, so the discipline choice costs nothing.
fn scale_out() -> Scenario {
    let tenant = || {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson {
                rate_rps: 300_000.0,
            },
            BatchPolicy::Timeout {
                max_batch: 200,
                t_max_ms: 2.0,
            },
            7.0,
            60_000,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4())
    };
    let runs = [1usize, 2, 4]
        .into_iter()
        .map(|dies| ScenarioRun {
            label: format!("dies-{dies}"),
            cluster: ClusterSpec::new(dies, 42).with_dispatch(Dispatch::RoundRobin),
            tenants: vec![tenant()],
        })
        .collect();
    Scenario {
        name: "scale-out",
        description: "300k rps MLP0 on 1, 2, 4 dies: overload vs headroom",
        runs,
    }
}

/// All named scenarios, in CLI listing order.
pub fn all_scenarios() -> Vec<Scenario> {
    vec![
        mixed_tenants(),
        mlp0_burst(),
        cnn_batch_sweep(),
        fixed_vs_timeout(),
        scale_out(),
    ]
}

/// Look a scenario up by its CLI name.
pub fn scenario_by_name(name: &str) -> Option<Scenario> {
    all_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_resolves_by_name() {
        for s in all_scenarios() {
            assert!(scenario_by_name(s.name).is_some(), "{}", s.name);
            assert!(!s.runs.is_empty(), "{} has no runs", s.name);
        }
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn seeding_and_scaling_apply_to_every_run() {
        let s = scenario_by_name("cnn-batch-sweep")
            .unwrap()
            .with_seed(7)
            .scale_requests(0.1);
        for r in &s.runs {
            assert_eq!(r.cluster.seed, 7);
            assert_eq!(r.tenants[0].requests, 400);
        }
    }

    #[test]
    fn mixed_tenants_executes_end_to_end_when_scaled_down() {
        let cfg = TpuConfig::paper();
        let s = scenario_by_name("mixed-tenants")
            .unwrap()
            .scale_requests(0.02);
        let reports = s.execute(&cfg);
        assert_eq!(reports.len(), 1);
        let r = &reports[0].1;
        assert_eq!(r.tenants.len(), 6);
        assert!(r.mean_utilization() > 0.0);
    }
}
