//! The weight-memory subsystem: multi-model co-location on one die pool.
//!
//! The paper's TPU serves models out of an 8 GiB DDR3 Weight Memory
//! behind the on-chip weight FIFO (Section 2, Figure 1): a die holds
//! the *weights* of several models at once — the Table 1 footprints sum
//! to well under the DDR3 budget — but the matrix unit computes with
//! one model's weights at a time, streamed through the FIFO at the
//! sustained DDR3 bandwidth (34 GB/s, Table 2). Switching the model a
//! die serves therefore costs a deterministic **weight-swap stall**:
//! the time to stream the incoming model's weight bytes from DDR3
//! through the FIFO, inflated by the model's Table 5 host-interaction
//! fraction (the host drives the reload DMA just as it drives every
//! other device interaction).
//!
//! This module owns the three pieces the serving layers share:
//!
//! * [`swap_cost_ms`] — the calibrated swap cost, a pure function of
//!   the model's weight bytes, the configured DDR3 bandwidth, and its
//!   Table 5 overhead fraction — no RNG, so co-located runs stay
//!   bit-identical per seed;
//! * [`ModelWeights`] / [`DieWeights`] — per-slot model identity and
//!   per-die resident-weights state ([`crate::host::HostCore`] embeds
//!   them; a dispatch whose model differs from the die's active model
//!   pays the swap and schedules a
//!   [`crate::host::HostEvent::WeightSwap`] completion on the event
//!   queue);
//! * [`WeightSet`] — a resident-set tracker against the DDR3 budget,
//!   used by `tpu_cluster`'s placement planners (and their property
//!   tests) to guarantee no plan ever oversubscribes a host's weight
//!   memory (the fleet layer budgets weight memory per *host*; see
//!   `tpu_cluster::fleet::HostSpec::weight_capacity_bytes`).
//!
//! Everything here is opt-in: a [`crate::host::HostCore`] whose slots
//! carry no [`ModelWeights`] never charges a swap, never schedules a
//! swap event, and is byte-identical to the pre-subsystem engine.

use std::fmt;
use tpu_core::TpuConfig;

/// The paper's weight-memory budget: 8 GiB of DDR3 behind one TPU
/// card. The fleet layer applies it per *host*
/// (`tpu_cluster::fleet::DEFAULT_WEIGHT_CAPACITY_BYTES` re-exports
/// this value), overridable per `HostSpec`.
pub const DDR3_CAPACITY_BYTES: u64 = 8 * 1024 * 1024 * 1024;

/// The deterministic weight-swap cost for one model, in milliseconds:
/// the time to stream `weight_bytes` from DDR3 through the weight FIFO
/// at the configured sustained bandwidth, inflated by the model's
/// Table 5 host-interaction fraction (`0.21` for MLP0) — the host
/// drives the reload like any other device interaction — and scaled by
/// `scale` (1.0 = the calibrated cost; scenarios sweep it).
///
/// # Panics
///
/// Panics on a degenerate configuration (nonpositive bandwidth), a
/// negative overhead fraction, or a nonpositive scale.
pub fn swap_cost_ms(weight_bytes: u64, cfg: &TpuConfig, host_fraction: f64, scale: f64) -> f64 {
    assert!(
        cfg.weight_memory_bw > 0.0,
        "weight memory bandwidth must be positive"
    );
    assert!(
        host_fraction >= 0.0,
        "host overhead fraction must be nonnegative"
    );
    assert!(scale > 0.0, "swap scale must be positive");
    weight_bytes as f64 / cfg.weight_memory_bw * 1000.0 * (1.0 + host_fraction) * scale
}

/// One model's weight-memory identity, attached to a host slot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelWeights {
    /// Fleet-wide model id (the owning tenant's index; two tenants are
    /// two models even on the same Table 1 architecture).
    pub model: usize,
    /// Weight footprint in bytes (8-bit weights, Table 1).
    pub bytes: u64,
    /// The swap stall charged when a die must load this model
    /// (see [`swap_cost_ms`]).
    pub swap_ms: f64,
}

/// Which model's weights a die is currently streaming from.
///
/// `active` is the model whose weights last finished loading through
/// the FIFO; `pending` is a load in flight (set at dispatch, promoted
/// to `active` by the [`crate::host::HostEvent::WeightSwap`] completion
/// event). A die whose active *or* pending model matches the next batch
/// is *warm*: dispatching it charges no swap.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DieWeights {
    active: Option<usize>,
    pending: Option<usize>,
    swaps: usize,
    swap_ms: f64,
}

impl DieWeights {
    /// A die that has never loaded any model's weights.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether dispatching `model` on this die would charge a swap:
    /// true unless the die's active (or in-flight pending) model
    /// already is `model`.
    pub fn needs_swap(&self, model: usize) -> bool {
        self.pending != Some(model) && (self.pending.is_some() || self.active != Some(model))
    }

    /// Start streaming `model`'s weights (the dispatch charged
    /// `cost_ms`); the completion event promotes it to active.
    pub fn begin_swap(&mut self, model: usize, cost_ms: f64) {
        self.pending = Some(model);
        self.swaps += 1;
        self.swap_ms += cost_ms;
    }

    /// The weight FIFO finished streaming: the pending model becomes
    /// active. Returns the model, or `None` for a stale completion
    /// (the host crashed since the swap began).
    pub fn complete_swap(&mut self) -> Option<usize> {
        let done = self.pending.take();
        if done.is_some() {
            self.active = done;
        }
        done
    }

    /// The model whose weights are loaded (post-completion).
    pub fn active(&self) -> Option<usize> {
        self.active
    }

    /// The model whose weights are streaming in, if any.
    pub fn pending(&self) -> Option<usize> {
        self.pending
    }

    /// Whether `model`'s weights are loaded or loading here.
    pub fn warm(&self, model: usize) -> bool {
        self.active == Some(model) || self.pending == Some(model)
    }

    /// Swaps this die has begun (including one aborted by a crash).
    pub fn swaps(&self) -> usize {
        self.swaps
    }

    /// Total swap stall this die has been charged, ms.
    pub fn swap_ms(&self) -> f64 {
        self.swap_ms
    }

    /// A crash wipes the die: whatever was loaded or loading is gone
    /// (the counters survive — they record swaps *initiated*).
    pub fn clear(&mut self) {
        self.active = None;
        self.pending = None;
    }
}

/// The set of models resident in one die's weight memory, tracked
/// against a byte budget. The placement planners admit every replica
/// they place through this, so "no plan oversubscribes the 8 GiB DDR3"
/// is enforced in one place (and property-tested there).
#[derive(Debug, Clone, PartialEq)]
pub struct WeightSet {
    capacity_bytes: u64,
    used_bytes: u64,
    /// `(model, bytes)` in admission order.
    resident: Vec<(usize, u64)>,
}

/// Admission failure: the model does not fit the remaining budget.
#[derive(Debug, Clone, PartialEq)]
pub struct WeightOverflow {
    /// The model that failed to fit.
    pub model: usize,
    /// Its footprint, bytes.
    pub bytes: u64,
    /// Bytes still free in the set.
    pub free_bytes: u64,
}

impl fmt::Display for WeightOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "model {} needs {} weight bytes but only {} are free",
            self.model, self.bytes, self.free_bytes
        )
    }
}

impl WeightSet {
    /// An empty set with `capacity_bytes` of weight memory.
    pub fn new(capacity_bytes: u64) -> Self {
        WeightSet {
            capacity_bytes,
            used_bytes: 0,
            resident: Vec::new(),
        }
    }

    /// An empty set with the paper's 8 GiB DDR3 budget.
    pub fn ddr3() -> Self {
        Self::new(DDR3_CAPACITY_BYTES)
    }

    /// Admit a model, charging its footprint against the budget.
    ///
    /// # Errors
    ///
    /// Returns the [`WeightOverflow`] when the footprint exceeds the
    /// free bytes; the set is unchanged.
    pub fn admit(&mut self, model: usize, bytes: u64) -> Result<(), WeightOverflow> {
        let free = self.capacity_bytes - self.used_bytes;
        if bytes > free {
            return Err(WeightOverflow {
                model,
                bytes,
                free_bytes: free,
            });
        }
        self.used_bytes += bytes;
        self.resident.push((model, bytes));
        Ok(())
    }

    /// Release a resident model, refunding its footprint. No-op when
    /// the model is not resident.
    pub fn release(&mut self, model: usize) {
        if let Some(i) = self.resident.iter().position(|&(m, _)| m == model) {
            self.used_bytes -= self.resident.remove(i).1;
        }
    }

    /// Whether `bytes` more would still fit.
    pub fn fits(&self, bytes: u64) -> bool {
        self.used_bytes + bytes <= self.capacity_bytes
    }

    /// Bytes admitted so far.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// The byte budget.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes still free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity_bytes - self.used_bytes
    }

    /// Resident models in admission order.
    pub fn models(&self) -> impl Iterator<Item = usize> + '_ {
        self.resident.iter().map(|&(m, _)| m)
    }

    /// Number of resident models.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_cost_is_ddr3_stream_time_times_host_overhead() {
        let cfg = TpuConfig::paper();
        // 34 GB of weights at 34 GB/s = 1 s = 1000 ms, +21% host.
        let ms = swap_cost_ms(34_000_000_000, &cfg, 0.21, 1.0);
        assert!((ms - 1210.0).abs() < 1e-9, "{ms}");
        // MLP0's 20M weights: 20e6 / 34e9 * 1000 * 1.21 ≈ 0.712 ms.
        let mlp0 = swap_cost_ms(20_000_000, &cfg, 0.21, 1.0);
        assert!((mlp0 - 0.7117647058823529).abs() < 1e-12, "{mlp0}");
        assert_eq!(
            swap_cost_ms(20_000_000, &cfg, 0.21, 2.0),
            2.0 * mlp0,
            "scale is linear"
        );
    }

    #[test]
    #[should_panic(expected = "swap scale must be positive")]
    fn zero_swap_scale_rejected() {
        let _ = swap_cost_ms(1, &TpuConfig::paper(), 0.0, 0.0);
    }

    #[test]
    fn die_weights_track_active_and_pending() {
        let mut d = DieWeights::new();
        assert!(d.needs_swap(3), "cold die always swaps");
        d.begin_swap(3, 1.5);
        assert!(!d.needs_swap(3), "the in-flight load counts as warm");
        assert!(d.needs_swap(4));
        assert_eq!(d.active(), None, "not loaded until completion");
        assert_eq!(d.complete_swap(), Some(3));
        assert_eq!(d.active(), Some(3));
        assert!(!d.needs_swap(3));
        assert!(d.warm(3));
        d.begin_swap(4, 2.0);
        assert_eq!(d.swaps(), 2);
        assert!((d.swap_ms() - 3.5).abs() < 1e-12);
        d.clear();
        assert_eq!(d.complete_swap(), None, "stale completion after crash");
        assert!(d.needs_swap(4), "crash wipes the loaded weights");
        assert_eq!(d.swaps(), 2, "counters record swaps initiated");
    }

    #[test]
    fn weight_set_enforces_the_budget() {
        let mut s = WeightSet::new(100);
        assert!(s.admit(0, 60).is_ok());
        assert!(s.fits(40));
        assert!(!s.fits(41));
        let err = s.admit(1, 41).unwrap_err();
        assert_eq!(err.free_bytes, 40);
        assert!(err.to_string().contains("41 weight bytes"));
        assert!(s.admit(1, 40).is_ok());
        assert_eq!(s.used_bytes(), 100);
        assert_eq!(s.len(), 2);
        s.release(0);
        assert_eq!(s.free_bytes(), 60);
        assert_eq!(s.models().collect::<Vec<_>>(), vec![1]);
        s.release(7); // absent: no-op
        assert_eq!(s.used_bytes(), 40);
    }

    #[test]
    fn ddr3_set_has_the_paper_budget() {
        let s = WeightSet::ddr3();
        assert_eq!(s.capacity_bytes(), 8 * 1024 * 1024 * 1024);
        assert!(s.is_empty());
    }
}
