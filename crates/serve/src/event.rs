//! Host-level events, instantiating the extracted event core.
//!
//! The queue mechanics (binary heap, `(time, sequence)` ordering, the
//! monotonic clock) live in [`crate::sim`]; this module only defines
//! *what* can happen inside a single serving host. `tpu_cluster` wraps
//! these same host events in a fleet-level enum and shares the clock
//! across many hosts.

use crate::sim;

/// What can happen inside the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A request for `tenant` arrives.
    Arrival {
        /// Index into the engine's tenant table.
        tenant: usize,
    },
    /// A batching timer for `tenant` fires (timeout-bounded and
    /// SLO-adaptive policies). Stale timers are skipped via `generation`.
    Timer {
        /// Index into the engine's tenant table.
        tenant: usize,
        /// Queue generation the timer was armed against.
        generation: u64,
    },
    /// `die` finishes its current batch.
    DieFree {
        /// Index into the engine's die table.
        die: usize,
    },
    /// The weight FIFO finishes streaming a new model's weights into
    /// `die` (only emitted when slots carry weight identities; see
    /// [`crate::weights`]).
    WeightSwap {
        /// Index into the engine's die table.
        die: usize,
    },
}

/// A deterministic future-event list over host-level [`Event`]s.
pub type EventQueue = sim::EventQueue<Event>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::DieFree { die: 0 });
        q.schedule(1.0, Event::Arrival { tenant: 7 });
        q.schedule(1.0, Event::Arrival { tenant: 8 });
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::Arrival { tenant: 7 },
                Event::Arrival { tenant: 8 },
                Event::DieFree { die: 0 }
            ]
        );
    }

    #[test]
    fn now_tracks_popped_events() {
        let mut q = EventQueue::new();
        q.schedule(5.5, Event::DieFree { die: 1 });
        assert_eq!(q.now_ms(), 0.0);
        q.pop();
        assert_eq!(q.now_ms(), 5.5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::DieFree { die: 0 });
        q.pop();
        q.schedule(1.0, Event::DieFree { die: 0 });
    }
}
