//! The discrete-event core: a binary-heap event queue over simulated
//! milliseconds.
//!
//! No wall clock and no threads anywhere in this crate: every state
//! change is an [`Event`] popped from the [`EventQueue`] in
//! `(time, sequence)` order. The sequence number makes the pop order —
//! and therefore the whole simulation — fully deterministic even when
//! events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What can happen inside the serving runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A request for `tenant` arrives.
    Arrival {
        /// Index into the engine's tenant table.
        tenant: usize,
    },
    /// A batching timer for `tenant` fires (timeout-bounded and
    /// SLO-adaptive policies). Stale timers are skipped via `generation`.
    Timer {
        /// Index into the engine's tenant table.
        tenant: usize,
        /// Queue generation the timer was armed against.
        generation: u64,
    },
    /// `die` finishes its current batch.
    DieFree {
        /// Index into the engine's die table.
        die: usize,
    },
}

#[derive(Debug, Clone, Copy)]
struct Scheduled {
    at_ms: f64,
    seq: u64,
    event: Event,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.at_ms == other.at_ms && self.seq == other.seq
    }
}
impl Eq for Scheduled {}

impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap: earlier time first, then lower sequence number.
        // Times are finite by construction (asserted on push).
        other
            .at_ms
            .partial_cmp(&self.at_ms)
            .expect("finite event times")
            .then(other.seq.cmp(&self.seq))
    }
}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic future-event list.
#[derive(Debug, Default)]
pub struct EventQueue {
    heap: BinaryHeap<Scheduled>,
    next_seq: u64,
    now_ms: f64,
}

impl EventQueue {
    /// An empty queue at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time in milliseconds (the timestamp of the last
    /// popped event).
    pub fn now_ms(&self) -> f64 {
        self.now_ms
    }

    /// Schedule `event` at absolute time `at_ms`.
    ///
    /// # Panics
    ///
    /// Panics if `at_ms` is not finite or lies in the simulated past.
    pub fn schedule(&mut self, at_ms: f64, event: Event) {
        assert!(at_ms.is_finite(), "event time must be finite");
        assert!(
            at_ms >= self.now_ms,
            "cannot schedule into the past: {at_ms} < {}",
            self.now_ms
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at_ms, seq, event });
    }

    /// Pop the next event, advancing simulated time to it.
    pub fn pop(&mut self) -> Option<(f64, Event)> {
        let s = self.heap.pop()?;
        self.now_ms = s.at_ms;
        Some((s.at_ms, s.event))
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_then_fifo_order() {
        let mut q = EventQueue::new();
        q.schedule(2.0, Event::DieFree { die: 0 });
        q.schedule(1.0, Event::Arrival { tenant: 7 });
        q.schedule(1.0, Event::Arrival { tenant: 8 });
        let order: Vec<Event> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(
            order,
            vec![
                Event::Arrival { tenant: 7 },
                Event::Arrival { tenant: 8 },
                Event::DieFree { die: 0 }
            ]
        );
    }

    #[test]
    fn now_tracks_popped_events() {
        let mut q = EventQueue::new();
        q.schedule(5.5, Event::DieFree { die: 1 });
        assert_eq!(q.now_ms(), 0.0);
        q.pop();
        assert_eq!(q.now_ms(), 5.5);
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(3.0, Event::DieFree { die: 0 });
        q.pop();
        q.schedule(1.0, Event::DieFree { die: 0 });
    }
}
