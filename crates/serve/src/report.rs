//! Per-tenant and per-die reporting.
//!
//! The report is the runtime's contract with its tests: the `Display`
//! rendering is fixed-format and fully determined by the simulation, so
//! "same seed ⇒ bit-identical report" is assertable as string equality.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Latency percentile over a **sorted** slice, using the same index
/// formula as `tpu_platforms::queue_sim` (nearest-rank on n-1).
///
/// The implementation lives in [`tpu_telemetry::stats`] so the serving
/// report, the fleet report, and `tpu_analyze` share one index rule;
/// this re-export keeps the historical `tpu_serve::report::percentile`
/// path working.
pub use tpu_telemetry::stats::percentile;

/// One tenant's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantReport {
    /// Tenant display name.
    pub name: String,
    /// Table 1 workload the tenant runs.
    pub workload: String,
    /// Admission priority.
    pub priority: u8,
    /// Requests served.
    pub requests: usize,
    /// Batches dispatched.
    pub batches: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Mean end-to-end latency, ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// The tenant's latency target, ms.
    pub slo_ms: f64,
    /// Fraction of requests at or under the target.
    pub slo_attainment: f64,
    /// Served throughput over the whole run, requests/s.
    pub throughput_rps: f64,
}

/// One die's outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DieReport {
    /// Batches this die executed.
    pub batches: usize,
    /// Total busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of the makespan, in [0, 1].
    pub utilization: f64,
}

/// The full outcome of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeReport {
    /// Per-tenant outcomes, in tenant declaration order.
    pub tenants: Vec<TenantReport>,
    /// Per-die outcomes, in die index order.
    pub dies: Vec<DieReport>,
    /// Completion time of the last batch, ms.
    pub makespan_ms: f64,
    /// Events the engine processed (arrivals + timers + completions).
    pub events_processed: u64,
}

impl ServeReport {
    /// Requests served across all tenants.
    pub fn total_requests(&self) -> usize {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Find one tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&TenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Mean die utilization, in [0, 1].
    pub fn mean_utilization(&self) -> f64 {
        if self.dies.is_empty() {
            return 0.0;
        }
        self.dies.iter().map(|d| d.utilization).sum::<f64>() / self.dies.len() as f64
    }

    /// The report as a `serde_json` value (stable key order).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Value::object([
                    ("name".into(), Value::String(t.name.clone())),
                    ("workload".into(), Value::String(t.workload.clone())),
                    ("priority".into(), Value::Number(t.priority as f64)),
                    ("requests".into(), Value::Number(t.requests as f64)),
                    ("batches".into(), Value::Number(t.batches as f64)),
                    ("mean_batch".into(), Value::Number(round3(t.mean_batch))),
                    ("mean_ms".into(), Value::Number(round3(t.mean_ms))),
                    ("p50_ms".into(), Value::Number(round3(t.p50_ms))),
                    ("p95_ms".into(), Value::Number(round3(t.p95_ms))),
                    ("p99_ms".into(), Value::Number(round3(t.p99_ms))),
                    ("slo_ms".into(), Value::Number(t.slo_ms)),
                    (
                        "slo_attainment".into(),
                        Value::Number(round3(t.slo_attainment)),
                    ),
                    (
                        "throughput_rps".into(),
                        Value::Number(round3(t.throughput_rps)),
                    ),
                ])
            })
            .collect();
        let dies = self
            .dies
            .iter()
            .map(|d| {
                Value::object([
                    ("batches".into(), Value::Number(d.batches as f64)),
                    ("busy_ms".into(), Value::Number(round3(d.busy_ms))),
                    ("utilization".into(), Value::Number(round3(d.utilization))),
                ])
            })
            .collect();
        Value::object([
            ("tenants".into(), Value::Array(tenants)),
            ("dies".into(), Value::Array(dies)),
            (
                "makespan_ms".into(),
                Value::Number(round3(self.makespan_ms)),
            ),
            (
                "events_processed".into(),
                Value::Number(self.events_processed as f64),
            ),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

impl fmt::Display for ServeReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>5} {:>9} {:>8} {:>9} {:>9} {:>9} {:>9} {:>7} {:>12}",
            "tenant",
            "prio",
            "requests",
            "batch",
            "mean ms",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "SLO%",
            "rps"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{:<12} {:>5} {:>9} {:>8.1} {:>9.3} {:>9.3} {:>9.3} {:>9.3} {:>7.2} {:>12.0}",
                t.name,
                t.priority,
                t.requests,
                t.mean_batch,
                t.mean_ms,
                t.p50_ms,
                t.p95_ms,
                t.p99_ms,
                100.0 * t.slo_attainment,
                t.throughput_rps
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<6} {:>9} {:>12} {:>12}",
            "die", "batches", "busy ms", "utilization"
        )?;
        for (i, d) in self.dies.iter().enumerate() {
            writeln!(
                f,
                "{:<6} {:>9} {:>12.3} {:>11.1}%",
                i,
                d.batches,
                d.busy_ms,
                100.0 * d.utilization
            )?;
        }
        writeln!(
            f,
            "\nmakespan {:.3} ms · {} events · mean utilization {:.1}%",
            self.makespan_ms,
            self.events_processed,
            100.0 * self.mean_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_matches_queue_sim_indexing() {
        let v: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile(&v, 0.50), 49.0);
        assert_eq!(percentile(&v, 0.99), 98.0);
        assert_eq!(percentile(&v, 1.00), 99.0);
        assert_eq!(percentile(&v, 0.0), 0.0);
    }

    #[test]
    fn empty_percentile_is_zero() {
        assert_eq!(percentile(&[], 0.99), 0.0);
    }

    fn sample() -> ServeReport {
        ServeReport {
            tenants: vec![TenantReport {
                name: "MLP0".into(),
                workload: "MLP0".into(),
                priority: 1,
                requests: 10,
                batches: 2,
                mean_batch: 5.0,
                mean_ms: 1.5,
                p50_ms: 1.2,
                p95_ms: 2.5,
                p99_ms: 3.0,
                slo_ms: 7.0,
                slo_attainment: 1.0,
                throughput_rps: 1000.0,
            }],
            dies: vec![DieReport {
                batches: 2,
                busy_ms: 4.0,
                utilization: 0.4,
            }],
            makespan_ms: 10.0,
            events_processed: 13,
        }
    }

    #[test]
    fn display_is_stable() {
        let a = format!("{}", sample());
        let b = format!("{}", sample());
        assert_eq!(a, b);
        assert!(a.contains("MLP0"));
        assert!(a.contains("p99 ms"));
        assert!(a.contains("utilization"));
    }

    #[test]
    fn json_contains_the_headline_numbers() {
        let j = serde_json::to_string(&sample().to_json());
        assert!(j.contains("\"p99_ms\":3"), "{j}");
        assert!(j.contains("\"utilization\":0.4"), "{j}");
        assert!(j.contains("\"events_processed\":13"), "{j}");
    }

    #[test]
    fn lookup_by_name() {
        let r = sample();
        assert!(r.tenant("MLP0").is_some());
        assert!(r.tenant("CNN9").is_none());
        assert_eq!(r.total_requests(), 10);
    }
}
