//! Multi-tenant admission: who is sending traffic, how fast, and what
//! they are owed.
//!
//! A [`TenantSpec`] binds one Table 1 workload (by name, resolved through
//! `tpu_nn::workloads`) to an arrival process, a batching policy, a
//! priority, and a latency target. The engine admits any number of
//! tenants onto a shared die pool; ties for a free die break by priority
//! (higher first), then by the oldest waiting request.
//!
//! The *shape* of a tenant's request stream lives in
//! [`crate::workload`]: [`ArrivalProcess`] (re-exported here) describes
//! it, and [`ArrivalProcess::source`] instantiates the
//! [`crate::workload::ArrivalSource`] the engines pull arrivals from.

use crate::policy::BatchPolicy;
use crate::service::ServiceCurve;
use serde::{Deserialize, Serialize};
use tpu_core::TpuConfig;
use tpu_nn::model::NnModel;
use tpu_nn::workloads;

pub use crate::workload::ArrivalProcess;

/// One tenant of the serving runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (defaults to the workload name). Trace record and
    /// replay match streams by this name.
    pub name: String,
    /// Table 1 workload name: "MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0",
    /// or "CNN1".
    pub workload: String,
    /// Request stream shape (see [`crate::workload`]).
    pub arrivals: ArrivalProcess,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Admission priority; higher wins contended dies.
    pub priority: u8,
    /// Per-request latency target, ms (reported as SLO attainment).
    pub slo_ms: f64,
    /// Requests this tenant contributes to the simulation. For
    /// trace-backed arrivals this selects a prefix of the recording and
    /// must not exceed its length.
    pub requests: usize,
    /// Service curve override; `None` calibrates from the workload via
    /// [`ServiceCurve::from_workload`].
    pub curve: Option<ServiceCurve>,
}

impl TenantSpec {
    /// A tenant named after its workload, with a calibrated curve.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not a Table 1 name.
    pub fn new(
        workload: &str,
        arrivals: ArrivalProcess,
        policy: BatchPolicy,
        slo_ms: f64,
        requests: usize,
    ) -> Self {
        assert!(
            resolve_workload(workload).is_some(),
            "unknown workload {workload}; expected a Table 1 name"
        );
        TenantSpec {
            name: workload.to_string(),
            workload: workload.to_string(),
            arrivals,
            policy,
            priority: 1,
            slo_ms,
            requests,
            curve: None,
        }
    }

    /// Set the display name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Set the admission priority (higher wins contention).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the calibrated service curve.
    pub fn with_curve(mut self, curve: ServiceCurve) -> Self {
        self.curve = Some(curve);
        self
    }

    /// Scale the request count by `factor`, keeping at least one
    /// request and clamping a replayed inline recording to its length
    /// (it replays a prefix; there is nothing to scale up into).
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive factor.
    pub fn scale_requests(&mut self, factor: f64) {
        assert!(factor > 0.0, "scale must be positive");
        self.requests = ((self.requests as f64 * factor).round() as usize).max(1);
        if let ArrivalProcess::Recorded { arrivals_ms } = &self.arrivals {
            self.requests = self.requests.min(arrivals_ms.len());
        }
    }

    /// The tenant's effective service curve on `cfg`.
    pub fn effective_curve(&self, cfg: &TpuConfig) -> ServiceCurve {
        match self.curve {
            Some(c) => c,
            None => {
                let model = resolve_workload(&self.workload).expect("validated at construction");
                ServiceCurve::from_workload(&model, cfg)
            }
        }
    }
}

/// Resolve a Table 1 workload by name.
pub fn resolve_workload(name: &str) -> Option<NnModel> {
    match name {
        "MLP0" => Some(workloads::mlp0()),
        "MLP1" => Some(workloads::mlp1()),
        "LSTM0" => Some(workloads::lstm0()),
        "LSTM1" => Some(workloads::lstm1()),
        "CNN0" => Some(workloads::cnn0()),
        "CNN1" => Some(workloads::cnn1()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_workloads_resolve() {
        for n in ["MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0", "CNN1"] {
            assert!(resolve_workload(n).is_some(), "{n}");
        }
        assert!(resolve_workload("GPT4").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_is_rejected() {
        let _ = TenantSpec::new(
            "Resnet",
            ArrivalProcess::Poisson { rate_rps: 1.0 },
            BatchPolicy::Fixed { batch: 1 },
            7.0,
            100,
        );
    }

    #[test]
    fn calibrated_curve_is_used_unless_overridden() {
        let cfg = TpuConfig::paper();
        let base = TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 1.0 },
            BatchPolicy::Fixed { batch: 8 },
            7.0,
            100,
        );
        let calibrated = base.effective_curve(&cfg);
        assert!(calibrated.t1_ms > 0.0);
        let overridden = base
            .clone()
            .with_curve(ServiceCurve::tpu_mlp0_table4())
            .effective_curve(&cfg);
        assert_eq!(overridden, ServiceCurve::tpu_mlp0_table4());
    }
}
