//! Multi-tenant admission: who is sending traffic, how fast, and what
//! they are owed.
//!
//! A [`TenantSpec`] binds one Table 1 workload (by name, resolved through
//! `tpu_nn::workloads`) to an arrival process, a batching policy, a
//! priority, and a latency target. The engine admits any number of
//! tenants onto a shared die pool; ties for a free die break by priority
//! (higher first), then by the oldest waiting request.

use crate::policy::BatchPolicy;
use crate::service::ServiceCurve;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tpu_core::TpuConfig;
use tpu_nn::model::NnModel;
use tpu_nn::workloads;

/// The shape of a tenant's request stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Stationary Poisson arrivals at `rate_rps` requests/second.
    Poisson {
        /// Mean offered load, requests per second.
        rate_rps: f64,
    },
    /// An on/off modulated Poisson process: `burst_factor`× the base
    /// rate for the first `duty` fraction of every `period_ms` window,
    /// and a complementary trickle for the rest (the mean stays
    /// `rate_rps`).
    Bursty {
        /// Mean offered load, requests per second.
        rate_rps: f64,
        /// Rate multiplier during the on-phase (> 1).
        burst_factor: f64,
        /// Length of one on/off cycle, ms.
        period_ms: f64,
        /// Fraction of the period spent in the on-phase (0, 1).
        duty: f64,
    },
}

impl ArrivalProcess {
    /// Mean offered load, requests per second.
    pub fn mean_rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } | ArrivalProcess::Bursty { rate_rps, .. } => {
                rate_rps
            }
        }
    }

    /// Reject degenerate processes at admission time rather than
    /// mid-simulation.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive mean rate, and for bursty processes on a
    /// nonpositive period, a duty outside (0, 1), a burst factor below
    /// 1, or `burst_factor * duty >= 1` (which would drive the off-phase
    /// rate to zero and stall the arrival stream).
    pub fn validate(&self) {
        assert!(self.mean_rate_rps() > 0.0, "arrival rate must be positive");
        if let ArrivalProcess::Bursty {
            burst_factor,
            period_ms,
            duty,
            ..
        } = *self
        {
            assert!(period_ms > 0.0, "burst period must be positive");
            assert!(
                duty > 0.0 && duty < 1.0,
                "burst duty must lie strictly inside (0, 1)"
            );
            assert!(burst_factor >= 1.0, "burst factor must be at least 1");
            assert!(
                burst_factor * duty < 1.0,
                "burst_factor * duty must stay below 1, or the off-phase \
                 rate hits zero and the arrival stream stalls"
            );
        }
    }

    /// Instantaneous rate at simulated time `now_ms`.
    pub fn rate_at(&self, now_ms: f64) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Bursty {
                rate_rps,
                burst_factor,
                period_ms,
                duty,
            } => {
                let phase = (now_ms / period_ms).fract();
                if phase < duty {
                    rate_rps * burst_factor
                } else {
                    // Complement keeps the long-run mean at rate_rps.
                    let off = (1.0 - burst_factor * duty) / (1.0 - duty);
                    rate_rps * off.max(0.0)
                }
            }
        }
    }
}

/// A seeded generator for one tenant's arrival stream: the inversion
/// sampler behind both the single-host engine and the fleet front-end.
/// Gap draws consume exactly one RNG sample each, so any embedding that
/// schedules one arrival at a time reproduces the same stream.
#[derive(Debug, Clone)]
pub struct ArrivalGen {
    process: ArrivalProcess,
    remaining: usize,
    rng: StdRng,
}

impl ArrivalGen {
    /// A generator for `requests` arrivals from `process`, seeded with
    /// `seed` (derive per-tenant seeds via
    /// [`crate::sim::stream_seed`]).
    ///
    /// # Panics
    ///
    /// Panics on a degenerate process or zero requests.
    pub fn new(process: ArrivalProcess, requests: usize, seed: u64) -> Self {
        process.validate();
        assert!(requests > 0, "arrival stream needs at least one request");
        ArrivalGen {
            process,
            remaining: requests,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draw the exponential gap to the next arrival after `now_ms`.
    pub fn gap_ms(&mut self, now_ms: f64) -> f64 {
        let rate = self.process.rate_at(now_ms);
        assert!(rate > 0.0, "arrival rate must stay positive");
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -(1000.0 / rate) * u.ln()
    }

    /// Record one delivery; returns whether more arrivals will follow
    /// (i.e. whether the caller should draw and schedule another gap).
    pub fn on_deliver(&mut self) -> bool {
        debug_assert!(self.remaining > 0, "arrival after stream end");
        self.remaining -= 1;
        self.remaining > 0
    }

    /// Arrivals not yet delivered.
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

/// One tenant of the serving runtime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TenantSpec {
    /// Display name (defaults to the workload name).
    pub name: String,
    /// Table 1 workload name: "MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0",
    /// or "CNN1".
    pub workload: String,
    /// Request stream.
    pub arrivals: ArrivalProcess,
    /// Batching policy.
    pub policy: BatchPolicy,
    /// Admission priority; higher wins contended dies.
    pub priority: u8,
    /// Per-request latency target, ms (reported as SLO attainment).
    pub slo_ms: f64,
    /// Requests this tenant contributes to the simulation.
    pub requests: usize,
    /// Service curve override; `None` calibrates from the workload via
    /// [`ServiceCurve::from_workload`].
    pub curve: Option<ServiceCurve>,
}

impl TenantSpec {
    /// A tenant named after its workload, with a calibrated curve.
    ///
    /// # Panics
    ///
    /// Panics if `workload` is not a Table 1 name.
    pub fn new(
        workload: &str,
        arrivals: ArrivalProcess,
        policy: BatchPolicy,
        slo_ms: f64,
        requests: usize,
    ) -> Self {
        assert!(
            resolve_workload(workload).is_some(),
            "unknown workload {workload}; expected a Table 1 name"
        );
        TenantSpec {
            name: workload.to_string(),
            workload: workload.to_string(),
            arrivals,
            policy,
            priority: 1,
            slo_ms,
            requests,
            curve: None,
        }
    }

    /// Set the display name.
    pub fn named(mut self, name: &str) -> Self {
        self.name = name.to_string();
        self
    }

    /// Set the admission priority (higher wins contention).
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Override the calibrated service curve.
    pub fn with_curve(mut self, curve: ServiceCurve) -> Self {
        self.curve = Some(curve);
        self
    }

    /// The tenant's effective service curve on `cfg`.
    pub fn effective_curve(&self, cfg: &TpuConfig) -> ServiceCurve {
        match self.curve {
            Some(c) => c,
            None => {
                let model = resolve_workload(&self.workload).expect("validated at construction");
                ServiceCurve::from_workload(&model, cfg)
            }
        }
    }
}

/// Resolve a Table 1 workload by name.
pub fn resolve_workload(name: &str) -> Option<NnModel> {
    match name {
        "MLP0" => Some(workloads::mlp0()),
        "MLP1" => Some(workloads::mlp1()),
        "LSTM0" => Some(workloads::lstm0()),
        "LSTM1" => Some(workloads::lstm1()),
        "CNN0" => Some(workloads::cnn0()),
        "CNN1" => Some(workloads::cnn1()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_six_workloads_resolve() {
        for n in ["MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0", "CNN1"] {
            assert!(resolve_workload(n).is_some(), "{n}");
        }
        assert!(resolve_workload("GPT4").is_none());
    }

    #[test]
    #[should_panic(expected = "unknown workload")]
    fn unknown_workload_is_rejected() {
        let _ = TenantSpec::new(
            "Resnet",
            ArrivalProcess::Poisson { rate_rps: 1.0 },
            BatchPolicy::Fixed { batch: 1 },
            7.0,
            100,
        );
    }

    #[test]
    fn bursty_mean_rate_is_preserved() {
        let a = ArrivalProcess::Bursty {
            rate_rps: 1000.0,
            burst_factor: 3.0,
            period_ms: 100.0,
            duty: 0.2,
        };
        // Time-average of rate_at over one period ≈ rate_rps.
        let steps = 10_000;
        let mean: f64 = (0..steps)
            .map(|i| a.rate_at(100.0 * i as f64 / steps as f64))
            .sum::<f64>()
            / steps as f64;
        assert!((mean - 1000.0).abs() / 1000.0 < 0.01, "mean {mean}");
        a.validate();
    }

    #[test]
    #[should_panic(expected = "burst_factor * duty")]
    fn saturated_duty_cycle_is_rejected_at_admission() {
        // burst_factor * duty = 1.25 would zero the off-phase rate and
        // stall the stream mid-simulation; validate() catches it up
        // front instead.
        ArrivalProcess::Bursty {
            rate_rps: 10_000.0,
            burst_factor: 5.0,
            period_ms: 20.0,
            duty: 0.25,
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "duty must lie strictly inside")]
    fn degenerate_duty_is_rejected() {
        ArrivalProcess::Bursty {
            rate_rps: 1.0,
            burst_factor: 2.0,
            period_ms: 10.0,
            duty: 1.0,
        }
        .validate();
    }

    #[test]
    fn calibrated_curve_is_used_unless_overridden() {
        let cfg = TpuConfig::paper();
        let base = TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps: 1.0 },
            BatchPolicy::Fixed { batch: 8 },
            7.0,
            100,
        );
        let calibrated = base.effective_curve(&cfg);
        assert!(calibrated.t1_ms > 0.0);
        let overridden = base
            .clone()
            .with_curve(ServiceCurve::tpu_mlp0_table4())
            .effective_curve(&cfg);
        assert_eq!(overridden, ServiceCurve::tpu_mlp0_table4());
    }
}
