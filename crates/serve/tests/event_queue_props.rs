//! Differential properties of the event core: the hierarchical timer
//! wheel must be observationally identical to the reference
//! `BinaryHeap` future-event list on *arbitrary* schedules — same pop
//! times, same payloads, same `(time, sequence)` ordering — because the
//! engines' bit-identical-per-seed contract rests on the queue.

use proptest::prelude::*;
use tpu_serve::sim::{EventQueue, QueueBackend};

/// One scripted action against both queues.
#[derive(Debug, Clone, Copy)]
enum Op {
    /// Schedule at `now + delta_quarters * 0.25` ms (quantized so
    /// exact-time collisions are common, exercising FIFO tie-breaks).
    Schedule { delta_quarters: u32 },
    /// Schedule at `now + delta_ms` with an arbitrary fractional offset
    /// (exercises keys that differ deep in the mantissa).
    ScheduleFine { delta_ms: f64 },
    /// Pop once (no-op on empty queues).
    Pop,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..64).prop_map(|delta_quarters| Op::Schedule { delta_quarters }),
        (0.0f64..1e7).prop_map(|delta_ms| Op::ScheduleFine { delta_ms }),
        Just(Op::Pop),
        Just(Op::Pop),
    ]
}

proptest! {
    /// Replay an arbitrary schedule/pop interleaving through both
    /// backends in lockstep; every observable must agree at every step.
    #[test]
    fn wheel_matches_reference_heap_on_arbitrary_schedules(
        ops in prop::collection::vec(op(), 1..400),
    ) {
        let mut wheel: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut heap: EventQueue<usize> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut payload = 0usize;
        for op in ops {
            match op {
                Op::Schedule { delta_quarters } => {
                    let at = wheel.now_ms() + delta_quarters as f64 * 0.25;
                    wheel.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
                Op::ScheduleFine { delta_ms } => {
                    let at = wheel.now_ms() + delta_ms;
                    wheel.schedule(at, payload);
                    heap.schedule(at, payload);
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(wheel.pop(), heap.pop());
                    prop_assert_eq!(wheel.now_ms().to_bits(), heap.now_ms().to_bits());
                }
            }
            prop_assert_eq!(wheel.len(), heap.len());
            prop_assert_eq!(wheel.is_empty(), heap.is_empty());
        }
        // Drain both: the full residual order must agree too.
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }

    /// Popped timestamps are nondecreasing and FIFO among equal times,
    /// checked against a straight sort of the scheduled (time, seq)
    /// pairs — the wheel alone, no reference queue in the loop.
    #[test]
    fn wheel_pops_in_time_then_sequence_order(
        deltas in prop::collection::vec((0u32..16, 1usize..6), 1..120),
    ) {
        let mut q: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut expected: Vec<(u64, usize)> = Vec::new();
        let mut seq = 0usize;
        for (delta, burst) in deltas {
            let at = q.now_ms() + delta as f64 * 0.5;
            for _ in 0..burst {
                q.schedule(at, seq);
                expected.push((at.to_bits(), seq));
                seq += 1;
            }
            // Interleave occasional pops so the hand advances and the
            // wheel re-buckets mid-run.
            if delta % 3 == 0 {
                if let Some((t, p)) = q.pop() {
                    let want = expected.iter().copied().min().expect("queue non-empty");
                    prop_assert_eq!((t.to_bits(), p), want);
                    expected.retain(|&e| e != want);
                }
            }
        }
        expected.sort_unstable();
        let mut got = Vec::new();
        while let Some((t, p)) = q.pop() {
            got.push((t.to_bits(), p));
        }
        prop_assert_eq!(got, expected);
    }

    /// The rung-spill threshold: a single-slot burst — many events at
    /// one identical timestamp, interleaved with pops and stragglers at
    /// nearby times — must (a) never grow the sorted bottom rung past
    /// the spill threshold once the burst lands there, and (b) stay
    /// observationally identical to the reference heap throughout.
    #[test]
    fn single_slot_burst_spills_and_matches_the_heap(
        bursts in prop::collection::vec(
            // (burst length, straggler offset in quarters, pops between)
            (1usize..600, 0u32..8, 0usize..64),
            1..8,
        ),
    ) {
        use tpu_serve::sim::RUNG_SPILL_THRESHOLD;
        let mut wheel: EventQueue<usize> = EventQueue::with_backend(QueueBackend::TimerWheel);
        let mut heap: EventQueue<usize> = EventQueue::with_backend(QueueBackend::BinaryHeap);
        let mut payload = 0usize;
        for (len, offset, pops) in bursts {
            // Start each burst from a drained queue: prime the rung
            // with one event and pop it, so the burst's timestamp is
            // exactly the rung's maximum key — the case the spill
            // threshold bounds (inserts *below* the rung max must still
            // grow the rung; they pop first).
            loop {
                let (a, b) = (wheel.pop(), heap.pop());
                prop_assert_eq!(a, b);
                if a.is_none() {
                    break;
                }
            }
            let at = wheel.now_ms() + 1.0;
            wheel.schedule(at, payload);
            heap.schedule(at, payload);
            payload += 1;
            prop_assert_eq!(wheel.pop(), heap.pop());
            // The single-slot burst: every event at exactly `at`.
            for _ in 0..len {
                wheel.schedule(at, payload);
                heap.schedule(at, payload);
                payload += 1;
                prop_assert!(
                    wheel.rung_len() <= RUNG_SPILL_THRESHOLD,
                    "rung grew past the spill threshold: {}",
                    wheel.rung_len()
                );
            }
            // A straggler at (or after) the burst time, then some pops.
            let late = at + offset as f64 * 0.25;
            wheel.schedule(late, payload);
            heap.schedule(late, payload);
            payload += 1;
            for _ in 0..pops {
                prop_assert_eq!(wheel.pop(), heap.pop());
            }
        }
        loop {
            let (a, b) = (wheel.pop(), heap.pop());
            prop_assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
