//! Property tests for the batching policies, driven through the real
//! host machinery: batches never exceed their configured bound,
//! timeout-bounded batching never holds a request past `t_max` (when a
//! die is available), and no tenant starves under mixed priorities.

use proptest::prelude::*;
use tpu_serve::event::{Event, EventQueue};
use tpu_serve::tenant::ArrivalProcess;
use tpu_serve::{run, BatchPolicy, ClusterSpec, Dispatch, HostCore, ServiceCurve, TenantSpec};

/// Drive a single tenant through a [`HostCore`] event loop and return
/// (latencies, largest dispatched batch).
fn drive_single(
    policy: BatchPolicy,
    rate_rps: f64,
    requests: usize,
    dies: usize,
    seed: u64,
    curve: ServiceCurve,
) -> (Vec<f64>, usize) {
    let spec = TenantSpec::new(
        "MLP0",
        ArrivalProcess::Poisson { rate_rps },
        policy,
        7.0,
        requests,
    )
    .with_curve(curve);
    let mut host = HostCore::new(dies, Dispatch::LeastLoaded, seed);
    host.add_slot(spec.clone(), curve);
    let mut source = spec.arrivals.source(&spec.name, requests, seed);
    let mut q = EventQueue::new();
    q.schedule(
        source.next_arrival_ms(0.0).expect("nonempty stream"),
        Event::Arrival { tenant: 0 },
    );
    let mut biggest_batch = 0usize;
    while let Some((now, event)) = q.pop() {
        match event {
            Event::Arrival { tenant } => {
                host.enqueue(tenant, now);
                match source.next_arrival_ms(now) {
                    Some(at) => q.schedule(at, Event::Arrival { tenant }),
                    None => host.set_draining(tenant, true),
                }
                host.after_arrival(tenant, now, &mut |at, e| q.schedule(at, e.into()));
            }
            Event::Timer { tenant, generation } => {
                if !host.on_timer(tenant, generation) {
                    continue;
                }
            }
            Event::DieFree { die } => {
                if let Some(done) = host.on_die_free(die, 0) {
                    biggest_batch = biggest_batch.max(done.completions);
                }
            }
            Event::WeightSwap { die } => {
                host.on_weight_swap(die);
                continue;
            }
        }
        host.try_dispatch(now, &mut |at, e| q.schedule(at, e.into()));
    }
    (host.slot_latencies(0), biggest_batch)
}

fn any_policy() -> impl Strategy<Value = BatchPolicy> {
    prop_oneof![
        (1usize..64).prop_map(|batch| BatchPolicy::Fixed { batch }),
        (1usize..64, 0.2f64..4.0).prop_map(|(max_batch, t_max_ms)| BatchPolicy::Timeout {
            max_batch,
            t_max_ms
        }),
        (1usize..64, 0.5f64..4.0).prop_map(|(max_batch, margin_ms)| BatchPolicy::SloAdaptive {
            max_batch,
            slo_ms: 7.0,
            margin_ms,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// No dispatched batch ever exceeds the policy's configured bound,
    /// and every request is served exactly once.
    #[test]
    fn batches_never_exceed_the_configured_size(
        policy in any_policy(),
        rate in 5_000.0f64..80_000.0,
        requests in 50usize..400,
        dies in 1usize..4,
        seed in 0u64..1_000,
    ) {
        let curve = ServiceCurve::new(0.3, 0.005, 0.0);
        let (latencies, biggest) = drive_single(policy, rate, requests, dies, seed, curve);
        prop_assert_eq!(latencies.len(), requests, "served exactly once");
        prop_assert!(
            biggest <= policy.max_batch(),
            "batch {} exceeds bound {}",
            biggest,
            policy.max_batch()
        );
        prop_assert!(biggest > 0, "something must dispatch");
    }

    /// With a die always available, timeout-bounded batching never
    /// holds a request longer than `t_max` before dispatch: every
    /// latency is below `t_max + service(max_batch)`.
    #[test]
    fn timeout_batching_never_holds_past_t_max(
        max_batch in 1usize..64,
        t_max_ms in 0.1f64..5.0,
        rate in 1_000.0f64..50_000.0,
        requests in 20usize..120,
        seed in 0u64..1_000,
    ) {
        let curve = ServiceCurve::new(0.3, 0.01, 0.0);
        let policy = BatchPolicy::Timeout { max_batch, t_max_ms };
        // One die per request: dispatch is never blocked on capacity,
        // so accumulation delay is the only wait.
        let (latencies, _) = drive_single(policy, rate, requests, requests, seed, curve);
        let bound = t_max_ms + curve.service_ms(max_batch) + 1e-6;
        for (i, l) in latencies.iter().enumerate() {
            prop_assert!(
                *l <= bound,
                "request {i}: latency {l} exceeds t_max {t_max_ms} + service bound"
            );
        }
    }

    /// Mixed priorities never starve anyone: with three tenants at
    /// arbitrary priorities sharing a pool at moderate load, every
    /// tenant's full request stream is served (the engine itself
    /// asserts completion; the property is that it holds across the
    /// whole priority/config space).
    #[test]
    fn no_tenant_starves_under_mixed_priorities(
        p0 in 1u8..10, p1 in 1u8..10, p2 in 1u8..10,
        seed in 0u64..1_000,
        dies in 1usize..4,
    ) {
        let cfg = tpu_core::TpuConfig::paper();
        let mk = |name: &str, prio: u8, requests: usize| {
            TenantSpec::new(
                "MLP0",
                ArrivalProcess::Poisson { rate_rps: 40_000.0 },
                BatchPolicy::Timeout { max_batch: 64, t_max_ms: 1.0 },
                7.0,
                requests,
            )
            .named(name)
            .with_priority(prio)
            .with_curve(ServiceCurve::tpu_mlp0_table4())
        };
        let tenants = [mk("a", p0, 300), mk("b", p1, 200), mk("c", p2, 100)];
        let report = run(&ClusterSpec::new(dies, seed), &tenants, &cfg);
        prop_assert_eq!(report.tenants[0].requests, 300);
        prop_assert_eq!(report.tenants[1].requests, 200);
        prop_assert_eq!(report.tenants[2].requests, 100);
        for t in &report.tenants {
            prop_assert!(t.slo_attainment > 0.0, "{} served nothing on time", t.name);
        }
    }
}
