//! Host-interaction overhead (Table 5).
//!
//! Table 5 reports, per application, the time the host CPU spends
//! communicating with the TPU over PCIe as a percentage of TPU execution
//! time — *not* including time the CPU spends running its own share of
//! the application, which the paper says it cannot measure ("we can't
//! measure when the TPU is idle since it is waiting for the CPU").
//!
//! These percentages are measured quantities of the production serving
//! stack (driver calls, request marshalling, interrupt handling), not
//! derivable from the device microarchitecture, so they enter the
//! reproduction as calibrated constants. The pure PCIe *data* time is
//! derivable and is exposed by the timing engine's counters; the test
//! below checks it is a plausible component (smaller than the Table 5
//! total, which includes software overhead).

use serde::{Deserialize, Serialize};

/// Host-CPU interaction time as a fraction of TPU execution time, per
/// application (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostOverhead {
    /// Fraction of TPU time spent in host interaction (0.21 = 21%).
    pub fraction: f64,
}

impl HostOverhead {
    /// Look up an application's measured overhead.
    ///
    /// # Panics
    ///
    /// Panics on an unknown application name.
    pub fn for_app(name: &str) -> Self {
        let fraction = match name {
            "MLP0" => 0.21,
            "MLP1" => 0.76,
            "LSTM0" => 0.11,
            "LSTM1" => 0.20,
            "CNN0" => 0.51,
            "CNN1" => 0.14,
            other => panic!("unknown application {other}"),
        };
        Self { fraction }
    }

    /// All six values in Table 1/5 order.
    pub fn table5() -> Vec<(&'static str, f64)> {
        ["MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0", "CNN1"]
            .iter()
            .map(|&n| (n, Self::for_app(n).fraction))
            .collect()
    }

    /// Derate a device-only throughput by this host overhead: the TPU and
    /// host interaction serialize at the serving layer, so effective
    /// throughput is `device_ips / (1 + fraction)`.
    pub fn derate_ips(&self, device_ips: f64) -> f64 {
        device_ips / (1.0 + self.fraction)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_values() {
        let t = HostOverhead::table5();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0], ("MLP0", 0.21));
        assert_eq!(t[1], ("MLP1", 0.76));
        assert_eq!(t[4], ("CNN0", 0.51));
    }

    #[test]
    fn derating_reduces_throughput() {
        let h = HostOverhead::for_app("MLP1");
        assert!((h.derate_ips(176.0) - 100.0).abs() < 1e-9);
        let none = HostOverhead { fraction: 0.0 };
        assert_eq!(none.derate_ips(123.0), 123.0);
    }

    #[test]
    #[should_panic(expected = "unknown application")]
    fn unknown_app_panics() {
        let _ = HostOverhead::for_app("VGG");
    }

    #[test]
    fn simulated_pcie_data_time_is_below_table5_totals() {
        // The timing engine's raw PCIe data-movement time must be a
        // component of (i.e. below) the measured interaction totals, which
        // also include driver software time.
        let cfg = tpu_core::TpuConfig::paper();
        for m in tpu_nn::workloads::all() {
            let ops = tpu_compiler::lower_timed(&m, &cfg, 1);
            let r = tpu_core::timing::run_timed(&cfg, &ops);
            let pcie_frac = r.counters.dma_cycles as f64 / r.counters.total_cycles as f64;
            let table5 = HostOverhead::for_app(m.name()).fraction;
            assert!(
                pcie_frac < table5 + 0.05,
                "{}: simulated PCIe fraction {pcie_frac:.3} should not exceed measured {table5}",
                m.name()
            );
        }
    }
}
