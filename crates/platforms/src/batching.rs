//! Batch-dispatch policies for the serving simulation.
//!
//! Section 8 of the paper ("Fallacy: NN inference applications in
//! datacenters value throughput as much as response time") records that
//! application writers "often opt for reduced latency over waiting for
//! bigger batches to accumulate". This module makes that trade-off
//! concrete: the same discrete-event server as
//! [`crate::queue_sim`] is driven by three dispatch policies —
//!
//! * [`Policy::Fixed`] — wait for exactly `B` requests (what the paper's
//!   Table 4 measures);
//! * [`Policy::TimeWindow`] — dispatch a partial batch once the oldest
//!   queued request has waited `window_ms` (bounding accumulation delay);
//! * [`Policy::Deadline`] — dispatch the moment the estimated completion
//!   of the *current* batch would encroach on the response-time limit,
//!   shrinking batches under bursts and growing them when the queue is
//!   deep.
//!
//! The experiments show the paper's qualitative claim as a mechanism: on a
//! steep service curve (CPU/GPU-like), bounded-wait policies trade
//! throughput for tail latency; on the TPU's near-flat curve the penalty
//! for small batches is tiny, which is *why* it can meet 7 ms at batch 200.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How the server decides when to dispatch the queued requests as a batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Policy {
    /// Dispatch when exactly `batch` requests have accumulated.
    Fixed {
        /// The fixed batch size.
        batch: usize,
    },
    /// Dispatch when `max_batch` requests have accumulated or the oldest
    /// queued request has waited `window_ms`, whichever comes first.
    TimeWindow {
        /// Upper bound on the batch size.
        max_batch: usize,
        /// Longest time the oldest request may wait before dispatch, ms.
        window_ms: f64,
    },
    /// Dispatch when waiting any longer would risk the oldest request
    /// missing `deadline_ms` (using the service-time model to estimate
    /// completion), or when `max_batch` requests have accumulated.
    Deadline {
        /// Upper bound on the batch size.
        max_batch: usize,
        /// Per-request response-time limit, ms.
        deadline_ms: f64,
        /// Safety margin subtracted from the deadline, ms.
        margin_ms: f64,
    },
}

impl Policy {
    /// The largest batch this policy will ever dispatch.
    pub fn max_batch(&self) -> usize {
        match *self {
            Policy::Fixed { batch } => batch,
            Policy::TimeWindow { max_batch, .. } | Policy::Deadline { max_batch, .. } => max_batch,
        }
    }
}

/// Configuration of one policy-driven serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchSimConfig {
    /// Offered load in requests per second.
    pub arrival_rate: f64,
    /// The dispatch policy under test.
    pub policy: Policy,
    /// Batch service intercept, ms.
    pub service_t0_ms: f64,
    /// Batch service slope, ms per request.
    pub service_t1_ms: f64,
    /// Lognormal sigma of the service-time multiplier (0 = deterministic).
    pub service_jitter_sigma: f64,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
}

impl BatchSimConfig {
    /// Mean service time for a batch of `b`, ms.
    pub fn service_ms(&self, b: usize) -> f64 {
        self.service_t0_ms + self.service_t1_ms * b as f64
    }

    /// Saturation throughput at the policy's maximum batch, requests/s.
    pub fn capacity_ips(&self) -> f64 {
        let b = self.policy.max_batch();
        b as f64 / self.service_ms(b) * 1000.0
    }
}

/// Result of one policy-driven simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchSimResult {
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Achieved throughput, requests/s.
    pub throughput_ips: f64,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Number of dispatched batches.
    pub batches: usize,
    /// Fraction of requests that met `deadline_ms` (1.0 when the policy
    /// carries no deadline).
    pub deadline_hit_rate: f64,
}

/// Run the policy-driven serving simulation.
///
/// # Panics
///
/// Panics if the configuration is degenerate: zero-sized batches, a
/// nonpositive arrival rate, negative service coefficients, or too few
/// requests for a stable 99th percentile.
///
/// # Examples
///
/// ```
/// use tpu_platforms::batching::{simulate_policy, BatchSimConfig, Policy};
///
/// let cfg = BatchSimConfig {
///     arrival_rate: 10_000.0,
///     policy: Policy::TimeWindow { max_batch: 64, window_ms: 2.0 },
///     service_t0_ms: 1.0,
///     service_t1_ms: 0.01,
///     service_jitter_sigma: 0.0,
///     requests: 20_000,
///     seed: 7,
/// };
/// let r = simulate_policy(&cfg);
/// assert!(r.mean_batch <= 64.0);
/// ```
pub fn simulate_policy(cfg: &BatchSimConfig) -> BatchSimResult {
    assert!(cfg.policy.max_batch() > 0, "batch must be positive");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.service_t0_ms >= 0.0 && cfg.service_t1_ms >= 0.0);
    assert!(cfg.requests >= 200, "need enough requests for a stable p99");

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mean_gap_ms = 1000.0 / cfg.arrival_rate;

    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap_ms * u.ln();
        arrivals.push(t);
    }

    let deadline = match cfg.policy {
        Policy::Deadline { deadline_ms, .. } => Some(deadline_ms),
        _ => None,
    };

    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut server_free = 0.0f64;
    let mut last_end = 0.0f64;
    let mut batches = 0usize;
    let mut dispatched = 0usize;
    let mut next = 0usize; // index of the first request not yet dispatched

    while next < arrivals.len() {
        let oldest = arrivals[next];
        // Requests queued by the time the server could start.
        let earliest_start = oldest.max(server_free);
        let queued_by = |time: f64| arrivals[next..].iter().take_while(|&&a| a <= time).count();

        // Decide dispatch time and batch size under the policy.
        let (start, batch) = match cfg.policy {
            Policy::Fixed { batch } => {
                let want = batch.min(arrivals.len() - next);
                let ready = arrivals[next + want - 1];
                (ready.max(server_free), want)
            }
            Policy::TimeWindow {
                max_batch,
                window_ms,
            } => {
                let cutoff = oldest + window_ms;
                // Dispatch at the earliest of: batch full, window expiry —
                // but never before the server is free.
                let mut time_full = f64::INFINITY;
                if arrivals.len() - next >= max_batch {
                    time_full = arrivals[next + max_batch - 1];
                }
                let start = time_full.min(cutoff).max(server_free);
                let b = queued_by(start).clamp(1, max_batch);
                (start.max(arrivals[next + b - 1]), b)
            }
            Policy::Deadline {
                max_batch,
                deadline_ms,
                margin_ms,
            } => {
                // Latest start such that the oldest request still meets its
                // deadline given the service time of the batch available
                // then. Solved by scanning candidate batch sizes.
                let budget = deadline_ms - margin_ms;
                let start_batch = queued_by(earliest_start).clamp(1, max_batch);
                let mut best_start = earliest_start;
                let mut best_batch = start_batch;
                for b in start_batch..=max_batch {
                    if next + b > arrivals.len() {
                        break;
                    }
                    let ready = arrivals[next + b - 1].max(server_free);
                    // Waiting for request b means the oldest request
                    // completes at ready + service(b).
                    if ready + cfg.service_ms(b) <= oldest + budget {
                        best_start = ready;
                        best_batch = b;
                    } else {
                        break;
                    }
                }
                (best_start, best_batch)
            }
        };

        let jitter = if cfg.service_jitter_sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (cfg.service_jitter_sigma * z).exp()
        } else {
            1.0
        };
        let end = start + cfg.service_ms(batch) * jitter;
        server_free = end;
        last_end = end;
        for &a in &arrivals[next..next + batch] {
            latencies.push(end - a);
        }
        next += batch;
        batches += 1;
        dispatched += batch;
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p) as usize];
    let hit_rate = match deadline {
        Some(d) => latencies.iter().filter(|&&l| l <= d).count() as f64 / latencies.len() as f64,
        None => 1.0,
    };
    BatchSimResult {
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        throughput_ips: cfg.requests as f64 / last_end * 1000.0,
        mean_batch: dispatched as f64 / batches as f64,
        batches,
        deadline_hit_rate: hit_rate,
    }
}

/// A TPU-like service curve (near-flat: host-dominated intercept).
pub fn tpu_service(policy: Policy, arrival_rate: f64) -> BatchSimConfig {
    BatchSimConfig {
        arrival_rate,
        policy,
        service_t0_ms: 0.873,
        service_t1_ms: 0.00008,
        service_jitter_sigma: 0.0,
        requests: 40_000,
        seed: 42,
    }
}

/// A GPU-like service curve (moderate slope, mild jitter).
pub fn gpu_service(policy: Policy, arrival_rate: f64) -> BatchSimConfig {
    BatchSimConfig {
        arrival_rate,
        policy,
        service_t0_ms: 5.5,
        service_t1_ms: 0.044,
        service_jitter_sigma: 0.15,
        requests: 40_000,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_policy_matches_queue_sim_mechanism() {
        // Fixed dispatch here must reproduce the same operating point as
        // crate::queue_sim's fixed-batch engine (they share the mechanism).
        let cfg = tpu_service(Policy::Fixed { batch: 200 }, 180_000.0);
        let r = simulate_policy(&cfg);
        let legacy = crate::queue_sim::simulate(&crate::queue_sim::QueueSimConfig {
            arrival_rate: 180_000.0,
            batch: 200,
            service_t0_ms: cfg.service_t0_ms,
            service_t1_ms: cfg.service_t1_ms,
            service_jitter_sigma: 0.0,
            requests: cfg.requests,
            seed: cfg.seed,
        });
        assert!(
            (r.p99_ms - legacy.p99_ms).abs() < 0.5,
            "{} vs {}",
            r.p99_ms,
            legacy.p99_ms
        );
    }

    #[test]
    fn time_window_bounds_accumulation_delay_at_low_load() {
        // At a trickle of traffic a fixed batch of 64 waits enormous times;
        // a 2 ms window caps the wait.
        let trickle = 1_000.0; // ~1 request/ms
        let fixed = simulate_policy(&tpu_service(Policy::Fixed { batch: 64 }, trickle));
        let window = simulate_policy(&tpu_service(
            Policy::TimeWindow {
                max_batch: 64,
                window_ms: 2.0,
            },
            trickle,
        ));
        assert!(
            window.p99_ms < fixed.p99_ms / 2.0,
            "{} vs {}",
            window.p99_ms,
            fixed.p99_ms
        );
        assert!(window.mean_batch < 64.0);
    }

    #[test]
    fn time_window_reaches_full_batches_at_high_load() {
        let flood = 500_000.0;
        let r = simulate_policy(&tpu_service(
            Policy::TimeWindow {
                max_batch: 64,
                window_ms: 5.0,
            },
            flood,
        ));
        assert!(r.mean_batch > 55.0, "mean batch {}", r.mean_batch);
    }

    #[test]
    fn deadline_policy_meets_its_deadline_under_moderate_load() {
        // The margin must absorb the lognormal service jitter; with two
        // milliseconds of headroom the hit rate clears 97%.
        let cfg = gpu_service(
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 14.0,
                margin_ms: 2.0,
            },
            2_500.0,
        );
        let r = simulate_policy(&cfg);
        assert!(
            r.deadline_hit_rate > 0.97,
            "hit rate {}",
            r.deadline_hit_rate
        );
    }

    #[test]
    fn wider_margin_raises_hit_rate() {
        let tight = simulate_policy(&gpu_service(
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 14.0,
                margin_ms: 0.5,
            },
            2_500.0,
        ));
        let wide = simulate_policy(&gpu_service(
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 14.0,
                margin_ms: 3.0,
            },
            2_500.0,
        ));
        assert!(wide.deadline_hit_rate >= tight.deadline_hit_rate);
    }

    #[test]
    fn deadline_policy_grows_batches_with_load() {
        let lo = simulate_policy(&gpu_service(
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 14.0,
                margin_ms: 1.0,
            },
            500.0,
        ));
        let hi = simulate_policy(&gpu_service(
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 14.0,
                margin_ms: 1.0,
            },
            4_000.0,
        ));
        assert!(
            hi.mean_batch > lo.mean_batch + 1.0,
            "batches should grow with load: {} vs {}",
            hi.mean_batch,
            lo.mean_batch
        );
    }

    #[test]
    fn latency_limit_costs_gpu_capacity_but_not_tpu() {
        // The paper's core serving asymmetry (Table 4): a 7 ms limit lets
        // the TPU keep its largest batch (service stays ~0.9 ms at any B),
        // while the GPU-like curve must shrink its batch and forfeit most
        // of its saturation throughput.
        let tpu = tpu_service(Policy::Fixed { batch: 256 }, 1.0);
        let gpu = gpu_service(Policy::Fixed { batch: 256 }, 1.0);
        let fits = |cfg: &BatchSimConfig| {
            (1..=256)
                .rev()
                .find(|&b| cfg.service_ms(b) <= 7.0)
                .unwrap_or(1)
        };
        let tpu_fit = fits(&tpu);
        let gpu_fit = fits(&gpu);
        assert_eq!(tpu_fit, 256, "every TPU batch fits in 7 ms");
        assert!(gpu_fit < 40, "GPU batch must shrink: {gpu_fit}");
        let retained = |cfg: &BatchSimConfig, b: usize| {
            (b as f64 / cfg.service_ms(b)) / (256.0 / cfg.service_ms(256))
        };
        assert!(retained(&tpu, tpu_fit) > 0.999);
        assert!(retained(&gpu, gpu_fit) < 0.5, "{}", retained(&gpu, gpu_fit));
    }

    #[test]
    fn results_are_reproducible() {
        let cfg = gpu_service(
            Policy::TimeWindow {
                max_batch: 32,
                window_ms: 3.0,
            },
            3_000.0,
        );
        assert_eq!(simulate_policy(&cfg), simulate_policy(&cfg));
    }

    #[test]
    fn mean_batch_never_exceeds_policy_maximum() {
        for rate in [500.0, 5_000.0, 50_000.0] {
            for policy in [
                Policy::Fixed { batch: 32 },
                Policy::TimeWindow {
                    max_batch: 32,
                    window_ms: 1.0,
                },
                Policy::Deadline {
                    max_batch: 32,
                    deadline_ms: 10.0,
                    margin_ms: 0.5,
                },
            ] {
                let r = simulate_policy(&tpu_service(policy, rate));
                assert!(r.mean_batch <= 32.0 + 1e-9);
                assert!(r.mean_batch >= 1.0);
            }
        }
    }

    #[test]
    fn every_request_is_accounted_for() {
        let cfg = tpu_service(
            Policy::TimeWindow {
                max_batch: 16,
                window_ms: 0.5,
            },
            2_000.0,
        );
        let r = simulate_policy(&cfg);
        let total = (r.mean_batch * r.batches as f64).round() as usize;
        assert_eq!(total, cfg.requests);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let cfg = tpu_service(Policy::Fixed { batch: 0 }, 100.0);
        let _ = simulate_policy(&cfg);
    }

    #[test]
    fn policy_max_batch_accessor() {
        assert_eq!(Policy::Fixed { batch: 7 }.max_batch(), 7);
        assert_eq!(
            Policy::TimeWindow {
                max_batch: 9,
                window_ms: 1.0
            }
            .max_batch(),
            9
        );
        assert_eq!(
            Policy::Deadline {
                max_batch: 11,
                deadline_ms: 7.0,
                margin_ms: 1.0
            }
            .max_batch(),
            11
        );
    }
}
