//! Section 8 "newer chips" what-if: the NVIDIA P40.
//!
//! The paper's final fallacy ("CPU and GPU results would be comparable to
//! the TPU if we ... compared to newer versions") names the P40: a 16 nm,
//! 1.5 GHz, 250 W datacenter GPU with 47 Tera 8-bit ops/s — but
//! unavailable in early 2015 and with an unknown fraction of peak
//! deliverable under rigid latency bounds. This module makes the paper's
//! argument quantitative: even granting the P40 its full peak, its peak
//! TOPS/Watt is far below the TPU's, and under the same latency-bounded
//! serving model that derates the K80, its *delivered* advantage shrinks
//! further.

use crate::achieved::{calibrate_baselines, tpu_served_ips};
use crate::roofline::Roofline;
use serde::{Deserialize, Serialize};
use tpu_core::TpuConfig;
use tpu_nn::model::{NnKind, NnModel};
use tpu_nn::workloads;

/// The P40 numbers Section 8 quotes, plus the board memory bandwidth
/// (GDDR5X, from the vendor board specification — the paper quotes only
/// process, clock, power, and peak ops).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P40Spec {
    /// Process node in nm.
    pub process_nm: u32,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Board TDP in Watts.
    pub tdp_w: f64,
    /// Peak 8-bit TOPS.
    pub peak_tops_8b: f64,
    /// Memory bandwidth in GB/s.
    pub mem_gb_s: f64,
}

impl P40Spec {
    /// The Section 8 figures: "new 16-nm, 1.5GHz, 250W P40 ... 47 Tera
    /// 8-bit ops/sec".
    pub fn paper() -> Self {
        P40Spec {
            process_nm: 16,
            clock_mhz: 1500.0,
            tdp_w: 250.0,
            peak_tops_8b: 47.0,
            mem_gb_s: 346.0,
        }
    }

    /// The P40's roofline (peak 8-bit ops; 2 ops per MAC).
    pub fn roofline(&self) -> Roofline {
        Roofline::new(self.peak_tops_8b * 1e12 / 2.0, self.mem_gb_s * 1e9)
    }

    /// Peak TOPS per Watt at TDP.
    pub fn peak_tops_per_watt(&self) -> f64 {
        self.peak_tops_8b / self.tdp_w
    }
}

/// Peak-level comparison of the P40 against the TPU (Section 8's own
/// framing: peak numbers, before any latency derating).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct P40PeakComparison {
    /// P40 peak TOPS/Watt at its 250 W TDP.
    pub p40_tops_per_watt: f64,
    /// TPU peak TOPS/Watt at its measured 40 W busy power.
    pub tpu_tops_per_watt_busy: f64,
    /// TPU peak TOPS/Watt at its 75 W TDP.
    pub tpu_tops_per_watt_tdp: f64,
    /// TPU-busy over P40 peak-efficiency ratio.
    pub tpu_advantage_busy: f64,
}

/// Compute the peak-efficiency comparison.
pub fn p40_peak_comparison() -> P40PeakComparison {
    let p40 = P40Spec::paper();
    // Table 2: TPU peak 92 TOPS, 75 W TDP, 40 W measured busy.
    let tpu_peak = 92.0;
    let p = p40.peak_tops_per_watt();
    let busy = tpu_peak / 40.0;
    let tdp = tpu_peak / 75.0;
    P40PeakComparison {
        p40_tops_per_watt: p,
        tpu_tops_per_watt_busy: busy,
        tpu_tops_per_watt_tdp: tdp,
        tpu_advantage_busy: busy / p,
    }
}

/// One application's latency-bounded P40 prediction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct P40Row {
    /// Application name.
    pub app: String,
    /// Predicted P40 inferences/s per die under the serving model.
    pub p40_ips: f64,
    /// TPU inferences/s per die (simulated, host-derated).
    pub tpu_ips: f64,
    /// TPU over P40.
    pub tpu_over_p40: f64,
    /// Fraction of P40 peak the prediction delivers.
    pub p40_peak_fraction: f64,
}

fn latency_batch(model: &NnModel) -> usize {
    match model.kind() {
        NnKind::Mlp | NnKind::Lstm => 16.min(model.batch()),
        NnKind::Cnn => model.batch(),
    }
}

/// Predict per-die P40 throughput for the six applications by running
/// the same latency-bounded roofline + family-efficiency model used for
/// the K80 (the paper: "we also can't know the fraction of P40 peak
/// delivered within our rigid time bounds" — this model supplies the
/// K80-calibrated answer).
pub fn p40_comparison(cfg: &TpuConfig) -> Vec<P40Row> {
    let p40 = P40Spec::paper();
    let roofline = p40.roofline();
    let baselines = calibrate_baselines(cfg);
    workloads::all()
        .iter()
        .map(|m| {
            let batch = latency_batch(m);
            let intensity = batch as f64 * m.macs_per_example() as f64 / m.total_weights() as f64;
            let raw_ips = roofline.attainable_macs(intensity) / m.macs_per_example() as f64;
            let eff = match m.kind() {
                NnKind::Mlp => baselines.gpu.mlp,
                NnKind::Lstm => baselines.gpu.lstm,
                NnKind::Cnn => baselines.gpu.cnn,
            };
            let p40_ips = raw_ips * eff;
            let tpu_ips = tpu_served_ips(m, cfg);
            let delivered_tops = 2.0 * p40_ips * m.macs_per_example() as f64 / 1e12;
            P40Row {
                app: m.name().to_string(),
                p40_ips,
                tpu_ips,
                tpu_over_p40: tpu_ips / p40_ips,
                p40_peak_fraction: delivered_tops / p40.peak_tops_8b,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p40_peak_numbers_match_section8() {
        let p40 = P40Spec::paper();
        assert_eq!(p40.process_nm, 16);
        assert_eq!(p40.tdp_w, 250.0);
        assert_eq!(p40.peak_tops_8b, 47.0);
        // 47/250 = 0.188 peak TOPS/W.
        assert!((p40.peak_tops_per_watt() - 0.188).abs() < 1e-3);
    }

    #[test]
    fn tpu_peak_efficiency_is_an_order_of_magnitude_above_p40() {
        let c = p40_peak_comparison();
        // 92/40 = 2.3 vs 0.188: ~12x.
        assert!(
            c.tpu_advantage_busy > 10.0 && c.tpu_advantage_busy < 14.0,
            "{c:?}"
        );
        assert!(c.tpu_tops_per_watt_tdp > 1.0);
    }

    #[test]
    fn p40_roofline_ridge_is_far_left_of_tpu() {
        let rp = P40Spec::paper().roofline().ridge_point();
        // 23.5e12 MACs / 346e9 B/s = ~68 MAC/byte: still left of 1350.
        assert!(rp > 40.0 && rp < 100.0, "{rp}");
    }

    #[test]
    fn latency_bounded_p40_delivers_a_small_peak_fraction_on_mlps() {
        let cfg = TpuConfig::paper();
        let rows = p40_comparison(&cfg);
        assert_eq!(rows.len(), 6);
        let mlp0 = &rows[0];
        assert_eq!(mlp0.app, "MLP0");
        // Memory-bound at batch 16: single-digit percent of 47 TOPS.
        assert!(mlp0.p40_peak_fraction < 0.10, "{mlp0:?}");
        assert!(mlp0.p40_ips > 0.0);
    }

    #[test]
    fn cnns_deliver_more_of_p40_peak_than_mlps() {
        let cfg = TpuConfig::paper();
        let rows = p40_comparison(&cfg);
        let frac = |name: &str| {
            rows.iter()
                .find(|r| r.app == name)
                .map(|r| r.p40_peak_fraction)
                .unwrap()
        };
        assert!(frac("CNN0") > frac("MLP0"));
        assert!(frac("CNN1") > frac("MLP1"));
    }
}
