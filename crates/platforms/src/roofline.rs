//! The Roofline performance model (Section 4, Figures 5-8).
//!
//! Adapted from HPC \[Wil09\] with the paper's two changes for quantized
//! inference: operations are integer (MACs), and operational intensity is
//! redefined as operations per byte of *weights* read, since weights do
//! not fit on chip. Performance is plotted in ops/s (2 per MAC); the ridge
//! point — where the slanted bandwidth bound meets the flat compute
//! ceiling — is `peak_macs / bandwidth`: ~1350 for the TPU, 13 for
//! Haswell, 9 for the K80.

use crate::spec::ChipSpec;
use serde::{Deserialize, Serialize};

/// A roofline: a compute ceiling and a bandwidth slant.
///
/// # Examples
///
/// ```
/// use tpu_platforms::roofline::Roofline;
/// use tpu_platforms::spec::ChipSpec;
///
/// let tpu = Roofline::from_spec(&ChipSpec::tpu());
/// assert!((tpu.ridge_point() - 1352.9).abs() < 5.0);
/// // MLP0 at intensity 200 is memory bound:
/// assert!(tpu.attainable_tops(200.0) < tpu.peak_tops());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak computation in MACs per second.
    peak_macs: f64,
    /// Weight-memory bandwidth in bytes per second.
    bw: f64,
}

impl Roofline {
    /// Build from explicit peak (MACs/s) and bandwidth (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics unless both are positive and finite.
    pub fn new(peak_macs: f64, bw: f64) -> Self {
        assert!(
            peak_macs > 0.0 && peak_macs.is_finite(),
            "peak must be positive"
        );
        assert!(bw > 0.0 && bw.is_finite(), "bandwidth must be positive");
        Self { peak_macs, bw }
    }

    /// Build from a Table 2 platform spec.
    pub fn from_spec(spec: &ChipSpec) -> Self {
        Self::new(spec.roofline_peak_macs(), spec.mem_bytes_per_sec())
    }

    /// Peak performance in TOPS (2 ops per MAC).
    pub fn peak_tops(&self) -> f64 {
        2.0 * self.peak_macs / 1e12
    }

    /// Ridge point in MACs per weight byte.
    pub fn ridge_point(&self) -> f64 {
        self.peak_macs / self.bw
    }

    /// Attainable performance in MACs/s at a given operational intensity
    /// (MACs per weight byte): `min(peak, bw * intensity)`.
    pub fn attainable_macs(&self, intensity: f64) -> f64 {
        (self.bw * intensity.max(0.0)).min(self.peak_macs)
    }

    /// Attainable performance in TOPS.
    pub fn attainable_tops(&self, intensity: f64) -> f64 {
        2.0 * self.attainable_macs(intensity) / 1e12
    }

    /// Whether an application at `intensity` is limited by bandwidth
    /// (under the slant) rather than compute.
    pub fn is_memory_bound(&self, intensity: f64) -> bool {
        intensity < self.ridge_point()
    }

    /// Sample the roofline curve at `n` log-spaced intensities in
    /// `[lo, hi]`, for plotting Figures 5-8. Returns `(intensity, tops)`
    /// pairs.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo < hi` and `n >= 2`.
    pub fn series(&self, lo: f64, hi: f64, n: usize) -> Vec<(f64, f64)> {
        assert!(lo > 0.0 && hi > lo && n >= 2, "need a positive log range");
        let step = (hi / lo).ln() / (n - 1) as f64;
        (0..n)
            .map(|i| {
                let x = lo * (step * i as f64).exp();
                (x, self.attainable_tops(x))
            })
            .collect()
    }
}

/// One application point on a roofline plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppPoint {
    /// Application name.
    pub name: String,
    /// Operational intensity in MACs per weight byte.
    pub intensity: f64,
    /// The roofline bound at that intensity, in TOPS.
    pub roofline_tops: f64,
    /// Achieved performance in TOPS (measured/simulated), if known.
    pub achieved_tops: Option<f64>,
}

/// Place an application (by intensity) on a roofline.
pub fn app_point(
    name: &str,
    intensity: f64,
    roofline: &Roofline,
    achieved_tops: Option<f64>,
) -> AppPoint {
    AppPoint {
        name: name.to_string(),
        intensity,
        roofline_tops: roofline.attainable_tops(intensity),
        achieved_tops,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tpu() -> Roofline {
        Roofline::from_spec(&ChipSpec::tpu())
    }

    #[test]
    fn peak_matches_92_tops() {
        assert!((tpu().peak_tops() - 92.0).abs() < 0.5);
    }

    #[test]
    fn slant_below_ridge_flat_above() {
        let r = tpu();
        let ridge = r.ridge_point();
        // Below the ridge, attainable scales linearly with intensity.
        let a = r.attainable_macs(ridge / 4.0);
        let b = r.attainable_macs(ridge / 2.0);
        assert!((b / a - 2.0).abs() < 1e-9);
        // Above the ridge, it is flat at peak.
        assert_eq!(
            r.attainable_macs(ridge * 2.0),
            r.attainable_macs(ridge * 10.0)
        );
        assert!((r.attainable_tops(ridge * 2.0) - r.peak_tops()).abs() < 1e-9);
    }

    #[test]
    fn memory_bound_classification_matches_paper() {
        // MLPs and LSTMs (intensity 64..200) memory bound on the TPU;
        // CNN0 (2888) compute bound.
        let r = tpu();
        for i in [200.0, 168.0, 64.0, 96.0] {
            assert!(r.is_memory_bound(i));
        }
        assert!(!r.is_memory_bound(2888.0));
    }

    #[test]
    fn cpu_gpu_ridges_far_left_of_tpu() {
        let cpu = Roofline::from_spec(&ChipSpec::haswell());
        let gpu = Roofline::from_spec(&ChipSpec::k80());
        assert!(cpu.ridge_point() < 15.0);
        assert!(gpu.ridge_point() < cpu.ridge_point());
        assert!(tpu().ridge_point() > 100.0 * gpu.ridge_point());
    }

    #[test]
    fn mlp0_attainable_on_tpu_matches_hand_calc() {
        // 34 GB/s * 200 MAC/byte * 2 ops = 13.6 TOPS bound for MLP0.
        let bound = tpu().attainable_tops(200.0);
        assert!((bound - 13.6).abs() < 0.1, "got {bound}");
    }

    #[test]
    fn series_is_monotone_and_covers_range() {
        let r = tpu();
        let s = r.series(1.0, 10_000.0, 64);
        assert_eq!(s.len(), 64);
        assert!((s[0].0 - 1.0).abs() < 1e-9);
        assert!((s[63].0 - 10_000.0).abs() < 1e-6 * 10_000.0);
        for w in s.windows(2) {
            assert!(w[1].0 > w[0].0);
            assert!(w[1].1 >= w[0].1 - 1e-12);
        }
    }

    #[test]
    fn app_point_carries_achieved() {
        let p = app_point("MLP0", 200.0, &tpu(), Some(12.3));
        assert_eq!(p.name, "MLP0");
        assert!(p.achieved_tops.unwrap() <= p.roofline_tops + 1.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = Roofline::new(1e12, 0.0);
    }
}
