//! Discrete-event serving simulation.
//!
//! The analytic [`crate::latency::ServingModel`] is calibrated to Table 4;
//! this module *derives* the same mechanism from first principles: Poisson
//! request arrivals are accumulated into fixed-size batches, each batch is
//! served in `s(B) = t0 + t1*B` milliseconds (optionally with a lognormal
//! jitter multiplier), and per-request latency is measured end to end. It
//! demonstrates the paper's central serving claims as emergent behaviour:
//!
//! * 99th-percentile latency grows with batch size (requests wait for
//!   their batch to fill and for the pipeline to drain);
//! * **execution-time variance inflates the tail**: "the TPU's
//!   deterministic execution model is a better match to the
//!   99th-percentile response-time requirement ... than the time-varying
//!   optimizations of CPUs and GPUs" — with identical *mean* service
//!   time, a jittery server misses a deadline a deterministic one meets.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of one serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueueSimConfig {
    /// Offered load in requests per second.
    pub arrival_rate: f64,
    /// Batch size: a batch is dispatched when full.
    pub batch: usize,
    /// Batch service intercept, ms.
    pub service_t0_ms: f64,
    /// Batch service slope, ms per request.
    pub service_t1_ms: f64,
    /// Lognormal sigma of the service-time multiplier (0.0 =
    /// deterministic execution, the TPU's regime).
    pub service_jitter_sigma: f64,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
}

impl QueueSimConfig {
    /// Mean service time for one batch, ms.
    pub fn mean_service_ms(&self) -> f64 {
        self.service_t0_ms + self.service_t1_ms * self.batch as f64
    }

    /// The server's saturation throughput, requests/s.
    pub fn capacity_ips(&self) -> f64 {
        self.batch as f64 / self.mean_service_ms() * 1000.0
    }
}

/// Result of one simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueueSimResult {
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Achieved throughput, requests/s.
    pub throughput_ips: f64,
    /// Requests simulated.
    pub requests: usize,
}

/// Run the simulation.
///
/// # Panics
///
/// Panics if the configuration is degenerate (zero batch, nonpositive
/// rate or service time, too few requests to estimate a 99th percentile).
pub fn simulate(cfg: &QueueSimConfig) -> QueueSimResult {
    assert!(cfg.batch > 0, "batch must be positive");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.service_t0_ms >= 0.0 && cfg.service_t1_ms >= 0.0);
    assert!(cfg.requests >= 200, "need enough requests for a stable p99");

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mean_gap_ms = 1000.0 / cfg.arrival_rate;

    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        // Exponential inter-arrival times (Poisson process).
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap_ms * u.ln();
        arrivals.push(t);
    }

    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut server_free = 0.0f64;
    let mut last_end = 0.0f64;
    for chunk in arrivals.chunks(cfg.batch) {
        // A batch dispatches when its last member has arrived and the
        // server is free.
        let ready = *chunk.last().expect("nonempty chunk");
        let start = ready.max(server_free);
        let jitter = crate::jitter::lognormal_multiplier(&mut rng, cfg.service_jitter_sigma);
        let service = (cfg.service_t0_ms + cfg.service_t1_ms * chunk.len() as f64) * jitter;
        let end = start + service;
        server_free = end;
        last_end = end;
        for &a in chunk {
            latencies.push(end - a);
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p) as usize];
    QueueSimResult {
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        throughput_ips: cfg.requests as f64 / last_end * 1000.0,
        requests: cfg.requests,
    }
}

/// A TPU-like server on MLP0: near-flat batch service (host-dominated
/// intercept), deterministic execution.
pub fn tpu_like(batch: usize, arrival_rate: f64) -> QueueSimConfig {
    QueueSimConfig {
        arrival_rate,
        batch,
        service_t0_ms: 0.873,
        service_t1_ms: 0.00008,
        service_jitter_sigma: 0.0,
        requests: 40_000,
        seed: 42,
    }
}

/// A CPU-like server on MLP0: steep batch service with time-varying
/// execution (caches, out-of-order, DVFS => lognormal jitter).
pub fn cpu_like(batch: usize, arrival_rate: f64) -> QueueSimConfig {
    QueueSimConfig {
        arrival_rate,
        batch,
        service_t0_ms: 2.275,
        service_t1_ms: 0.0402,
        service_jitter_sigma: 0.25,
        requests: 40_000,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn p99_grows_with_batch() {
        // Offered load fixed at half the *smaller* batch's capacity, so
        // neither configuration saturates; the larger batch then pays
        // pure accumulation latency.
        let rate = 0.5 * tpu_like(64, 1.0).capacity_ips();
        let small = simulate(&tpu_like(64, rate));
        let large = simulate(&tpu_like(256, rate));
        assert!(
            large.p99_ms > small.p99_ms,
            "batch 256 p99 {} must exceed batch 64 p99 {}",
            large.p99_ms,
            small.p99_ms
        );
    }

    #[test]
    fn determinism_keeps_the_tail_tight() {
        // Same mean service time, same offered load at 85% of capacity —
        // high enough that queueing amplifies service variance (Kingman's
        // law); only the jitter differs.
        let rate = 0.85 * tpu_like(128, 1.0).capacity_ips();
        let mut jittery = tpu_like(128, rate);
        jittery.service_jitter_sigma = 0.4;
        let det = simulate(&tpu_like(128, rate));
        let jit = simulate(&jittery);
        assert!(
            jit.p99_ms > 1.3 * det.p99_ms,
            "jittery p99 {} should far exceed deterministic p99 {}",
            jit.p99_ms,
            det.p99_ms
        );
        // Median moves far less than the tail: variance is a tail tax.
        let tail_ratio = jit.p99_ms / det.p99_ms;
        let median_ratio = jit.p50_ms / det.p50_ms;
        assert!(tail_ratio > median_ratio);
    }

    #[test]
    fn tpu_like_meets_7ms_at_batch_200() {
        // The emergent version of Table 4's TPU row: batch 200 at high
        // load, device-deterministic service => tail under ~7 ms without
        // the analytic model in the loop.
        let cfg = tpu_like(200, 180_000.0);
        let r = simulate(&cfg);
        assert!(r.p99_ms < 7.0, "TPU-like p99 {} ms", r.p99_ms);
        assert!(r.throughput_ips > 100_000.0);
    }

    #[test]
    fn cpu_like_misses_7ms_at_batch_64() {
        // And Table 4's CPU row: batch 64 blows through the limit.
        let cfg = cpu_like(64, 11_000.0);
        let r = simulate(&cfg);
        assert!(r.p99_ms > 7.0, "CPU-like batch-64 p99 {} ms", r.p99_ms);
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let cfg = tpu_like(128, 50_000.0);
        let r = simulate(&cfg);
        assert!(
            (r.throughput_ips - 50_000.0).abs() / 50_000.0 < 0.1,
            "throughput {} vs offered 50k",
            r.throughput_ips
        );
    }

    #[test]
    fn saturated_throughput_capped_by_capacity() {
        let cfg = cpu_like(16, 1_000_000.0);
        let r = simulate(&cfg);
        assert!(
            r.throughput_ips <= cfg.capacity_ips() * 1.25,
            "throughput {} vs capacity {} (jitter allows some wobble)",
            r.throughput_ips,
            cfg.capacity_ips()
        );
    }

    #[test]
    fn results_are_reproducible() {
        let a = simulate(&cpu_like(16, 5000.0));
        let b = simulate(&cpu_like(16, 5000.0));
        assert_eq!(a, b, "seeded simulation must be deterministic");
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_panics() {
        let mut cfg = tpu_like(1, 100.0);
        cfg.batch = 0;
        let _ = simulate(&cfg);
    }
}
