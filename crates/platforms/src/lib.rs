//! # tpu-platforms — the CPU, GPU, and TPU platform models
//!
//! The comparison half of the ISCA 2017 evaluation: Table 2 platform
//! specifications ([`spec`]), the adapted Roofline model of Section 4
//! ([`roofline`]), the latency-bounded serving model behind Table 4
//! ([`latency`]), measured host-interaction overheads of Table 5
//! ([`host`]), and the achieved-performance composition of Table 6
//! ([`achieved`]) that combines the simulated TPU with calibrated
//! roofline baselines.
//!
//! ```
//! use tpu_platforms::roofline::Roofline;
//! use tpu_platforms::spec::ChipSpec;
//!
//! // The TPU's ridge point sits at ~1350 MACs per weight byte...
//! let tpu = Roofline::from_spec(&ChipSpec::tpu());
//! assert!(tpu.is_memory_bound(200.0));   // ...so MLP0 is memory bound,
//! assert!(!tpu.is_memory_bound(2888.0)); // and CNN0 is compute bound.
//! ```

#![warn(missing_docs)]

pub mod achieved;
pub mod batching;
pub mod boost;
pub mod host;
pub mod jitter;
pub mod latency;
pub mod queue_sim;
pub mod roofline;
pub mod server;
pub mod spec;
pub mod whatif;

pub use achieved::{table6, Table6};
pub use batching::{simulate_policy, BatchSimConfig, BatchSimResult, Policy};
pub use boost::BoostMode;
pub use host::HostOverhead;
pub use latency::{table4, ServingModel};
pub use queue_sim::{simulate as simulate_serving, QueueSimConfig, QueueSimResult};
pub use roofline::Roofline;
pub use server::{simulate_server, Dispatch, ServerSimConfig, ServerSimResult};
pub use spec::{ChipSpec, Platform};
pub use whatif::{p40_comparison, p40_peak_comparison, P40Spec};
