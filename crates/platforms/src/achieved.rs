//! Achieved per-die inference performance (Table 6).
//!
//! Table 6 reports per-die throughput relative to Haswell, including host
//! overhead: GM 1.1x (K80) / 14.5x (TPU), WM 1.9x / 29.2x.
//!
//! Composition of the reproduction:
//!
//! * **TPU** throughput is *simulated*: the timing engine runs each
//!   compiled workload and the result is derated by the measured Table 5
//!   host-interaction overhead.
//! * **CPU/GPU** throughput is a roofline model at the latency-bounded
//!   batch (16 for MLPs/LSTMs per Table 4; the full batch for the
//!   compute-bound CNNs), scaled by a per-family efficiency factor
//!   calibrated on one anchor application per family (MLP0 from Table 4's
//!   measured IPS; LSTM0 and CNN0 from their Table 6 columns). The three
//!   remaining applications (MLP1, LSTM1, CNN1) are *predictions* of the
//!   calibrated model.
//!
//! EXPERIMENTS.md records where the predictions land relative to the
//! published columns.

use crate::host::HostOverhead;
use crate::roofline::Roofline;
use crate::spec::ChipSpec;
use serde::{Deserialize, Serialize};
use tpu_core::TpuConfig;
use tpu_nn::model::{NnKind, NnModel};
use tpu_nn::workloads;

/// Latency-bounded batch used on CPU/GPU for memory-bound families
/// (Table 4: batch 16 under the 7 ms limit).
const CPU_GPU_LATENCY_BATCH: usize = 16;

/// Device-only TPU throughput for one workload, inferences/second, from
/// the timing simulator.
pub fn tpu_device_ips(model: &NnModel, cfg: &TpuConfig) -> f64 {
    let batches = 2;
    let ops = tpu_compiler::lower_timed(model, cfg, batches);
    let report = tpu_core::timing::run_timed(cfg, &ops);
    let seconds = report.counters.total_cycles as f64 / cfg.clock_hz as f64;
    (model.batch() * batches) as f64 / seconds
}

/// TPU throughput including host interaction (Table 5 derating).
pub fn tpu_served_ips(model: &NnModel, cfg: &TpuConfig) -> f64 {
    HostOverhead::for_app(model.name()).derate_ips(tpu_device_ips(model, cfg))
}

/// Roofline-bound throughput of a CPU/GPU die on a workload at the
/// latency-bounded batch, before the efficiency factor.
fn raw_roofline_ips(model: &NnModel, spec: &ChipSpec) -> f64 {
    let batch = match model.kind() {
        NnKind::Mlp | NnKind::Lstm => CPU_GPU_LATENCY_BATCH.min(model.batch()),
        NnKind::Cnn => model.batch(),
    };
    let intensity = batch as f64 * model.macs_per_example() as f64 / model.total_weights() as f64;
    let roofline = Roofline::from_spec(spec);
    roofline.attainable_macs(intensity) / model.macs_per_example() as f64
}

/// Per-family efficiency factors for one platform, calibrated on anchors.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FamilyEfficiency {
    /// MLP factor.
    pub mlp: f64,
    /// LSTM factor.
    pub lstm: f64,
    /// CNN factor.
    pub cnn: f64,
}

impl FamilyEfficiency {
    fn factor(&self, kind: NnKind) -> f64 {
        match kind {
            NnKind::Mlp => self.mlp,
            NnKind::Lstm => self.lstm,
            NnKind::Cnn => self.cnn,
        }
    }
}

/// The calibrated baseline models for CPU and GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineModels {
    /// Haswell efficiency factors.
    pub cpu: FamilyEfficiency,
    /// K80 efficiency factors.
    pub gpu: FamilyEfficiency,
}

/// Published anchor ratios used for calibration: Table 4's measured MLP0
/// IPS and Table 6's LSTM0/CNN0 columns.
mod anchors {
    /// Table 4: CPU MLP0 at batch 16 under 7 ms.
    pub const CPU_MLP0_IPS: f64 = 5482.0;
    /// Table 4: GPU MLP0 at batch 16 under 7 ms.
    pub const GPU_MLP0_IPS: f64 = 13461.0;
    /// Table 6: TPU/CPU on LSTM0.
    pub const TPU_OVER_CPU_LSTM0: f64 = 3.5;
    /// Table 6: GPU/CPU on LSTM0.
    pub const GPU_OVER_CPU_LSTM0: f64 = 0.4;
    /// Table 6: TPU/CPU on CNN0.
    pub const TPU_OVER_CPU_CNN0: f64 = 40.3;
    /// Table 6: GPU/CPU on CNN0.
    pub const GPU_OVER_CPU_CNN0: f64 = 1.6;
}

/// Calibrate the CPU/GPU family efficiencies against the anchors.
pub fn calibrate_baselines(cfg: &TpuConfig) -> BaselineModels {
    let cpu_spec = ChipSpec::haswell();
    let gpu_spec = ChipSpec::k80();
    let mlp0 = workloads::mlp0();
    let lstm0 = workloads::lstm0();
    let cnn0 = workloads::cnn0();

    let cpu_lstm0 = tpu_served_ips(&lstm0, cfg) / anchors::TPU_OVER_CPU_LSTM0;
    let cpu_cnn0 = tpu_served_ips(&cnn0, cfg) / anchors::TPU_OVER_CPU_CNN0;

    // Efficiency cannot exceed the roofline (the paper's own CPU CNN
    // columns imply near-peak execution, which calibrates to ~1.0 here).
    let clamp = |f: f64| f.min(1.0);
    let cpu = FamilyEfficiency {
        mlp: clamp(anchors::CPU_MLP0_IPS / raw_roofline_ips(&mlp0, &cpu_spec)),
        lstm: clamp(cpu_lstm0 / raw_roofline_ips(&lstm0, &cpu_spec)),
        cnn: clamp(cpu_cnn0 / raw_roofline_ips(&cnn0, &cpu_spec)),
    };
    let gpu = FamilyEfficiency {
        mlp: clamp(anchors::GPU_MLP0_IPS / raw_roofline_ips(&mlp0, &gpu_spec)),
        lstm: clamp(cpu_lstm0 * anchors::GPU_OVER_CPU_LSTM0 / raw_roofline_ips(&lstm0, &gpu_spec)),
        cnn: clamp(cpu_cnn0 * anchors::GPU_OVER_CPU_CNN0 / raw_roofline_ips(&cnn0, &gpu_spec)),
    };
    BaselineModels { cpu, gpu }
}

/// CPU throughput for one workload under the calibrated model.
pub fn cpu_ips(model: &NnModel, baselines: &BaselineModels) -> f64 {
    raw_roofline_ips(model, &ChipSpec::haswell()) * baselines.cpu.factor(model.kind())
}

/// GPU throughput for one workload under the calibrated model.
pub fn gpu_ips(model: &NnModel, baselines: &BaselineModels) -> f64 {
    raw_roofline_ips(model, &ChipSpec::k80()) * baselines.gpu.factor(model.kind())
}

/// One application column of Table 6.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6Column {
    /// Application name.
    pub name: String,
    /// K80 performance relative to Haswell.
    pub gpu_rel: f64,
    /// TPU performance relative to Haswell.
    pub tpu_rel: f64,
    /// TPU performance relative to the K80.
    pub ratio: f64,
}

/// The full Table 6: six columns plus geometric and weighted means.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table6 {
    /// Per-application relative performance.
    pub columns: Vec<Table6Column>,
    /// Geometric mean of GPU/CPU.
    pub gpu_gm: f64,
    /// Weighted mean of GPU/CPU under the datacenter mix.
    pub gpu_wm: f64,
    /// Geometric mean of TPU/CPU.
    pub tpu_gm: f64,
    /// Weighted mean of TPU/CPU under the datacenter mix.
    pub tpu_wm: f64,
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let (sum, n) = values.fold((0.0, 0usize), |(s, n), v| (s + v.ln(), n + 1));
    (sum / n as f64).exp()
}

/// Regenerate Table 6 from the simulated TPU and calibrated baselines.
pub fn table6(cfg: &TpuConfig) -> Table6 {
    let baselines = calibrate_baselines(cfg);
    let mix = workloads::workload_mix();
    let mut columns = Vec::new();
    for model in workloads::all() {
        let cpu = cpu_ips(&model, &baselines);
        let gpu = gpu_ips(&model, &baselines);
        let tpu = tpu_served_ips(&model, cfg);
        columns.push(Table6Column {
            name: model.name().to_string(),
            gpu_rel: gpu / cpu,
            tpu_rel: tpu / cpu,
            ratio: tpu / gpu,
        });
    }
    let weight = |name: &str| {
        mix.iter()
            .find(|(n, _)| *n == name)
            .map(|(_, w)| *w)
            .unwrap_or(0.0)
    };
    let gpu_gm = geomean(columns.iter().map(|c| c.gpu_rel));
    let tpu_gm = geomean(columns.iter().map(|c| c.tpu_rel));
    let gpu_wm: f64 = columns.iter().map(|c| c.gpu_rel * weight(&c.name)).sum();
    let tpu_wm: f64 = columns.iter().map(|c| c.tpu_rel * weight(&c.name)).sum();
    Table6 {
        columns,
        gpu_gm,
        gpu_wm,
        tpu_gm,
        tpu_wm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> TpuConfig {
        TpuConfig::paper()
    }

    #[test]
    fn tpu_device_ips_positive_for_all_apps() {
        for m in workloads::all() {
            let ips = tpu_device_ips(&m, &cfg());
            assert!(ips > 0.0, "{}", m.name());
            // Serving overhead only reduces throughput.
            assert!(tpu_served_ips(&m, &cfg()) < ips);
        }
    }

    #[test]
    fn anchors_are_reproduced() {
        let t = table6(&cfg());
        let col = |n: &str| t.columns.iter().find(|c| c.name == n).unwrap();
        // Calibration must make the anchor columns match the paper (the
        // CNN0 efficiency clamps at the roofline, leaving it slightly
        // above the published 40.3).
        assert!((col("LSTM0").tpu_rel - 3.5).abs() < 0.05);
        assert!((col("CNN0").tpu_rel - 40.3).abs() < 3.0);
        assert!((col("LSTM0").gpu_rel - 0.4).abs() < 0.01);
        assert!((col("CNN0").gpu_rel - 1.6).abs() < 0.15);
    }

    #[test]
    fn tpu_mlp0_relative_close_to_published_41x() {
        // This one is *not* an anchor: the TPU side is simulated and the
        // CPU side comes from Table 4. The paper reports 41x.
        let t = table6(&cfg());
        let col = t.columns.iter().find(|c| c.name == "MLP0").unwrap();
        assert!(
            (25.0..=60.0).contains(&col.tpu_rel),
            "TPU/CPU on MLP0 = {:.1}, paper says 41",
            col.tpu_rel
        );
    }

    #[test]
    fn headline_means_in_paper_band() {
        // Paper: GPU GM 1.1, WM 1.9; TPU GM 14.5, WM 29.2. The bands here
        // are generous: the shape claim is "TPU is an order of magnitude
        // past the GPU; the GPU is roughly at CPU parity".
        let t = table6(&cfg());
        assert!((0.7..=2.5).contains(&t.gpu_gm), "GPU GM {}", t.gpu_gm);
        assert!((1.0..=3.0).contains(&t.gpu_wm), "GPU WM {}", t.gpu_wm);
        assert!((8.0..=25.0).contains(&t.tpu_gm), "TPU GM {}", t.tpu_gm);
        assert!((15.0..=45.0).contains(&t.tpu_wm), "TPU WM {}", t.tpu_wm);
        // Weighted means exceed geometric means because the mix favours
        // MLPs, where the TPU shines.
        assert!(t.tpu_wm > t.tpu_gm);
    }

    #[test]
    fn tpu_beats_gpu_on_every_app_on_average() {
        let t = table6(&cfg());
        let gm_ratio = geomean(t.columns.iter().map(|c| c.ratio));
        assert!(gm_ratio > 5.0, "TPU/GPU GM {gm_ratio} (paper: 13.2)");
    }

    #[test]
    fn cnns_use_full_batch_mlps_use_latency_batch() {
        // Internal consistency of the latency-batch policy: raw roofline
        // IPS for MLPs must be evaluated at intensity 16, i.e. memory
        // bound on CPU (intensity 16 > ridge 12.75 -> actually compute
        // bound on Haswell; the policy just must not use batch 200).
        let spec = ChipSpec::haswell();
        let m = workloads::mlp0();
        let at16 = raw_roofline_ips(&m, &spec);
        let served_intensity = CPU_GPU_LATENCY_BATCH as f64;
        let bound = Roofline::from_spec(&spec).attainable_macs(served_intensity)
            / m.macs_per_example() as f64;
        assert!((at16 - bound).abs() / bound < 1e-12);
    }

    #[test]
    fn efficiency_factors_are_sane() {
        let b = calibrate_baselines(&cfg());
        for f in [
            b.cpu.mlp, b.cpu.lstm, b.cpu.cnn, b.gpu.mlp, b.gpu.lstm, b.gpu.cnn,
        ] {
            assert!(f > 0.01 && f < 2.0, "efficiency factor {f} out of range");
        }
    }
}
