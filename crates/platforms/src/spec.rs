//! Table 2: the three benchmarked platforms.
//!
//! Server-class machines available in 2015, all with SECDED-protected
//! memory: an 18-core dual-socket Haswell (also the host for both
//! accelerators), the NVIDIA K80 (Boost mode disabled for TCO reasons,
//! which reduces bandwidth from 240 to 160 GB/s and peak from 8.7 to 2.8
//! TOPS per die), and the TPU.

use serde::{Deserialize, Serialize};

/// Identity of a benchmarked platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Intel Haswell E5-2699 v3 (CPU baseline and accelerator host).
    Haswell,
    /// NVIDIA K80 (one die of the dual-die card).
    K80,
    /// The TPU.
    Tpu,
}

impl Platform {
    /// Short display name.
    pub fn name(self) -> &'static str {
        match self {
            Platform::Haswell => "Haswell",
            Platform::K80 => "K80",
            Platform::Tpu => "TPU",
        }
    }
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChipSpec {
    /// Which platform.
    pub platform: Platform,
    /// Marketing/model string.
    pub model: &'static str,
    /// Die size in mm^2 (the TPU's is unreleased: "<= half of Haswell").
    pub die_mm2: Option<f64>,
    /// Process node in nm.
    pub process_nm: u32,
    /// Clock in MHz.
    pub clock_mhz: f64,
    /// Die TDP in Watts.
    pub tdp_w: f64,
    /// Measured idle power per die in Watts.
    pub idle_w: f64,
    /// Measured busy power per die in Watts.
    pub busy_w: f64,
    /// Peak 8-bit TOPS per die, if the platform has an integer path.
    pub peak_tops_8b: Option<f64>,
    /// Peak floating-point TOPS per die.
    pub peak_tops_fp: Option<f64>,
    /// Memory bandwidth in GB/s per die.
    pub mem_gb_s: f64,
    /// On-chip memory in MiB.
    pub on_chip_mib: f64,
    /// Dies per benchmarked server.
    pub dies_per_server: usize,
    /// Server TDP in Watts.
    pub server_tdp_w: f64,
    /// Measured server idle power in Watts.
    pub server_idle_w: f64,
    /// Measured server busy power in Watts.
    pub server_busy_w: f64,
}

impl ChipSpec {
    /// The Haswell row of Table 2.
    pub fn haswell() -> Self {
        Self {
            platform: Platform::Haswell,
            model: "Haswell E5-2699 v3",
            die_mm2: Some(662.0),
            process_nm: 22,
            clock_mhz: 2300.0,
            tdp_w: 145.0,
            idle_w: 41.0,
            busy_w: 145.0,
            peak_tops_8b: Some(2.6),
            peak_tops_fp: Some(1.3),
            mem_gb_s: 51.0,
            on_chip_mib: 51.0,
            dies_per_server: 2,
            server_tdp_w: 504.0,
            server_idle_w: 159.0,
            server_busy_w: 455.0,
        }
    }

    /// The K80 row of Table 2 (per die; Boost mode disabled).
    pub fn k80() -> Self {
        Self {
            platform: Platform::K80,
            model: "NVIDIA K80",
            die_mm2: Some(561.0),
            process_nm: 28,
            clock_mhz: 560.0,
            tdp_w: 150.0,
            idle_w: 25.0,
            busy_w: 98.0,
            peak_tops_8b: None,
            peak_tops_fp: Some(2.8),
            mem_gb_s: 160.0,
            on_chip_mib: 8.0,
            dies_per_server: 8,
            server_tdp_w: 1838.0,
            server_idle_w: 357.0,
            server_busy_w: 991.0,
        }
    }

    /// The TPU row of Table 2.
    pub fn tpu() -> Self {
        Self {
            platform: Platform::Tpu,
            model: "TPU",
            die_mm2: None, // <= half the Haswell die
            process_nm: 28,
            clock_mhz: 700.0,
            tdp_w: 75.0,
            idle_w: 28.0,
            busy_w: 40.0,
            peak_tops_8b: Some(92.0),
            peak_tops_fp: None,
            mem_gb_s: 34.0,
            on_chip_mib: 28.0,
            dies_per_server: 4,
            server_tdp_w: 861.0,
            server_idle_w: 290.0,
            server_busy_w: 384.0,
        }
    }

    /// Look up a platform's spec.
    pub fn of(platform: Platform) -> Self {
        match platform {
            Platform::Haswell => Self::haswell(),
            Platform::K80 => Self::k80(),
            Platform::Tpu => Self::tpu(),
        }
    }

    /// All three rows in Table 2 order.
    pub fn all() -> Vec<Self> {
        vec![Self::haswell(), Self::k80(), Self::tpu()]
    }

    /// The inference peak the paper plots for this platform: 8-bit TOPS
    /// where the quantized path exists (Haswell, TPU), floating point on
    /// the K80 — except the paper's rooflines use FP for Haswell too,
    /// because only one DNN had an 8-bit CPU implementation. We follow the
    /// paper: FP for CPU/GPU, 8-bit for TPU.
    pub fn roofline_peak_tops(&self) -> f64 {
        match self.platform {
            Platform::Haswell => self.peak_tops_fp.expect("haswell has fp"),
            Platform::K80 => self.peak_tops_fp.expect("k80 has fp"),
            Platform::Tpu => self.peak_tops_8b.expect("tpu has 8b"),
        }
    }

    /// Peak in MACs/s (2 ops per multiply-accumulate).
    pub fn roofline_peak_macs(&self) -> f64 {
        self.roofline_peak_tops() * 1e12 / 2.0
    }

    /// Memory bandwidth in bytes/s.
    pub fn mem_bytes_per_sec(&self) -> f64 {
        self.mem_gb_s * 1e9
    }
}

/// Figure 2's die floorplan budget: fraction of TPU die area by function.
/// "Control is just 2%" — versus the large control planes of CPUs/GPUs.
pub fn tpu_floorplan() -> Vec<(&'static str, f64)> {
    vec![
        ("Data buffers (Unified Buffer etc.)", 0.37),
        ("Compute (Matrix Multiply Unit etc.)", 0.30),
        ("I/O (PCIe, DDR3 interfaces)", 0.10),
        ("Control", 0.02),
        ("Misc / pad ring / unassigned", 0.21),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_headline_numbers() {
        let h = ChipSpec::haswell();
        assert_eq!(h.dies_per_server, 2);
        assert_eq!(h.server_tdp_w, 504.0);
        let k = ChipSpec::k80();
        assert_eq!(k.dies_per_server, 8);
        assert_eq!(k.mem_gb_s, 160.0);
        let t = ChipSpec::tpu();
        assert_eq!(t.peak_tops_8b, Some(92.0));
        assert_eq!(t.on_chip_mib, 28.0);
        assert!(t.die_mm2.is_none());
    }

    #[test]
    fn tpu_has_25x_macs_and_3_5x_memory_of_k80() {
        // The conclusion's comparison: 65,536 8-bit MACs vs 2,496 32-bit,
        // 28 MiB vs 8 MiB, under half the power.
        let t = ChipSpec::tpu();
        let k = ChipSpec::k80();
        assert!((t.on_chip_mib / k.on_chip_mib - 3.5).abs() < 0.01);
        assert!(t.busy_w < k.busy_w / 2.0);
    }

    #[test]
    fn ridge_points_match_paper() {
        // TPU ~1350, Haswell ~13, K80 ~9 MACs per weight byte.
        let ridge = |s: &ChipSpec| s.roofline_peak_macs() / s.mem_bytes_per_sec();
        assert!((ridge(&ChipSpec::tpu()) - 1352.9).abs() < 5.0);
        assert!((ridge(&ChipSpec::haswell()) - 12.7).abs() < 0.5);
        assert!((ridge(&ChipSpec::k80()) - 8.75).abs() < 0.3);
    }

    #[test]
    fn of_and_all_are_consistent() {
        for s in ChipSpec::all() {
            assert_eq!(ChipSpec::of(s.platform), s);
            assert!(!s.platform.name().is_empty());
        }
        assert_eq!(ChipSpec::all().len(), 3);
    }

    #[test]
    fn floorplan_sums_to_one() {
        let total: f64 = tpu_floorplan().iter().map(|(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Datapath (buffers + compute) is nearly two-thirds of the die.
        let datapath: f64 = tpu_floorplan()
            .iter()
            .filter(|(n, _)| n.starts_with("Data") || n.starts_with("Compute"))
            .map(|(_, f)| f)
            .sum();
        assert!(datapath > 0.6);
    }

    #[test]
    fn idle_power_well_below_busy() {
        for s in ChipSpec::all() {
            assert!(s.idle_w < s.busy_w);
            assert!(s.server_idle_w < s.server_busy_w);
        }
    }
}
