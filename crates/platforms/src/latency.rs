//! Latency-bounded serving (Section 4, Table 4).
//!
//! Inference is user-facing: MLP0's developers require a 99th-percentile
//! response time of 7 ms *including host time*. Larger batches raise
//! throughput but stretch the tail, so each platform must serve at the
//! largest batch whose 99th-percentile latency still fits — 16 for the
//! CPU and GPU, but 200 for the TPU, whose deterministic execution model
//! keeps the tail tight. That batch gap is most of the TPU's throughput
//! advantage.
//!
//! The model has two calibrated pieces per platform:
//!
//! * a batch service curve `s(B) = t0 + t1 * B` (so throughput
//!   `IPS(B) = B / s(B)` rises with batch and saturates), and
//! * a 99th-percentile response `L99(B) = h + u*B + q / (1 - IPS(B)/cap)`
//!   — fixed host overhead, batch-proportional accumulation, and an
//!   M/M/1-style queueing blow-up as throughput nears the host-limited
//!   ceiling.
//!
//! Constants are fitted to the published MLP0 operating points; the unit
//! tests check each Table 4 row to within 2%.

use serde::{Deserialize, Serialize};

/// Calibrated serving-latency model for one platform running MLP0.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServingModel {
    /// Batch service intercept, ms.
    t0_ms: f64,
    /// Batch service slope, ms per inference.
    t1_ms: f64,
    /// Fixed host/dispatch overhead in the tail, ms.
    h_ms: f64,
    /// Batch-proportional tail growth, ms per inference.
    u_ms: f64,
    /// Queueing coefficient, ms.
    q_ms: f64,
    /// Host-limited throughput ceiling, inferences/s.
    cap_ips: f64,
}

impl ServingModel {
    /// Construct from explicit constants.
    ///
    /// # Panics
    ///
    /// Panics if any constant is negative or the ceiling is nonpositive.
    pub fn new(t0_ms: f64, t1_ms: f64, h_ms: f64, u_ms: f64, q_ms: f64, cap_ips: f64) -> Self {
        assert!(
            t0_ms >= 0.0 && t1_ms >= 0.0 && h_ms >= 0.0 && u_ms >= 0.0 && q_ms >= 0.0,
            "constants must be nonnegative"
        );
        assert!(cap_ips > 0.0, "throughput ceiling must be positive");
        Self {
            t0_ms,
            t1_ms,
            h_ms,
            u_ms,
            q_ms,
            cap_ips,
        }
    }

    /// Haswell serving MLP0 (fitted to Table 4 rows 1-2).
    pub fn cpu_mlp0() -> Self {
        Self::new(2.27497, 0.0402454, 0.50, 0.2583, 2.0, 24_848.0)
    }

    /// K80 serving MLP0 (fitted to Table 4 rows 3-4).
    pub fn gpu_mlp0() -> Self {
        Self::new(0.99976, 0.0118017, 4.166, 0.00973, 2.0, 84_745.0)
    }

    /// TPU serving MLP0 (fitted to Table 4 rows 5-6; the ceiling is the
    /// host-limited 300k IPS the paper attributes to server overhead).
    pub fn tpu_mlp0() -> Self {
        Self::new(0.8729, 0.00008, 3.0, 0.016, 0.2, 300_000.0)
    }

    /// Throughput at batch `B`, inferences per second.
    pub fn ips(&self, batch: usize) -> f64 {
        let b = batch as f64;
        let service_ms = self.t0_ms + self.t1_ms * b;
        (b / service_ms * 1000.0).min(self.cap_ips)
    }

    /// 99th-percentile response time at batch `B`, in ms (including host
    /// time, as the paper measures it).
    pub fn l99_ms(&self, batch: usize) -> f64 {
        let b = batch as f64;
        let rho = (self.ips(batch) / self.cap_ips).min(0.999);
        self.h_ms + self.u_ms * b + self.q_ms / (1.0 - rho)
    }

    /// Largest batch whose 99th-percentile latency is within `limit_ms`.
    /// Returns `None` if even batch 1 misses the limit.
    pub fn max_batch_within(&self, limit_ms: f64, max_batch: usize) -> Option<usize> {
        // l99 is monotone in B; scan (small domain) for clarity.
        let mut best = None;
        for b in 1..=max_batch {
            if self.l99_ms(b) <= limit_ms {
                best = Some(b);
            }
        }
        best
    }

    /// Largest of the deployable batch configurations within `limit_ms`.
    /// Production servers pick from a fixed set of batch configurations
    /// (the paper's measurements use 16/64 on CPU and GPU, 200/250 on the
    /// TPU), not arbitrary batch sizes.
    pub fn max_batch_within_from(&self, limit_ms: f64, candidates: &[usize]) -> Option<usize> {
        candidates
            .iter()
            .copied()
            .filter(|&b| b > 0 && self.l99_ms(b) <= limit_ms)
            .max()
    }

    /// Throughput achievable under a latency limit when choosing among
    /// `candidates`, as a fraction of the throughput at `reference_batch`
    /// (the paper's "% Max IPS").
    pub fn fraction_of_max(
        &self,
        limit_ms: f64,
        candidates: &[usize],
        reference_batch: usize,
    ) -> f64 {
        match self.max_batch_within_from(limit_ms, candidates) {
            Some(b) => self.ips(b) / self.ips(reference_batch),
            None => 0.0,
        }
    }
}

/// One row of Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table4Row {
    /// Platform label ("CPU", "GPU", "TPU").
    pub platform: &'static str,
    /// Batch size.
    pub batch: usize,
    /// 99th-percentile response time, ms.
    pub l99_ms: f64,
    /// Inferences per second.
    pub ips: f64,
    /// Percent of the max-batch throughput.
    pub pct_max: f64,
}

/// Regenerate Table 4: the six published operating points from the three
/// calibrated models.
pub fn table4() -> Vec<Table4Row> {
    let rows = [
        ("CPU", ServingModel::cpu_mlp0(), 16, 64),
        ("CPU", ServingModel::cpu_mlp0(), 64, 64),
        ("GPU", ServingModel::gpu_mlp0(), 16, 64),
        ("GPU", ServingModel::gpu_mlp0(), 64, 64),
        ("TPU", ServingModel::tpu_mlp0(), 200, 250),
        ("TPU", ServingModel::tpu_mlp0(), 250, 250),
    ];
    rows.iter()
        .map(|&(platform, m, batch, max_batch)| Table4Row {
            platform,
            batch,
            l99_ms: m.l99_ms(batch),
            ips: m.ips(batch),
            pct_max: 100.0 * m.ips(batch) / m.ips(max_batch),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(got: f64, want: f64, tol: f64, what: &str) {
        let rel = (got - want).abs() / want;
        assert!(
            rel <= tol,
            "{what}: got {got:.3}, want {want} (rel {rel:.4})"
        );
    }

    #[test]
    fn cpu_rows_match_table4() {
        let m = ServingModel::cpu_mlp0();
        close(m.ips(16), 5482.0, 0.02, "CPU IPS@16");
        close(m.ips(64), 13194.0, 0.02, "CPU IPS@64");
        close(m.l99_ms(16), 7.2, 0.02, "CPU L99@16");
        close(m.l99_ms(64), 21.3, 0.02, "CPU L99@64");
    }

    #[test]
    fn gpu_rows_match_table4() {
        let m = ServingModel::gpu_mlp0();
        close(m.ips(16), 13461.0, 0.02, "GPU IPS@16");
        close(m.ips(64), 36465.0, 0.02, "GPU IPS@64");
        close(m.l99_ms(16), 6.7, 0.02, "GPU L99@16");
        close(m.l99_ms(64), 8.3, 0.02, "GPU L99@64");
    }

    #[test]
    fn tpu_rows_match_table4() {
        let m = ServingModel::tpu_mlp0();
        close(m.ips(200), 225_000.0, 0.02, "TPU IPS@200");
        close(m.ips(250), 280_000.0, 0.02, "TPU IPS@250");
        close(m.l99_ms(200), 7.0, 0.03, "TPU L99@200");
        close(m.l99_ms(250), 10.0, 0.03, "TPU L99@250");
    }

    #[test]
    fn latency_grows_with_batch() {
        for m in [
            ServingModel::cpu_mlp0(),
            ServingModel::gpu_mlp0(),
            ServingModel::tpu_mlp0(),
        ] {
            let mut prev = 0.0;
            for b in [1usize, 8, 32, 64, 128, 200] {
                let l = m.l99_ms(b);
                assert!(l >= prev, "L99 must be monotone in batch");
                prev = l;
            }
        }
    }

    #[test]
    fn throughput_grows_with_batch() {
        for m in [
            ServingModel::cpu_mlp0(),
            ServingModel::gpu_mlp0(),
            ServingModel::tpu_mlp0(),
        ] {
            assert!(m.ips(64) > m.ips(16));
            assert!(m.ips(16) > m.ips(1));
        }
    }

    #[test]
    fn under_7ms_tpu_serves_far_larger_batches() {
        let cpu = ServingModel::cpu_mlp0().max_batch_within(7.0, 512).unwrap();
        let gpu = ServingModel::gpu_mlp0().max_batch_within(7.0, 512).unwrap();
        let tpu = ServingModel::tpu_mlp0().max_batch_within(7.0, 512).unwrap();
        assert!(cpu <= 20, "CPU batch under 7ms ~16, got {cpu}");
        assert!(gpu <= 40, "GPU batch under 7ms small, got {gpu}");
        assert!(tpu >= 150, "TPU batch under 7ms ~200, got {tpu}");
    }

    #[test]
    fn papers_headline_fractions() {
        // Under the 7 ms limit and the deployable batch configurations,
        // the CPU and GPU land on batch 16 (42% / 37% of max) while the
        // TPU keeps batch 200 (80% of max).
        let pow2 = [1usize, 2, 4, 8, 16, 32, 64];
        let tpu_cfgs = [25usize, 50, 100, 200, 250];
        // Table 4's own CPU operating point is 7.2 ms — the limit as
        // enforced in production tolerates that sliver, so test at 7.21.
        let limit = 7.21;
        let f_cpu = ServingModel::cpu_mlp0().fraction_of_max(limit, &pow2, 64);
        let f_gpu = ServingModel::gpu_mlp0().fraction_of_max(limit, &pow2, 64);
        let f_tpu = ServingModel::tpu_mlp0().fraction_of_max(limit, &tpu_cfgs, 250);
        assert!(
            (f_cpu - 0.42).abs() < 0.03,
            "CPU fraction {f_cpu} (paper 42%)"
        );
        assert!(
            (f_gpu - 0.37).abs() < 0.03,
            "GPU fraction {f_gpu} (paper 37%)"
        );
        assert!(
            (f_tpu - 0.80).abs() < 0.03,
            "TPU fraction {f_tpu} (paper 80%)"
        );
        assert_eq!(
            ServingModel::cpu_mlp0().max_batch_within_from(limit, &pow2),
            Some(16)
        );
        assert_eq!(
            ServingModel::tpu_mlp0().max_batch_within_from(limit, &tpu_cfgs),
            Some(200)
        );
    }

    #[test]
    fn table4_has_six_rows_in_paper_order() {
        let t = table4();
        assert_eq!(t.len(), 6);
        assert_eq!(t[0].platform, "CPU");
        assert_eq!(t[4].platform, "TPU");
        assert_eq!(t[4].batch, 200);
        assert!((t[1].pct_max - 100.0).abs() < 1e-9);
    }

    #[test]
    fn impossible_limit_returns_none() {
        assert!(ServingModel::gpu_mlp0().max_batch_within(0.1, 64).is_none());
    }

    #[test]
    #[should_panic(expected = "nonnegative")]
    fn negative_constants_rejected() {
        let _ = ServingModel::new(-1.0, 0.0, 0.0, 0.0, 0.0, 1.0);
    }
}
