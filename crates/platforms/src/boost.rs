//! The K80 Boost-mode fallacy (Sections 3 and 8).
//!
//! "Fallacy: The K80 GPU results would be much better if Boost mode were
//! enabled." Boost raises the clock from 560 to as much as 875 MHz, but
//! it is driver-controlled and lasts hundreds of milliseconds, so power
//! and cooling must be provisioned as if it were always on — which would
//! force fewer K80 cards per rack and hurt total cost of ownership.
//! Measured on LSTM1: 1.4x performance for 1.3x power, a net
//! performance/Watt gain of only ~1.1x.
//!
//! This module carries the measured constants and the rack-level
//! provisioning argument as a computation.

use crate::spec::ChipSpec;
use serde::{Deserialize, Serialize};

/// The K80 Boost-mode measurement from Section 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoostMode {
    /// Base clock, MHz.
    pub base_clock_mhz: f64,
    /// Boosted clock, MHz.
    pub boost_clock_mhz: f64,
    /// Measured performance gain on LSTM1.
    pub perf_gain: f64,
    /// Measured power gain on LSTM1.
    pub power_gain: f64,
}

impl BoostMode {
    /// The published measurement.
    pub fn k80_lstm1() -> Self {
        Self {
            base_clock_mhz: 560.0,
            boost_clock_mhz: 875.0,
            perf_gain: 1.4,
            power_gain: 1.3,
        }
    }

    /// Clock-rate ratio (up to 1.6x).
    pub fn clock_ratio(&self) -> f64 {
        self.boost_clock_mhz / self.base_clock_mhz
    }

    /// Net performance/Watt gain — the paper's ~1.1x.
    pub fn perf_per_watt_gain(&self) -> f64 {
        self.perf_gain / self.power_gain
    }

    /// Performance does not scale with clock: the efficiency of the extra
    /// clocks (measured gain over clock ratio; < 1 means memory-bound
    /// cycles are wasted).
    pub fn clock_efficiency(&self) -> f64 {
        self.perf_gain / self.clock_ratio()
    }
}

/// Rack-level provisioning: how many K80 cards fit a fixed accelerator
/// power budget, and what total throughput results, with and without
/// Boost. Power must be provisioned for the *sustained* Boost draw.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RackProvisioning {
    /// Cards deployable without Boost.
    pub cards_base: usize,
    /// Cards deployable with Boost provisioned.
    pub cards_boost: usize,
    /// Total rack throughput ratio (boost / base).
    pub throughput_ratio: f64,
}

/// Evaluate the provisioning argument for a given accelerator power
/// budget in Watts (per-card power from Table 2: 2 dies/card).
pub fn rack_provisioning(budget_w: f64) -> RackProvisioning {
    let boost = BoostMode::k80_lstm1();
    let k80 = ChipSpec::k80();
    let card_w_base = 2.0 * k80.busy_w;
    let card_w_boost = card_w_base * boost.power_gain;
    let cards_base = (budget_w / card_w_base).floor() as usize;
    let cards_boost = (budget_w / card_w_boost).floor() as usize;
    let throughput_ratio = if cards_base == 0 {
        0.0
    } else {
        (cards_boost as f64 * boost.perf_gain) / cards_base as f64
    };
    RackProvisioning {
        cards_base,
        cards_boost,
        throughput_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perf_per_watt_gain_is_about_1_1() {
        let b = BoostMode::k80_lstm1();
        assert!((b.perf_per_watt_gain() - 1.077).abs() < 0.01);
    }

    #[test]
    fn clock_ratio_up_to_1_6() {
        let b = BoostMode::k80_lstm1();
        assert!((b.clock_ratio() - 1.5625).abs() < 0.001);
        // Performance gained less than clock: LSTM1 is partly memory
        // bound on the GPU too.
        assert!(b.clock_efficiency() < 1.0);
    }

    #[test]
    fn provisioned_boost_yields_fewer_cards() {
        // A 4-card budget (784 W at base power)...
        let r = rack_provisioning(4.0 * 2.0 * 98.0);
        assert_eq!(r.cards_base, 4);
        // ...fits only 3 cards when Boost power must be provisioned.
        assert_eq!(r.cards_boost, 3);
        // Total throughput barely moves: 3 * 1.4 / 4 = 1.05.
        assert!((r.throughput_ratio - 1.05).abs() < 1e-9);
    }

    #[test]
    fn large_budgets_converge_to_perf_per_watt() {
        // With many cards, the granularity effect vanishes and the rack
        // gain approaches perf/power = ~1.08.
        let r = rack_provisioning(1000.0 * 2.0 * 98.0);
        assert!(
            (r.throughput_ratio - 1.077).abs() < 0.01,
            "ratio {}",
            r.throughput_ratio
        );
    }

    #[test]
    fn tiny_budget_fits_nothing() {
        let r = rack_provisioning(10.0);
        assert_eq!(r.cards_base, 0);
        assert_eq!(r.throughput_ratio, 0.0);
    }
}
