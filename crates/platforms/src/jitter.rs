//! The shared service-time jitter model.
//!
//! The paper's serving argument hinges on execution-time variance: "the
//! TPU's deterministic execution model is a better match to the
//! 99th-percentile response-time requirement ... than the time-varying
//! optimizations of CPUs and GPUs". Both serving simulators model that
//! variance the same way — a unit-median lognormal multiplier on each
//! batch's service time — and both must draw it *identically* so a
//! single-tenant `tpu_serve` run reproduces [`crate::queue_sim`] bit
//! for bit. This module is the one copy of that sampler; `queue_sim`
//! and `tpu_serve::sim` both delegate here.

use rand::rngs::StdRng;
use rand::Rng;

/// Unit-median lognormal multiplier via Box–Muller. `sigma <= 0.0`
/// returns 1.0 **without advancing the RNG** — deterministic (TPU-like)
/// platforms must not perturb a stream shared with jittery ones.
pub fn lognormal_multiplier(rng: &mut StdRng, sigma: f64) -> f64 {
    if sigma <= 0.0 {
        return 1.0;
    }
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    /// Parity pin: the shared sampler must reproduce the historical
    /// inline Box–Muller (previously duplicated in `queue_sim` and
    /// `tpu_serve::sim`) draw for draw, so extracting it changed no
    /// simulation output.
    #[test]
    fn matches_the_legacy_inline_box_muller_exactly() {
        let legacy = |rng: &mut StdRng, sigma: f64| -> f64 {
            if sigma <= 0.0 {
                return 1.0;
            }
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (sigma * z).exp()
        };
        for seed in [0u64, 1, 42, 0xdead_beef] {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            for i in 0..256 {
                let sigma = if i % 3 == 0 {
                    0.0
                } else {
                    0.05 * (i % 7) as f64
                };
                let x = lognormal_multiplier(&mut a, sigma);
                let y = legacy(&mut b, sigma);
                assert_eq!(x.to_bits(), y.to_bits(), "seed {seed} draw {i}");
            }
        }
    }

    #[test]
    fn zero_sigma_is_one_and_leaves_the_stream_untouched() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        assert_eq!(lognormal_multiplier(&mut a, 0.0), 1.0);
        let x: f64 = a.gen_range(0.0..1.0);
        let y: f64 = b.gen_range(0.0..1.0);
        assert_eq!(x, y, "sigma 0 must not advance the RNG");
    }

    #[test]
    fn unit_median_and_positive() {
        let mut rng = StdRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..10_001)
            .map(|_| lognormal_multiplier(&mut rng, 0.3))
            .collect();
        assert!(draws.iter().all(|&x| x > 0.0));
        let mut sorted = draws.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
    }
}
