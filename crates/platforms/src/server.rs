//! Multi-accelerator server model.
//!
//! Table 2's benchmarked servers carry 2 Haswell dies, 8 K80 dies, or
//! 4 TPU dies; Section 6 observes that "the Haswell server plus four TPUs
//! use <20% additional power but run CNN0 80 times faster than the
//! Haswell server alone (4 TPUs vs 2 CPUs)". This module dispatches the
//! serving simulation across `n` accelerator dies behind one host and
//! compares dispatch disciplines:
//!
//! * [`Dispatch::RoundRobin`] — requests cycle die 0, 1, 2, ... (no
//!   queue-state knowledge needed);
//! * [`Dispatch::LeastLoaded`] — each batch goes to the die that frees
//!   up first (join-the-shortest-queue at batch granularity).
//!
//! With deterministic service the two disciplines converge; with jittery
//! service least-loaded wins tail latency — another face of the paper's
//! determinism argument.

use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// How batches are routed to accelerator dies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Dispatch {
    /// Cycle through dies in order.
    RoundRobin,
    /// Send each batch to the die that becomes free first.
    LeastLoaded,
}

/// Configuration of a multi-die serving simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServerSimConfig {
    /// Number of accelerator dies behind the host.
    pub dies: usize,
    /// Dispatch discipline.
    pub dispatch: Dispatch,
    /// Offered load in requests per second (whole server).
    pub arrival_rate: f64,
    /// Batch size per dispatch.
    pub batch: usize,
    /// Batch service intercept, ms.
    pub service_t0_ms: f64,
    /// Batch service slope, ms per request.
    pub service_t1_ms: f64,
    /// Lognormal sigma of the per-batch service multiplier.
    pub service_jitter_sigma: f64,
    /// Requests to simulate.
    pub requests: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ServerSimConfig {
    /// Saturation throughput of the whole server, requests/s.
    pub fn capacity_ips(&self) -> f64 {
        let per_die =
            self.batch as f64 / (self.service_t0_ms + self.service_t1_ms * self.batch as f64);
        per_die * 1000.0 * self.dies as f64
    }
}

/// Result of a multi-die serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSimResult {
    /// Median request latency, ms.
    pub p50_ms: f64,
    /// 99th-percentile request latency, ms.
    pub p99_ms: f64,
    /// Achieved throughput, requests/s.
    pub throughput_ips: f64,
    /// Batches served per die.
    pub batches_per_die: Vec<usize>,
}

impl ServerSimResult {
    /// Ratio of the most- to least-loaded die's batch count (1.0 =
    /// perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.batches_per_die.iter().copied().max().unwrap_or(0);
        let min = self.batches_per_die.iter().copied().min().unwrap_or(0);
        if min == 0 {
            f64::INFINITY
        } else {
            max as f64 / min as f64
        }
    }
}

/// Run the multi-die serving simulation.
///
/// # Panics
///
/// Panics on a degenerate configuration (no dies, zero batch, nonpositive
/// rate, or too few requests for a stable 99th percentile).
///
/// # Examples
///
/// ```
/// use tpu_platforms::server::{simulate_server, tpu_server, Dispatch};
///
/// let r = simulate_server(&tpu_server(4, Dispatch::LeastLoaded, 150_000.0));
/// assert!(r.p99_ms < 7.0);
/// ```
pub fn simulate_server(cfg: &ServerSimConfig) -> ServerSimResult {
    assert!(cfg.dies > 0, "need at least one die");
    assert!(cfg.batch > 0, "batch must be positive");
    assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
    assert!(cfg.requests >= 200, "need enough requests for a stable p99");

    let mut rng = rand::rngs::StdRng::seed_from_u64(cfg.seed);
    let mean_gap_ms = 1000.0 / cfg.arrival_rate;
    let mut arrivals = Vec::with_capacity(cfg.requests);
    let mut t = 0.0f64;
    for _ in 0..cfg.requests {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -mean_gap_ms * u.ln();
        arrivals.push(t);
    }

    let mut free_at = vec![0.0f64; cfg.dies];
    let mut batches_per_die = vec![0usize; cfg.dies];
    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut last_end = 0.0f64;
    let mut rr_next = 0usize;

    for chunk in arrivals.chunks(cfg.batch) {
        let ready = *chunk.last().expect("nonempty chunk");
        let die = match cfg.dispatch {
            Dispatch::RoundRobin => {
                let d = rr_next;
                rr_next = (rr_next + 1) % cfg.dies;
                d
            }
            Dispatch::LeastLoaded => {
                // The die that frees up first.
                let (d, _) = free_at
                    .iter()
                    .enumerate()
                    .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                    .expect("at least one die");
                d
            }
        };
        let start = ready.max(free_at[die]);
        let jitter = if cfg.service_jitter_sigma > 0.0 {
            let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
            let u2: f64 = rng.gen_range(0.0..1.0);
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            (cfg.service_jitter_sigma * z).exp()
        } else {
            1.0
        };
        let service = (cfg.service_t0_ms + cfg.service_t1_ms * chunk.len() as f64) * jitter;
        let end = start + service;
        free_at[die] = end;
        batches_per_die[die] += 1;
        last_end = last_end.max(end);
        for &a in chunk {
            latencies.push(end - a);
        }
    }

    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let pct = |p: f64| latencies[((latencies.len() as f64 - 1.0) * p) as usize];
    ServerSimResult {
        p50_ms: pct(0.50),
        p99_ms: pct(0.99),
        throughput_ips: cfg.requests as f64 / last_end * 1000.0,
        batches_per_die,
    }
}

/// A Table 2 TPU server: `dies` TPUs behind one Haswell host, serving
/// MLP0 at batch 200 with deterministic execution.
pub fn tpu_server(dies: usize, dispatch: Dispatch, arrival_rate: f64) -> ServerSimConfig {
    ServerSimConfig {
        dies,
        dispatch,
        arrival_rate,
        batch: 200,
        service_t0_ms: 0.873,
        service_t1_ms: 0.00008,
        service_jitter_sigma: 0.0,
        requests: 60_000,
        seed: 42,
    }
}

/// A Table 2 K80 server: `dies` GPU dies with jittery service.
pub fn gpu_server(dies: usize, dispatch: Dispatch, arrival_rate: f64) -> ServerSimConfig {
    ServerSimConfig {
        dies,
        dispatch,
        arrival_rate,
        batch: 16,
        service_t0_ms: 5.5,
        service_t1_ms: 0.044,
        service_jitter_sigma: 0.15,
        requests: 60_000,
        seed: 42,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_tpus_scale_throughput_nearly_linearly() {
        // Keep each configuration at ~70% of its own capacity and compare
        // sustained throughput: 4 dies carry ~4x the load of 1.
        let one = tpu_server(
            1,
            Dispatch::LeastLoaded,
            0.7 * tpu_server(1, Dispatch::LeastLoaded, 1.0).capacity_ips(),
        );
        let four = tpu_server(
            4,
            Dispatch::LeastLoaded,
            0.7 * tpu_server(4, Dispatch::LeastLoaded, 1.0).capacity_ips(),
        );
        let r1 = simulate_server(&one);
        let r4 = simulate_server(&four);
        let ratio = r4.throughput_ips / r1.throughput_ips;
        assert!((3.5..4.5).contains(&ratio), "scaling ratio {ratio}");
    }

    #[test]
    fn four_tpu_server_meets_7ms_at_high_load() {
        // The server-level version of Table 4's TPU row.
        let cfg = tpu_server(4, Dispatch::LeastLoaded, 600_000.0);
        let r = simulate_server(&cfg);
        assert!(r.p99_ms < 7.0, "4-TPU server p99 {} ms", r.p99_ms);
        assert!(r.throughput_ips > 500_000.0);
    }

    #[test]
    fn disciplines_converge_under_deterministic_service() {
        let rate = 0.8 * tpu_server(4, Dispatch::RoundRobin, 1.0).capacity_ips();
        let rr = simulate_server(&tpu_server(4, Dispatch::RoundRobin, rate));
        let ll = simulate_server(&tpu_server(4, Dispatch::LeastLoaded, rate));
        // Deterministic equal service: round robin is already optimal.
        assert!(
            (rr.p99_ms - ll.p99_ms).abs() < 0.25,
            "rr {} vs ll {}",
            rr.p99_ms,
            ll.p99_ms
        );
    }

    #[test]
    fn least_loaded_beats_round_robin_under_jitter() {
        // With service-time variance, blindly alternating sends work to a
        // busy die while another sits idle; least-loaded adapts.
        let rate = 0.85 * gpu_server(8, Dispatch::RoundRobin, 1.0).capacity_ips();
        let mut rr_cfg = gpu_server(8, Dispatch::RoundRobin, rate);
        let mut ll_cfg = gpu_server(8, Dispatch::LeastLoaded, rate);
        rr_cfg.service_jitter_sigma = 0.5;
        ll_cfg.service_jitter_sigma = 0.5;
        let rr = simulate_server(&rr_cfg);
        let ll = simulate_server(&ll_cfg);
        assert!(
            ll.p99_ms < rr.p99_ms,
            "least-loaded p99 {} should beat round-robin {}",
            ll.p99_ms,
            rr.p99_ms
        );
    }

    #[test]
    fn round_robin_balances_batch_counts_exactly() {
        let r = simulate_server(&tpu_server(4, Dispatch::RoundRobin, 100_000.0));
        assert!(r.imbalance() < 1.05, "imbalance {}", r.imbalance());
    }

    #[test]
    fn throughput_tracks_offered_load_below_saturation() {
        let cfg = tpu_server(4, Dispatch::LeastLoaded, 300_000.0);
        let r = simulate_server(&cfg);
        assert!(
            (r.throughput_ips - 300_000.0).abs() / 300_000.0 < 0.1,
            "throughput {}",
            r.throughput_ips
        );
    }

    #[test]
    fn results_are_reproducible() {
        let cfg = gpu_server(8, Dispatch::LeastLoaded, 5_000.0);
        assert_eq!(simulate_server(&cfg), simulate_server(&cfg));
    }

    #[test]
    #[should_panic(expected = "at least one die")]
    fn zero_dies_panics() {
        let mut cfg = tpu_server(1, Dispatch::RoundRobin, 100.0);
        cfg.dies = 0;
        let _ = simulate_server(&cfg);
    }

    #[test]
    fn capacity_scales_with_dies() {
        let c1 = tpu_server(1, Dispatch::RoundRobin, 1.0).capacity_ips();
        let c4 = tpu_server(4, Dispatch::RoundRobin, 1.0).capacity_ips();
        assert!((c4 / c1 - 4.0).abs() < 1e-9);
    }
}
