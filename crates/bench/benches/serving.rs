//! Event-loop throughput of the discrete-event serving runtime: how
//! many simulation events per second the engine sustains at 10k and
//! 100k requests. This is the perf trajectory for every future scaling
//! PR that builds on `tpu_serve` — regressions in the heap, the timer
//! rearming, or the dispatch scan show up here first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpu_bench::mlp0_tenant;
use tpu_core::TpuConfig;
use tpu_serve::tenant::ArrivalProcess;
use tpu_serve::{run, BatchPolicy, ClusterSpec, TenantSpec};

fn single_tenant(requests: usize) -> Vec<TenantSpec> {
    vec![mlp0_tenant(150_000.0, requests)]
}

fn mixed_tenants(requests_each: usize) -> Vec<TenantSpec> {
    ["MLP0", "MLP1", "LSTM0", "LSTM1"]
        .iter()
        .map(|w| {
            TenantSpec::new(
                w,
                ArrivalProcess::Poisson { rate_rps: 20_000.0 },
                BatchPolicy::Timeout {
                    max_batch: 64,
                    t_max_ms: 3.0,
                },
                50.0,
                requests_each,
            )
        })
        .collect()
}

fn event_loop_throughput(c: &mut Criterion) {
    let cfg = TpuConfig::paper();
    let mut group = c.benchmark_group("serve_event_loop");
    group.sample_size(10);
    for requests in [10_000usize, 100_000] {
        let tenants = single_tenant(requests);
        let cluster = ClusterSpec::new(4, 42);
        // Report the event count once so events/sec is computable from
        // the printed µs/iter.
        let events = run(&cluster, &tenants, &cfg).events_processed;
        println!("serve_event_loop/single/{requests}: {events} events per iteration");
        group.bench_with_input(
            BenchmarkId::new("single", requests),
            &requests,
            |b, &_requests| b.iter(|| black_box(run(&cluster, &tenants, &cfg))),
        );
    }
    for requests_each in [2_500usize, 25_000] {
        let tenants = mixed_tenants(requests_each);
        let cluster = ClusterSpec::new(4, 42);
        let events = run(&cluster, &tenants, &cfg).events_processed;
        println!(
            "serve_event_loop/mixed4/{}: {events} events per iteration",
            4 * requests_each
        );
        group.bench_with_input(
            BenchmarkId::new("mixed4", 4 * requests_each),
            &requests_each,
            |b, &_r| b.iter(|| black_box(run(&cluster, &tenants, &cfg))),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = event_loop_throughput
}
criterion_main!(benches);
