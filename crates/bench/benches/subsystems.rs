//! Criterion benches for the tooling and modeling subsystems added on top
//! of the paper reproduction: the assembler/disassembler round trip, the
//! 4-stage pipeline model, batching-policy serving simulation, and
//! quantization calibration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpu_asm::{assemble, disassemble};
use tpu_bench::paper_config;
use tpu_core::pipeline::PipelineModel;
use tpu_nn::calibrate::{CalibrationMethod, Calibrator};
use tpu_nn::Matrix;
use tpu_platforms::batching::{simulate_policy, tpu_service, Policy};
use tpu_platforms::spec::Platform;

/// A synthetic N-layer program in assembly text.
fn layer_program_src(layers: usize, batch: u32) -> String {
    let mut src = String::from("read_host_memory host=0x0, ub=0x0, len=51200\n");
    for l in 0..layers {
        // Wrap Unified Buffer offsets inside the 24-bit address field.
        let ub_in = (l % 96) * 0x20000;
        let ub_out = ((l + 1) % 96) * 0x20000;
        src.push_str(&format!("read_weights dram={:#x}, tiles=1\n", l * 0x10000));
        src.push_str(&format!("matmul ub={ub_in:#x}, acc=0, rows={batch}\n"));
        src.push_str(&format!(
            "activate acc=0, ub={ub_out:#x}, rows={batch}, func=relu\n"
        ));
        src.push_str("sync\n");
    }
    src.push_str("write_host_memory ub=0xa0000, host=0x10000, len=51200\nhalt\n");
    src
}

fn asm_roundtrip(c: &mut Criterion) {
    let mut group = c.benchmark_group("asm");
    for layers in [1usize, 8, 64] {
        let src = layer_program_src(layers, 200);
        group.bench_with_input(BenchmarkId::new("assemble", layers), &src, |b, src| {
            b.iter(|| black_box(assemble(black_box(src)).unwrap()));
        });
        let program = assemble(&src).unwrap();
        group.bench_with_input(BenchmarkId::new("disassemble", layers), &program, |b, p| {
            b.iter(|| black_box(disassemble(black_box(p))));
        });
        group.bench_with_input(
            BenchmarkId::new("encode_decode", layers),
            &program,
            |b, p| {
                b.iter(|| {
                    let bytes = black_box(p).encode();
                    black_box(tpu_core::isa::Program::decode(&bytes).unwrap())
                });
            },
        );
    }
    group.finish();
}

fn pipeline_model(c: &mut Criterion) {
    let mut group = c.benchmark_group("pipeline_model");
    let model = PipelineModel::new(paper_config());
    for layers in [2usize, 16, 128] {
        let program = assemble(&layer_program_src(layers, 200)).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(layers), &program, |b, p| {
            b.iter(|| black_box(model.execute(black_box(p)).unwrap()));
        });
    }
    group.finish();
}

fn batching_policies(c: &mut Criterion) {
    let mut group = c.benchmark_group("batching_policy_sim");
    group.sample_size(10);
    for (name, policy) in [
        ("fixed", Policy::Fixed { batch: 64 }),
        (
            "window",
            Policy::TimeWindow {
                max_batch: 64,
                window_ms: 2.0,
            },
        ),
        (
            "deadline",
            Policy::Deadline {
                max_batch: 64,
                deadline_ms: 7.0,
                margin_ms: 0.5,
            },
        ),
    ] {
        let cfg = tpu_service(policy, 40_000.0);
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate_policy(black_box(&cfg))));
        });
    }
    group.finish();
}

fn calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    // Deterministic pseudo-random activations.
    let mut state = 0x1337_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    let acts = Matrix::from_rows(64, 1024, (0..64 * 1024).map(|_| next() * 4.0).collect());
    group.bench_function("observe_64k", |b| {
        b.iter(|| {
            let mut cal = Calibrator::new();
            cal.observe(black_box(&acts));
            black_box(cal.observations())
        });
    });
    let mut cal = Calibrator::new();
    cal.observe(&acts);
    for (name, method) in [
        ("minmax", CalibrationMethod::MinMax),
        ("percentile", CalibrationMethod::Percentile(99.9)),
        ("mse", CalibrationMethod::Mse),
        ("entropy", CalibrationMethod::Entropy),
    ] {
        group.bench_with_input(BenchmarkId::new("params", name), &method, |b, m| {
            b.iter(|| black_box(cal.params(*m)));
        });
    }
    group.finish();
}

fn compression(c: &mut Criterion) {
    use tpu_nn::compress::{prune_to_density, CompressedWeights};
    use tpu_nn::quant::QuantizedWeights;
    let mut group = c.benchmark_group("compress");
    let mut state = 0xbeef_u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f32 / (1u64 << 53) as f32 - 0.5
    };
    let dense = Matrix::from_fn(512, 512, |_, _| next());
    for density in [0.05f64, 0.10, 0.50] {
        let pruned = prune_to_density(&dense, density);
        let q = QuantizedWeights::quantize(&pruned);
        group.bench_with_input(
            BenchmarkId::new("encode", format!("{:.0}%", density * 100.0)),
            &q,
            |b, q| b.iter(|| black_box(CompressedWeights::encode(black_box(q)))),
        );
        let compressed = CompressedWeights::encode(&q);
        let acts: Vec<i16> = (0..512).map(|i| (i % 31) as i16 - 15).collect();
        group.bench_with_input(
            BenchmarkId::new("matvec", format!("{:.0}%", density * 100.0)),
            &compressed,
            |b, cw| b.iter(|| black_box(cw.matvec(black_box(&acts)))),
        );
    }
    group.finish();
}

fn svg_rendering(c: &mut Criterion) {
    let cfg = paper_config();
    let mut group = c.benchmark_group("svg");
    group.bench_function("fig8_combined_rooflines", |b| {
        b.iter(|| black_box(tpu_harness::svg_out::fig8_svg(&cfg).unwrap()));
    });
    group.bench_function("fig5_tpu_roofline", |b| {
        b.iter(|| black_box(tpu_harness::svg_out::roofline_svg(Platform::Tpu, &cfg).unwrap()));
    });
    group.bench_function("fig9_bars", |b| {
        b.iter(|| black_box(tpu_harness::svg_out::fig9_svg(&cfg).unwrap()));
    });
    group.finish();
}

criterion_group!(
    benches,
    asm_roundtrip,
    pipeline_model,
    batching_policies,
    calibration,
    compression,
    svg_rendering
);
criterion_main!(benches);
