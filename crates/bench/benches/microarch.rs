//! Microarchitecture ablation benchmarks of the simulator itself.
//!
//! These quantify the cost of the simulation substrates (not the modelled
//! hardware): the cycle-accurate systolic wavefront at several array
//! sizes, the tile-granular timing engine on real workload op streams,
//! the two Unified Buffer allocators, quantized matrix multiplication,
//! and the functional device running a compiled MLP end-to-end.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use tpu_bench::{ablation_dims, paper_config};
use tpu_core::mem::WeightTile;
use tpu_core::systolic::SystolicArray;

fn systolic_wavefront(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic_wavefront");
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    for dim in ablation_dims() {
        let tile = WeightTile::from_rows(
            dim,
            (0..dim * dim)
                .map(|_| rng.gen_range(-128i32..=127) as i8)
                .collect(),
        );
        let rows = 8;
        let acts: Vec<i16> = (0..rows * dim)
            .map(|_| rng.gen_range(-128i32..=127) as i16)
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(dim), &dim, |b, _| {
            let mut array = SystolicArray::new(dim);
            array.stage_weights(&tile).unwrap();
            array.commit_weights().unwrap();
            b.iter(|| black_box(array.matmul(black_box(&acts), rows).unwrap()));
        });
    }
    group.finish();
}

fn timing_engine(c: &mut Criterion) {
    let cfg = paper_config();
    let mut group = c.benchmark_group("timing_engine");
    for m in tpu_nn::workloads::all() {
        let ops = tpu_compiler::lower_timed(&m, &cfg, 1);
        group.bench_with_input(BenchmarkId::from_parameter(m.name()), &ops, |b, ops| {
            b.iter(|| black_box(tpu_core::timing::run_timed(&cfg, black_box(ops))));
        });
    }
    group.finish();
}

fn ub_allocators(c: &mut Criterion) {
    let mut group = c.benchmark_group("ub_allocator");
    let m = tpu_nn::workloads::cnn1();
    let trace = tpu_compiler::alloc::model_buffer_trace(&m);
    group.bench_function("bump_cnn1", |b| {
        b.iter(|| black_box(tpu_compiler::alloc::bump_plan(black_box(&trace))));
    });
    group.bench_function("reuse_cnn1", |b| {
        b.iter(|| black_box(tpu_compiler::alloc::reuse_plan(black_box(&trace))));
    });
    group.finish();
}

fn quantized_matmul(c: &mut Criterion) {
    use tpu_nn::quant::{quantized_matmul, QuantizedActivations, QuantizedWeights};
    use tpu_nn::Matrix;
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let batch = 64;
    let k = 256;
    let n = 256;
    let a = Matrix::from_fn(batch, k, |_, _| rng.gen_range(-1.0f32..1.0));
    let w = Matrix::from_fn(k, n, |_, _| rng.gen_range(-0.5f32..0.5));
    let qa = QuantizedActivations::quantize(&a, tpu_nn::quant::choose_activation_params(&a));
    let qw = QuantizedWeights::quantize(&w);
    c.bench_function("quantized_matmul_64x256x256", |b| {
        b.iter(|| black_box(quantized_matmul(black_box(&qa), black_box(&qw))));
    });
}

fn functional_device(c: &mut Criterion) {
    use tpu_compiler::TpuRuntime;
    use tpu_core::TpuConfig;
    use tpu_nn::layer::{Layer, Nonlinearity};
    use tpu_nn::model::{NnKind, NnModel};
    use tpu_nn::reference::ModelWeights;
    use tpu_nn::Matrix;

    let mut small = TpuConfig::small();
    small.array_dim = 32;
    small.path_width = 32;
    small.unified_buffer_bytes = 1 << 20;
    small.accumulator_entries = 256;
    let d = small.array_dim;
    let model = NnModel::new(
        "bench-mlp",
        NnKind::Mlp,
        vec![
            Layer::fc(2 * d, d, Nonlinearity::Relu),
            Layer::fc(d, d, Nonlinearity::Relu),
        ],
        16,
        2 * d,
        tpu_core::config::Precision::Int8,
    );
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let weights = ModelWeights::random(&model, 0.4, &mut rng);
    let input = Matrix::from_fn(16, 2 * d, |r, c| ((r * 13 + c) % 11) as f32 * 0.05);
    let mut rt = TpuRuntime::new(small, 1 << 20);
    // Warm the compile cache (first evaluation compiles).
    rt.evaluate(&model, &weights, &input).unwrap();
    c.bench_function("functional_device_mlp_32x32", |b| {
        b.iter(|| black_box(rt.evaluate(&model, &weights, &input).unwrap()));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = systolic_wavefront, timing_engine, ub_allocators, quantized_matmul, functional_device
}
criterion_main!(benches);
