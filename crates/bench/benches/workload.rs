//! Arrival-source throughput: how many arrival timestamps per second
//! each workload shape generates, outside any simulation. Poisson and
//! diurnal pay one RNG draw (plus, for diurnal, a profile
//! interpolation) per arrival; trace replay is a pure array walk. This
//! is the floor cost of the workload layer — every request a simulation
//! serves was generated here first, so a regression in the inversion
//! sampler or the trace cursor taxes both engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpu_serve::workload::{record_stream, ArrivalProcess, ArrivalSource, DiurnalProfile};

const ARRIVALS: usize = 100_000;

fn sources() -> Vec<(&'static str, ArrivalProcess)> {
    vec![
        (
            "poisson",
            ArrivalProcess::Poisson {
                rate_rps: 200_000.0,
            },
        ),
        (
            "bursty",
            ArrivalProcess::Bursty {
                rate_rps: 200_000.0,
                burst_factor: 3.0,
                period_ms: 40.0,
                duty: 0.2,
            },
        ),
        (
            "diurnal",
            ArrivalProcess::Diurnal {
                profile: DiurnalProfile::day_night(50_000.0, 400_000.0, 80.0),
            },
        ),
    ]
}

/// Drain a source without materializing the stream (the engines' hot
/// path: one pull per arrival event).
fn drain(src: &mut dyn ArrivalSource) -> usize {
    src.reset();
    let mut now = 0.0;
    let mut n = 0usize;
    while let Some(t) = src.next_arrival_ms(now) {
        now = t;
        n += 1;
    }
    n
}

fn arrival_source_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload_arrivals");
    group.sample_size(10);
    for (name, process) in sources() {
        let mut src = process.source("bench", ARRIVALS, 42);
        println!("workload_arrivals/{name}: {ARRIVALS} arrivals per iteration");
        group.bench_with_input(BenchmarkId::new(name, ARRIVALS), &ARRIVALS, |b, &_n| {
            b.iter(|| black_box(drain(src.as_mut())))
        });
    }
    // The pre-batching inversion sampler, inlined as a reference: one
    // `1000/rate` divide and one `ln` per draw, no pre-drawn uniform
    // block. The gap between this row and `poisson` is the win from
    // hoisting the divide and batching the log transform (the shipped
    // sampler is pinned bit-identical to this form by a unit test).
    {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(42);
        println!("workload_arrivals/poisson-naive: {ARRIVALS} arrivals per iteration");
        group.bench_with_input(
            BenchmarkId::new("poisson-naive", ARRIVALS),
            &ARRIVALS,
            |b, &n| {
                b.iter(|| {
                    let mut now = 0.0f64;
                    for _ in 0..n {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        now += -u.ln() * (1000.0 / 200_000.0);
                    }
                    black_box(now)
                })
            },
        );
    }
    // Trace replay: record a diurnal stream once, then replay it.
    let (_, diurnal) = sources().pop().expect("diurnal is last");
    let mut recorded = diurnal.source("bench", ARRIVALS, 42);
    let arrivals_ms = record_stream(recorded.as_mut());
    let mut replay = ArrivalProcess::Recorded { arrivals_ms }.source("bench", ARRIVALS, 0);
    println!("workload_arrivals/trace-replay: {ARRIVALS} arrivals per iteration");
    group.bench_with_input(
        BenchmarkId::new("trace-replay", ARRIVALS),
        &ARRIVALS,
        |b, &_n| b.iter(|| black_box(drain(replay.as_mut()))),
    );
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = arrival_source_throughput
}
criterion_main!(benches);
