//! Fleet event throughput: how many simulation events per second the
//! `tpu_cluster` engine sustains at 10 and 100 hosts. This is the perf
//! trajectory for fleet-scale PRs — regressions in the shared event
//! queue, the routing scan, or the per-host dispatch machinery show up
//! here first. The 1-host configuration doubles as an overhead check
//! against the raw `tpu_serve` event loop (see `serving.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpu_cluster::{run_fleet, FleetSpec, FleetTenantSpec, HopModel, RouterPolicy};
use tpu_core::TpuConfig;
use tpu_serve::tenant::ArrivalProcess;
use tpu_serve::{BatchPolicy, ServiceCurve, TenantSpec};

/// An MLP0 tenant sized so each host pool sees meaningful load:
/// `rate ≈ 0.5 × hosts × dies × capacity(batch 200)`.
fn tenants(hosts: usize, requests: usize) -> Vec<FleetTenantSpec> {
    let per_die = ServiceCurve::tpu_mlp0_table4().capacity_ips(200);
    vec![FleetTenantSpec::new(
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson {
                rate_rps: 0.5 * hosts as f64 * 2.0 * per_die,
            },
            BatchPolicy::Timeout {
                max_batch: 200,
                t_max_ms: 2.0,
            },
            7.0,
            requests,
        )
        .with_curve(ServiceCurve::tpu_mlp0_table4()),
        hosts,
    )]
}

fn fleet_event_throughput(c: &mut Criterion) {
    let cfg = TpuConfig::paper();
    let mut group = c.benchmark_group("cluster_event_loop");
    group.sample_size(10);
    for hosts in [1usize, 10, 100] {
        let requests = 2_000 * hosts;
        let spec = FleetSpec::new(hosts, 2, 42)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 });
        let ts = tenants(hosts, requests);
        let events = run_fleet(&spec, &ts, &cfg).report.events_processed;
        println!("cluster_event_loop/hosts/{hosts}: {events} events per iteration");
        group.bench_with_input(BenchmarkId::new("hosts", hosts), &hosts, |b, &_h| {
            b.iter(|| black_box(run_fleet(&spec, &ts, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fleet_event_throughput
}
criterion_main!(benches);
