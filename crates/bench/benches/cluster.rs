//! Fleet event throughput: how many simulation events per second the
//! `tpu_cluster` engine sustains at 10 and 100 hosts. This is the perf
//! trajectory for fleet-scale PRs — regressions in the shared event
//! queue, the routing scan, or the per-host dispatch machinery show up
//! here first. The 1-host configuration doubles as an overhead check
//! against the raw `tpu_serve` event loop (see `serving.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use tpu_bench::fleet_tenants;
use tpu_cluster::{run_fleet, FleetSpec, HopModel, RouterPolicy};
use tpu_core::TpuConfig;

fn fleet_event_throughput(c: &mut Criterion) {
    let cfg = TpuConfig::paper();
    let mut group = c.benchmark_group("cluster_event_loop");
    group.sample_size(10);
    for hosts in [1usize, 10, 100] {
        let requests = 2_000 * hosts;
        let spec = FleetSpec::new(hosts, 2, 42)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 });
        let ts = fleet_tenants(hosts, requests);
        let events = run_fleet(&spec, &ts, &cfg).report.events_processed;
        println!("cluster_event_loop/hosts/{hosts}: {events} events per iteration");
        group.bench_with_input(BenchmarkId::new("hosts", hosts), &hosts, |b, &_h| {
            b.iter(|| black_box(run_fleet(&spec, &ts, &cfg)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fleet_event_throughput
}
criterion_main!(benches);
