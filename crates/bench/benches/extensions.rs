//! Criterion benches for the extension experiments: the sparsity
//! ablation, the Boost-mode rack computation, energy per inference, and
//! the CNN1 batch-aggregation what-if.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpu_bench::paper_config;

fn extensions(c: &mut Criterion) {
    let cfg = paper_config();
    for id in [
        "ext-sparsity",
        "ext-boost",
        "ext-energy",
        "ext-batch",
        "ext-batching",
        "ext-energy-components",
        "ext-pipeline",
        "ext-calibration",
        "ext-server",
        "ext-diurnal",
        "ext-compress",
        "ext-p40",
        "ext-avx2",
        "ext-rack",
        "ext-zeroskip",
        "ext-precision",
        "ext-ub",
        "ext-latency-sweep",
        "ext-fifo",
    ] {
        println!("{}", tpu_harness::generate(id, &cfg));
        c.bench_function(id, |b| {
            b.iter(|| black_box(tpu_harness::generate(black_box(id), &cfg)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = extensions
}
criterion_main!(benches);
