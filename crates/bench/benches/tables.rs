//! One Criterion benchmark per paper table: each iteration regenerates
//! the table end-to-end (workload construction, compilation/lowering,
//! timing simulation where applicable, and text rendering), and the
//! regenerated table is printed once per run so `cargo bench` output
//! doubles as the reproduction record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpu_bench::paper_config;

fn bench_table(c: &mut Criterion, id: &'static str) {
    let cfg = paper_config();
    // Print the regenerated artifact once, so bench logs carry the data.
    println!("{}", tpu_harness::generate(id, &cfg));
    c.bench_function(id, |b| {
        b.iter(|| black_box(tpu_harness::generate(black_box(id), &cfg)));
    });
}

fn tables(c: &mut Criterion) {
    for id in [
        "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8",
    ] {
        bench_table(c, id);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = tables
}
criterion_main!(benches);
