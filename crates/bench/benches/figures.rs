//! One Criterion benchmark per paper figure (2, 5-11): each iteration
//! regenerates the figure's data series, and the series are printed once
//! per run so `cargo bench` output doubles as the reproduction record.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use tpu_bench::paper_config;

fn bench_figure(c: &mut Criterion, id: &'static str) {
    let cfg = paper_config();
    println!("{}", tpu_harness::generate(id, &cfg));
    c.bench_function(id, |b| {
        b.iter(|| black_box(tpu_harness::generate(black_box(id), &cfg)));
    });
}

fn figures(c: &mut Criterion) {
    for id in [
        "fig2",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig11-apps",
    ] {
        bench_figure(c, id);
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = figures
}
criterion_main!(benches);
