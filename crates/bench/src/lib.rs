//! # tpu-bench — benchmark harness for the TPU reproduction
//!
//! The Criterion benches live under `benches/`:
//!
//! * `tables` — one benchmark per paper table (1-8), each regenerating
//!   the table end-to-end (workload lowering + timing simulation +
//!   formatting).
//! * `figures` — one benchmark per paper figure (2, 5-11).
//! * `microarch` — ablation microbenchmarks of the simulator itself:
//!   systolic wavefront throughput by array size, timing-engine op rates,
//!   Unified Buffer allocators, quantized matmul, and the functional
//!   device end-to-end.
//! * `serving` / `cluster` / `workload` — event-loop and arrival-layer
//!   throughput of the serving runtime and the fleet simulator.
//!
//! This library crate exposes small helpers shared by the benches and
//! by the `bench_cluster` quick-mode throughput runner (`src/bin/`),
//! including the canonical MLP0 load builders that the serving and
//! cluster benches sweep — one definition, not per-bench copies.

#![warn(missing_docs)]

use tpu_cluster::{
    BrownoutConfig, ColocateConfig, FleetSpec, FleetTenantSpec, FleetTopology, HopModel,
    RetryBudget, RetryPolicy, RouterPolicy,
};
use tpu_core::TpuConfig;
use tpu_serve::tenant::ArrivalProcess;
use tpu_serve::{BatchPolicy, ServiceCurve, TenantSpec};

/// The array sizes the microarchitecture ablations sweep: from a 32x32
/// toy to the shipped 256x256.
pub fn ablation_dims() -> Vec<usize> {
    vec![32, 64, 128, 256]
}

/// A paper-configuration handle for benches.
pub fn paper_config() -> TpuConfig {
    TpuConfig::paper()
}

/// The canonical single-host bench tenant: MLP0 under a Poisson stream
/// with a timeout-bounded batch-200 policy and the Table 4 service
/// curve.
pub fn mlp0_tenant(rate_rps: f64, requests: usize) -> TenantSpec {
    TenantSpec::new(
        "MLP0",
        ArrivalProcess::Poisson { rate_rps },
        BatchPolicy::Timeout {
            max_batch: 200,
            t_max_ms: 2.0,
        },
        7.0,
        requests,
    )
    .with_curve(ServiceCurve::tpu_mlp0_table4())
}

/// The canonical fleet bench load: one MLP0 tenant replicated across
/// every host, sized so each host pool sees meaningful load —
/// `rate ≈ 0.5 × hosts × dies × capacity(batch 200)`.
pub fn fleet_tenants(hosts: usize, requests: usize) -> Vec<FleetTenantSpec> {
    let per_die = ServiceCurve::tpu_mlp0_table4().capacity_ips(200);
    vec![FleetTenantSpec::new(
        mlp0_tenant(0.5 * hosts as f64 * 2.0 * per_die, requests),
        hosts,
    )]
}

/// The canonical *co-located* fleet bench load: three Table 1 model
/// classes (MLP0, LSTM0, CNN0) each replicated across every host of a
/// swap-aware, bin-packed fleet, rates sized so the pool sees roughly
/// the same aggregate load as [`fleet_tenants`]. Exercises the
/// weight-swap hot path (warm-die dispatch, swap events, affinity
/// routing) at fleet scale.
pub fn colocate_fleet(hosts: usize, requests: usize) -> (FleetSpec, Vec<FleetTenantSpec>) {
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::SwapAware)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_colocate(ColocateConfig::bin_packed());
    let mk = |workload: &str, rate_rps: f64, max_batch: usize, slo_ms: f64, share: f64| {
        FleetTenantSpec::new(
            TenantSpec::new(
                workload,
                ArrivalProcess::Poisson { rate_rps },
                BatchPolicy::Timeout {
                    max_batch,
                    t_max_ms: 2.0,
                },
                slo_ms,
                ((requests as f64 * share) as usize).max(1),
            ),
            hosts,
        )
    };
    let dies = 2.0 * hosts as f64;
    let tenants = vec![
        mk("MLP0", 0.30 * dies * 242_000.0, 200, 7.0, 0.90),
        mk("LSTM0", 0.10 * dies * 27_000.0, 64, 50.0, 0.08),
        mk("CNN0", 0.05 * dies * 8_300.0, 8, 30.0, 0.02),
    ];
    (spec, tenants)
}

/// The cell-structured fleet load behind the sharded-engine rows: one
/// MLP0 tenant spread over each disjoint 10-host cell (the
/// `fleet-sweep` scenario's shape), so the tenant↔host graph has one
/// connected component per cell and the parallel engine can shard it
/// across cores. Each cell runs at ~50% of its pooled capacity;
/// `requests` is the fleet-wide total, split evenly across cells.
///
/// # Panics
///
/// Panics when `hosts` is below 20 (fewer than two cells shard into
/// nothing).
pub fn sweep_fleet(hosts: usize, requests: usize) -> (FleetSpec, Vec<FleetTenantSpec>) {
    assert!(hosts >= 20, "sweep_fleet needs at least two 10-host cells");
    let cells = hosts / 10;
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 });
    let per_die = ServiceCurve::tpu_mlp0_table4().capacity_ips(200);
    let rate = 0.5 * 10.0 * 2.0 * per_die;
    let tenants = (0..cells)
        .map(|c| {
            FleetTenantSpec::new(
                mlp0_tenant(rate, (requests / cells).max(1)).named(&format!("cell{c:03}")),
                10,
            )
        })
        .collect();
    (spec, tenants)
}

/// The failure-heavy fleet load behind the resilience row: 8-host
/// cells, each carrying an overcommitted two-tenant mix (a priority-3
/// `critical` stream plus a priority-1 `bulk` stream at several times
/// its rate) under staggered whole-rack outages, with the full
/// resilience layer on — bounded backed-off retries, a per-tenant
/// retry budget, and a brownout controller shedding `bulk`. The hot
/// paths this row prices are exactly the ones the quiet fleets above
/// never touch: displacement, backoff scheduling, budget accounting,
/// and brownout bookkeeping on every completion.
///
/// `requests` is the fleet-wide total, split across cells at a
/// 15%/85% critical/bulk ratio.
///
/// # Panics
///
/// Panics when `hosts` is below one 8-host cell.
pub fn resilient_fleet(hosts: usize, requests: usize) -> (FleetSpec, Vec<FleetTenantSpec>) {
    assert!(hosts >= 8, "resilient_fleet needs at least one 8-host cell");
    let cells = hosts / 8;
    let topo = FleetTopology::new(4, 2);
    let mut failures = Vec::new();
    for c in 0..cells {
        // Staggered whole-rack outages inside every cell: racks 2c and
        // 2c+1 down over [1.0, 2.5) and [3.0, 4.5) ms.
        failures.extend(topo.rack_outage(1.0, 2.5, 2 * c, hosts));
        failures.extend(topo.rack_outage(3.0, 4.5, 2 * c + 1, hosts));
    }
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_failures(failures)
        .with_retry(RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 0.1,
            backoff_max_ms: 1.0,
            jitter_frac: 0.25,
            budget: Some(RetryBudget {
                tokens: 1024.0,
                refill_per_ms: 64.0,
            }),
            hedge: None,
        })
        .with_brownout(BrownoutConfig {
            max_priority_shed: 1,
            slo_burn_threshold: 0.4,
            window: 32,
            clear_threshold: 0.15,
            min_trip_ms: 0.5,
        });
    let mk = |rate_rps: f64, priority: u8, requests: usize| {
        TenantSpec::new(
            "MLP0",
            ArrivalProcess::Poisson { rate_rps },
            BatchPolicy::Timeout {
                max_batch: 200,
                t_max_ms: 0.5,
            },
            2.5,
            requests.max(1),
        )
        .with_priority(priority)
    };
    let per_cell = requests / cells;
    // All criticals place first: spread placement then leaves every
    // host equally filled, so bulk `c` lands (by the index tie-break)
    // on exactly critical `c`'s hosts — each cell one component, its
    // two tenants contending for the same dies.
    let criticals = (0..cells).map(|c| {
        FleetTenantSpec::new(
            mk(600_000.0, 3, (per_cell as f64 * 0.15) as usize).named(&format!("critical{c:03}")),
            8,
        )
    });
    let bulks = (0..cells).map(|c| {
        FleetTenantSpec::new(
            mk(3_300_000.0, 1, (per_cell as f64 * 0.85) as usize).named(&format!("bulk{c:03}")),
            8,
        )
    });
    (spec, criticals.chain(bulks).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_dims_are_powers_of_two_up_to_256() {
        let dims = ablation_dims();
        assert_eq!(*dims.last().unwrap(), 256);
        for d in dims {
            assert!(d.is_power_of_two());
        }
    }

    #[test]
    fn paper_config_is_valid() {
        assert!(paper_config().validate().is_ok());
    }

    #[test]
    fn colocate_fleet_is_colocated_and_replicated() {
        let (spec, tenants) = colocate_fleet(4, 10_000);
        assert!(spec.colocate.is_some());
        assert_eq!(spec.router, RouterPolicy::SwapAware);
        assert_eq!(tenants.len(), 3);
        for t in &tenants {
            assert_eq!(t.replicas, 4);
            assert!(t.tenant.requests >= 1);
        }
        let run = tpu_cluster::run_fleet(&spec, &tenants, &paper_config());
        assert!(run.report.colocated);
        assert!(
            run.report.tenants.iter().map(|t| t.swaps).sum::<usize>() > 0,
            "the co-located bench load must exercise the swap path"
        );
    }

    #[test]
    fn resilient_fleet_pairs_tenants_into_disjoint_cells() {
        let (spec, tenants) = resilient_fleet(24, 48_000);
        assert!(spec.retry.is_some() && spec.brownout.is_some());
        let plan = tpu_cluster::plan_placement(&spec, &tenants, &paper_config());
        // critical c and bulk c must land on the same 8 hosts, and
        // cells must not overlap.
        let hosts_of = |tenant: usize| -> Vec<usize> {
            let mut hs = plan.assignments[tenant].clone();
            hs.sort_unstable();
            hs
        };
        for c in 0..3 {
            let critical = hosts_of(c);
            let bulk = hosts_of(3 + c);
            assert_eq!(critical, bulk, "cell {c} tenants must share hosts");
            let want: Vec<usize> = (8 * c..8 * (c + 1)).collect();
            assert_eq!(critical, want, "cell {c} must own hosts {want:?}");
        }
    }

    #[test]
    fn fleet_tenants_replicate_across_all_hosts() {
        let ts = fleet_tenants(10, 1000);
        assert_eq!(ts.len(), 1);
        assert_eq!(ts[0].replicas, 10);
        assert_eq!(ts[0].tenant.requests, 1000);
        assert_eq!(ts[0].tenant.name, "MLP0");
    }
}
