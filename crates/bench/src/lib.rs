//! # tpu-bench — benchmark harness for the TPU reproduction
//!
//! The Criterion benches live under `benches/`:
//!
//! * `tables` — one benchmark per paper table (1-8), each regenerating
//!   the table end-to-end (workload lowering + timing simulation +
//!   formatting).
//! * `figures` — one benchmark per paper figure (2, 5-11).
//! * `microarch` — ablation microbenchmarks of the simulator itself:
//!   systolic wavefront throughput by array size, timing-engine op rates,
//!   Unified Buffer allocators, quantized matmul, and the functional
//!   device end-to-end.
//!
//! This library crate exposes small helpers shared by the benches.

#![warn(missing_docs)]

use tpu_core::TpuConfig;

/// The array sizes the microarchitecture ablations sweep: from a 32x32
/// toy to the shipped 256x256.
pub fn ablation_dims() -> Vec<usize> {
    vec![32, 64, 128, 256]
}

/// A paper-configuration handle for benches.
pub fn paper_config() -> TpuConfig {
    TpuConfig::paper()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_dims_are_powers_of_two_up_to_256() {
        let dims = ablation_dims();
        assert_eq!(*dims.last().unwrap(), 256);
        for d in dims {
            assert!(d.is_power_of_two());
        }
    }

    #[test]
    fn paper_config_is_valid() {
        assert!(paper_config().validate().is_ok());
    }
}
