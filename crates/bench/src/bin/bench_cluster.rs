//! `bench_cluster` — the quick-mode fleet-throughput runner behind
//! `BENCH_cluster.json` and the CI regression gate.
//!
//! For each fleet size (1, 10, 100 hosts) it runs the canonical MLP0
//! fleet workload (`tpu_bench::fleet_tenants`) twice in the same
//! process on the same machine:
//!
//! * **baseline** — the pre-PR hot path: the reference `BinaryHeap`
//!   event queue (`TPU_SIM_EVENT_QUEUE=heap`) and the per-arrival
//!   scan-and-allocate router (`TPU_CLUSTER_ROUTER=scan`);
//! * **current** — the timer-wheel event core and the indexed
//!   least-outstanding router.
//!
//! Both modes are bit-identical in their reports (asserted here on
//! every run — the escape hatches only change speed), so the speedup
//! column is a like-for-like measurement taken in one run. `--check
//! FILE` compares the measured 100-host *speedup* against the
//! committed `BENCH_cluster.json` and fails (exit 1) on a regression
//! beyond `--tolerance` (default 0.20). Comparing same-run ratios
//! removes absolute-throughput skew between machines; the relative
//! benefit of O(1) structures still varies some with cache hierarchy
//! and load, which is what the tolerance (and a generous `--budget-ms`
//! on CI) absorbs — if the gate flakes on shared runners, raise the
//! budget or tolerance rather than trusting a single short sample.
//!
//! Beyond the heap-vs-wheel rows it measures the observability
//! surface: the full-instrument, request-log-only, and streaming
//! health-monitor on-cost ratios (all bit-identical in their reports,
//! all gated), and the `tpu_analyze` attribution throughput over a
//! 100k-record request log (gated on log depth and a finite positive
//! rate).
//!
//! The `sharded` rows measure the multi-core fleet engine against the
//! forced single-threaded reference (`TPU_CLUSTER_ENGINE=single`) on
//! the cell-structured sweep workload, asserting bit-identical reports
//! on every run; `--check` enforces a ≥2x absolute floor at 1000 hosts
//! on machines with ≥4 cores (skipped, loudly, below that).
//!
//! ```text
//! bench_cluster [--out FILE] [--check FILE] [--tolerance F]
//!               [--budget-ms N] [--hosts A,B,C]
//!               [--no-colocate] [--no-telemetry] [--no-analyze] [--no-sharded]
//! ```

use std::process::ExitCode;
use std::time::Instant;
use tpu_analyze::Attribution;
use tpu_bench::{colocate_fleet, fleet_tenants, resilient_fleet, sweep_fleet};
use tpu_cluster::{
    run_fleet, run_fleet_telemetry, FleetRun, FleetSpec, FleetTenantSpec, HopModel, RouterPolicy,
};
use tpu_core::TpuConfig;
use tpu_monitor::{FleetMonitor, MonitorConfig};
use tpu_telemetry::{MetricsConfig, RequestLog, RunTelemetry, TelemetryConfig};

/// Requests per host at each fleet size (matches `benches/cluster.rs`).
const REQUESTS_PER_HOST: usize = 2_000;

/// Fleet size of the co-located (weight-swap) measurement.
const COLOCATE_HOSTS: usize = 100;

/// Fleet size of the telemetry-overhead measurement.
const TELEMETRY_HOSTS: usize = 10;

/// Fleet size of the analyzer-throughput measurement: 50 hosts ×
/// 2 000 requests/host = a 100 000-record log, the scale the analyze
/// gate pins.
const ANALYZE_HOSTS: usize = 50;

/// The analyzer row's contract: its log must be at least this deep so
/// the measured records/sec reflects a real artifact, not a toy.
const ANALYZE_MIN_RECORDS: usize = 100_000;

/// Fleet sizes of the sharded-engine (single vs multi-core) rows.
const SHARDED_HOSTS: [usize; 2] = [100, 1_000];

/// Fleet size of the failure-heavy resilience measurement: three
/// 8-host cells under staggered rack outages with retries, budgets,
/// and brownout shedding all live.
const RESILIENT_HOSTS: usize = 24;

/// The sharded gate's fleet size and speedup floor, enforced only on
/// machines with at least [`SHARDED_GATE_MIN_CORES`] cores — below
/// that the parallel win is mostly locality and the floor would gate
/// the hardware, not the code.
const SHARDED_GATE_HOSTS: usize = 1_000;
const SHARDED_GATE_MIN_SPEEDUP: f64 = 2.0;
const SHARDED_GATE_MIN_CORES: usize = 4;

fn usage() -> ExitCode {
    eprintln!(
        "usage: bench_cluster [--out FILE] [--check FILE] [--tolerance F] \
         [--budget-ms N] [--hosts A,B,C] [--no-colocate] [--no-telemetry] [--no-analyze] \
         [--no-sharded] [--no-resilience]"
    );
    ExitCode::from(2)
}

fn spec_for(hosts: usize) -> (FleetSpec, Vec<FleetTenantSpec>) {
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 });
    (spec, fleet_tenants(hosts, REQUESTS_PER_HOST * hosts))
}

/// Run the fleet until `budget_ms` of wall clock is spent (at least
/// twice), returning events/sec and the last run for identity checks.
fn measure(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    budget_ms: u64,
) -> (f64, u64, FleetRun) {
    // One untimed warmup (page-in, allocator growth).
    let mut last = run_fleet(spec, tenants, cfg);
    let events = last.report.events_processed;
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 2 || start.elapsed().as_millis() < budget_ms as u128 {
        last = run_fleet(spec, tenants, cfg);
        iters += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((events * iters) as f64 / elapsed, events, last)
}

/// As [`measure`], but every iteration carries the full instrument set
/// (trace + metrics + profile). The reports must stay bit-identical to
/// the uninstrumented runs — asserted by the caller.
fn measure_telemetry(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    budget_ms: u64,
) -> (f64, FleetRun) {
    let tcfg = TelemetryConfig {
        trace: true,
        metrics: Some(MetricsConfig::default()),
        requests: false,
        profile: true,
    };
    let mut last = run_fleet_telemetry(spec, tenants, cfg, &mut RunTelemetry::from_config(&tcfg));
    let events = last.report.events_processed;
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 2 || start.elapsed().as_millis() < budget_ms as u128 {
        let mut tel = RunTelemetry::from_config(&tcfg);
        last = run_fleet_telemetry(spec, tenants, cfg, &mut tel);
        assert!(
            tel.tracer.as_ref().is_some_and(|t| !t.is_empty()),
            "instrumented iterations must record spans"
        );
        iters += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((events * iters) as f64 / elapsed, last)
}

/// As [`measure`], but with only the `--request-log` record stream on —
/// the cost of recording one fixed-width record per served request.
fn measure_request_log(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    budget_ms: u64,
) -> (f64, FleetRun, RequestLog) {
    let tcfg = TelemetryConfig {
        trace: false,
        metrics: None,
        requests: true,
        profile: false,
    };
    let mut tel = RunTelemetry::from_config(&tcfg);
    let mut last = run_fleet_telemetry(spec, tenants, cfg, &mut tel);
    let mut log = tel.requests.expect("request log on");
    let events = last.report.events_processed;
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 2 || start.elapsed().as_millis() < budget_ms as u128 {
        let mut tel = RunTelemetry::from_config(&tcfg);
        last = run_fleet_telemetry(spec, tenants, cfg, &mut tel);
        log = tel.requests.expect("request log on");
        iters += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((events * iters) as f64 / elapsed, last, log)
}

/// As [`measure`], but with the streaming health monitor attached as
/// the *only* instrument — the marginal price of folding the gauge
/// stream, burn windows, and anomaly detectors at every cadence
/// boundary during the run. The report must stay bit-identical to the
/// uninstrumented run (asserted by the caller), and the monitor must
/// genuinely fold samples (the returned fold count is asserted).
fn measure_monitor(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    budget_ms: u64,
) -> (f64, FleetRun, u64) {
    let attach = || {
        let mut tel = RunTelemetry::off();
        tel.monitor = Some(Box::new(FleetMonitor::new(MonitorConfig::default())));
        tel
    };
    let folds_of = |tel: RunTelemetry| -> u64 {
        tel.monitor
            .expect("monitor attached")
            .into_any()
            .downcast::<FleetMonitor>()
            .expect("fleet monitor")
            .folds()
    };
    let mut tel = attach();
    let mut last = run_fleet_telemetry(spec, tenants, cfg, &mut tel);
    let events = last.report.events_processed;
    let mut folds = folds_of(tel);
    let start = Instant::now();
    let mut iters = 0u64;
    while iters < 2 || start.elapsed().as_millis() < budget_ms as u128 {
        let mut tel = attach();
        last = run_fleet_telemetry(spec, tenants, cfg, &mut tel);
        folds = folds_of(tel);
        iters += 1;
    }
    let elapsed = start.elapsed().as_secs_f64();
    ((events * iters) as f64 / elapsed, last, folds)
}

struct Row {
    hosts: usize,
    events: u64,
    baseline_eps: f64,
    current_eps: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.current_eps / self.baseline_eps
    }
}

/// The sharded-engine measurement: the same cell-structured workload
/// (`tpu_bench::sweep_fleet`, one component per 10-host cell) under
/// the forced single-threaded reference and the sharded multi-core
/// engine, in one process. The two are bit-identical in their reports
/// — asserted on every run; that is the engine's determinism contract
/// — so the same-run ratio is a like-for-like measurement of the
/// parallel (plus per-shard locality) win.
struct ShardedRow {
    hosts: usize,
    events: u64,
    single_eps: f64,
    sharded_eps: f64,
}

impl ShardedRow {
    fn speedup(&self) -> f64 {
        self.sharded_eps / self.single_eps
    }
}

/// The telemetry overhead measurement: the same workload with
/// instruments off (the default hot path every golden runs) and fully
/// on, in one process. `on_cost` is the machine-independent same-run
/// ratio gated by `--check`.
struct TelemetryRow {
    hosts: usize,
    events: u64,
    off_eps: f64,
    on_eps: f64,
}

impl TelemetryRow {
    fn on_cost(&self) -> f64 {
        self.off_eps / self.on_eps
    }
}

/// The request-log overhead measurement: the same off/on shape as
/// [`TelemetryRow`], but with only the `--request-log` record stream on
/// — the marginal price of one fixed-width record per served request.
struct RequestLogRow {
    hosts: usize,
    events: u64,
    records: usize,
    off_eps: f64,
    on_eps: f64,
}

impl RequestLogRow {
    fn on_cost(&self) -> f64 {
        self.off_eps / self.on_eps
    }
}

/// The health-monitor overhead measurement: the same off/on shape as
/// [`TelemetryRow`], but with only the streaming `--monitor` sink on —
/// the marginal price of the online burn/anomaly/incident fold per
/// cadence boundary.
struct MonitorRow {
    hosts: usize,
    events: u64,
    folds: u64,
    off_eps: f64,
    on_eps: f64,
}

impl MonitorRow {
    fn on_cost(&self) -> f64 {
        self.off_eps / self.on_eps
    }
}

/// The analyzer throughput measurement: full latency attribution
/// (phases, tails, occupancy, burn windows) over a committed-scale
/// request log, in records/sec.
struct AnalyzeRow {
    hosts: usize,
    records: usize,
    records_per_sec: f64,
}

/// The failure-heavy resilience measurement: the overcommitted
/// rack-outage workload with the full resilience layer on. The sim is
/// deterministic, so the behavioral columns (retries, dropped, shed)
/// are exact per-iteration counts; events/sec is the hot-path price of
/// displacement + backoff + budget + brownout bookkeeping.
struct ResilienceRow {
    hosts: usize,
    events: u64,
    events_per_sec: f64,
    retries: usize,
    dropped: usize,
    shed: usize,
}

#[allow(clippy::too_many_arguments)]
fn rows_to_json(
    rows: &[Row],
    colocate: Option<&Row>,
    sharded: &[ShardedRow],
    telemetry: Option<&TelemetryRow>,
    request_log: Option<&RequestLogRow>,
    monitor: Option<&MonitorRow>,
    analyze: Option<&AnalyzeRow>,
    resilience: Option<&ResilienceRow>,
) -> serde_json::Value {
    use serde_json::Value;
    let mut fields = vec![
        (
            "bench".to_string(),
            Value::String("cluster_event_loop".to_string()),
        ),
        (
            "workload".to_string(),
            Value::String(format!(
                "MLP0 x {REQUESTS_PER_HOST} requests/host, 2 dies/host"
            )),
        ),
        (
            "hosts".to_string(),
            Value::Array(
                rows.iter()
                    .map(|r| {
                        Value::object([
                            ("hosts".to_string(), Value::Number(r.hosts as f64)),
                            (
                                "events_per_iteration".to_string(),
                                Value::Number(r.events as f64),
                            ),
                            (
                                "baseline_heap_scan_events_per_sec".to_string(),
                                Value::Number(r.baseline_eps.round()),
                            ),
                            (
                                "events_per_sec".to_string(),
                                Value::Number(r.current_eps.round()),
                            ),
                            (
                                "speedup".to_string(),
                                Value::Number((r.speedup() * 100.0).round() / 100.0),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ];
    if let Some(c) = colocate {
        fields.push((
            "colocate".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(c.hosts as f64)),
                (
                    "workload".to_string(),
                    Value::String(
                        "MLP0+LSTM0+CNN0 bin-packed, swap-aware routing, 2 dies/host".to_string(),
                    ),
                ),
                (
                    "events_per_iteration".to_string(),
                    Value::Number(c.events as f64),
                ),
                (
                    "baseline_heap_scan_events_per_sec".to_string(),
                    Value::Number(c.baseline_eps.round()),
                ),
                (
                    "events_per_sec".to_string(),
                    Value::Number(c.current_eps.round()),
                ),
                (
                    "speedup".to_string(),
                    Value::Number((c.speedup() * 100.0).round() / 100.0),
                ),
            ]),
        ));
    }
    if !sharded.is_empty() {
        fields.push((
            "sharded".to_string(),
            Value::object([
                (
                    "workload".to_string(),
                    Value::String(
                        "MLP0 per 10-host cell, one shard per cell, 2 dies/host".to_string(),
                    ),
                ),
                (
                    "workers".to_string(),
                    Value::Number(available_cores() as f64),
                ),
                (
                    "rows".to_string(),
                    Value::Array(
                        sharded
                            .iter()
                            .map(|r| {
                                Value::object([
                                    ("hosts".to_string(), Value::Number(r.hosts as f64)),
                                    (
                                        "events_per_iteration".to_string(),
                                        Value::Number(r.events as f64),
                                    ),
                                    (
                                        "single_events_per_sec".to_string(),
                                        Value::Number(r.single_eps.round()),
                                    ),
                                    (
                                        "events_per_sec".to_string(),
                                        Value::Number(r.sharded_eps.round()),
                                    ),
                                    (
                                        "speedup".to_string(),
                                        Value::Number((r.speedup() * 100.0).round() / 100.0),
                                    ),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ));
    }
    if let Some(t) = telemetry {
        fields.push((
            "telemetry".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(t.hosts as f64)),
                (
                    "events_per_iteration".to_string(),
                    Value::Number(t.events as f64),
                ),
                (
                    "off_events_per_sec".to_string(),
                    Value::Number(t.off_eps.round()),
                ),
                (
                    "on_events_per_sec".to_string(),
                    Value::Number(t.on_eps.round()),
                ),
                (
                    "on_cost".to_string(),
                    Value::Number((t.on_cost() * 100.0).round() / 100.0),
                ),
            ]),
        ));
    }
    if let Some(r) = request_log {
        fields.push((
            "request_log".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(r.hosts as f64)),
                (
                    "events_per_iteration".to_string(),
                    Value::Number(r.events as f64),
                ),
                (
                    "records_per_iteration".to_string(),
                    Value::Number(r.records as f64),
                ),
                (
                    "off_events_per_sec".to_string(),
                    Value::Number(r.off_eps.round()),
                ),
                (
                    "on_events_per_sec".to_string(),
                    Value::Number(r.on_eps.round()),
                ),
                (
                    "on_cost".to_string(),
                    Value::Number((r.on_cost() * 100.0).round() / 100.0),
                ),
            ]),
        ));
    }
    if let Some(m) = monitor {
        fields.push((
            "monitor".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(m.hosts as f64)),
                (
                    "events_per_iteration".to_string(),
                    Value::Number(m.events as f64),
                ),
                (
                    "folds_per_iteration".to_string(),
                    Value::Number(m.folds as f64),
                ),
                (
                    "off_events_per_sec".to_string(),
                    Value::Number(m.off_eps.round()),
                ),
                (
                    "on_events_per_sec".to_string(),
                    Value::Number(m.on_eps.round()),
                ),
                (
                    "on_cost".to_string(),
                    Value::Number((m.on_cost() * 100.0).round() / 100.0),
                ),
            ]),
        ));
    }
    if let Some(a) = analyze {
        fields.push((
            "analyze".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(a.hosts as f64)),
                ("records".to_string(), Value::Number(a.records as f64)),
                (
                    "records_per_sec".to_string(),
                    Value::Number(a.records_per_sec.round()),
                ),
            ]),
        ));
    }
    if let Some(r) = resilience {
        fields.push((
            "resilience".to_string(),
            Value::object([
                ("hosts".to_string(), Value::Number(r.hosts as f64)),
                (
                    "workload".to_string(),
                    Value::String(
                        "overcommitted 8-host cells, staggered rack outages, \
                         retry budget + brownout"
                            .to_string(),
                    ),
                ),
                (
                    "events_per_iteration".to_string(),
                    Value::Number(r.events as f64),
                ),
                (
                    "events_per_sec".to_string(),
                    Value::Number(r.events_per_sec.round()),
                ),
                ("retries".to_string(), Value::Number(r.retries as f64)),
                ("dropped".to_string(), Value::Number(r.dropped as f64)),
                ("shed".to_string(), Value::Number(r.shed as f64)),
            ]),
        ));
    }
    Value::object(fields)
}

/// Pull `<section>.on_cost` out of a committed report (absent in
/// reports that predate the section).
fn committed_on_cost(doc: &serde_json::Value, section: &str) -> Option<f64> {
    let serde_json::Value::Object(top) = doc else {
        return None;
    };
    let serde_json::Value::Object(t) = top.get(section)? else {
        return None;
    };
    match t.get("on_cost") {
        Some(serde_json::Value::Number(c)) => Some(*c),
        _ => None,
    }
}

/// The worker pool the sharded engine will actually use.
fn available_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Pull `hosts[i].speedup` for a fleet size out of a committed report.
fn committed_speedup(doc: &serde_json::Value, hosts: usize) -> Option<f64> {
    let serde_json::Value::Object(top) = doc else {
        return None;
    };
    let serde_json::Value::Array(rows) = top.get("hosts")? else {
        return None;
    };
    rows.iter().find_map(|row| {
        let serde_json::Value::Object(r) = row else {
            return None;
        };
        match (r.get("hosts"), r.get("speedup")) {
            (Some(serde_json::Value::Number(h)), Some(serde_json::Value::Number(s)))
                if *h == hosts as f64 =>
            {
                Some(*s)
            }
            _ => None,
        }
    })
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out: Option<String> = None;
    let mut check: Option<String> = None;
    let mut tolerance = 0.20f64;
    let mut budget_ms = 1_500u64;
    let mut hosts_list = vec![1usize, 10, 100];
    let mut run_colocate = true;
    let mut run_sharded = true;
    let mut run_telemetry_row = true;
    let mut run_analyze = true;
    let mut run_resilience = true;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => match it.next() {
                Some(v) => out = Some(v.clone()),
                None => return usage(),
            },
            "--check" => match it.next() {
                Some(v) => check = Some(v.clone()),
                None => return usage(),
            },
            "--tolerance" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if (0.0..1.0).contains(&v) => tolerance = v,
                _ => return usage(),
            },
            "--budget-ms" => match it.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => budget_ms = v,
                _ => return usage(),
            },
            "--hosts" => match it.next() {
                Some(v) => {
                    let parsed: Option<Vec<usize>> = v
                        .split(',')
                        .map(|h| h.parse().ok().filter(|&h| h > 0))
                        .collect();
                    match parsed {
                        Some(h) if !h.is_empty() => hosts_list = h,
                        _ => return usage(),
                    }
                }
                None => return usage(),
            },
            "--no-colocate" => run_colocate = false,
            "--no-sharded" => run_sharded = false,
            "--no-telemetry" => run_telemetry_row = false,
            "--no-analyze" => run_analyze = false,
            "--no-resilience" => run_resilience = false,
            _ => return usage(),
        }
    }

    let cfg = TpuConfig::paper();
    let mut rows = Vec::new();
    for &hosts in &hosts_list {
        let (spec, tenants) = spec_for(hosts);

        std::env::set_var("TPU_SIM_EVENT_QUEUE", "heap");
        std::env::set_var("TPU_CLUSTER_ROUTER", "scan");
        let (baseline_eps, events, baseline_run) = measure(&spec, &tenants, &cfg, budget_ms);

        std::env::remove_var("TPU_SIM_EVENT_QUEUE");
        std::env::remove_var("TPU_CLUSTER_ROUTER");
        let (current_eps, _, current_run) = measure(&spec, &tenants, &cfg, budget_ms);

        assert_eq!(
            baseline_run, current_run,
            "baseline and current modes must be bit-identical (hosts={hosts})"
        );

        let row = Row {
            hosts,
            events,
            baseline_eps,
            current_eps,
        };
        println!(
            "hosts={:<4} events/iter={:<7} baseline={:>12.0} ev/s  current={:>12.0} ev/s  speedup={:.2}x",
            row.hosts,
            row.events,
            row.baseline_eps,
            row.current_eps,
            row.speedup()
        );
        rows.push(row);
    }

    // The co-located case: same machinery, weight-swap hot path on
    // (bin-packed placement, swap events, warm-die dispatch, swap-aware
    // routing). Both modes must still be bit-identical — the escape
    // hatches never touch the weight subsystem.
    let colocate_row = if run_colocate {
        let (spec, tenants) = colocate_fleet(COLOCATE_HOSTS, REQUESTS_PER_HOST * COLOCATE_HOSTS);

        std::env::set_var("TPU_SIM_EVENT_QUEUE", "heap");
        std::env::set_var("TPU_CLUSTER_ROUTER", "scan");
        let (baseline_eps, events, baseline_run) = measure(&spec, &tenants, &cfg, budget_ms);

        std::env::remove_var("TPU_SIM_EVENT_QUEUE");
        std::env::remove_var("TPU_CLUSTER_ROUTER");
        let (current_eps, _, current_run) = measure(&spec, &tenants, &cfg, budget_ms);

        assert_eq!(
            baseline_run, current_run,
            "baseline and current modes must be bit-identical (colocate)"
        );
        let swaps: usize = current_run.report.tenants.iter().map(|t| t.swaps).sum();
        assert!(swaps > 0, "the co-located case must exercise the swap path");

        let row = Row {
            hosts: COLOCATE_HOSTS,
            events,
            baseline_eps,
            current_eps,
        };
        println!(
            "colocate hosts={:<4} events/iter={:<7} baseline={:>12.0} ev/s  current={:>12.0} ev/s  speedup={:.2}x  swaps/iter={}",
            row.hosts, row.events, row.baseline_eps, row.current_eps, row.speedup(), swaps
        );
        Some(row)
    } else {
        None
    };

    // The sharded-engine pair: the cell-structured sweep workload under
    // the forced single-threaded reference, then the forced sharded
    // engine (workers = available cores). Bit-identity is the contract;
    // it is asserted on every size.
    let sharded_rows: Vec<ShardedRow> = if run_sharded {
        let mut out = Vec::new();
        for hosts in SHARDED_HOSTS {
            let (spec, tenants) = sweep_fleet(hosts, REQUESTS_PER_HOST * hosts);

            std::env::set_var("TPU_CLUSTER_ENGINE", "single");
            let (single_eps, events, single_run) = measure(&spec, &tenants, &cfg, budget_ms);

            std::env::set_var("TPU_CLUSTER_ENGINE", "sharded");
            let (sharded_eps, _, sharded_run) = measure(&spec, &tenants, &cfg, budget_ms);
            std::env::remove_var("TPU_CLUSTER_ENGINE");

            assert_eq!(
                single_run, sharded_run,
                "sharded and single-threaded engines must be bit-identical (hosts={hosts})"
            );

            let row = ShardedRow {
                hosts,
                events,
                single_eps,
                sharded_eps,
            };
            println!(
                "sharded hosts={:<4} events/iter={:<8} single={:>12.0} ev/s  sharded={:>12.0} ev/s  speedup={:.2}x  workers={}",
                row.hosts, row.events, row.single_eps, row.sharded_eps, row.speedup(), available_cores()
            );
            out.push(row);
        }
        out
    } else {
        Vec::new()
    };

    // The telemetry overhead pair: the default path (instruments off —
    // what every golden and the rows above run) against the fully
    // instrumented engine, same workload, same process. The off mode is
    // the regression being guarded: telemetry must stay pay-for-what-
    // you-use, and even on-mode must not distort the engine (the report
    // equality is asserted).
    let (telemetry_row, request_log_row, monitor_row) = if run_telemetry_row {
        let (spec, tenants) = spec_for(TELEMETRY_HOSTS);
        let (off_eps, events, off_run) = measure(&spec, &tenants, &cfg, budget_ms);
        let (on_eps, on_run) = measure_telemetry(&spec, &tenants, &cfg, budget_ms);
        assert_eq!(
            off_run, on_run,
            "telemetry-on runs must report bit-identically to telemetry-off"
        );
        let row = TelemetryRow {
            hosts: TELEMETRY_HOSTS,
            events,
            off_eps,
            on_eps,
        };
        println!(
            "telemetry hosts={:<4} events/iter={:<7} off={:>12.0} ev/s  on={:>12.0} ev/s  on-cost={:.2}x",
            row.hosts, row.events, row.off_eps, row.on_eps, row.on_cost()
        );
        // The request-log pair shares the off measurement: same spec,
        // same workload, and off-mode is identical either way.
        let (req_eps, req_run, req_log) = measure_request_log(&spec, &tenants, &cfg, budget_ms);
        assert_eq!(
            off_run, req_run,
            "request-log-on runs must report bit-identically to telemetry-off"
        );
        let served: usize = req_run.report.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(
            req_log.len(),
            served,
            "the record stream must hold one record per served request"
        );
        let req_row = RequestLogRow {
            hosts: TELEMETRY_HOSTS,
            events,
            records: req_log.len(),
            off_eps,
            on_eps: req_eps,
        };
        println!(
            "request-log hosts={:<4} records/iter={:<7} off={:>12.0} ev/s  on={:>12.0} ev/s  on-cost={:.2}x",
            req_row.hosts, req_row.records, req_row.off_eps, req_row.on_eps, req_row.on_cost()
        );
        // The health-monitor pair shares the same off measurement: the
        // monitor is the only instrument attached, so the ratio is the
        // marginal price of the streaming burn/anomaly/incident fold.
        let (mon_eps, mon_run, mon_folds) = measure_monitor(&spec, &tenants, &cfg, budget_ms);
        assert_eq!(
            off_run, mon_run,
            "monitor-on runs must report bit-identically to telemetry-off"
        );
        assert!(mon_folds > 0, "the monitor must fold cadence samples");
        let mon_row = MonitorRow {
            hosts: TELEMETRY_HOSTS,
            events,
            folds: mon_folds,
            off_eps,
            on_eps: mon_eps,
        };
        println!(
            "monitor hosts={:<4} folds/iter={:<7} off={:>12.0} ev/s  on={:>12.0} ev/s  on-cost={:.2}x",
            mon_row.hosts, mon_row.folds, mon_row.off_eps, mon_row.on_eps, mon_row.on_cost()
        );
        (Some(row), Some(req_row), Some(mon_row))
    } else {
        (None, None, None)
    };

    // The analyzer throughput row: build one committed-scale request
    // log (100k records) and time full attribution passes over it.
    let analyze_row = if run_analyze {
        let (spec, tenants) = spec_for(ANALYZE_HOSTS);
        let tcfg = TelemetryConfig {
            trace: false,
            metrics: None,
            requests: true,
            profile: false,
        };
        let mut tel = RunTelemetry::from_config(&tcfg);
        let run = run_fleet_telemetry(&spec, &tenants, &cfg, &mut tel);
        let log = tel.requests.expect("request log on");
        let served: usize = run.report.tenants.iter().map(|t| t.requests).sum();
        assert_eq!(log.len(), served, "one record per served request");
        assert!(
            log.len() >= ANALYZE_MIN_RECORDS,
            "analyze row needs >= {ANALYZE_MIN_RECORDS} records, got {}",
            log.len()
        );
        // One untimed warmup, doubling as a correctness check.
        let a = Attribution::from_log(&log, None);
        assert_eq!(a.total_requests, log.len(), "attribution covers the log");
        let start = Instant::now();
        let mut iters = 0u64;
        while iters < 2 || start.elapsed().as_millis() < budget_ms as u128 {
            let a = Attribution::from_log(&log, None);
            assert_eq!(a.total_requests, log.len(), "attribution covers the log");
            iters += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let row = AnalyzeRow {
            hosts: ANALYZE_HOSTS,
            records: log.len(),
            records_per_sec: (log.len() as u64 * iters) as f64 / elapsed,
        };
        println!(
            "analyze hosts={:<4} records={:<7} attribution={:>12.0} records/s",
            row.hosts, row.records, row.records_per_sec
        );
        Some(row)
    } else {
        None
    };

    // The failure-heavy row: the overcommitted rack-outage workload
    // with the full resilience layer live. The behavioral counts come
    // from the deterministic report; the gate below requires the row
    // to genuinely exercise retries and brownout shedding.
    let resilience_row = if run_resilience {
        let (spec, tenants) = resilient_fleet(RESILIENT_HOSTS, REQUESTS_PER_HOST * RESILIENT_HOSTS);
        let (events_per_sec, events, run) = measure(&spec, &tenants, &cfg, budget_ms);
        let sum = |f: fn(&tpu_cluster::FleetTenantReport) -> usize| -> usize {
            run.report.tenants.iter().map(f).sum()
        };
        let row = ResilienceRow {
            hosts: RESILIENT_HOSTS,
            events,
            events_per_sec,
            retries: sum(|t| t.retries),
            dropped: sum(|t| t.dropped),
            shed: sum(|t| t.shed),
        };
        println!(
            "resilience hosts={:<4} events/iter={:<8} current={:>12.0} ev/s  retries/iter={} dropped/iter={} shed/iter={}",
            row.hosts, row.events, row.events_per_sec, row.retries, row.dropped, row.shed
        );
        Some(row)
    } else {
        None
    };

    let doc = rows_to_json(
        &rows,
        colocate_row.as_ref(),
        &sharded_rows,
        telemetry_row.as_ref(),
        request_log_row.as_ref(),
        monitor_row.as_ref(),
        analyze_row.as_ref(),
        resilience_row.as_ref(),
    );
    if let Some(path) = out {
        let body = format!("{}\n", serde_json::to_string_pretty(&doc));
        if let Err(e) = std::fs::write(&path, body) {
            eprintln!("bench_cluster: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("wrote {path}");
    }

    if let Some(path) = check {
        let gate_hosts = *hosts_list.last().expect("hosts list non-empty");
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("bench_cluster: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let committed = match serde_json::from_str(&text) {
            Ok(v) => v,
            Err(e) => {
                eprintln!("bench_cluster: {path} is not valid JSON: {e}");
                return ExitCode::FAILURE;
            }
        };
        let Some(want) = committed_speedup(&committed, gate_hosts) else {
            eprintln!("bench_cluster: {path} has no speedup entry for {gate_hosts} hosts");
            return ExitCode::FAILURE;
        };
        let got = rows
            .iter()
            .find(|r| r.hosts == gate_hosts)
            .expect("measured the gate size")
            .speedup();
        let floor = want * (1.0 - tolerance);
        if got < floor {
            eprintln!(
                "bench_cluster: REGRESSION at {gate_hosts} hosts: same-run speedup {got:.2}x \
                 fell below {floor:.2}x (committed {want:.2}x - {:.0}% tolerance)",
                tolerance * 100.0
            );
            return ExitCode::FAILURE;
        }
        println!(
            "gate ok at {gate_hosts} hosts: speedup {got:.2}x >= {floor:.2}x \
             (committed {want:.2}x - {:.0}% tolerance)",
            tolerance * 100.0
        );
        // Telemetry gate: the same-run off/on ratio must not grow past
        // the committed cost plus tolerance — a creeping hot-path tax
        // in off mode (or runaway instrument cost in on mode) trips it.
        if let (Some(measured), Some(want)) =
            (&telemetry_row, committed_on_cost(&committed, "telemetry"))
        {
            let ceiling = want * (1.0 + tolerance);
            let got = measured.on_cost();
            if got > ceiling {
                eprintln!(
                    "bench_cluster: REGRESSION: telemetry on-cost {got:.2}x exceeded \
                     {ceiling:.2}x (committed {want:.2}x + {:.0}% tolerance)",
                    tolerance * 100.0
                );
                return ExitCode::FAILURE;
            }
            println!(
                "gate ok for telemetry: on-cost {got:.2}x <= {ceiling:.2}x \
                 (committed {want:.2}x + {:.0}% tolerance)",
                tolerance * 100.0
            );
        }
        // Same ceiling rule for the record stream on its own: it must
        // stay far cheaper than the full instrument set. Its committed
        // ratio sits near 1.0, where a purely relative band is narrower
        // than run-to-run noise, so the ceiling also gets the tolerance
        // as an absolute allowance.
        if let (Some(measured), Some(want)) = (
            &request_log_row,
            committed_on_cost(&committed, "request_log"),
        ) {
            let ceiling = want * (1.0 + tolerance) + tolerance;
            let got = measured.on_cost();
            if got > ceiling {
                eprintln!(
                    "bench_cluster: REGRESSION: request-log on-cost {got:.2}x exceeded \
                     {ceiling:.2}x (committed {want:.2}x + {:.0}% tolerance)",
                    tolerance * 100.0
                );
                return ExitCode::FAILURE;
            }
            println!(
                "gate ok for request-log: on-cost {got:.2}x <= {ceiling:.2}x \
                 (committed {want:.2}x + {:.0}% tolerance)",
                tolerance * 100.0
            );
        }
        // The monitor's ratio also sits near 1.0 — the same relative
        // band plus absolute allowance as the record stream. A breach
        // means the streaming fold (burn windows, anomaly detectors,
        // incident state) grew a per-event or per-fold hot-path tax.
        if let (Some(measured), Some(want)) =
            (&monitor_row, committed_on_cost(&committed, "monitor"))
        {
            let ceiling = want * (1.0 + tolerance) + tolerance;
            let got = measured.on_cost();
            if got > ceiling {
                eprintln!(
                    "bench_cluster: REGRESSION: monitor on-cost {got:.2}x exceeded \
                     {ceiling:.2}x (committed {want:.2}x + {:.0}% tolerance)",
                    tolerance * 100.0
                );
                return ExitCode::FAILURE;
            }
            println!(
                "gate ok for monitor: on-cost {got:.2}x <= {ceiling:.2}x \
                 (committed {want:.2}x + {:.0}% tolerance)",
                tolerance * 100.0
            );
        }
        // The analyzer gate is absolute, not relative: the log must be
        // committed-scale and the throughput a real, finite rate.
        if let Some(a) = &analyze_row {
            if a.records < ANALYZE_MIN_RECORDS
                || !a.records_per_sec.is_finite()
                || a.records_per_sec <= 0.0
            {
                eprintln!(
                    "bench_cluster: REGRESSION: analyze row degenerate \
                     ({} records, {} records/s)",
                    a.records, a.records_per_sec
                );
                return ExitCode::FAILURE;
            }
            println!(
                "gate ok for analyze: {} records at {:.0} records/s",
                a.records, a.records_per_sec
            );
        }
        // The resilience gate is behavioral, not relative: the sim is
        // deterministic, so the failure-heavy row must always displace
        // work into the retry layer and trip the brownout controller —
        // a zero in either column means the resilience hot path
        // silently stopped being exercised.
        if let Some(r) = &resilience_row {
            if r.retries == 0
                || r.shed == 0
                || !r.events_per_sec.is_finite()
                || r.events_per_sec <= 0.0
            {
                eprintln!(
                    "bench_cluster: REGRESSION: resilience row degenerate \
                     ({} retries, {} shed, {} events/s)",
                    r.retries, r.shed, r.events_per_sec
                );
                return ExitCode::FAILURE;
            }
            println!(
                "gate ok for resilience: {} retries, {} dropped, {} shed at {:.0} events/s",
                r.retries, r.dropped, r.shed, r.events_per_sec
            );
        }
        // The sharded gate is an absolute floor, not committed-relative:
        // on a machine with enough cores, the multi-core engine must
        // beat the single-threaded reference by at least 2x at 1000
        // hosts. Below the core threshold the floor would measure the
        // hardware, not the code, so it is skipped (and says so).
        if let Some(row) = sharded_rows.iter().find(|r| r.hosts == SHARDED_GATE_HOSTS) {
            let cores = available_cores();
            if cores < SHARDED_GATE_MIN_CORES {
                println!(
                    "gate skipped for sharded: {cores} core(s) < {SHARDED_GATE_MIN_CORES} \
                     (measured {:.2}x at {SHARDED_GATE_HOSTS} hosts, informational)",
                    row.speedup()
                );
            } else if row.speedup() < SHARDED_GATE_MIN_SPEEDUP {
                eprintln!(
                    "bench_cluster: REGRESSION: sharded speedup {:.2}x at {SHARDED_GATE_HOSTS} \
                     hosts fell below the {SHARDED_GATE_MIN_SPEEDUP:.1}x floor on {cores} cores",
                    row.speedup()
                );
                return ExitCode::FAILURE;
            } else {
                println!(
                    "gate ok for sharded: {:.2}x >= {SHARDED_GATE_MIN_SPEEDUP:.1}x at \
                     {SHARDED_GATE_HOSTS} hosts on {cores} cores",
                    row.speedup()
                );
            }
        }
    }
    ExitCode::SUCCESS
}
