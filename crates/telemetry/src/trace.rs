//! Causal request tracing in the Chrome trace-event format.
//!
//! A [`Tracer`] accumulates [`TraceEvent`]s — die activity as complete
//! (`ph:"X"`) slices, per-request span trees as nestable async
//! (`ph:"b"`/`"e"`) events keyed by a per-request id, and fleet-level
//! moments (crashes, retries, scale decisions) as instants — and
//! exports them as one JSON document loadable in Perfetto or
//! `chrome://tracing`. Hosts map to processes (`pid`), dies to threads
//! (`tid`), so the UI shows one track per host/die.
//!
//! All timestamps are **simulated milliseconds**; the export multiplies
//! by 1000 into the microsecond unit the format specifies. Nothing here
//! reads a clock, so two same-seed runs render byte-identical traces.

use serde_json::Value;

/// Trace-event phase, mirroring the Chrome `ph` field.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete slice with a duration (`ph:"X"`).
    Complete,
    /// Begin of a nestable async span (`ph:"b"`).
    AsyncBegin,
    /// End of a nestable async span (`ph:"e"`).
    AsyncEnd,
    /// A zero-duration instant (`ph:"i"`).
    Instant,
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Event phase.
    pub phase: Phase,
    /// Span name (tenant or phase name).
    pub name: String,
    /// Category — groups spans in the UI and in [`Tracer::summary`]
    /// (`"service"`, `"swap"`, `"request"`, `"fleet"`, …).
    pub cat: String,
    /// Process id — host index (the fleet front-end uses one past the
    /// last host).
    pub pid: u32,
    /// Thread id — `1 + die` for die tracks, `0` otherwise.
    pub tid: u32,
    /// Start time in simulated milliseconds.
    pub ts_ms: f64,
    /// Duration in simulated milliseconds ([`Phase::Complete`] only).
    pub dur_ms: f64,
    /// Async span id ([`Phase::AsyncBegin`]/[`Phase::AsyncEnd`] only).
    pub id: u64,
    /// Extra `args` rendered into the event.
    pub args: Vec<(String, Value)>,
}

/// Aggregated span totals for the compact report summary.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaryRow {
    /// Span category.
    pub cat: String,
    /// Span name.
    pub name: String,
    /// Number of spans.
    pub count: u64,
    /// Total span duration in simulated milliseconds.
    pub total_ms: f64,
}

/// Accumulates trace events and exports them as Chrome trace JSON.
#[derive(Debug, Default)]
pub struct Tracer {
    /// Process/thread naming metadata, kept apart so it leads the
    /// export regardless of timestamps.
    meta: Vec<Value>,
    events: Vec<TraceEvent>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded (non-metadata) events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The recorded events, in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Name the process track `pid` (a host).
    pub fn name_process(&mut self, pid: u32, name: &str) {
        self.meta.push(meta_event("process_name", pid, 0, name));
    }

    /// Name the thread track `(pid, tid)` (a die).
    pub fn name_thread(&mut self, pid: u32, tid: u32, name: &str) {
        self.meta.push(meta_event("thread_name", pid, tid, name));
    }

    /// Record a complete slice.
    #[allow(clippy::too_many_arguments)]
    pub fn complete(
        &mut self,
        pid: u32,
        tid: u32,
        cat: &str,
        name: &str,
        ts_ms: f64,
        dur_ms: f64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(TraceEvent {
            phase: Phase::Complete,
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            ts_ms,
            dur_ms,
            id: 0,
            args,
        });
    }

    /// Begin a nestable async span.
    pub fn async_begin(&mut self, pid: u32, cat: &str, name: &str, id: u64, ts_ms: f64) {
        self.events.push(TraceEvent {
            phase: Phase::AsyncBegin,
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid: 0,
            ts_ms,
            dur_ms: 0.0,
            id,
            args: Vec::new(),
        });
    }

    /// End a nestable async span.
    pub fn async_end(&mut self, pid: u32, cat: &str, name: &str, id: u64, ts_ms: f64) {
        self.events.push(TraceEvent {
            phase: Phase::AsyncEnd,
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid: 0,
            ts_ms,
            dur_ms: 0.0,
            id,
            args: Vec::new(),
        });
    }

    /// Record an instant.
    pub fn instant(
        &mut self,
        pid: u32,
        cat: &str,
        name: &str,
        ts_ms: f64,
        args: Vec<(String, Value)>,
    ) {
        self.events.push(TraceEvent {
            phase: Phase::Instant,
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid: 0,
            ts_ms,
            dur_ms: 0.0,
            id: 0,
            args,
        });
    }

    /// Merge another tracer's events (e.g. a host probe's) into this
    /// one.
    pub fn absorb(&mut self, other: Tracer) {
        self.meta.extend(other.meta);
        self.events.extend(other.events);
    }

    /// Export as a Chrome trace-event document: metadata first, then
    /// events stably sorted by timestamp (insertion order breaks ties,
    /// so the export is deterministic).
    pub fn to_chrome_json(&self) -> Value {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| self.events[i].ts_ms.to_bits());
        let mut out: Vec<Value> = self.meta.clone();
        out.extend(order.into_iter().map(|i| event_json(&self.events[i])));
        Value::object([
            ("displayTimeUnit".to_string(), Value::String("ms".into())),
            ("traceEvents".to_string(), Value::Array(out)),
        ])
    }

    /// Render the Chrome trace document as a compact JSON string.
    pub fn render(&self) -> String {
        serde_json::to_string(&self.to_chrome_json())
    }

    /// Aggregate spans into `(cat, name)` totals, sorted by category
    /// then name. Complete slices contribute their duration; async
    /// spans are paired begin/end per `(id, cat, name)`.
    pub fn summary(&self) -> Vec<SummaryRow> {
        use std::collections::BTreeMap;
        let mut open: BTreeMap<(u64, &str, &str), Vec<f64>> = BTreeMap::new();
        let mut rows: BTreeMap<(&str, &str), (u64, f64)> = BTreeMap::new();
        for e in &self.events {
            match e.phase {
                Phase::Complete => {
                    let r = rows.entry((&e.cat, &e.name)).or_insert((0, 0.0));
                    r.0 += 1;
                    r.1 += e.dur_ms;
                }
                Phase::AsyncBegin => {
                    open.entry((e.id, &e.cat, &e.name))
                        .or_default()
                        .push(e.ts_ms);
                }
                Phase::AsyncEnd => {
                    if let Some(begin) = open
                        .get_mut(&(e.id, e.cat.as_str(), e.name.as_str()))
                        .and_then(Vec::pop)
                    {
                        let r = rows.entry((&e.cat, &e.name)).or_insert((0, 0.0));
                        r.0 += 1;
                        r.1 += e.ts_ms - begin;
                    }
                }
                Phase::Instant => {
                    let r = rows.entry((&e.cat, &e.name)).or_insert((0, 0.0));
                    r.0 += 1;
                }
            }
        }
        rows.into_iter()
            .map(|((cat, name), (count, total_ms))| SummaryRow {
                cat: cat.to_string(),
                name: name.to_string(),
                count,
                total_ms,
            })
            .collect()
    }
}

fn meta_event(kind: &str, pid: u32, tid: u32, name: &str) -> Value {
    Value::object([
        ("ph".to_string(), Value::String("M".into())),
        ("name".to_string(), Value::String(kind.into())),
        ("pid".to_string(), Value::Number(pid as f64)),
        ("tid".to_string(), Value::Number(tid as f64)),
        (
            "args".to_string(),
            Value::object([("name".to_string(), Value::String(name.into()))]),
        ),
    ])
}

fn event_json(e: &TraceEvent) -> Value {
    let mut fields = vec![
        ("name".to_string(), Value::String(e.name.clone())),
        ("cat".to_string(), Value::String(e.cat.clone())),
        ("pid".to_string(), Value::Number(e.pid as f64)),
        ("tid".to_string(), Value::Number(e.tid as f64)),
        ("ts".to_string(), Value::Number(e.ts_ms * 1000.0)),
    ];
    let ph = match e.phase {
        Phase::Complete => {
            fields.push(("dur".to_string(), Value::Number(e.dur_ms * 1000.0)));
            "X"
        }
        Phase::AsyncBegin => "b",
        Phase::AsyncEnd => "e",
        Phase::Instant => {
            fields.push(("s".to_string(), Value::String("t".into())));
            "i"
        }
    };
    fields.push(("ph".to_string(), Value::String(ph.into())));
    if matches!(e.phase, Phase::AsyncBegin | Phase::AsyncEnd) {
        fields.push(("id".to_string(), Value::String(format!("{:#x}", e.id))));
    }
    if !e.args.is_empty() {
        fields.push(("args".to_string(), Value::object(e.args.iter().cloned())));
    }
    Value::object(fields)
}

/// Records one host's spans: die activity slices plus the per-request
/// async span tree (queue → swap-stall → service), all emitted at
/// batch completion so aborted batches leave no spans.
///
/// The engines hand a probe to each `HostCore`; at end of run the
/// probe's tracer is absorbed into the run's [`Tracer`].
#[derive(Debug)]
pub struct HostProbe {
    pid: u32,
    next_id: u64,
    tracer: Tracer,
}

impl HostProbe {
    /// A probe for host `pid` with named process/die tracks.
    pub fn new(pid: u32, host_name: &str, dies: usize) -> Self {
        let mut tracer = Tracer::new();
        tracer.name_process(pid, host_name);
        for d in 0..dies {
            tracer.name_thread(pid, d as u32 + 1, &format!("die {d}"));
        }
        Self {
            pid,
            next_id: 0,
            tracer,
        }
    }

    /// The host index this probe records for.
    pub fn pid(&self) -> u32 {
        self.pid
    }

    /// Record one completed batch: a swap slice (if the die swapped
    /// weights), a service slice on the die track, and a request span
    /// tree per batched arrival.
    #[allow(clippy::too_many_arguments)]
    pub fn batch_complete(
        &mut self,
        die: usize,
        tenant: &str,
        start_ms: f64,
        swap_ms: f64,
        end_ms: f64,
        arrivals: &[f64],
    ) {
        let tid = die as u32 + 1;
        let served_at = start_ms + swap_ms;
        if swap_ms > 0.0 {
            self.tracer.complete(
                self.pid,
                tid,
                "swap",
                tenant,
                start_ms,
                swap_ms,
                vec![("swap_ms".to_string(), Value::Number(swap_ms))],
            );
        }
        self.tracer.complete(
            self.pid,
            tid,
            "service",
            tenant,
            served_at,
            end_ms - served_at,
            vec![("batch".to_string(), Value::Number(arrivals.len() as f64))],
        );
        for &arrived in arrivals {
            let id = ((self.pid as u64) << 32) | self.next_id;
            self.next_id += 1;
            self.tracer
                .async_begin(self.pid, "request", tenant, id, arrived);
            self.tracer
                .async_begin(self.pid, "phase", "queue", id, arrived);
            self.tracer
                .async_end(self.pid, "phase", "queue", id, start_ms);
            if swap_ms > 0.0 {
                self.tracer
                    .async_begin(self.pid, "phase", "swap-stall", id, start_ms);
                self.tracer
                    .async_end(self.pid, "phase", "swap-stall", id, served_at);
            }
            self.tracer
                .async_begin(self.pid, "phase", "service", id, served_at);
            self.tracer
                .async_end(self.pid, "phase", "service", id, end_ms);
            self.tracer
                .async_end(self.pid, "request", tenant, id, end_ms);
        }
    }

    /// Record a host-level instant (crash, recovery, …).
    pub fn instant(&mut self, cat: &str, name: &str, ts_ms: f64) {
        self.tracer.instant(self.pid, cat, name, ts_ms, Vec::new());
    }

    /// Surrender the recorded events for absorption into the run
    /// tracer.
    pub fn into_tracer(self) -> Tracer {
        self.tracer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_is_sorted_and_parses() {
        let mut t = Tracer::new();
        t.name_process(0, "host 0");
        t.complete(0, 1, "service", "MLP0", 5.0, 2.0, Vec::new());
        t.complete(0, 1, "service", "MLP0", 1.0, 1.5, Vec::new());
        t.instant(0, "fleet", "crash", 0.5, Vec::new());
        let text = t.render();
        let doc = serde_json::from_str(&text).expect("trace JSON parses");
        let Value::Object(map) = doc else {
            panic!("expected an object")
        };
        let Value::Array(events) = &map["traceEvents"] else {
            panic!("expected traceEvents array")
        };
        assert_eq!(events.len(), 4);
        // Metadata first, then events by ascending ts.
        let ts: Vec<f64> = events[1..]
            .iter()
            .map(|e| match e {
                Value::Object(m) => match m["ts"] {
                    Value::Number(n) => n,
                    _ => panic!("ts is a number"),
                },
                _ => panic!("event is an object"),
            })
            .collect();
        assert_eq!(ts, vec![500.0, 1000.0, 5000.0]);
    }

    #[test]
    fn probe_records_swap_service_and_request_spans() {
        let mut p = HostProbe::new(3, "host 3", 2);
        p.batch_complete(1, "CNN0", 10.0, 4.0, 20.0, &[7.0, 9.0]);
        let t = p.into_tracer();
        let rows = t.summary();
        let get = |cat: &str, name: &str| {
            rows.iter()
                .find(|r| r.cat == cat && r.name == name)
                .unwrap_or_else(|| panic!("missing row {cat}/{name}"))
        };
        assert_eq!(get("swap", "CNN0").total_ms, 4.0);
        assert_eq!(get("service", "CNN0").total_ms, 6.0);
        // Two requests: queue waits (10-7)+(10-9)=4, stalls 4+4=8,
        // service 6+6=12, end-to-end (20-7)+(20-9)=24.
        assert_eq!(get("phase", "queue").total_ms, 4.0);
        assert_eq!(get("phase", "swap-stall").total_ms, 8.0);
        assert_eq!(get("phase", "service").total_ms, 12.0);
        let req = get("request", "CNN0");
        assert_eq!((req.count, req.total_ms), (2, 24.0));
    }

    #[test]
    fn same_inputs_render_identical_bytes() {
        let build = || {
            let mut p = HostProbe::new(0, "host 0", 1);
            p.batch_complete(0, "LSTM0", 2.0, 0.0, 5.0, &[1.0]);
            let mut t = Tracer::new();
            t.absorb(p.into_tracer());
            t.render()
        };
        assert_eq!(build(), build());
    }
}
