//! Engine self-profiling: what the event core itself did during a run.
//!
//! [`WheelProfile`] is filled from the hierarchical timer wheel's
//! internal counters (kept in the cold `advance` path and the rare
//! rung-spill branch, so they cost nothing on the hot path);
//! [`EngineProfile`] adds per-event-type counts tallied by the engine
//! loops. Both surface through `--engine-stats`.

use serde_json::Value;

/// Timer-wheel occupancy and churn statistics for one run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WheelProfile {
    /// Slots per level (the wheel radix).
    pub slots_per_level: usize,
    /// Times `advance` drained a slot from each level (index = level;
    /// level 0 is the finest).
    pub drains_per_level: Vec<u64>,
    /// Occupied-slot count per level at the moment of capture.
    pub occupied_slots: Vec<u32>,
    /// Histogram of bottom-rung length at each drain, in power-of-two
    /// buckets: index `i` counts drains with `2^i ≤ len < 2^(i+1)`
    /// (index 0 also counts empty rungs).
    pub rung_hist: Vec<u64>,
    /// Longest bottom rung ever sorted.
    pub max_rung: usize,
    /// Times `advance` ran (the rung went dry).
    pub advances: u64,
    /// Times a push landed past the rung bound because the rung hit
    /// `RUNG_SPILL_THRESHOLD` (the PR 5 spill path).
    pub spills: u64,
    /// Events still queued at capture.
    pub pending: usize,
}

/// Per-run engine statistics: event-type counts plus the wheel profile
/// (absent when the run used the reference `BinaryHeap` backend).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EngineProfile {
    /// `(event type, count)` in engine-defined order.
    pub event_counts: Vec<(String, u64)>,
    /// Timer-wheel statistics, when the wheel backend ran.
    pub wheel: Option<WheelProfile>,
}

impl EngineProfile {
    /// An empty profile for the engine to fill.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total events across all types.
    pub fn total_events(&self) -> u64 {
        self.event_counts.iter().map(|(_, n)| n).sum()
    }

    /// Render as indented stderr lines for `--engine-stats` (no
    /// trailing newline; empty sections are omitted).
    pub fn lines(&self) -> Vec<String> {
        let mut out = Vec::new();
        if !self.event_counts.is_empty() {
            let counts = self
                .event_counts
                .iter()
                .map(|(name, n)| format!("{name}={n}"))
                .collect::<Vec<_>>()
                .join(" ");
            out.push(format!("  events: {counts}"));
        }
        if let Some(w) = &self.wheel {
            out.push(format!(
                "  wheel: advances={} spills={} max-rung={} pending={}",
                w.advances, w.spills, w.max_rung, w.pending
            ));
            let drains = join_indexed(&w.drains_per_level, |l, n| format!("L{l}={n}"));
            if !drains.is_empty() {
                out.push(format!("  wheel drains/level: {drains}"));
            }
            let occ = join_indexed(&w.occupied_slots, |l, n| format!("L{l}={n}"));
            if !occ.is_empty() {
                out.push(format!(
                    "  wheel occupied-slots (of {}): {occ}",
                    w.slots_per_level
                ));
            }
            let hist = join_indexed(&w.rung_hist, |i, n| {
                format!("[{},{})={n}", 1u64 << i, 1u64 << (i + 1))
            });
            if !hist.is_empty() {
                out.push(format!("  rung-length hist: {hist}"));
            }
        }
        out
    }

    /// Export as a JSON object mirroring [`Self::lines`].
    pub fn to_json(&self) -> Value {
        let mut fields = vec![(
            "event_counts".to_string(),
            Value::object(
                self.event_counts
                    .iter()
                    .map(|(name, n)| (name.clone(), Value::Number(*n as f64))),
            ),
        )];
        if let Some(w) = &self.wheel {
            fields.push((
                "wheel".to_string(),
                Value::object([
                    (
                        "slots_per_level".to_string(),
                        Value::Number(w.slots_per_level as f64),
                    ),
                    (
                        "drains_per_level".to_string(),
                        Value::Array(
                            w.drains_per_level
                                .iter()
                                .map(|&n| Value::Number(n as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "occupied_slots".to_string(),
                        Value::Array(
                            w.occupied_slots
                                .iter()
                                .map(|&n| Value::Number(n as f64))
                                .collect(),
                        ),
                    ),
                    (
                        "rung_hist".to_string(),
                        Value::Array(
                            w.rung_hist
                                .iter()
                                .map(|&n| Value::Number(n as f64))
                                .collect(),
                        ),
                    ),
                    ("max_rung".to_string(), Value::Number(w.max_rung as f64)),
                    ("advances".to_string(), Value::Number(w.advances as f64)),
                    ("spills".to_string(), Value::Number(w.spills as f64)),
                    ("pending".to_string(), Value::Number(w.pending as f64)),
                ]),
            ));
        }
        Value::object(fields)
    }
}

/// `f(index, value)` over nonzero entries, space-joined; `""` if all
/// zero.
fn join_indexed<T: Copy + Into<u64>>(values: &[T], f: impl Fn(usize, u64) -> String) -> String {
    values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v.into() != 0)
        .map(|(i, &v)| f(i, v.into()))
        .collect::<Vec<_>>()
        .join(" ")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EngineProfile {
        EngineProfile {
            event_counts: vec![("arrival".to_string(), 10), ("die-free".to_string(), 4)],
            wheel: Some(WheelProfile {
                slots_per_level: 64,
                drains_per_level: vec![5, 2, 0],
                occupied_slots: vec![1, 0, 0],
                rung_hist: vec![3, 4, 0, 1],
                max_rung: 9,
                advances: 7,
                spills: 2,
                pending: 0,
            }),
        }
    }

    #[test]
    fn lines_cover_every_section() {
        let p = sample();
        assert_eq!(p.total_events(), 14);
        let text = p.lines().join("\n");
        assert!(text.contains("events: arrival=10 die-free=4"));
        assert!(text.contains("wheel: advances=7 spills=2 max-rung=9 pending=0"));
        assert!(text.contains("drains/level: L0=5 L1=2"));
        assert!(text.contains("occupied-slots (of 64): L0=1"));
        assert!(text.contains("rung-length hist: [1,2)=3 [2,4)=4 [8,16)=1"));
    }

    #[test]
    fn heap_runs_render_without_a_wheel_section() {
        let p = EngineProfile {
            event_counts: vec![("timer".to_string(), 1)],
            wheel: None,
        };
        let text = p.lines().join("\n");
        assert!(text.contains("events: timer=1"));
        assert!(!text.contains("wheel:"));
    }

    #[test]
    fn json_parses_and_is_deterministic() {
        let p = sample();
        let text = serde_json::to_string(&p.to_json());
        assert_eq!(text, serde_json::to_string(&sample().to_json()));
        serde_json::from_str(&text).expect("profile JSON parses");
    }
}
