//! # tpu-telemetry — opt-in observability for the serving simulators
//!
//! Three instruments, all recorded in **sim time** (never wall clock),
//! all strictly opt-in:
//!
//! * [`trace`] — causal request tracing: every request gets a span tree
//!   (arrival → queue → dispatch → weight-swap stall → service →
//!   complete) plus per-die activity tracks, exported as Chrome
//!   trace-event JSON loadable in Perfetto / `chrome://tracing`;
//! * [`metrics`] — seeded-cadence time-series probes (queue depth,
//!   per-die utilization, outstanding-per-replica, resident weights,
//!   replica counts) in ring-buffered series, exportable as CSV or
//!   JSON;
//! * [`profile`] — engine self-profiling: per-event-type counts and
//!   timer-wheel occupancy / rung-spill counters behind
//!   `--engine-stats`;
//! * [`reqlog`] — a compact per-request record stream (tenant, host,
//!   die, arrival/dispatch/complete, swap stall, retries) behind
//!   `--request-log`, the analysis-ready input of `tpu_analyze`.
//!
//! [`stats`] holds the shared percentile index rule and the
//! bounded-memory [`LatencySketch`] the metrics recorder uses for
//! per-interval latency percentiles.
//!
//! The determinism contract is the point of the design: a run carries a
//! [`RunTelemetry`] whose fields are all `Option`s. With every field
//! `None` (the [`RunTelemetry::off`] default, and what the plain
//! `run`/`run_fleet` entry points pass) the engines' hot paths pay one
//! branch per hook and emit nothing, so every seeded report stays
//! byte-identical to an uninstrumented build. With telemetry on, the
//! instruments only *observe* — they never schedule events, draw from
//! an RNG, or read a clock — so the report is still bit-identical to
//! the telemetry-off run and the artifacts themselves are bit-identical
//! across same-seed runs.
//!
//! Artifacts leave the run through a [`TelemetrySink`]; the default
//! [`NoopSink`] discards everything, the CLIs install a file-writing
//! sink, and tests install collecting sinks.

#![warn(missing_docs)]

pub mod metrics;
pub mod profile;
pub mod reqlog;
pub mod stats;
pub mod trace;

pub use metrics::{MetricsConfig, MetricsRecorder, Point};
pub use profile::{EngineProfile, WheelProfile};
pub use reqlog::{RequestLog, RequestProbe, RequestRecord};
pub use stats::{percentile, LatencySketch};
pub use trace::{HostProbe, Phase, SummaryRow, TraceEvent, Tracer};

/// What to record during a run. The default ([`TelemetryConfig::off`])
/// records nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TelemetryConfig {
    /// Record a Chrome-trace span tree per request plus die tracks.
    pub trace: bool,
    /// Sample time-series probes on this cadence.
    pub metrics: Option<MetricsConfig>,
    /// Collect per-event-type counts and timer-wheel statistics.
    pub profile: bool,
    /// Record one [`RequestRecord`] per served request.
    pub requests: bool,
}

impl TelemetryConfig {
    /// Record nothing (the default).
    pub fn off() -> Self {
        Self::default()
    }

    /// True if any instrument is switched on.
    pub fn enabled(&self) -> bool {
        self.trace || self.metrics.is_some() || self.profile || self.requests
    }
}

/// A streaming consumer of the telemetry probe stream, folded *during*
/// the run (the health monitor in `tpu_monitor` is the one
/// implementation). Like every instrument it only observes: it is fed
/// sim-time state at event-pop time, never schedules events, and never
/// draws from an RNG, so a run with a sink attached reports
/// byte-identically to an uninstrumented run.
///
/// The cadence contract mirrors [`MetricsRecorder`]: the engine calls
/// [`MonitorSink::due`] at each event pop and, when true,
/// [`MonitorSink::advance`] (which returns the sample stamp — the
/// largest cadence boundary at or before `now`), then [`MonitorSink::record`]
/// for each gauge series, then [`MonitorSink::close_sample`] to fold
/// the finished interval. Completions stream in between folds through
/// [`MonitorSink::observe_latency`] / [`MonitorSink::observe_service`];
/// [`MonitorSink::finish`] closes the final partial interval.
pub trait MonitorSink: std::fmt::Debug {
    /// True when `now_ms` has reached the next cadence boundary.
    fn due(&self, now_ms: f64) -> bool;
    /// Advance the cadence past `now_ms`, returning the sample stamp.
    fn advance(&mut self, now_ms: f64) -> f64;
    /// Record one gauge value for the sample being assembled.
    fn record(&mut self, series: &str, value: f64);
    /// Fold the assembled sample (gauges plus streamed completions)
    /// at stamp `t_ms`.
    fn close_sample(&mut self, t_ms: f64);
    /// One served request's end-to-end latency against its SLO.
    fn observe_latency(&mut self, tenant: &str, latency_ms: f64, slo_ms: f64);
    /// One completed batch's per-request service time on a die,
    /// weighted by its `completions` count.
    fn observe_service(
        &mut self,
        tenant: &str,
        host: usize,
        die: usize,
        service_ms: f64,
        completions: usize,
    );
    /// End of run: fold the final partial interval.
    fn finish(&mut self);
    /// Downcast support so a CLI can recover the concrete monitor.
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any>;
}

/// The per-run instrument set threaded through an engine. Fields are
/// `None` when the corresponding instrument is off; engines check each
/// with a single branch.
#[derive(Debug, Default)]
pub struct RunTelemetry {
    /// Span recorder for the Chrome trace (fleet-level events land
    /// here; per-host spans are recorded by [`HostProbe`]s and absorbed
    /// at end of run).
    pub tracer: Option<Tracer>,
    /// Cadence sampler for the time-series probes.
    pub metrics: Option<MetricsRecorder>,
    /// Engine self-profile, filled in at end of run.
    pub profile: Option<EngineProfile>,
    /// Per-request record stream (host [`RequestProbe`]s are absorbed
    /// here at end of run, in host-index order).
    pub requests: Option<RequestLog>,
    /// Streaming health monitor (attached by the CLIs behind
    /// `--monitor`; not part of [`TelemetryConfig`]).
    pub monitor: Option<Box<dyn MonitorSink>>,
}

impl RunTelemetry {
    /// Record nothing — what the uninstrumented entry points pass.
    pub fn off() -> Self {
        Self::default()
    }

    /// Allocate instruments per `cfg`.
    pub fn from_config(cfg: &TelemetryConfig) -> Self {
        Self {
            tracer: cfg.trace.then(Tracer::new),
            metrics: cfg.metrics.as_ref().map(MetricsRecorder::new),
            profile: cfg.profile.then(EngineProfile::new),
            requests: cfg.requests.then(RequestLog::new),
            monitor: None,
        }
    }

    /// True if any instrument is live.
    pub fn enabled(&self) -> bool {
        self.tracer.is_some()
            || self.metrics.is_some()
            || self.profile.is_some()
            || self.requests.is_some()
            || self.monitor.is_some()
    }

    /// Hand every recorded artifact to `sink`, tagged with the run
    /// `label`.
    pub fn emit(&self, label: &str, sink: &mut dyn TelemetrySink) {
        if let Some(t) = &self.tracer {
            sink.on_trace(label, t);
        }
        if let Some(m) = &self.metrics {
            sink.on_metrics(label, m);
        }
        if let Some(p) = &self.profile {
            sink.on_profile(label, p);
        }
        if let Some(r) = &self.requests {
            sink.on_requests(label, r);
        }
    }
}

/// Receives a run's artifacts. Every method defaults to a no-op so a
/// sink implements only what it consumes.
pub trait TelemetrySink {
    /// Called once per run with the completed trace.
    fn on_trace(&mut self, _label: &str, _tracer: &Tracer) {}
    /// Called once per run with the sampled series.
    fn on_metrics(&mut self, _label: &str, _metrics: &MetricsRecorder) {}
    /// Called once per run with the engine profile.
    fn on_profile(&mut self, _label: &str, _profile: &EngineProfile) {}
    /// Called once per run with the request log.
    fn on_requests(&mut self, _label: &str, _log: &RequestLog) {}
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl TelemetrySink for NoopSink {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_config_allocates_nothing() {
        let t = RunTelemetry::from_config(&TelemetryConfig::off());
        assert!(!t.enabled());
        assert!(t.tracer.is_none() && t.metrics.is_none() && t.profile.is_none());
        assert!(t.requests.is_none());
    }

    #[test]
    fn full_config_allocates_every_instrument() {
        let cfg = TelemetryConfig {
            trace: true,
            metrics: Some(MetricsConfig::default()),
            profile: true,
            requests: true,
        };
        assert!(cfg.enabled());
        let t = RunTelemetry::from_config(&cfg);
        assert!(t.tracer.is_some() && t.metrics.is_some() && t.profile.is_some());
        assert!(t.requests.is_some());
    }

    #[test]
    fn emit_routes_each_instrument_to_the_sink() {
        #[derive(Default)]
        struct Counting {
            traces: usize,
            metrics: usize,
            profiles: usize,
            requests: usize,
        }
        impl TelemetrySink for Counting {
            fn on_trace(&mut self, label: &str, _t: &Tracer) {
                assert_eq!(label, "run-a");
                self.traces += 1;
            }
            fn on_metrics(&mut self, _label: &str, _m: &MetricsRecorder) {
                self.metrics += 1;
            }
            fn on_profile(&mut self, _label: &str, _p: &EngineProfile) {
                self.profiles += 1;
            }
            fn on_requests(&mut self, _label: &str, _r: &RequestLog) {
                self.requests += 1;
            }
        }
        let cfg = TelemetryConfig {
            trace: true,
            metrics: Some(MetricsConfig::default()),
            profile: true,
            requests: true,
        };
        let t = RunTelemetry::from_config(&cfg);
        let mut sink = Counting::default();
        t.emit("run-a", &mut sink);
        assert_eq!(
            (sink.traces, sink.metrics, sink.profiles, sink.requests),
            (1, 1, 1, 1)
        );
        RunTelemetry::off().emit("run-a", &mut NoopSink);
    }
}
