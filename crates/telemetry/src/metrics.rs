//! Time-series probes on a seeded cadence.
//!
//! The engines sample *opportunistically*: when an event pops at or
//! past the next cadence point, state is recorded at that cadence
//! timestamp. No sampling events are ever scheduled, so switching
//! metrics on cannot perturb event order, RNG draws, or the
//! `events_processed` count — the report stays bit-identical.
//!
//! Each series is a bounded ring: once `ring_cap` points are held the
//! oldest falls off and a drop counter increments, so long runs stay
//! bounded while the export records exactly what was kept.
//!
//! Besides gauges, the recorder holds [`LatencySketch`]es: engines call
//! [`MetricsRecorder::observe`] per committed latency, and each cadence
//! advance flushes the interval's sketch into `{series}.p50` /
//! `{series}.p99` points — per-interval percentiles over time at
//! 10k-host scale without storing any sample. A cumulative whole-run
//! sketch per series stays queryable via [`MetricsRecorder::sketch`].

use crate::stats::LatencySketch;
use serde_json::Value;
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// Sampling cadence and ring capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsConfig {
    /// Milliseconds of simulated time between samples.
    pub interval_ms: f64,
    /// Maximum points retained per series (oldest dropped beyond).
    pub ring_cap: usize,
}

impl Default for MetricsConfig {
    fn default() -> Self {
        Self {
            interval_ms: 1.0,
            ring_cap: 4096,
        }
    }
}

/// One sample: `(simulated time, value)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sample timestamp in simulated milliseconds.
    pub t_ms: f64,
    /// Sampled value.
    pub value: f64,
}

#[derive(Debug, Default)]
struct SeriesBuf {
    points: VecDeque<Point>,
    dropped: u64,
}

#[derive(Debug, Default)]
struct SketchBuf {
    interval: LatencySketch,
    cumulative: LatencySketch,
}

/// Ring-buffered, named time series sampled on a fixed cadence.
#[derive(Debug)]
pub struct MetricsRecorder {
    interval_ms: f64,
    ring_cap: usize,
    next_ms: f64,
    series: BTreeMap<String, SeriesBuf>,
    sketches: BTreeMap<String, SketchBuf>,
}

impl MetricsRecorder {
    /// A recorder with no samples; the first cadence point is t=0.
    pub fn new(cfg: &MetricsConfig) -> Self {
        Self {
            interval_ms: cfg.interval_ms.max(1e-6),
            ring_cap: cfg.ring_cap.max(1),
            next_ms: 0.0,
            series: BTreeMap::new(),
            sketches: BTreeMap::new(),
        }
    }

    /// The sampling cadence in simulated milliseconds.
    pub fn interval_ms(&self) -> f64 {
        self.interval_ms
    }

    /// True when simulated time has reached the next cadence point, so
    /// the engine should take a sample. This is the only telemetry
    /// check on the hot path.
    #[inline]
    pub fn due(&self, now_ms: f64) -> bool {
        now_ms >= self.next_ms
    }

    /// Advance past `now_ms` and return the cadence timestamp to
    /// record this sample at (the last cadence point ≤ `now_ms`, so
    /// sparse event stretches collapse to one sample instead of a
    /// backlog).
    pub fn advance(&mut self, now_ms: f64) -> f64 {
        let k = ((now_ms - self.next_ms) / self.interval_ms).floor();
        let t = self.next_ms + k * self.interval_ms;
        self.next_ms = t + self.interval_ms;
        // Every observation so far happened at an event time before the
        // previous `next_ms`, hence at or before `t` — stamping the
        // interval percentiles at `t` never time-travels.
        self.flush_sketches(t);
        t
    }

    /// Feed one latency sample into `series`' interval and cumulative
    /// sketches (created on first use). Percentile points materialize at
    /// the next cadence advance.
    pub fn observe(&mut self, series: &str, value_ms: f64) {
        let buf = self.sketches.entry(series.to_string()).or_default();
        buf.interval.observe(value_ms);
        buf.cumulative.observe(value_ms);
    }

    /// The whole-run cumulative sketch of `series`, if any sample was
    /// observed.
    pub fn sketch(&self, series: &str) -> Option<&LatencySketch> {
        self.sketches.get(series).map(|b| &b.cumulative)
    }

    /// Flush every non-empty interval sketch into `{series}.p50` /
    /// `{series}.p99` points stamped at `t_ms`, then reset the interval
    /// sketches. Called by `advance` on each cadence point; engines call
    /// it once more at end of run so the final partial interval is not
    /// lost.
    pub fn flush_sketches(&mut self, t_ms: f64) {
        let flushed: Vec<(String, f64, f64)> = self
            .sketches
            .iter_mut()
            .filter(|(_, b)| !b.interval.is_empty())
            .map(|(name, b)| {
                let p50 = b.interval.percentile(0.5);
                let p99 = b.interval.percentile(0.99);
                b.interval.reset();
                (name.clone(), p50, p99)
            })
            .collect();
        for (name, p50, p99) in flushed {
            self.record(&format!("{name}.p50"), t_ms, p50);
            self.record(&format!("{name}.p99"), t_ms, p99);
        }
    }

    /// Append a point to `series` (created on first use).
    pub fn record(&mut self, series: &str, t_ms: f64, value: f64) {
        let buf = self.series.entry(series.to_string()).or_default();
        if buf.points.len() == self.ring_cap {
            buf.points.pop_front();
            buf.dropped += 1;
        }
        buf.points.push_back(Point { t_ms, value });
    }

    /// Series names, sorted.
    pub fn series_names(&self) -> Vec<&str> {
        self.series.keys().map(String::as_str).collect()
    }

    /// The retained points of `series`, oldest first.
    pub fn points(&self, series: &str) -> Vec<Point> {
        self.series
            .get(series)
            .map(|b| b.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// How many points `series` has dropped to the ring bound.
    pub fn dropped(&self, series: &str) -> u64 {
        self.series.get(series).map(|b| b.dropped).unwrap_or(0)
    }

    /// Every series that hit the ring bound, with its dropped-point
    /// count, in name order — what `--engine-stats` surfaces so a
    /// truncated artifact is never mistaken for a complete one.
    pub fn dropped_series(&self) -> Vec<(&str, u64)> {
        self.series
            .iter()
            .filter(|(_, b)| b.dropped > 0)
            .map(|(n, b)| (n.as_str(), b.dropped))
            .collect()
    }

    /// Export every series in long format: `t_ms,series,value` with a
    /// header row, series in name order, points oldest first.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_ms,series,value\n");
        for (name, buf) in &self.series {
            for p in &buf.points {
                out.push_str(&format!("{},{},{}\n", p.t_ms, name, p.value));
            }
        }
        out
    }

    /// Export as a JSON document:
    /// `{interval_ms, series: {name: {dropped, points: [[t, v], …]}}}`.
    pub fn to_json(&self) -> Value {
        let series = self
            .series
            .iter()
            .map(|(name, buf)| {
                let points = buf
                    .points
                    .iter()
                    .map(|p| Value::Array(vec![Value::Number(p.t_ms), Value::Number(p.value)]))
                    .collect();
                (
                    name.clone(),
                    Value::object([
                        ("dropped".to_string(), Value::Number(buf.dropped as f64)),
                        ("points".to_string(), Value::Array(points)),
                    ]),
                )
            })
            .collect::<Vec<_>>();
        Value::object([
            ("interval_ms".to_string(), Value::Number(self.interval_ms)),
            ("series".to_string(), Value::object(series)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_skips_to_last_point_before_now() {
        let mut m = MetricsRecorder::new(&MetricsConfig {
            interval_ms: 2.0,
            ring_cap: 16,
        });
        assert!(m.due(0.0));
        assert_eq!(m.advance(0.0), 0.0);
        assert!(!m.due(1.9));
        assert!(m.due(2.0));
        // A sparse stretch: one sample at the last elapsed point.
        assert_eq!(m.advance(9.1), 8.0);
        assert!(!m.due(9.9));
        assert!(m.due(10.0));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let mut m = MetricsRecorder::new(&MetricsConfig {
            interval_ms: 1.0,
            ring_cap: 3,
        });
        for i in 0..5 {
            m.record("q", i as f64, i as f64 * 10.0);
        }
        let pts = m.points("q");
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].t_ms, 2.0);
        assert_eq!(m.dropped("q"), 2);
        assert_eq!(m.dropped("absent"), 0);
    }

    #[test]
    fn exports_are_deterministic_and_json_parses() {
        let build = || {
            let mut m = MetricsRecorder::new(&MetricsConfig::default());
            m.record("util/die0", 0.0, 0.25);
            m.record("queued/MLP0", 0.0, 3.0);
            m.record("util/die0", 1.0, 0.5);
            (m.to_csv(), serde_json::to_string(&m.to_json()))
        };
        let (csv, json) = build();
        assert_eq!((csv.clone(), json.clone()), build());
        assert!(csv.starts_with("t_ms,series,value\n"));
        assert_eq!(csv.lines().count(), 4);
        serde_json::from_str(&json).expect("metrics JSON parses");
    }

    #[test]
    fn observed_latencies_flush_percentile_points_per_interval() {
        let mut m = MetricsRecorder::new(&MetricsConfig {
            interval_ms: 10.0,
            ring_cap: 64,
        });
        assert_eq!(m.advance(0.0), 0.0);
        for i in 1..=100 {
            m.observe("latency/MLP0", i as f64 * 0.01);
        }
        // Nothing materializes until the next cadence point.
        assert!(m.points("latency/MLP0.p99").is_empty());
        assert_eq!(m.advance(10.0), 10.0);
        let p99 = m.points("latency/MLP0.p99");
        let p50 = m.points("latency/MLP0.p50");
        assert_eq!((p99.len(), p50.len()), (1, 1));
        assert_eq!(p99[0].t_ms, 10.0);
        assert!(p99[0].value >= 0.99 && p99[0].value <= 1.01 + 1e-3);
        assert!(p50[0].value < p99[0].value);
        // The interval sketch reset; the cumulative one kept everything.
        m.observe("latency/MLP0", 50.0);
        m.flush_sketches(15.0);
        let p99 = m.points("latency/MLP0.p99");
        assert_eq!(p99.len(), 2);
        assert!(p99[1].value >= 50.0, "second interval stands alone");
        assert_eq!(m.sketch("latency/MLP0").map(|s| s.count()), Some(101));
        assert!(m.sketch("absent").is_none());
    }
}
