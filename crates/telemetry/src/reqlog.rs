//! The compact per-request record stream behind `--request-log`.
//!
//! Where the Chrome trace tells the story of a run span by span, the
//! request log is the analysis-ready form: one fixed-width record per
//! served request carrying tenant, placement (host/die), the three
//! timestamps (arrival, dispatch, completion), the weight-swap stall
//! charged to its batch, and how many times a failure made it retry.
//! `tpu_analyze` computes every attribution from this stream alone.
//!
//! Recording follows the [`crate::trace::HostProbe`] pattern: each
//! `HostCore` owns a [`RequestProbe`] that buffers records at batch
//! completion (one per arrival in the batch, in completion order), and
//! the run-level [`RequestLog`] absorbs the probes in host-index order
//! at end of run — so the record order, like everything else in the
//! simulators, is a pure function of the seed and same-seed runs render
//! bit-identical JSON.
//!
//! Component definitions (all in simulated milliseconds):
//!
//! * `queue = dispatch - arrived` — everything before the batch left,
//!   including network/PCIe hop, router parking, and crash-retry delay;
//! * `swap` — the weight-swap stall its batch paid at dispatch;
//! * `service = end - dispatch - swap` — time on the die.
//!
//! Retries are attributed at absorb time by joining the fleet engine's
//! [`RequestLog::note_retry`] calls against records on the exact
//! `(tenant, arrived_ms)` bits — retried requests keep their original
//! arrival timestamp, so per-tenant retry sums match the report
//! exactly; when several same-tenant requests share one arrival
//! timestamp the full count lands on the first absorbed record.

use serde_json::Value;
use std::collections::BTreeMap;

/// One served request, fully decomposed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Index into the log's tenant table.
    pub tenant: usize,
    /// Host that served the request.
    pub host: u32,
    /// Die (within the host) that served it.
    pub die: u32,
    /// Arrival at the front end (original arrival for retried requests).
    pub arrived_ms: f64,
    /// When its batch was dispatched to the die.
    pub dispatch_ms: f64,
    /// Weight-swap stall its batch paid at dispatch.
    pub swap_ms: f64,
    /// Batch completion time.
    pub end_ms: f64,
    /// How many times a failure re-routed this request.
    pub retries: u32,
}

impl RequestRecord {
    /// Time from arrival to dispatch (hop + queue + retry delay).
    pub fn queue_ms(&self) -> f64 {
        self.dispatch_ms - self.arrived_ms
    }

    /// Time on the die after the swap stall.
    pub fn service_ms(&self) -> f64 {
        self.end_ms - self.dispatch_ms - self.swap_ms
    }

    /// End-to-end latency (what the report percentiles are over).
    pub fn latency_ms(&self) -> f64 {
        self.end_ms - self.arrived_ms
    }
}

/// Per-host request recorder, owned by a `HostCore` while a run is in
/// flight (mirrors [`crate::trace::HostProbe`] ownership).
#[derive(Debug)]
pub struct RequestProbe {
    host: u32,
    tenants: Vec<(String, f64)>,
    by_name: BTreeMap<String, usize>,
    records: Vec<RequestRecord>,
}

impl RequestProbe {
    /// A probe for host `host` with no records.
    pub fn new(host: u32) -> Self {
        Self {
            host,
            tenants: Vec::new(),
            by_name: BTreeMap::new(),
            records: Vec::new(),
        }
    }

    /// Record one completed batch: one record per arrival timestamp,
    /// all sharing the batch's dispatch/swap/end times.
    #[allow(clippy::too_many_arguments)] // one argument per record field
    pub fn batch_complete(
        &mut self,
        die: usize,
        tenant: &str,
        slo_ms: f64,
        start_ms: f64,
        swap_ms: f64,
        end_ms: f64,
        arrivals: &[f64],
    ) {
        let idx = match self.by_name.get(tenant) {
            Some(&i) => i,
            None => {
                let i = self.tenants.len();
                self.tenants.push((tenant.to_string(), slo_ms));
                self.by_name.insert(tenant.to_string(), i);
                i
            }
        };
        for &arrived_ms in arrivals {
            self.records.push(RequestRecord {
                tenant: idx,
                host: self.host,
                die: die as u32,
                arrived_ms,
                dispatch_ms: start_ms,
                swap_ms,
                end_ms,
                retries: 0,
            });
        }
    }

    /// Records buffered so far.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no batch has completed yet.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The run-level request log: the merged record stream plus the tenant
/// table, renderable as a compact JSON artifact and parseable back.
#[derive(Debug, Default)]
pub struct RequestLog {
    tenants: Vec<(String, f64)>,
    by_name: BTreeMap<String, usize>,
    records: Vec<RequestRecord>,
    pending_retries: BTreeMap<(String, u64), u32>,
    /// Requests the retry policy abandoned, per tenant. They never
    /// complete, so they can't join a record — the log carries them as
    /// tallies instead.
    dropped: BTreeMap<String, u64>,
    /// Requests shed at admission by a brownout controller, per tenant.
    shed: BTreeMap<String, u64>,
}

impl RequestLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Note that a failure re-routed a `tenant` request that originally
    /// arrived at `arrived_ms`; the count attaches to a matching record
    /// when a probe is absorbed.
    pub fn note_retry(&mut self, tenant: &str, arrived_ms: f64) {
        *self
            .pending_retries
            .entry((tenant.to_string(), arrived_ms.to_bits()))
            .or_insert(0) += 1;
    }

    /// Note that the retry policy abandoned a `tenant` request (its
    /// original arrival time is accepted for call-site symmetry but
    /// only the tally is kept — a dropped request has no record).
    pub fn note_drop(&mut self, tenant: &str, _arrived_ms: f64) {
        *self.dropped.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Note that a brownout controller shed a `tenant` admission.
    pub fn note_shed(&mut self, tenant: &str, _at_ms: f64) {
        *self.shed.entry(tenant.to_string()).or_insert(0) += 1;
    }

    /// Requests the retry policy abandoned for `tenant`.
    pub fn dropped_for(&self, tenant: &str) -> u64 {
        self.dropped.get(tenant).copied().unwrap_or(0)
    }

    /// Admissions shed for `tenant`.
    pub fn shed_for(&self, tenant: &str) -> u64 {
        self.shed.get(tenant).copied().unwrap_or(0)
    }

    /// Merge a host probe's records (in its completion order), remapping
    /// tenant indices by name and attaching any noted retries.
    pub fn absorb(&mut self, probe: RequestProbe) {
        let remap: Vec<usize> = probe
            .tenants
            .iter()
            .map(|(name, slo_ms)| match self.by_name.get(name) {
                Some(&i) => i,
                None => {
                    let i = self.tenants.len();
                    self.tenants.push((name.clone(), *slo_ms));
                    self.by_name.insert(name.clone(), i);
                    i
                }
            })
            .collect();
        for mut r in probe.records {
            let name = &self.tenants[remap[r.tenant]].0;
            if !self.pending_retries.is_empty() {
                if let Some(n) = self
                    .pending_retries
                    .remove(&(name.clone(), r.arrived_ms.to_bits()))
                {
                    r.retries = n;
                }
            }
            r.tenant = remap[r.tenant];
            self.records.push(r);
        }
    }

    /// Number of tenants in the table.
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// Tenant `i`'s name.
    pub fn tenant_name(&self, i: usize) -> &str {
        &self.tenants[i].0
    }

    /// Tenant `i`'s SLO bound in milliseconds.
    pub fn tenant_slo_ms(&self, i: usize) -> f64 {
        self.tenants[i].1
    }

    /// Look a tenant index up by name.
    pub fn tenant_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Every record, in absorb order (per-host completion order, hosts
    /// in index order).
    pub fn records(&self) -> &[RequestRecord] {
        &self.records
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when no record has been absorbed.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Retries noted but never matched to a record (a completed run
    /// attributes every retry, so anything here signals a contract bug).
    pub fn unattributed_retries(&self) -> u64 {
        self.pending_retries.values().map(|&n| n as u64).sum()
    }

    /// The artifact as a JSON value:
    /// `{format, version, tenants: [{name, slo_ms}], records: [[tenant,
    /// host, die, arrived_ms, dispatch_ms, swap_ms, end_ms, retries]]}`.
    pub fn to_json(&self) -> Value {
        let tenants = self
            .tenants
            .iter()
            .map(|(name, slo_ms)| {
                Value::object([
                    ("name".to_string(), Value::String(name.clone())),
                    ("slo_ms".to_string(), Value::Number(*slo_ms)),
                ])
            })
            .collect();
        let records = self
            .records
            .iter()
            .map(|r| {
                Value::Array(vec![
                    Value::Number(r.tenant as f64),
                    Value::Number(r.host as f64),
                    Value::Number(r.die as f64),
                    Value::Number(r.arrived_ms),
                    Value::Number(r.dispatch_ms),
                    Value::Number(r.swap_ms),
                    Value::Number(r.end_ms),
                    Value::Number(r.retries as f64),
                ])
            })
            .collect();
        let mut top = vec![
            (
                "format".to_string(),
                Value::String("tpu-request-log".to_string()),
            ),
            ("version".to_string(), Value::Number(1.0)),
            ("tenants".to_string(), Value::Array(tenants)),
            ("records".to_string(), Value::Array(records)),
        ];
        // Dropped/shed tallies ride along only when a resilience run
        // produced any, so pre-existing artifacts stay byte-identical.
        if !self.dropped.is_empty() || !self.shed.is_empty() {
            let mut names: Vec<&String> = self.dropped.keys().chain(self.shed.keys()).collect();
            names.sort();
            names.dedup();
            let lost = names
                .into_iter()
                .map(|n| {
                    Value::Array(vec![
                        Value::String(n.clone()),
                        Value::Number(self.dropped_for(n) as f64),
                        Value::Number(self.shed_for(n) as f64),
                    ])
                })
                .collect();
            top.push(("lost".to_string(), Value::Array(lost)));
        }
        Value::object(top)
    }

    /// The artifact text the CLIs write: compact JSON plus a trailing
    /// newline. Bit-identical across same-seed runs.
    pub fn render(&self) -> String {
        let mut s = serde_json::to_string(&self.to_json());
        s.push('\n');
        s
    }

    /// True when `v` looks like a rendered request log.
    pub fn is_request_log_json(v: &Value) -> bool {
        matches!(field(v, "format"), Some(Value::String(f)) if f == "tpu-request-log")
    }

    /// Parse a rendered artifact back.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message when the text is not valid JSON
    /// or not a version-1 request log.
    pub fn parse(text: &str) -> Result<Self, String> {
        let v = serde_json::from_str(text).map_err(|e| format!("request log: {e:?}"))?;
        Self::from_json(&v)
    }

    /// Build a log from an already-parsed JSON value.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message on a malformed document.
    pub fn from_json(v: &Value) -> Result<Self, String> {
        if !Self::is_request_log_json(v) {
            return Err("request log: missing `\"format\": \"tpu-request-log\"`".to_string());
        }
        match field(v, "version") {
            Some(Value::Number(n)) if *n == 1.0 => {}
            other => return Err(format!("request log: unsupported version {other:?}")),
        }
        let mut log = RequestLog::new();
        let tenants = as_array(field(v, "tenants"), "tenants")?;
        for (i, t) in tenants.iter().enumerate() {
            let name = match field(t, "name") {
                Some(Value::String(s)) => s.clone(),
                _ => return Err(format!("request log: tenant {i} has no name")),
            };
            let slo_ms =
                num(field(t, "slo_ms")).ok_or(format!("request log: tenant {i} slo_ms"))?;
            log.by_name.insert(name.clone(), i);
            log.tenants.push((name, slo_ms));
        }
        let records = as_array(field(v, "records"), "records")?;
        for (i, rec) in records.iter().enumerate() {
            let row = match rec {
                Value::Array(row) if row.len() == 8 => row,
                _ => return Err(format!("request log: record {i} is not an 8-field row")),
            };
            let f = |j: usize| num(row.get(j)).ok_or(format!("request log: record {i} field {j}"));
            let tenant = f(0)? as usize;
            if tenant >= log.tenants.len() {
                return Err(format!(
                    "request log: record {i} tenant {tenant} out of range"
                ));
            }
            log.records.push(RequestRecord {
                tenant,
                host: f(1)? as u32,
                die: f(2)? as u32,
                arrived_ms: f(3)?,
                dispatch_ms: f(4)?,
                swap_ms: f(5)?,
                end_ms: f(6)?,
                retries: f(7)? as u32,
            });
        }
        // Optional: resilience runs carry `[name, dropped, shed]` rows.
        if let Some(Value::Array(lost)) = field(v, "lost") {
            for (i, row) in lost.iter().enumerate() {
                let row = match row {
                    Value::Array(row) if row.len() == 3 => row,
                    _ => return Err(format!("request log: lost row {i} is not a 3-field row")),
                };
                let name = match row.first() {
                    Some(Value::String(s)) => s.clone(),
                    _ => return Err(format!("request log: lost row {i} has no tenant name")),
                };
                let dropped =
                    num(row.get(1)).ok_or(format!("request log: lost row {i} dropped"))? as u64;
                let shed = num(row.get(2)).ok_or(format!("request log: lost row {i} shed"))? as u64;
                if dropped > 0 {
                    log.dropped.insert(name.clone(), dropped);
                }
                if shed > 0 {
                    log.shed.insert(name, shed);
                }
            }
        }
        Ok(log)
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Object(map) => map.get(key),
        _ => None,
    }
}

fn num(v: Option<&Value>) -> Option<f64> {
    match v {
        Some(Value::Number(n)) => Some(*n),
        _ => None,
    }
}

fn as_array<'a>(v: Option<&'a Value>, key: &str) -> Result<&'a Vec<Value>, String> {
    match v {
        Some(Value::Array(a)) => Ok(a),
        _ => Err(format!("request log: `{key}` is not an array")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// (tenant, slo, start, swap, end, arrivals) per batch.
    type BatchSpec<'a> = (&'a str, f64, f64, f64, f64, &'a [f64]);

    fn probe_with(host: u32, batches: &[BatchSpec]) -> RequestProbe {
        let mut p = RequestProbe::new(host);
        for &(tenant, slo, start, swap, end, arrivals) in batches {
            p.batch_complete(0, tenant, slo, start, swap, end, arrivals);
        }
        p
    }

    #[test]
    fn absorb_merges_tenant_tables_by_name() {
        let mut log = RequestLog::new();
        log.absorb(probe_with(
            0,
            &[
                ("MLP0", 7.0, 1.0, 0.0, 2.0, &[0.5]),
                ("LSTM0", 10.0, 3.0, 0.5, 5.0, &[2.0]),
            ],
        ));
        log.absorb(probe_with(
            1,
            &[("LSTM0", 10.0, 4.0, 0.0, 6.0, &[3.0, 3.5])],
        ));
        assert_eq!(log.tenant_count(), 2);
        assert_eq!(log.tenant_index("LSTM0"), Some(1));
        assert_eq!(log.tenant_slo_ms(1), 10.0);
        assert_eq!(log.len(), 4);
        // Host 1's LSTM0 records were remapped onto the merged index.
        assert!(log.records()[2..]
            .iter()
            .all(|r| r.tenant == 1 && r.host == 1));
    }

    #[test]
    fn retries_join_on_exact_arrival_bits() {
        let mut log = RequestLog::new();
        log.note_retry("MLP0", 0.5);
        log.note_retry("MLP0", 0.5);
        log.note_retry("MLP0", 99.0); // never completes
        log.absorb(probe_with(0, &[("MLP0", 7.0, 1.0, 0.0, 2.0, &[0.5, 0.75])]));
        assert_eq!(log.records()[0].retries, 2);
        assert_eq!(log.records()[1].retries, 0);
        assert_eq!(log.unattributed_retries(), 1);
    }

    #[test]
    fn components_decompose_the_latency() {
        let r = RequestRecord {
            tenant: 0,
            host: 0,
            die: 3,
            arrived_ms: 1.0,
            dispatch_ms: 4.0,
            swap_ms: 2.0,
            end_ms: 10.0,
            retries: 0,
        };
        assert_eq!(r.queue_ms(), 3.0);
        assert_eq!(r.service_ms(), 4.0);
        assert_eq!(r.latency_ms(), 9.0);
        assert_eq!(r.queue_ms() + r.swap_ms + r.service_ms(), r.latency_ms());
    }

    #[test]
    fn render_round_trips_and_is_deterministic() {
        let build = || {
            let mut log = RequestLog::new();
            log.note_retry("B", 2.25);
            log.absorb(probe_with(
                0,
                &[
                    ("A", 7.0, 1.0, 0.0, 2.0, &[0.5]),
                    ("B", 10.0, 3.0, 0.5, 5.0, &[2.25]),
                ],
            ));
            log
        };
        let text = build().render();
        assert_eq!(text, build().render(), "render must be deterministic");
        assert!(text.ends_with('\n'));
        let parsed = RequestLog::parse(&text).expect("round trip");
        assert_eq!(parsed.records(), build().records());
        assert_eq!(parsed.tenant_count(), 2);
        assert_eq!(parsed.records()[1].retries, 1);
        assert_eq!(parsed.render(), text);
    }

    #[test]
    fn losses_round_trip_through_render() {
        let mut log = RequestLog::new();
        log.absorb(probe_with(0, &[("A", 7.0, 1.0, 0.0, 2.0, &[0.5])]));
        log.note_drop("A", 0.75);
        log.note_drop("A", 0.8);
        log.note_shed("B", 1.5);
        assert_eq!(log.dropped_for("A"), 2);
        assert_eq!(log.shed_for("A"), 0);
        assert_eq!(log.shed_for("B"), 1);
        let parsed = RequestLog::parse(&log.render()).expect("round trip");
        assert_eq!(parsed.dropped_for("A"), 2);
        assert_eq!(parsed.shed_for("B"), 1);
        assert_eq!(parsed.render(), log.render());
        // Loss-free logs must not grow a `lost` section.
        let mut clean = RequestLog::new();
        clean.absorb(probe_with(0, &[("A", 7.0, 1.0, 0.0, 2.0, &[0.5])]));
        assert!(!clean.render().contains("lost"));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        assert!(RequestLog::parse("not json").is_err());
        assert!(RequestLog::parse("{\"format\":\"other\"}").is_err());
        assert!(RequestLog::parse("{\"format\":\"tpu-request-log\",\"version\":2}").is_err());
        let bad_row = r#"{"format":"tpu-request-log","version":1,"tenants":[],"records":[[1,2]]}"#;
        assert!(RequestLog::parse(bad_row).is_err());
        let bad_tenant = r#"{"format":"tpu-request-log","version":1,"tenants":[],"records":[[0,0,0,0,0,0,0,0]]}"#;
        assert!(RequestLog::parse(bad_tenant).is_err());
    }
}
