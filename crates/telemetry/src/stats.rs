//! Shared latency statistics: the exact percentile index rule used by
//! every report, and a bounded-memory streaming percentile sketch.
//!
//! [`percentile`] is the single home of the nearest-rank-on-`n-1`
//! indexing rule; `tpu_serve::report` re-exports it so the serving and
//! fleet reports (and the analyzer) cannot drift apart.
//!
//! [`LatencySketch`] is an HDR-style log-bucketed histogram: values are
//! quantized to a fixed unit, small values get one bucket per unit, and
//! larger values share exponentially wider buckets that each hold at
//! most `2^(1-SUB_BUCKET_BITS)` relative error. Memory is bounded by
//! the bucket count (a few thousand `u64`s regardless of sample count),
//! sketches merge by bucket-wise addition, and every operation is
//! integer arithmetic, so estimates are bit-identical across platforms.

/// The percentile `p` in `[0, 1]` of an ascending-sorted slice, using
/// the nearest-rank index `((len - 1) * p).floor()` — the exact rule the
/// serving and fleet reports pin in their goldens.
///
/// Returns `0.0` for an empty slice.
///
/// # Panics
///
/// Panics when `p` is outside `[0, 1]`.
///
/// # Examples
///
/// ```
/// use tpu_telemetry::stats::percentile;
///
/// let sorted = [1.0, 2.0, 3.0, 4.0];
/// assert_eq!(percentile(&sorted, 0.5), 2.0);
/// assert_eq!(percentile(&sorted, 1.0), 4.0);
/// ```
pub fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() as f64 - 1.0) * p) as usize;
    sorted_ms[idx]
}

/// Sub-bucket resolution: each power-of-two range is split into
/// `2^SUB_BUCKET_BITS` buckets, bounding relative quantization error at
/// `2^(1 - SUB_BUCKET_BITS)` = 1/128 ≈ 0.78%.
const SUB_BUCKET_BITS: u32 = 8;
const SUB_BUCKETS: u64 = 1 << SUB_BUCKET_BITS;

/// The quantization unit: 0.1 microseconds of simulated time. Values
/// below one unit land in bucket zero.
const UNIT_MS: f64 = 1e-4;

/// Values are clamped to this many units before bucketing (~10^14 ms,
/// far beyond any simulated makespan) so the bucket index — and with it
/// the sketch's memory — stays bounded.
const MAX_UNITS: u64 = 1 << 50;

/// An HDR-style log-bucketed latency histogram with bounded memory.
///
/// `observe` quantizes a sample to [`LatencySketch::unit_ms`] and
/// increments one bucket; `percentile` walks the cumulative counts with
/// the same nearest-rank index rule as [`percentile`] and returns the
/// bucket's upper edge, so estimates never under-report and exceed the
/// exact value by at most `exact / 128 + unit_ms`.
///
/// # Examples
///
/// ```
/// use tpu_telemetry::stats::LatencySketch;
///
/// let mut s = LatencySketch::new();
/// for v in 1..=1000 {
///     s.observe(v as f64 * 0.1);
/// }
/// // The exact p99 (same index rule as `percentile`) is 99.0.
/// let p99 = s.percentile(0.99);
/// assert!(p99 >= 99.0 && p99 <= 99.0 * 1.01 + 2.0 * s.unit_ms());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LatencySketch {
    counts: Vec<u64>,
    count: u64,
}

impl LatencySketch {
    /// An empty sketch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The quantization unit in milliseconds (the absolute error floor).
    pub fn unit_ms(&self) -> f64 {
        UNIT_MS
    }

    /// Samples observed so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been observed.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Buckets currently allocated (the memory bound in `u64`s).
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    fn index_of(units: u64) -> usize {
        if units < SUB_BUCKETS {
            return units as usize;
        }
        // msb >= SUB_BUCKET_BITS here, so shift >= 1 and the sub-bucket
        // lands in [SUB_BUCKETS/2, SUB_BUCKETS): indices stay contiguous
        // across the power-of-two boundaries.
        let msb = 63 - units.leading_zeros();
        let shift = msb - (SUB_BUCKET_BITS - 1);
        (shift as u64 * (SUB_BUCKETS / 2) + (units >> shift)) as usize
    }

    /// The exclusive upper edge of bucket `index`, in units.
    fn upper_units(index: usize) -> u64 {
        let index = index as u64;
        if index < SUB_BUCKETS {
            return index + 1;
        }
        let shift = index / (SUB_BUCKETS / 2) - 1;
        let sub = index - shift * (SUB_BUCKETS / 2);
        (sub + 1) << shift
    }

    /// Record one latency sample. Non-finite and negative values count
    /// as zero.
    pub fn observe(&mut self, value_ms: f64) {
        let units = if value_ms.is_finite() && value_ms > 0.0 {
            ((value_ms / UNIT_MS) as u64).min(MAX_UNITS)
        } else {
            0
        };
        let idx = Self::index_of(units);
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
        self.count += 1;
    }

    /// The estimated percentile `p` in `[0, 1]`: the upper edge of the
    /// bucket holding the nearest-rank sample (so the estimate is an
    /// upper bound within `exact / 128 + unit_ms`). Returns `0.0` when
    /// empty.
    ///
    /// # Panics
    ///
    /// Panics when `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "percentile {p} outside [0, 1]");
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((self.count as f64 - 1.0) * p) as u64;
        let mut cum = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum > rank {
                return Self::upper_units(idx) as f64 * UNIT_MS;
            }
        }
        // Unreachable while count equals the bucket sum; keep a sane
        // fallback rather than panicking on an internal inconsistency.
        Self::upper_units(self.counts.len().saturating_sub(1)) as f64 * UNIT_MS
    }

    /// Add every bucket of `other` into `self` (distribution union).
    pub fn merge(&mut self, other: &LatencySketch) {
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.count += other.count;
    }

    /// Forget every sample but keep the allocation.
    pub fn reset(&mut self) {
        self.counts.fill(0);
        self.count = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_uses_the_report_index_rule() {
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7.0], 0.0), 7.0);
        assert_eq!(percentile(&[7.0], 1.0), 7.0);
        let sorted: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(percentile(&sorted, 0.5), 49.0);
        assert_eq!(percentile(&sorted, 0.95), 94.0);
        assert_eq!(percentile(&sorted, 0.99), 98.0);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 1.5);
    }

    #[test]
    fn bucket_indices_are_contiguous_and_monotone() {
        let mut last = None;
        // Walk unit values across several power-of-two boundaries; the
        // bucket index must never decrease and never skip more than one.
        for units in 0..(SUB_BUCKETS * 8) {
            let idx = LatencySketch::index_of(units);
            if let Some(prev) = last {
                assert!(
                    idx == prev || idx == prev + 1,
                    "units {units}: {prev} -> {idx}"
                );
            }
            assert!(
                units < LatencySketch::upper_units(idx),
                "units {units} below upper edge of its bucket {idx}"
            );
            last = Some(idx);
        }
    }

    #[test]
    fn estimate_bounds_the_exact_value_from_above() {
        let mut s = LatencySketch::new();
        let mut vals: Vec<f64> = (1..=999).map(|i| (i as f64) * 0.731).collect();
        for &v in &vals {
            s.observe(v);
        }
        vals.sort_by(f64::total_cmp);
        for p in [0.0, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let exact = percentile(&vals, p);
            let est = s.percentile(p);
            assert!(est >= exact, "p{p}: est {est} < exact {exact}");
            assert!(
                est <= exact * (1.0 + 1.0 / 128.0) + 2.0 * UNIT_MS,
                "p{p}: est {est} too far above exact {exact}"
            );
        }
    }

    #[test]
    fn merge_equals_observing_the_union() {
        let all: Vec<f64> = (0..500).map(|i| (i as f64) * 1.37 + 0.05).collect();
        let mut whole = LatencySketch::new();
        let (mut a, mut b) = (LatencySketch::new(), LatencySketch::new());
        for (i, &v) in all.iter().enumerate() {
            whole.observe(v);
            if i % 2 == 0 {
                a.observe(v);
            } else {
                b.observe(v);
            }
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.count(), 500);
    }

    #[test]
    fn memory_stays_bounded_for_huge_values() {
        let mut s = LatencySketch::new();
        s.observe(0.0);
        s.observe(-5.0);
        s.observe(f64::NAN);
        s.observe(1e13);
        assert!(s.buckets() < 8_000, "buckets {}", s.buckets());
        assert_eq!(s.count(), 4);
        // The three degenerate samples all landed in bucket zero.
        assert_eq!(s.percentile(0.5), UNIT_MS);
        s.reset();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.99), 0.0);
    }
}
