//! A minimal dense f32 matrix type for reference execution.
//!
//! The reproduction needs just enough linear algebra to serve as the
//! floating-point oracle the quantized TPU results are validated against:
//! row-major 2-D tensors, matrix multiply, and elementwise maps.

use std::fmt;

/// Row-major 2-D f32 matrix.
///
/// # Examples
///
/// ```
/// use tpu_nn::tensor::Matrix;
///
/// let a = Matrix::from_rows(2, 3, vec![1., 2., 3., 4., 5., 6.]);
/// let b = Matrix::from_rows(3, 2, vec![7., 8., 9., 10., 11., 12.]);
/// let c = a.matmul(&b);
/// assert_eq!(c.get(0, 0), 58.0);
/// assert_eq!(c.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Build from row-major data.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "matrix data must be rows*cols");
        Self { rows, cols, data }
    }

    /// All-zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from a generator function over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Set element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, row: usize, col: usize, v: f32) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = v;
    }

    /// Row-major data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// One row as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn row(&self, row: usize) -> &[f32] {
        assert!(row < self.rows);
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if inner dimensions disagree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "inner dimensions must agree ({}x{} * {}x{})",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[r * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let brow = &other.data[k * other.cols..(k + 1) * other.cols];
                let orow = &mut out.data[r * other.cols..(r + 1) * other.cols];
                for (o, &b) in orow.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Elementwise combination with another matrix of the same shape.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f32, f32) -> f32) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// Maximum absolute difference against another matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| (a - b).abs())
            .fold(0.0, f32::max)
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:8.3}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", ..." } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  ...")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 2, vec![1., 2., 3., 4.]);
        let b = Matrix::from_rows(2, 2, vec![5., 6., 7., 8.]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19., 22., 43., 50.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * 3 + c) as f32);
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn map_and_zip() {
        let a = Matrix::from_rows(1, 3, vec![-1., 0., 2.]);
        assert_eq!(a.map(|v| v.max(0.0)).data(), &[0., 0., 2.]);
        let b = Matrix::from_rows(1, 3, vec![1., 1., 1.]);
        assert_eq!(a.zip(&b, |x, y| x + y).data(), &[0., 1., 3.]);
    }

    #[test]
    fn max_abs_diff_measures_error() {
        let a = Matrix::from_rows(1, 2, vec![1.0, 2.0]);
        let b = Matrix::from_rows(1, 2, vec![1.5, 2.25]);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn accessors() {
        let mut m = Matrix::zeros(2, 2);
        m.set(1, 0, 5.0);
        assert_eq!(m.get(1, 0), 5.0);
        assert_eq!(m.rows(), 2);
        assert_eq!(m.cols(), 2);
        assert_eq!(m.row(1), &[5.0, 0.0]);
        assert!(!format!("{m}").is_empty());
    }
}
