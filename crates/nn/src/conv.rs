//! Spatial 2-D convolution and its im2col lowering.
//!
//! The TPU's matrix unit "can perform either a matrix multiply or a
//! convolution" (Section 2): the compiler lowers a convolution to matrix
//! form by unrolling each output position's receptive field into a row
//! (im2col), so a `kh x kw` convolution over `in_ch` channels producing
//! `out_ch` feature maps becomes a `(kh*kw*in_ch) x out_ch` weight matrix
//! applied to one unrolled row per output position. This module provides
//! the direct spatial reference, the im2col transform, and the proof (in
//! tests) that the two agree — which is how the conv path of the
//! simulator is validated numerically.

use crate::tensor::Matrix;

/// Shape of a 2-D convolution. Data layout is NHWC (batch, height,
/// width, channel), weights are `(kh, kw, in_ch, out_ch)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvSpec {
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Input channels.
    pub in_ch: usize,
    /// Output channels.
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Stride (same in both dimensions).
    pub stride: usize,
    /// Zero padding (same on all sides).
    pub pad: usize,
}

impl ConvSpec {
    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad - self.kh) / self.stride + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad - self.kw) / self.stride + 1
    }

    /// Output positions per example.
    pub fn out_positions(&self) -> usize {
        self.out_h() * self.out_w()
    }

    /// Rows of the im2col weight matrix (`kh*kw*in_ch`).
    pub fn patch_len(&self) -> usize {
        self.kh * self.kw * self.in_ch
    }

    /// Validate the geometry.
    ///
    /// # Errors
    ///
    /// Returns a message if any dimension is zero, the stride is zero, or
    /// the kernel (with padding) exceeds the input.
    pub fn validate(&self) -> Result<(), String> {
        if self.h == 0 || self.w == 0 || self.in_ch == 0 || self.out_ch == 0 {
            return Err("conv dimensions must be nonzero".to_string());
        }
        if self.kh == 0 || self.kw == 0 || self.stride == 0 {
            return Err("kernel and stride must be nonzero".to_string());
        }
        if self.kh > self.h + 2 * self.pad || self.kw > self.w + 2 * self.pad {
            return Err("kernel larger than padded input".to_string());
        }
        Ok(())
    }
}

/// An NHWC activation tensor.
#[derive(Debug, Clone, PartialEq)]
pub struct NhwcTensor {
    /// Batch.
    pub n: usize,
    /// Height.
    pub h: usize,
    /// Width.
    pub w: usize,
    /// Channels.
    pub c: usize,
    data: Vec<f32>,
}

impl NhwcTensor {
    /// Zero tensor.
    pub fn zeros(n: usize, h: usize, w: usize, c: usize) -> Self {
        Self {
            n,
            h,
            w,
            c,
            data: vec![0.0; n * h * w * c],
        }
    }

    /// Build from a generator over `(n, y, x, c)`.
    pub fn from_fn(
        n: usize,
        h: usize,
        w: usize,
        c: usize,
        mut f: impl FnMut(usize, usize, usize, usize) -> f32,
    ) -> Self {
        let mut t = Self::zeros(n, h, w, c);
        for bi in 0..n {
            for y in 0..h {
                for x in 0..w {
                    for ch in 0..c {
                        let v = f(bi, y, x, ch);
                        t.set(bi, y, x, ch, v);
                    }
                }
            }
        }
        t
    }

    fn idx(&self, n: usize, y: usize, x: usize, c: usize) -> usize {
        ((n * self.h + y) * self.w + x) * self.c + c
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn get(&self, n: usize, y: usize, x: usize, c: usize) -> f32 {
        assert!(n < self.n && y < self.h && x < self.w && c < self.c);
        self.data[self.idx(n, y, x, c)]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn set(&mut self, n: usize, y: usize, x: usize, c: usize, v: f32) {
        assert!(n < self.n && y < self.h && x < self.w && c < self.c);
        let i = self.idx(n, y, x, c);
        self.data[i] = v;
    }

    /// Padded read: positions outside the tensor return 0.0.
    pub fn get_padded(&self, n: usize, y: isize, x: isize, c: usize) -> f32 {
        if y < 0 || x < 0 || y as usize >= self.h || x as usize >= self.w {
            0.0
        } else {
            self.get(n, y as usize, x as usize, c)
        }
    }

    /// Flat data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
}

/// Direct (nested-loop) spatial convolution: the oracle.
///
/// `weights` is `(kh*kw*in_ch) x out_ch` row-major with the patch order
/// `(ky, kx, in_ch)` — the same order [`im2col`] produces.
///
/// # Panics
///
/// Panics on shape mismatches or invalid geometry.
pub fn conv2d_reference(input: &NhwcTensor, weights: &Matrix, spec: &ConvSpec) -> NhwcTensor {
    spec.validate().expect("valid conv spec");
    assert_eq!(input.h, spec.h);
    assert_eq!(input.w, spec.w);
    assert_eq!(input.c, spec.in_ch);
    assert_eq!(
        weights.shape(),
        (spec.patch_len(), spec.out_ch),
        "weight shape"
    );

    let mut out = NhwcTensor::zeros(input.n, spec.out_h(), spec.out_w(), spec.out_ch);
    for n in 0..input.n {
        for oy in 0..spec.out_h() {
            for ox in 0..spec.out_w() {
                for oc in 0..spec.out_ch {
                    let mut acc = 0.0f32;
                    let mut patch = 0usize;
                    for ky in 0..spec.kh {
                        for kx in 0..spec.kw {
                            let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                            let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                            for ic in 0..spec.in_ch {
                                acc += input.get_padded(n, iy, ix, ic) * weights.get(patch, oc);
                                patch += 1;
                            }
                        }
                    }
                    out.set(n, oy, ox, oc, acc);
                }
            }
        }
    }
    out
}

/// Unroll the input into the im2col matrix: one row per `(example,
/// output position)`, `kh*kw*in_ch` columns in `(ky, kx, in_ch)` order.
/// Multiplying it by the `(kh*kw*in_ch) x out_ch` weight matrix yields
/// the convolution as a single matrix product — exactly what the TPU's
/// matrix unit executes.
pub fn im2col(input: &NhwcTensor, spec: &ConvSpec) -> Matrix {
    spec.validate().expect("valid conv spec");
    let rows = input.n * spec.out_positions();
    let cols = spec.patch_len();
    let mut m = Matrix::zeros(rows, cols);
    let mut r = 0usize;
    for n in 0..input.n {
        for oy in 0..spec.out_h() {
            for ox in 0..spec.out_w() {
                let mut c = 0usize;
                for ky in 0..spec.kh {
                    for kx in 0..spec.kw {
                        let iy = (oy * spec.stride + ky) as isize - spec.pad as isize;
                        let ix = (ox * spec.stride + kx) as isize - spec.pad as isize;
                        for ic in 0..spec.in_ch {
                            m.set(r, c, input.get_padded(n, iy, ix, ic));
                            c += 1;
                        }
                    }
                }
                r += 1;
            }
        }
    }
    m
}

/// Convolution via im2col + matmul (the TPU lowering), returned in NHWC.
pub fn conv2d_im2col(input: &NhwcTensor, weights: &Matrix, spec: &ConvSpec) -> NhwcTensor {
    let unrolled = im2col(input, spec);
    let flat = unrolled.matmul(weights);
    let mut out = NhwcTensor::zeros(input.n, spec.out_h(), spec.out_w(), spec.out_ch);
    let mut r = 0usize;
    for n in 0..input.n {
        for oy in 0..spec.out_h() {
            for ox in 0..spec.out_w() {
                for oc in 0..spec.out_ch {
                    out.set(n, oy, ox, oc, flat.get(r, oc));
                }
                r += 1;
            }
        }
    }
    out
}

/// 2-D max pooling over `window x window` with stride = window (the
/// common non-overlapping form), NHWC.
///
/// # Panics
///
/// Panics if the window is zero or exceeds either spatial dimension.
pub fn maxpool2d(input: &NhwcTensor, window: usize) -> NhwcTensor {
    assert!(
        window > 0 && window <= input.h && window <= input.w,
        "bad pooling window"
    );
    let oh = input.h / window;
    let ow = input.w / window;
    let mut out = NhwcTensor::zeros(input.n, oh, ow, input.c);
    for n in 0..input.n {
        for oy in 0..oh {
            for ox in 0..ow {
                for c in 0..input.c {
                    let mut best = f32::NEG_INFINITY;
                    for dy in 0..window {
                        for dx in 0..window {
                            best = best.max(input.get(n, oy * window + dy, ox * window + dx, c));
                        }
                    }
                    out.set(n, oy, ox, c, best);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn spec_3x3_same(h: usize, w: usize, in_ch: usize, out_ch: usize) -> ConvSpec {
        ConvSpec {
            h,
            w,
            in_ch,
            out_ch,
            kh: 3,
            kw: 3,
            stride: 1,
            pad: 1,
        }
    }

    #[test]
    fn geometry() {
        let s = spec_3x3_same(19, 19, 48, 256);
        assert_eq!(s.out_h(), 19);
        assert_eq!(s.out_positions(), 361); // the AlphaGo board
        assert_eq!(s.patch_len(), 3 * 3 * 48);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn strided_geometry() {
        let s = ConvSpec {
            h: 224,
            w: 224,
            in_ch: 3,
            out_ch: 64,
            kh: 7,
            kw: 7,
            stride: 2,
            pad: 3,
        };
        assert_eq!(s.out_h(), 112);
        assert_eq!(s.out_w(), 112);
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = spec_3x3_same(4, 4, 1, 1);
        s.stride = 0;
        assert!(s.validate().is_err());
        let s2 = ConvSpec {
            h: 2,
            w: 2,
            in_ch: 1,
            out_ch: 1,
            kh: 5,
            kw: 5,
            stride: 1,
            pad: 0,
        };
        assert!(s2.validate().is_err());
    }

    #[test]
    fn identity_1x1_conv_copies_channels() {
        let spec = ConvSpec {
            h: 3,
            w: 3,
            in_ch: 2,
            out_ch: 2,
            kh: 1,
            kw: 1,
            stride: 1,
            pad: 0,
        };
        let id = Matrix::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
        let input =
            NhwcTensor::from_fn(1, 3, 3, 2, |_, y, x, c| (y * 3 + x) as f32 + c as f32 * 0.5);
        let out = conv2d_reference(&input, &id, &spec);
        assert_eq!(out, input);
    }

    #[test]
    fn im2col_matches_direct_convolution() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(77);
        for (spec, _) in [
            (spec_3x3_same(5, 5, 3, 4), 0),
            (
                ConvSpec {
                    h: 6,
                    w: 6,
                    in_ch: 2,
                    out_ch: 3,
                    kh: 2,
                    kw: 2,
                    stride: 2,
                    pad: 0,
                },
                1,
            ),
            (
                ConvSpec {
                    h: 7,
                    w: 5,
                    in_ch: 1,
                    out_ch: 2,
                    kh: 3,
                    kw: 1,
                    stride: 1,
                    pad: 0,
                },
                2,
            ),
            (
                ConvSpec {
                    h: 9,
                    w: 9,
                    in_ch: 4,
                    out_ch: 2,
                    kh: 5,
                    kw: 5,
                    stride: 2,
                    pad: 2,
                },
                3,
            ),
        ] {
            let w = Matrix::from_fn(spec.patch_len(), spec.out_ch, |_, _| {
                rng.gen_range(-1.0f32..1.0)
            });
            let input = NhwcTensor::from_fn(2, spec.h, spec.w, spec.in_ch, |_, _, _, _| {
                rng.gen_range(-1.0f32..1.0)
            });
            let direct = conv2d_reference(&input, &w, &spec);
            let lowered = conv2d_im2col(&input, &w, &spec);
            let max_diff = direct
                .data()
                .iter()
                .zip(lowered.data())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(max_diff < 1e-4, "spec {spec:?}: diff {max_diff}");
        }
    }

    #[test]
    fn im2col_shape_feeds_the_matrix_unit() {
        // The im2col matrix's shape must agree with Layer::matrix_shape's
        // convention: reduction rows = kh*kw*in_ch.
        let spec = spec_3x3_same(19, 19, 48, 256);
        let input = NhwcTensor::zeros(8, 19, 19, 48);
        let m = im2col(&input, &spec);
        assert_eq!(m.shape(), (8 * 361, 3 * 3 * 48));
        let layer = crate::layer::Layer::conv(48, 256, 3, 361, crate::layer::Nonlinearity::Relu);
        assert_eq!(layer.matrix_shape().unwrap().0, m.cols());
    }

    #[test]
    fn padding_contributes_zeros() {
        // All-ones 3x3 kernel over all-ones 3x3 input with pad 1: corner
        // outputs see only 4 real pixels, centre sees 9.
        let spec = spec_3x3_same(3, 3, 1, 1);
        let w = Matrix::from_fn(9, 1, |_, _| 1.0);
        let input = NhwcTensor::from_fn(1, 3, 3, 1, |_, _, _, _| 1.0);
        let out = conv2d_reference(&input, &w, &spec);
        assert_eq!(out.get(0, 0, 0, 0), 4.0);
        assert_eq!(out.get(0, 1, 1, 0), 9.0);
        assert_eq!(out.get(0, 0, 1, 0), 6.0);
    }

    #[test]
    fn maxpool_reduces_spatial_dims() {
        let input = NhwcTensor::from_fn(1, 4, 4, 1, |_, y, x, _| (y * 4 + x) as f32);
        let out = maxpool2d(&input, 2);
        assert_eq!((out.h, out.w), (2, 2));
        assert_eq!(out.get(0, 0, 0, 0), 5.0);
        assert_eq!(out.get(0, 1, 1, 0), 15.0);
    }

    #[test]
    #[should_panic(expected = "bad pooling window")]
    fn oversized_pool_window_panics() {
        let input = NhwcTensor::zeros(1, 2, 2, 1);
        let _ = maxpool2d(&input, 3);
    }
}
