//! # tpu-nn — the neural-network substrate of the TPU reproduction
//!
//! Everything the ISCA 2017 evaluation needs from the "application" side,
//! built from scratch: a small dense [`tensor::Matrix`] type, the
//! quantization scheme that turns float models into the TPU's 8-bit world
//! ([`quant`]), the layer taxonomy of Table 1 ([`layer`]), LSTM cell
//! mathematics ([`lstm`]), float reference execution with calibration
//! ([`mod@reference`]), and the six production benchmark workloads
//! ([`workloads`]) whose aggregates match Table 1 exactly.
//!
//! ```
//! use tpu_nn::workloads;
//!
//! let mlp0 = workloads::mlp0();
//! assert_eq!(mlp0.total_weights(), 20_000_000);
//! assert_eq!(mlp0.ops_per_weight_byte(), 200.0); // Table 1
//! ```

#![warn(missing_docs)]

pub mod calibrate;
pub mod compress;
pub mod conv;
pub mod layer;
pub mod lstm;
pub mod model;
pub mod quant;
pub mod reference;
pub mod tensor;
pub mod workloads;

pub use calibrate::{CalibrationMethod, Calibrator, MagnitudeHistogram};
pub use compress::{prune_to_density, CompressedWeights, SharedCodebook};
pub use layer::{Layer, Nonlinearity};
pub use model::{NnKind, NnModel};
pub use tensor::Matrix;
