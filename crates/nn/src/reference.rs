//! Floating-point reference execution and quantization calibration.
//!
//! The functional TPU produces quantized results; this module provides the
//! f32 oracle they are validated against, plus the "calibration" pass the
//! user-space driver performs the first time a model is evaluated: run the
//! float model on representative data and record each layer boundary's
//! activation range to choose quantization parameters.
//!
//! Reference execution covers matrix layers (FC) with their
//! nonlinearities; that is exactly the subset the end-to-end functional
//! tests compile onto the device (convolutions are validated separately at
//! the im2col/tile level, and LSTM cell math in [`crate::lstm`]).

use crate::layer::{Layer, Nonlinearity};
use crate::model::NnModel;
use crate::tensor::Matrix;
use tpu_core::act::QuantParams;

/// Materialized weights for a model's matrix layers, in layer order.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelWeights {
    matrices: Vec<Matrix>,
}

impl ModelWeights {
    /// Random weights in `[-scale, scale]` for every matrix layer of
    /// `model`.
    pub fn random(model: &NnModel, scale: f32, rng: &mut impl rand::Rng) -> Self {
        let matrices = model
            .layers()
            .iter()
            .filter_map(Layer::matrix_shape)
            .map(|(rows, cols)| Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-scale..=scale)))
            .collect();
        Self { matrices }
    }

    /// Wrap explicit matrices (must match the model's matrix layers in
    /// order and shape; checked at execution time).
    pub fn from_matrices(matrices: Vec<Matrix>) -> Self {
        Self { matrices }
    }

    /// The matrices in layer order.
    pub fn matrices(&self) -> &[Matrix] {
        &self.matrices
    }
}

/// Apply a nonlinearity elementwise.
pub fn apply_nonlinearity(act: Nonlinearity, x: &Matrix) -> Matrix {
    match act {
        Nonlinearity::None => x.clone(),
        Nonlinearity::Relu => x.map(|v| v.max(0.0)),
        Nonlinearity::Sigmoid => x.map(|v| 1.0 / (1.0 + (-v).exp())),
        Nonlinearity::Tanh => x.map(f32::tanh),
    }
}

/// Run the float model on a `batch x input_width` input, returning the
/// final activations.
///
/// # Panics
///
/// Panics if `weights` does not match the model's matrix layers or the
/// input shape is wrong. Non-matrix layers (Vector/Pool) pass data through
/// unchanged in the reference (they are cost-only in the timing model and
/// exercised directly in unit tests of the activation unit).
pub fn forward_f32(model: &NnModel, weights: &ModelWeights, input: &Matrix) -> Matrix {
    assert_eq!(input.cols(), model.input_width(), "input width mismatch");
    let mut x = input.clone();
    let mut wi = 0;
    for layer in model.layers() {
        match layer {
            Layer::Fc(fc) => {
                let w = &weights.matrices()[wi];
                wi += 1;
                assert_eq!(w.shape(), (fc.inputs, fc.outputs), "weight shape mismatch");
                x = apply_nonlinearity(fc.act, &x.matmul(w));
            }
            Layer::Conv(_) => {
                panic!("reference execution supports FC models; lower convs to tiles instead")
            }
            Layer::Pool(_) | Layer::Vector(_) => {}
        }
    }
    x
}

/// Per-boundary quantization parameters chosen by calibration: entry 0 is
/// the model input, entry `i + 1` the output of layer `i`'s matrix op.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibration {
    /// Quantization parameters per activation boundary.
    pub boundaries: Vec<QuantParams>,
}

/// Run the float model and record each boundary's activation range,
/// mirroring the driver's first-evaluation compilation step.
///
/// # Panics
///
/// Same conditions as [`forward_f32`].
pub fn calibrate(model: &NnModel, weights: &ModelWeights, input: &Matrix) -> Calibration {
    let mut boundaries = vec![crate::quant::choose_activation_params(input)];
    let mut x = input.clone();
    let mut wi = 0;
    for layer in model.layers() {
        if let Layer::Fc(fc) = layer {
            let w = &weights.matrices()[wi];
            wi += 1;
            x = apply_nonlinearity(fc.act, &x.matmul(w));
            boundaries.push(crate::quant::choose_activation_params(&x));
        }
    }
    Calibration { boundaries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::NnKind;
    use rand::SeedableRng;
    use tpu_core::config::Precision;

    fn mlp() -> NnModel {
        NnModel::new(
            "t",
            NnKind::Mlp,
            vec![
                Layer::fc(6, 5, Nonlinearity::Relu),
                Layer::fc(5, 3, Nonlinearity::None),
            ],
            2,
            6,
            Precision::Int8,
        )
    }

    #[test]
    fn forward_shapes() {
        let m = mlp();
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let w = ModelWeights::random(&m, 0.5, &mut rng);
        let x = Matrix::from_fn(2, 6, |_, _| 0.3);
        let y = forward_f32(&m, &w, &x);
        assert_eq!(y.shape(), (2, 3));
    }

    #[test]
    fn relu_layer_output_nonnegative() {
        let m = NnModel::new(
            "r",
            NnKind::Mlp,
            vec![Layer::fc(4, 4, Nonlinearity::Relu)],
            1,
            4,
            Precision::Int8,
        );
        let w = ModelWeights::from_matrices(vec![Matrix::from_fn(4, 4, |_, _| -1.0)]);
        let y = forward_f32(&m, &w, &Matrix::from_fn(1, 4, |_, _| 1.0));
        assert!(y.data().iter().all(|&v| v >= 0.0));
        assert_eq!(y.data(), &[0.0; 4]);
    }

    #[test]
    fn identity_network_is_identity() {
        let m = NnModel::new(
            "i",
            NnKind::Mlp,
            vec![Layer::fc(3, 3, Nonlinearity::None)],
            1,
            3,
            Precision::Int8,
        );
        let id = Matrix::from_fn(3, 3, |r, c| if r == c { 1.0 } else { 0.0 });
        let w = ModelWeights::from_matrices(vec![id]);
        let x = Matrix::from_rows(1, 3, vec![0.1, -0.5, 2.0]);
        assert_eq!(forward_f32(&m, &w, &x), x);
    }

    #[test]
    fn calibration_covers_all_boundaries() {
        let m = mlp();
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let w = ModelWeights::random(&m, 0.5, &mut rng);
        let x = Matrix::from_fn(2, 6, |r, c| (r + c) as f32 * 0.1 - 0.3);
        let cal = calibrate(&m, &w, &x);
        assert_eq!(cal.boundaries.len(), 3); // input + 2 layers
        for b in &cal.boundaries {
            assert!(b.scale > 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn wrong_input_width_panics() {
        let m = mlp();
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let w = ModelWeights::random(&m, 0.5, &mut rng);
        let _ = forward_f32(&m, &w, &Matrix::zeros(1, 7));
    }

    #[test]
    fn apply_nonlinearity_variants() {
        let x = Matrix::from_rows(1, 2, vec![-1.0, 1.0]);
        assert_eq!(apply_nonlinearity(Nonlinearity::None, &x), x);
        assert_eq!(
            apply_nonlinearity(Nonlinearity::Relu, &x).data(),
            &[0.0, 1.0]
        );
        let s = apply_nonlinearity(Nonlinearity::Sigmoid, &x);
        assert!(s.get(0, 0) < 0.5 && s.get(0, 1) > 0.5);
        let t = apply_nonlinearity(Nonlinearity::Tanh, &x);
        assert!((t.get(0, 1) - 1.0f32.tanh()).abs() < 1e-6);
    }
}
