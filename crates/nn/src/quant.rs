//! Quantization: the step that makes the TPU possible.
//!
//! Section 1 of the paper: "A step called quantization transforms
//! floating-point numbers into narrow integers — often just 8 bits — which
//! are usually good enough for inference." The scheme here is the standard
//! one the TPU software stack used: asymmetric affine u8 for activations
//! (`real = scale * (q - zero_point)`), symmetric i8 for weights
//! (`real = scale * q`), with 32-bit integer accumulation.

use crate::tensor::Matrix;
use tpu_core::act::QuantParams;

/// A weight matrix quantized to symmetric i8.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedWeights {
    /// Row-major i8 codes, `inputs x outputs`.
    codes: Vec<i8>,
    rows: usize,
    cols: usize,
    /// Real value of one code step.
    scale: f32,
}

impl QuantizedWeights {
    /// Quantize an f32 weight matrix symmetrically into i8.
    ///
    /// The scale is chosen from the maximum absolute weight so the full
    /// [-127, 127] range is used (code -128 is avoided, the common
    /// symmetric convention).
    pub fn quantize(weights: &Matrix) -> Self {
        let max_abs = weights.data().iter().fold(0.0f32, |m, &v| m.max(v.abs()));
        let scale = if max_abs == 0.0 { 1.0 } else { max_abs / 127.0 };
        let codes = weights
            .data()
            .iter()
            .map(|&v| (v / scale).round().clamp(-127.0, 127.0) as i8)
            .collect();
        let (rows, cols) = weights.shape();
        Self {
            codes,
            rows,
            cols,
            scale,
        }
    }

    /// Scale of one code step.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// `(rows, cols)` = `(inputs, outputs)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major codes.
    pub fn codes(&self) -> &[i8] {
        &self.codes
    }

    /// Reconstruct the f32 weights (with quantization error).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_rows(
            self.rows,
            self.cols,
            self.codes.iter().map(|&c| c as f32 * self.scale).collect(),
        )
    }
}

/// A batch of activations quantized to affine u8.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedActivations {
    /// Row-major u8 codes, `batch x width`.
    codes: Vec<u8>,
    rows: usize,
    cols: usize,
    /// Affine parameters.
    params: QuantParams,
}

impl QuantizedActivations {
    /// Quantize a batch of f32 activations with the given parameters.
    pub fn quantize(values: &Matrix, params: QuantParams) -> Self {
        let codes = values.data().iter().map(|&v| params.quantize(v)).collect();
        let (rows, cols) = values.shape();
        Self {
            codes,
            rows,
            cols,
            params,
        }
    }

    /// Wrap raw codes produced by the device.
    ///
    /// # Panics
    ///
    /// Panics if `codes.len() != rows * cols`.
    pub fn from_codes(rows: usize, cols: usize, codes: Vec<u8>, params: QuantParams) -> Self {
        assert_eq!(codes.len(), rows * cols, "codes must be rows*cols");
        Self {
            codes,
            rows,
            cols,
            params,
        }
    }

    /// Affine parameters.
    pub fn params(&self) -> QuantParams {
        self.params
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Row-major codes.
    pub fn codes(&self) -> &[u8] {
        &self.codes
    }

    /// Reconstruct the f32 activations (with quantization error).
    pub fn dequantize(&self) -> Matrix {
        Matrix::from_rows(
            self.rows,
            self.cols,
            self.codes
                .iter()
                .map(|&c| self.params.dequantize(c))
                .collect(),
        )
    }
}

/// Choose activation quantization parameters covering the observed range
/// of `values` (always including zero).
pub fn choose_activation_params(values: &Matrix) -> QuantParams {
    let mut lo = 0.0f32;
    let mut hi = 0.0f32;
    for &v in values.data() {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    if lo == hi {
        // Degenerate constant input; give it a unit-wide range.
        hi = lo + 1.0;
    }
    QuantParams::from_range(lo, hi)
}

/// Quantized integer matmul exactly as the TPU computes it:
/// `acc[b][o] = sum_i (a[b][i] - zp) * w[i][o]`, i32 accumulation.
///
/// # Panics
///
/// Panics if the inner dimensions disagree.
pub fn quantized_matmul(acts: &QuantizedActivations, weights: &QuantizedWeights) -> Vec<i32> {
    let (batch, width) = acts.shape();
    let (w_rows, w_cols) = weights.shape();
    assert_eq!(width, w_rows, "inner dimensions must agree");
    let zp = acts.params().zero_point as i32;
    let mut out = vec![0i32; batch * w_cols];
    for b in 0..batch {
        for i in 0..width {
            let a = acts.codes()[b * width + i] as i32 - zp;
            if a == 0 {
                continue;
            }
            let wrow = &weights.codes()[i * w_cols..(i + 1) * w_cols];
            let orow = &mut out[b * w_cols..(b + 1) * w_cols];
            for (o, &w) in orow.iter_mut().zip(wrow) {
                *o += a * w as i32;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_weights() -> Matrix {
        Matrix::from_rows(2, 3, vec![0.5, -1.0, 0.25, 1.0, 0.0, -0.5])
    }

    #[test]
    fn weight_roundtrip_error_bounded() {
        let w = sample_weights();
        let q = QuantizedWeights::quantize(&w);
        let err = w.max_abs_diff(&q.dequantize());
        assert!(
            err <= q.scale() * 0.5 + 1e-6,
            "err {err} scale {}",
            q.scale()
        );
    }

    #[test]
    fn weight_scale_uses_full_range() {
        let q = QuantizedWeights::quantize(&sample_weights());
        // max |w| = 1.0 -> code 127.
        assert!(q.codes().contains(&127) || q.codes().contains(&-127));
    }

    #[test]
    fn zero_weights_quantize_cleanly() {
        let q = QuantizedWeights::quantize(&Matrix::zeros(2, 2));
        assert!(q.codes().iter().all(|&c| c == 0));
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn activation_roundtrip_error_bounded() {
        let a = Matrix::from_rows(1, 4, vec![-2.0, 0.0, 1.5, 3.0]);
        let p = choose_activation_params(&a);
        let q = QuantizedActivations::quantize(&a, p);
        let err = a.max_abs_diff(&q.dequantize());
        assert!(err <= p.scale * 0.5 + 1e-6);
    }

    #[test]
    fn constant_input_does_not_panic() {
        let a = Matrix::from_rows(1, 2, vec![0.0, 0.0]);
        let p = choose_activation_params(&a);
        assert!(p.scale > 0.0);
    }

    #[test]
    fn quantized_matmul_matches_f32_within_tolerance() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let batch = 4;
        let width = 16;
        let outs = 8;
        let a = Matrix::from_fn(batch, width, |_, _| rng.gen_range(-1.0f32..1.0));
        let w = Matrix::from_fn(width, outs, |_, _| rng.gen_range(-0.5f32..0.5));
        let want = a.matmul(&w);

        let pa = choose_activation_params(&a);
        let qa = QuantizedActivations::quantize(&a, pa);
        let qw = QuantizedWeights::quantize(&w);
        let acc = quantized_matmul(&qa, &qw);
        let got = Matrix::from_rows(
            batch,
            outs,
            acc.iter()
                .map(|&v| v as f32 * pa.scale * qw.scale())
                .collect(),
        );
        // Error grows with the reduction width; 16 terms of ~1% step error.
        assert!(
            want.max_abs_diff(&got) < 0.08,
            "diff {}",
            want.max_abs_diff(&got)
        );
    }

    #[test]
    fn from_codes_validates_shape() {
        let p = QuantParams::default();
        let q = QuantizedActivations::from_codes(1, 2, vec![0, 1], p);
        assert_eq!(q.shape(), (1, 2));
    }

    #[test]
    #[should_panic(expected = "rows*cols")]
    fn from_codes_rejects_bad_shape() {
        let _ = QuantizedActivations::from_codes(2, 2, vec![0; 3], QuantParams::default());
    }
}
