//! Sparse weight compression (the paper's announced future work).
//!
//! Section 2: "Sparse architectural support was omitted for
//! time-to-deploy reasons. Sparsity will have high priority in future
//! designs." Section 9 describes the Efficient Inference Engine
//! \[Han16\], which prunes ~90% of weights and stores the survivors in a
//! relative-indexed sparse format with weight sharing.
//!
//! This module implements that substrate functionally:
//!
//! * [`prune_to_density`] — magnitude pruning of a quantized weight
//!   matrix to a target density;
//! * [`CompressedWeights`] — an EIE-style column-major format: per
//!   nonzero a 4-bit zero-run distance plus an 8-bit value (run lengths
//!   over 15 are bridged with explicit zero entries, exactly as EIE's
//!   relative indexing does);
//! * [`CompressedWeights::matvec`] — matrix-vector product computed
//!   directly on the compressed form, bit-identical to the dense
//!   integer matmul;
//! * weight sharing ([`SharedCodebook`]): cluster the surviving values
//!   to 16 centroids so each entry needs only 4 value bits.
//!
//! The analytic performance consequence (compression attacks the
//! bandwidth wall that stalls the MLPs and LSTMs) is modeled in
//! `tpu-perfmodel`'s sparsity ablation; this module supplies the real
//! format, its measured compression ratios, and a correctness proof.

use crate::quant::QuantizedWeights;
use crate::tensor::Matrix;

/// Zero out the smallest-magnitude entries until `density` of the matrix
/// survives (by count, rounded up). Returns a new f32 matrix.
///
/// # Panics
///
/// Panics unless `0.0 < density <= 1.0`.
///
/// # Examples
///
/// ```
/// use tpu_nn::compress::prune_to_density;
/// use tpu_nn::Matrix;
///
/// let dense = Matrix::from_rows(2, 2, vec![0.9, -0.1, 0.05, 0.8]);
/// let pruned = prune_to_density(&dense, 0.5);
/// assert_eq!(pruned.data(), &[0.9, 0.0, 0.0, 0.8]);
/// ```
pub fn prune_to_density(weights: &Matrix, density: f64) -> Matrix {
    assert!(density > 0.0 && density <= 1.0, "density must be in (0, 1]");
    let n = weights.data().len();
    let keep = ((n as f64 * density).ceil() as usize).max(1);
    if keep >= n {
        return weights.clone();
    }
    let mut mags: Vec<f32> = weights.data().iter().map(|v| v.abs()).collect();
    mags.sort_by(|a, b| b.partial_cmp(a).expect("finite weights"));
    let threshold = mags[keep - 1];
    // Keep everything at or above the threshold; ties may keep slightly
    // more than `keep` entries, which errs toward accuracy.
    weights.map(|v| if v.abs() >= threshold { v } else { 0.0 })
}

/// One nonzero entry of the compressed stream: how many zeros precede it
/// within its column (0-15) and its quantized value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SparseEntry {
    zero_run: u8, // 4 bits in hardware
    value: i8,
}

/// EIE-style compressed sparse weights, column-major.
///
/// Storage cost is 12 bits per entry (4-bit run + 8-bit value) plus one
/// `u32` column pointer per column — [`CompressedWeights::compressed_bits`]
/// accounts for both.
#[derive(Debug, Clone, PartialEq)]
pub struct CompressedWeights {
    rows: usize,
    cols: usize,
    entries: Vec<SparseEntry>,
    /// `col_ptr[c]..col_ptr[c+1]` indexes `entries` for column `c`.
    col_ptr: Vec<u32>,
}

/// Maximum zero-run encodable in the 4-bit field.
const MAX_RUN: usize = 15;

impl CompressedWeights {
    /// Compress quantized weights: zeros are skipped, runs longer than 15
    /// are bridged with explicit zero entries (EIE's relative indexing).
    pub fn encode(weights: &QuantizedWeights) -> Self {
        let (rows, cols) = weights.shape();
        let codes = weights.codes();
        let mut entries = Vec::new();
        let mut col_ptr = Vec::with_capacity(cols + 1);
        col_ptr.push(0u32);
        for c in 0..cols {
            let mut run = 0usize;
            for r in 0..rows {
                let v = codes[r * cols + c];
                if v == 0 {
                    run += 1;
                    if run > MAX_RUN {
                        // Bridge: explicit zero entry with a full run.
                        entries.push(SparseEntry {
                            zero_run: MAX_RUN as u8,
                            value: 0,
                        });
                        run = 0;
                    }
                } else {
                    entries.push(SparseEntry {
                        zero_run: run as u8,
                        value: v,
                    });
                    run = 0;
                }
            }
            col_ptr.push(entries.len() as u32);
        }
        CompressedWeights {
            rows,
            cols,
            entries,
            col_ptr,
        }
    }

    /// Shape of the dense matrix this encodes.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries (nonzeros plus bridge zeros).
    pub fn stored_entries(&self) -> usize {
        self.entries.len()
    }

    /// Bits of storage: 12 per entry plus 32 per column pointer.
    pub fn compressed_bits(&self) -> usize {
        self.entries.len() * 12 + self.col_ptr.len() * 32
    }

    /// Bits the dense 8-bit matrix occupies.
    pub fn dense_bits(&self) -> usize {
        self.rows * self.cols * 8
    }

    /// Dense-to-compressed storage ratio (>1 means compression won).
    pub fn compression_ratio(&self) -> f64 {
        self.dense_bits() as f64 / self.compressed_bits() as f64
    }

    /// Reconstruct the dense code matrix.
    pub fn decode(&self) -> Vec<i8> {
        let mut out = vec![0i8; self.rows * self.cols];
        for c in 0..self.cols {
            let mut r = 0usize;
            for e in &self.entries[self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize] {
                r += e.zero_run as usize;
                if e.value != 0 {
                    out[r * self.cols + c] = e.value;
                }
                r += 1;
            }
        }
        out
    }

    /// Matrix-vector product straight off the compressed form:
    /// `out[c] = sum_r acts[r] * w[r][c]`, i32 accumulation — exactly the
    /// arithmetic the dense matmul performs, skipping zeros.
    ///
    /// # Panics
    ///
    /// Panics if `acts.len() != rows`.
    pub fn matvec(&self, acts: &[i16]) -> Vec<i32> {
        assert_eq!(acts.len(), self.rows, "activation length must equal rows");
        let mut out = vec![0i32; self.cols];
        for (c, slot) in out.iter_mut().enumerate() {
            let mut r = 0usize;
            let mut acc = 0i32;
            for e in &self.entries[self.col_ptr[c] as usize..self.col_ptr[c + 1] as usize] {
                r += e.zero_run as usize;
                if e.value != 0 {
                    acc += acts[r] as i32 * e.value as i32;
                }
                r += 1;
            }
            *slot = acc;
        }
        out
    }

    /// Fraction of the dense matrix that is stored (lower = sparser).
    pub fn density(&self) -> f64 {
        let nonzeros = self.entries.iter().filter(|e| e.value != 0).count();
        nonzeros as f64 / (self.rows * self.cols) as f64
    }
}

/// A 16-entry shared-value codebook (EIE weight sharing): each stored
/// value is replaced by the nearest of 16 centroids, cutting value bits
/// from 8 to 4.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedCodebook {
    centroids: [i8; 16],
}

impl SharedCodebook {
    /// Build a codebook from observed nonzero codes by k-means-style
    /// iteration on the 1-D value distribution (deterministic: centroids
    /// start at evenly spaced quantiles).
    pub fn fit(codes: &[i8]) -> Self {
        let mut values: Vec<i8> = codes.iter().copied().filter(|&v| v != 0).collect();
        if values.is_empty() {
            return SharedCodebook { centroids: [0; 16] };
        }
        values.sort_unstable();
        let mut centroids = [0i8; 16];
        for (k, c) in centroids.iter_mut().enumerate() {
            let idx = (k * (values.len() - 1)) / 15;
            *c = values[idx.min(values.len() - 1)];
        }
        // Lloyd iterations on the 1-D points.
        for _ in 0..10 {
            let mut sums = [0i64; 16];
            let mut counts = [0i64; 16];
            for &v in &values {
                let k = nearest(&centroids, v);
                sums[k] += v as i64;
                counts[k] += 1;
            }
            for k in 0..16 {
                if counts[k] > 0 {
                    centroids[k] = (sums[k] / counts[k]) as i8;
                }
            }
        }
        SharedCodebook { centroids }
    }

    /// The 16 centroid values.
    pub fn centroids(&self) -> &[i8; 16] {
        &self.centroids
    }

    /// Map a value to its nearest centroid.
    pub fn quantize(&self, v: i8) -> i8 {
        self.centroids[nearest(&self.centroids, v)]
    }

    /// Worst-case distance from any of `codes`'s nonzeros to a centroid.
    pub fn max_error(&self, codes: &[i8]) -> i32 {
        codes
            .iter()
            .filter(|&&v| v != 0)
            .map(|&v| (v as i32 - self.quantize(v) as i32).abs())
            .max()
            .unwrap_or(0)
    }
}

fn nearest(centroids: &[i8; 16], v: i8) -> usize {
    let mut best = 0usize;
    let mut best_d = i32::MAX;
    for (k, &c) in centroids.iter().enumerate() {
        let d = (v as i32 - c as i32).abs();
        if d < best_d {
            best_d = d;
            best = k;
        }
    }
    best
}

/// Storage bits with weight sharing: 4-bit run + 4-bit codebook index per
/// entry, plus the 16 x 8-bit codebook and the column pointers.
pub fn shared_bits(compressed: &CompressedWeights) -> usize {
    compressed.stored_entries() * 8 + 16 * 8 + (compressed.shape().1 + 1) * 32
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_sparse(rows: usize, cols: usize, density: f64, seed: u64) -> QuantizedWeights {
        let mut rng = StdRng::seed_from_u64(seed);
        let dense = Matrix::from_fn(rows, cols, |_, _| {
            if rng.gen_bool(density) {
                rng.gen_range(-1.0f32..1.0)
            } else {
                0.0
            }
        });
        QuantizedWeights::quantize(&dense)
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        for density in [0.01, 0.1, 0.5, 1.0] {
            let w = random_sparse(64, 48, density, 7);
            let c = CompressedWeights::encode(&w);
            assert_eq!(c.decode(), w.codes(), "density {density}");
        }
    }

    #[test]
    fn all_zero_matrix_compresses_to_bridges_only() {
        let w = QuantizedWeights::quantize(&Matrix::zeros(64, 8));
        let c = CompressedWeights::encode(&w);
        assert_eq!(c.density(), 0.0);
        assert_eq!(c.decode(), vec![0i8; 64 * 8]);
        // 64 rows / 16-per-bridge = 4 bridge entries per column at most.
        assert!(c.stored_entries() <= 4 * 8);
    }

    #[test]
    fn long_zero_runs_are_bridged() {
        // A single nonzero at the bottom of a 100-row column: the 4-bit
        // run field cannot express 99, so bridges must appear.
        let mut data = vec![0.0f32; 100];
        data[99] = 0.9;
        let w = QuantizedWeights::quantize(&Matrix::from_rows(100, 1, data));
        let c = CompressedWeights::encode(&w);
        assert!(
            c.stored_entries() >= 7,
            "99 zeros need >= 6 bridges: {}",
            c.stored_entries()
        );
        let decoded = c.decode();
        assert_ne!(decoded[99], 0);
        assert!(decoded[..99].iter().all(|&v| v == 0));
    }

    #[test]
    fn matvec_matches_dense_matmul() {
        let w = random_sparse(96, 32, 0.15, 11);
        let c = CompressedWeights::encode(&w);
        let acts: Vec<i16> = (0..96).map(|i| ((i * 7) % 31) as i16 - 15).collect();
        let sparse = c.matvec(&acts);
        // Dense reference.
        let codes = w.codes();
        let mut dense = vec![0i32; 32];
        for (col, d) in dense.iter_mut().enumerate() {
            for (row, &a) in acts.iter().enumerate() {
                *d += a as i32 * codes[row * 32 + col] as i32;
            }
        }
        assert_eq!(sparse, dense);
    }

    #[test]
    fn ten_percent_density_compresses_about_five_x() {
        // EIE's headline: ~10x fewer weights => the 12-bit entries give
        // roughly 8/1.2 ~ 5-6x storage reduction before weight sharing.
        let w = random_sparse(512, 512, 0.10, 13);
        let c = CompressedWeights::encode(&w);
        let ratio = c.compression_ratio();
        assert!((4.0..7.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn dense_matrix_does_not_benefit() {
        let w = random_sparse(128, 128, 1.0, 17);
        let c = CompressedWeights::encode(&w);
        assert!(
            c.compression_ratio() < 1.0,
            "ratio {}",
            c.compression_ratio()
        );
    }

    #[test]
    fn weight_sharing_halves_entry_bits() {
        let w = random_sparse(512, 512, 0.10, 19);
        let c = CompressedWeights::encode(&w);
        let with_sharing = shared_bits(&c);
        assert!(
            (with_sharing as f64) < 0.75 * c.compressed_bits() as f64,
            "sharing {} vs plain {}",
            with_sharing,
            c.compressed_bits()
        );
    }

    #[test]
    fn codebook_error_is_bounded_on_smooth_distributions() {
        let mut rng = StdRng::seed_from_u64(23);
        let codes: Vec<i8> = (0..10_000).map(|_| rng.gen_range(-127i8..=127)).collect();
        let cb = SharedCodebook::fit(&codes);
        // 16 centroids over 255 values: worst-case error well under a
        // half-interval of 255/16 ~ 16.
        assert!(
            cb.max_error(&codes) <= 16,
            "max error {}",
            cb.max_error(&codes)
        );
    }

    #[test]
    fn codebook_on_empty_input_is_zero() {
        let cb = SharedCodebook::fit(&[0, 0, 0]);
        assert_eq!(cb.centroids(), &[0i8; 16]);
        assert_eq!(cb.quantize(5), 0);
    }

    #[test]
    fn pruning_keeps_the_largest_magnitudes() {
        let m = Matrix::from_rows(1, 6, vec![0.9, -0.8, 0.1, -0.05, 0.5, 0.01]);
        let p = prune_to_density(&m, 0.5);
        assert_eq!(p.data(), &[0.9, -0.8, 0.0, 0.0, 0.5, 0.0]);
    }

    #[test]
    fn pruning_full_density_is_identity() {
        let m = Matrix::from_rows(2, 2, vec![0.1, 0.2, 0.3, 0.4]);
        assert_eq!(prune_to_density(&m, 1.0), m);
    }

    #[test]
    #[should_panic(expected = "density must be in (0, 1]")]
    fn zero_density_panics() {
        let _ = prune_to_density(&Matrix::zeros(2, 2), 0.0);
    }

    #[test]
    fn pruned_quantized_pipeline_end_to_end() {
        // Dense f32 -> prune to 10% -> quantize -> compress -> sparse
        // matvec matches the dense quantized computation.
        let mut rng = StdRng::seed_from_u64(29);
        let dense = Matrix::from_fn(256, 64, |_, _| rng.gen_range(-0.5f32..0.5));
        let pruned = prune_to_density(&dense, 0.10);
        let q = QuantizedWeights::quantize(&pruned);
        let c = CompressedWeights::encode(&q);
        assert!(c.density() <= 0.12, "density {}", c.density());
        assert!(c.compression_ratio() > 3.0);
        let acts: Vec<i16> = (0..256).map(|i| (i % 17) as i16 - 8).collect();
        let sparse = c.matvec(&acts);
        let codes = q.codes();
        for (col, &s) in sparse.iter().enumerate() {
            let mut acc = 0i32;
            for (row, &a) in acts.iter().enumerate() {
                acc += a as i32 * codes[row * 64 + col] as i32;
            }
            assert_eq!(s, acc, "column {col}");
        }
    }
}
