//! The six production workloads of Table 1.
//!
//! The paper characterises each application only in aggregate (layer
//! counts by type, total weights, operational intensity, batch size); the
//! production per-layer shapes are proprietary. The models here are
//! synthetic networks whose aggregates match Table 1:
//!
//! | Name  | Layers (FC/Conv/Vector/Pool) | Weights | Ops/WeightByte | Batch |
//! |-------|------------------------------|---------|----------------|-------|
//! | MLP0  | 5 FC                         | 20M     | 200            | 200   |
//! | MLP1  | 4 FC                         | 5M      | 168            | 168   |
//! | LSTM0 | 24 FC + 34 Vector            | 52M     | 64             | 64    |
//! | LSTM1 | 37 FC + 19 Vector            | 34M     | 96             | 96    |
//! | CNN0  | 16 Conv                      | 8M      | 2888           | 8     |
//! | CNN1  | 4 FC + 72 Conv + 13 Pool     | 100M    | ~1750          | 32    |
//!
//! Notable shape choices: CNN0 follows the AlphaGo network (19x19 board,
//! so 361 output positions x batch 8 = the paper's 2888 ops/byte); LSTM1
//! includes the 600x600 gate matrices Section 7 uses to explain matrix-
//! unit fragmentation; CNN1 mixes shallow 1x1 convolutions (partially
//! filling the 256-wide array, producing Table 3's unused MACs) with a
//! heavy fully connected head at operational intensity 32 (the paper's
//! weight-stall explanation for CNN1). The LSTMs run 16-bit activations
//! (mixed precision, half speed).

use crate::layer::{Layer, Nonlinearity};
use crate::model::{NnKind, NnModel};
use tpu_core::config::Precision;

/// MLP0: 5 fully connected 2000x2000 ReLU layers, batch 200 (RankBrain-
/// class ranking model).
pub fn mlp0() -> NnModel {
    let layers = (0..5)
        .map(|_| Layer::fc(2000, 2000, Nonlinearity::Relu))
        .collect();
    NnModel::new("MLP0", NnKind::Mlp, layers, 200, 2000, Precision::Int8)
}

/// MLP1: 4 fully connected 1120x1120 ReLU layers, batch 168.
pub fn mlp1() -> NnModel {
    let layers = (0..4)
        .map(|_| Layer::fc(1120, 1120, Nonlinearity::Relu))
        .collect();
    NnModel::new("MLP1", NnKind::Mlp, layers, 168, 1120, Precision::Int8)
}

/// LSTM0: 6 stacked LSTM cells (4 gate matmuls each = 24 FC layers) with
/// 34 elementwise vector layers, hidden width 1040, batch 64.
pub fn lstm0() -> NnModel {
    let hidden = 1040;
    let mut layers = Vec::new();
    for cell in 0..6 {
        // Four gate projections: [x, h] (2*hidden wide) -> hidden.
        for gate in 0..4 {
            let act = if gate == 2 {
                Nonlinearity::Tanh
            } else {
                Nonlinearity::Sigmoid
            };
            layers.push(Layer::fc(2 * hidden, hidden, act));
        }
        // Five elementwise combinations per cell (f*c, i*g, +, tanh, o*).
        for _ in 0..5 {
            layers.push(Layer::vector(hidden, 3));
        }
        // Four extra vector transforms spread across the stack (input and
        // output reformatting) to reach Table 1's 34.
        if cell < 4 {
            layers.push(Layer::vector(hidden, 2));
        }
    }
    NnModel::new(
        "LSTM0",
        NnKind::Lstm,
        layers,
        64,
        hidden,
        Precision::Mixed8x16,
    )
}

/// LSTM1: 37 gate matmuls mixing 600x600 matrices (Section 7's
/// fragmentation example) with larger 1440x1440 ones, 19 vector layers,
/// batch 96 (a GNM-Translate subset).
pub fn lstm1() -> NnModel {
    let mut layers = Vec::new();
    // 25 narrow gates on the 600-wide recurrent path.
    for i in 0..25 {
        let act = if i % 4 == 2 {
            Nonlinearity::Tanh
        } else {
            Nonlinearity::Sigmoid
        };
        layers.push(Layer::fc(600, 600, act));
    }
    // 12 wide gates on the 1440-wide encoder path.
    for i in 0..12 {
        let act = if i % 4 == 2 {
            Nonlinearity::Tanh
        } else {
            Nonlinearity::Sigmoid
        };
        layers.push(Layer::fc(1440, 1440, act));
    }
    // 19 elementwise layers.
    for _ in 0..19 {
        layers.push(Layer::vector(600, 3));
    }
    NnModel::new("LSTM1", NnKind::Lstm, layers, 96, 600, Precision::Mixed8x16)
}

/// CNN0: the AlphaGo-style network — 16 convolutional layers on a 19x19
/// board (361 output positions), 256 filters, batch 8.
pub fn cnn0() -> NnModel {
    let pos = 19 * 19;
    let mut layers = vec![Layer::conv(48, 256, 3, pos, Nonlinearity::Relu)];
    for _ in 0..14 {
        layers.push(Layer::conv(256, 256, 3, pos, Nonlinearity::Relu));
    }
    // Final 1x1 policy head.
    layers.push(Layer::conv(256, 1, 1, pos, Nonlinearity::Relu));
    NnModel::new("CNN0", NnKind::Cnn, layers, 8, 48 * pos, Precision::Int8)
}

/// CNN1: an Inception-v2-style network — 72 convolutions across a spatial
/// pyramid (28x28 -> 14x14 -> 7x7), 13 pooling layers, and a 4-layer fully
/// connected head holding most of the 100M weights, batch 32.
pub fn cnn1() -> NnModel {
    // Stem: 3 convolutions at high resolution, with their pools.
    let mut layers = vec![
        Layer::conv(3, 64, 7, 112 * 112, Nonlinearity::Relu),
        Layer::pool(64, 2, 112 * 112),
        Layer::conv(64, 64, 1, 56 * 56, Nonlinearity::Relu),
        Layer::conv(64, 192, 3, 56 * 56, Nonlinearity::Relu),
        Layer::pool(192, 2, 56 * 56),
    ];

    // Stage A: 23 convolutions at 28x28, alternating shallow 1x1
    // bottlenecks (partial array fill) with 3x3 convolutions.
    for i in 0..23 {
        if i % 2 == 0 {
            layers.push(Layer::conv(256, 96, 1, 28 * 28, Nonlinearity::Relu));
        } else {
            layers.push(Layer::conv(96, 208, 3, 28 * 28, Nonlinearity::Relu));
        }
        if i % 6 == 5 {
            layers.push(Layer::pool(208, 2, 28 * 28));
        }
    }
    // Transition pool 28x28 -> 14x14.
    layers.push(Layer::pool(512, 2, 28 * 28));
    // Stage B: 23 convolutions at 14x14.
    for i in 0..23 {
        if i % 2 == 0 {
            layers.push(Layer::conv(512, 160, 1, 14 * 14, Nonlinearity::Relu));
        } else {
            layers.push(Layer::conv(160, 320, 3, 14 * 14, Nonlinearity::Relu));
        }
        if i % 6 == 5 {
            layers.push(Layer::pool(320, 2, 14 * 14));
        }
    }
    // Transition pool 14x14 -> 7x7.
    layers.push(Layer::pool(832, 2, 14 * 14));
    // Stage C: 23 convolutions at 7x7.
    for i in 0..23 {
        if i % 2 == 0 {
            layers.push(Layer::conv(832, 256, 1, 7 * 7, Nonlinearity::Relu));
        } else {
            layers.push(Layer::conv(256, 512, 3, 7 * 7, Nonlinearity::Relu));
        }
        if i % 8 == 7 {
            layers.push(Layer::pool(512, 2, 7 * 7));
        }
    }
    // Final global pool then the 4-layer FC head that dominates weights
    // and runs at operational intensity = batch = 32.
    layers.push(Layer::pool(512, 7, 7 * 7));
    layers.push(Layer::fc(25088, 2048, Nonlinearity::Relu));
    layers.push(Layer::fc(2048, 2048, Nonlinearity::Relu));
    layers.push(Layer::fc(2048, 2048, Nonlinearity::Relu));
    layers.push(Layer::fc(2048, 1008, Nonlinearity::Relu));
    NnModel::new(
        "CNN1",
        NnKind::Cnn,
        layers,
        32,
        224 * 224 * 3,
        Precision::Int8,
    )
}

/// All six workloads in Table 1 order.
pub fn all() -> Vec<NnModel> {
    vec![mlp0(), mlp1(), lstm0(), lstm1(), cnn0(), cnn1()]
}

/// The datacenter deployment mix of July 2016 (Table 1's last column:
/// MLPs 61%, LSTMs 29%, CNNs 5%, split evenly within each type and
/// normalized to sum to 1), used for the paper's weighted means.
pub fn workload_mix() -> Vec<(&'static str, f64)> {
    let raw = [
        ("MLP0", 0.305),
        ("MLP1", 0.305),
        ("LSTM0", 0.145),
        ("LSTM1", 0.145),
        ("CNN0", 0.025),
        ("CNN1", 0.025),
    ];
    let total: f64 = raw.iter().map(|(_, w)| w).sum();
    raw.iter().map(|&(n, w)| (n, w / total)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Assert `got` is within `tol` relative error of `want`.
    fn close(got: f64, want: f64, tol: f64, what: &str) {
        let rel = (got - want).abs() / want;
        assert!(
            rel <= tol,
            "{what}: got {got}, want {want} (rel err {rel:.3})"
        );
    }

    #[test]
    fn mlp0_matches_table1() {
        let m = mlp0();
        assert_eq!(m.layer_counts(), (5, 0, 0, 0));
        close(m.total_weights() as f64, 20e6, 0.01, "MLP0 weights");
        close(m.ops_per_weight_byte(), 200.0, 0.01, "MLP0 intensity");
        assert_eq!(m.batch(), 200);
    }

    #[test]
    fn mlp1_matches_table1() {
        let m = mlp1();
        assert_eq!(m.layer_counts(), (4, 0, 0, 0));
        close(m.total_weights() as f64, 5e6, 0.02, "MLP1 weights");
        close(m.ops_per_weight_byte(), 168.0, 0.01, "MLP1 intensity");
        assert_eq!(m.batch(), 168);
    }

    #[test]
    fn lstm0_matches_table1() {
        let m = lstm0();
        let (fc, conv, vector, pool) = m.layer_counts();
        assert_eq!((fc, conv, pool), (24, 0, 0));
        assert_eq!(vector, 34);
        assert_eq!(m.total_layers(), 58);
        close(m.total_weights() as f64, 52e6, 0.02, "LSTM0 weights");
        close(m.ops_per_weight_byte(), 64.0, 0.01, "LSTM0 intensity");
        assert_eq!(m.precision(), Precision::Mixed8x16);
    }

    #[test]
    fn lstm1_matches_table1() {
        let m = lstm1();
        let (fc, conv, vector, pool) = m.layer_counts();
        assert_eq!((fc, conv, pool), (37, 0, 0));
        assert_eq!(vector, 19);
        assert_eq!(m.total_layers(), 56);
        close(m.total_weights() as f64, 34e6, 0.02, "LSTM1 weights");
        close(m.ops_per_weight_byte(), 96.0, 0.01, "LSTM1 intensity");
    }

    #[test]
    fn lstm1_contains_the_600_matrix() {
        // Section 7 explains fragmentation with LSTM1's 600x600 matrices.
        let m = lstm1();
        assert!(m
            .layers()
            .iter()
            .any(|l| l.matrix_shape() == Some((600, 600))));
    }

    #[test]
    fn cnn0_matches_table1() {
        let m = cnn0();
        assert_eq!(m.layer_counts(), (0, 16, 0, 0));
        close(m.total_weights() as f64, 8e6, 0.06, "CNN0 weights");
        close(m.ops_per_weight_byte(), 2888.0, 0.01, "CNN0 intensity");
        assert_eq!(m.batch(), 8);
    }

    #[test]
    fn cnn1_matches_table1() {
        let m = cnn1();
        let (fc, conv, vector, pool) = m.layer_counts();
        assert_eq!(fc, 4, "CNN1 FC layers");
        assert_eq!(conv, 72, "CNN1 conv layers");
        assert_eq!(pool, 13, "CNN1 pool layers");
        assert_eq!(vector, 0);
        assert_eq!(m.total_layers(), 89);
        close(m.total_weights() as f64, 100e6, 0.15, "CNN1 weights");
        // Intensity within 25% of the published 1750 (shape, not identity).
        close(m.ops_per_weight_byte(), 1750.0, 0.25, "CNN1 intensity");
        assert_eq!(m.batch(), 32);
    }

    #[test]
    fn mlps_and_lstms_are_memory_bound_cnns_compute_bound() {
        // The paper's central roofline observation, as a pure property of
        // the workloads: ridge point is ~1350 MAC/byte.
        for m in [mlp0(), mlp1(), lstm0(), lstm1()] {
            assert!(
                m.ops_per_weight_byte() < 1350.0,
                "{} should be memory bound",
                m.name()
            );
        }
        for m in [cnn0(), cnn1()] {
            assert!(
                m.ops_per_weight_byte() > 1000.0,
                "{} should be near/above ridge",
                m.name()
            );
        }
    }

    #[test]
    fn mix_sums_to_one_and_favours_mlps() {
        let mix = workload_mix();
        let total: f64 = mix.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-9);
        let mlp_share: f64 = mix
            .iter()
            .filter(|(n, _)| n.starts_with("MLP"))
            .map(|(_, w)| w)
            .sum();
        let cnn_share: f64 = mix
            .iter()
            .filter(|(n, _)| n.starts_with("CNN"))
            .map(|(_, w)| w)
            .sum();
        assert!(mlp_share > 0.6, "MLPs dominate the datacenter mix");
        assert!(cnn_share < 0.06, "CNNs are only ~5% of the mix");
    }

    #[test]
    fn all_returns_six_in_table_order() {
        let names: Vec<&str> = all()
            .iter()
            .map(|m| m.name().to_string().leak() as &str)
            .collect();
        assert_eq!(names, ["MLP0", "MLP1", "LSTM0", "LSTM1", "CNN0", "CNN1"]);
    }

    #[test]
    fn weights_fit_in_weight_memory() {
        // All six models (and even all six together) fit the 8 GiB Weight
        // Memory, as the paper says it "supports many simultaneously
        // active models".
        let total: u64 = all().iter().map(|m| m.total_weights()).sum();
        assert!(total < 8 * 1024 * 1024 * 1024);
    }
}
