//! Whole-network models and their Table 1 aggregate statistics.

use crate::layer::Layer;
use serde::{Deserialize, Serialize};
use tpu_core::config::Precision;

/// The three NN families of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NnKind {
    /// Multi-layer perceptron.
    Mlp,
    /// Long short-term memory recurrent network.
    Lstm,
    /// Convolutional network.
    Cnn,
}

impl NnKind {
    /// Display name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            NnKind::Mlp => "MLP",
            NnKind::Lstm => "LSTM",
            NnKind::Cnn => "CNN",
        }
    }
}

/// A complete inference model: an ordered list of layers plus the serving
/// batch size the paper's Table 1 assigns it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NnModel {
    name: String,
    kind: NnKind,
    layers: Vec<Layer>,
    batch: usize,
    input_width: usize,
    precision: Precision,
}

impl NnModel {
    /// Assemble a model.
    ///
    /// # Panics
    ///
    /// Panics if `layers` is empty or `batch` is zero.
    pub fn new(
        name: impl Into<String>,
        kind: NnKind,
        layers: Vec<Layer>,
        batch: usize,
        input_width: usize,
        precision: Precision,
    ) -> Self {
        assert!(!layers.is_empty(), "a model needs at least one layer");
        assert!(batch > 0, "batch must be positive");
        Self {
            name: name.into(),
            kind,
            layers,
            batch,
            input_width,
            precision,
        }
    }

    /// Model name (e.g. "MLP0").
    pub fn name(&self) -> &str {
        &self.name
    }

    /// NN family.
    pub fn kind(&self) -> NnKind {
        self.kind
    }

    /// Layers in execution order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Serving batch size (Table 1, "TPU Batch Size").
    pub fn batch(&self) -> usize {
        self.batch
    }

    /// Width of one input example in bytes/activations.
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Matrix-unit operand precision (the LSTMs run 16-bit activations at
    /// half speed; everything else is full-speed 8-bit).
    pub fn precision(&self) -> Precision {
        self.precision
    }

    /// Total 8-bit weights (Table 1, "Weights").
    pub fn total_weights(&self) -> u64 {
        self.layers.iter().map(Layer::weights).sum()
    }

    /// Multiply-accumulates for one example.
    pub fn macs_per_example(&self) -> u64 {
        self.layers.iter().map(Layer::macs_per_example).sum()
    }

    /// Operational intensity in MACs per byte of weights fetched, at the
    /// serving batch size (Table 1, "TPU Ops / Weight Byte"): weights are
    /// fetched once per batch, so intensity is `batch * macs_per_example /
    /// weight_bytes`.
    pub fn ops_per_weight_byte(&self) -> f64 {
        let w = self.total_weights();
        if w == 0 {
            return 0.0;
        }
        self.batch as f64 * self.macs_per_example() as f64 / w as f64
    }

    /// Count layers in each Table 1 category: `(fc, conv, vector, pool)`.
    pub fn layer_counts(&self) -> (usize, usize, usize, usize) {
        let mut fc = 0;
        let mut conv = 0;
        let mut vector = 0;
        let mut pool = 0;
        for l in &self.layers {
            match l {
                Layer::Fc(_) => fc += 1,
                Layer::Conv(_) => conv += 1,
                Layer::Vector(_) => vector += 1,
                Layer::Pool(_) => pool += 1,
            }
        }
        (fc, conv, vector, pool)
    }

    /// Total layer count.
    pub fn total_layers(&self) -> usize {
        self.layers.len()
    }

    /// Bytes of input DMA'd from the host per batch.
    pub fn input_bytes_per_batch(&self) -> u64 {
        (self.batch * self.input_width) as u64
    }

    /// Bytes of output DMA'd to the host per batch (width of the final
    /// layer).
    pub fn output_bytes_per_batch(&self) -> u64 {
        (self.batch * self.layers.last().map_or(0, Layer::output_width)) as u64
    }

    /// Derive a copy with a different batch size (Table 4 sweeps batch).
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(&self, batch: usize) -> Self {
        assert!(batch > 0, "batch must be positive");
        let mut m = self.clone();
        m.batch = batch;
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Nonlinearity;

    fn tiny_mlp() -> NnModel {
        NnModel::new(
            "tiny",
            NnKind::Mlp,
            vec![
                Layer::fc(100, 50, Nonlinearity::Relu),
                Layer::fc(50, 10, Nonlinearity::Relu),
            ],
            8,
            100,
            Precision::Int8,
        )
    }

    #[test]
    fn aggregates() {
        let m = tiny_mlp();
        assert_eq!(m.total_weights(), 100 * 50 + 50 * 10);
        assert_eq!(m.macs_per_example(), m.total_weights());
        assert_eq!(m.layer_counts(), (2, 0, 0, 0));
        assert_eq!(m.total_layers(), 2);
        assert_eq!(m.input_bytes_per_batch(), 800);
        assert_eq!(m.output_bytes_per_batch(), 80);
    }

    #[test]
    fn fc_intensity_equals_batch() {
        // For pure-FC models, MACs/example == weights, so intensity ==
        // batch — exactly the Table 1 pattern (MLP0: batch 200 -> 200).
        let m = tiny_mlp();
        assert!((m.ops_per_weight_byte() - 8.0).abs() < 1e-9);
        assert!((m.with_batch(200).ops_per_weight_byte() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn conv_intensity_scales_with_positions() {
        let m = NnModel::new(
            "c",
            NnKind::Cnn,
            vec![Layer::conv(8, 8, 3, 100, Nonlinearity::Relu)],
            2,
            64,
            Precision::Int8,
        );
        // intensity = batch * positions = 200.
        assert!((m.ops_per_weight_byte() - 200.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one layer")]
    fn empty_model_rejected() {
        let _ = NnModel::new("x", NnKind::Mlp, vec![], 1, 1, Precision::Int8);
    }

    #[test]
    #[should_panic(expected = "batch must be positive")]
    fn zero_batch_rejected() {
        let _ = tiny_mlp().with_batch(0);
    }

    #[test]
    fn kind_names() {
        assert_eq!(NnKind::Mlp.name(), "MLP");
        assert_eq!(NnKind::Lstm.name(), "LSTM");
        assert_eq!(NnKind::Cnn.name(), "CNN");
    }
}
