//! Activation-range calibration for quantization.
//!
//! Section 1 of the paper: "A step called quantization transforms
//! floating-point numbers into narrow integers — often just 8 bits — which
//! are usually good enough for inference." The step the paper takes for
//! granted is *choosing the ranges*: a production pipeline runs
//! representative batches in float, observes each layer's activation
//! distribution, and picks clipping thresholds that trade saturation error
//! against resolution.
//!
//! [`Calibrator`] accumulates activations into a streaming magnitude
//! histogram (range doubles as needed, so one pass suffices) and derives
//! [`QuantParams`] under four policies:
//!
//! * [`CalibrationMethod::MinMax`] — cover the full observed range; the
//!   baseline that [`crate::quant::choose_activation_params`] applies.
//! * [`CalibrationMethod::Percentile`] — clip at a magnitude percentile,
//!   shrugging off rare outliers.
//! * [`CalibrationMethod::Mse`] — pick the clip threshold minimizing the
//!   expected squared quantization error over the histogram.
//! * [`CalibrationMethod::Entropy`] — pick the threshold minimizing the
//!   KL divergence between the original and quantized distributions
//!   (the TensorRT-style calibration).
//!
//! For well-behaved distributions all four agree closely; for heavy-tailed
//! activations (common in practice) the clipping methods preserve far more
//! resolution — see `percentile_beats_minmax_on_heavy_tails` in the tests.

use crate::tensor::Matrix;
use tpu_core::act::QuantParams;

/// Policy for deriving quantization parameters from observed activations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationMethod {
    /// Cover the full observed range.
    MinMax,
    /// Clip at this magnitude percentile in `(0, 100]`, e.g. `99.99`.
    Percentile(f64),
    /// Minimize expected squared quantization error.
    Mse,
    /// Minimize KL divergence between original and quantized
    /// distributions.
    Entropy,
}

/// Number of histogram bins. Power of two so range doubling merges bins
/// exactly 2:1.
const BINS: usize = 2048;

/// Streaming magnitude histogram with automatic range growth.
///
/// Values are recorded by absolute magnitude into 2048 equal-width
/// bins over `[0, limit)`. When a value at or beyond `limit` arrives, the
/// limit doubles and adjacent bins merge pairwise, preserving all counts
/// in one pass over the data.
#[derive(Debug, Clone, PartialEq)]
pub struct MagnitudeHistogram {
    counts: Vec<u64>,
    limit: f32,
    total: u64,
    saw_negative: bool,
    max_abs: f32,
}

impl MagnitudeHistogram {
    /// An empty histogram with an initial magnitude limit of 1.0.
    pub fn new() -> Self {
        MagnitudeHistogram {
            counts: vec![0; BINS],
            limit: 1.0,
            total: 0,
            saw_negative: false,
            max_abs: 0.0,
        }
    }

    /// Record one value (by magnitude; the sign only marks the histogram
    /// as two-sided). Non-finite values are ignored.
    pub fn record(&mut self, v: f32) {
        if !v.is_finite() {
            return;
        }
        if v < 0.0 {
            self.saw_negative = true;
        }
        let mag = v.abs();
        self.max_abs = self.max_abs.max(mag);
        while mag >= self.limit {
            self.double_range();
        }
        let bin = ((mag / self.limit) * BINS as f32) as usize;
        self.counts[bin.min(BINS - 1)] += 1;
        self.total += 1;
    }

    fn double_range(&mut self) {
        for i in 0..BINS / 2 {
            self.counts[i] = self.counts[2 * i] + self.counts[2 * i + 1];
        }
        for c in &mut self.counts[BINS / 2..] {
            *c = 0;
        }
        self.limit *= 2.0;
    }

    /// Number of recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Largest magnitude recorded.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Whether any negative value was recorded.
    pub fn saw_negative(&self) -> bool {
        self.saw_negative
    }

    /// Upper edge of bin `i`.
    fn bin_edge(&self, i: usize) -> f32 {
        self.limit * (i + 1) as f32 / BINS as f32
    }

    /// Center of bin `i`.
    fn bin_center(&self, i: usize) -> f32 {
        self.limit * (i as f32 + 0.5) / BINS as f32
    }

    /// Magnitude below which `pct` percent of values fall.
    ///
    /// # Panics
    ///
    /// Panics if the histogram is empty or `pct` is outside `(0, 100]`.
    pub fn percentile(&self, pct: f64) -> f32 {
        assert!(self.total > 0, "histogram is empty");
        assert!(pct > 0.0 && pct <= 100.0, "percentile must be in (0, 100]");
        let target = (self.total as f64 * pct / 100.0).ceil() as u64;
        let mut cum = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            cum += c;
            if cum >= target {
                return self.bin_edge(i);
            }
        }
        self.bin_edge(BINS - 1)
    }

    /// Merge another histogram into this one (e.g. from a parallel
    /// calibration shard).
    pub fn merge(&mut self, other: &MagnitudeHistogram) {
        // Equalize limits by doubling whichever is smaller.
        let mut other = other.clone();
        while self.limit < other.limit {
            self.double_range();
        }
        while other.limit < self.limit {
            other.double_range();
        }
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.saw_negative |= other.saw_negative;
        self.max_abs = self.max_abs.max(other.max_abs);
    }
}

impl Default for MagnitudeHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Accumulates activation observations and derives quantization
/// parameters.
///
/// # Examples
///
/// ```
/// use tpu_nn::calibrate::{CalibrationMethod, Calibrator};
/// use tpu_nn::tensor::Matrix;
///
/// let mut cal = Calibrator::new();
/// cal.observe(&Matrix::from_rows(1, 4, vec![0.1, -0.5, 2.0, 0.3]));
/// let params = cal.params(CalibrationMethod::MinMax);
/// // The full range [-2, 2] is representable.
/// assert!((params.dequantize(params.quantize(2.0)) - 2.0).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Calibrator {
    hist: MagnitudeHistogram,
}

impl Calibrator {
    /// An empty calibrator.
    pub fn new() -> Self {
        Calibrator {
            hist: MagnitudeHistogram::new(),
        }
    }

    /// Record every element of a matrix of activations.
    pub fn observe(&mut self, m: &Matrix) {
        for &v in m.data() {
            self.hist.record(v);
        }
    }

    /// Record a slice of values.
    pub fn observe_slice(&mut self, values: &[f32]) {
        for &v in values {
            self.hist.record(v);
        }
    }

    /// Number of values observed so far.
    pub fn observations(&self) -> u64 {
        self.hist.total()
    }

    /// Access the underlying histogram.
    pub fn histogram(&self) -> &MagnitudeHistogram {
        &self.hist
    }

    /// Merge observations from another calibrator.
    pub fn merge(&mut self, other: &Calibrator) {
        self.hist.merge(&other.hist);
    }

    /// Derive quantization parameters under `method`.
    ///
    /// The derived range is `[-T, T]` if any negative value was observed
    /// and `[0, T]` otherwise (post-ReLU tensors get the full 256 codes on
    /// the positive side).
    ///
    /// # Panics
    ///
    /// Panics if nothing has been observed, or for
    /// [`CalibrationMethod::Percentile`] with a percentile outside
    /// `(0, 100]`.
    pub fn params(&self, method: CalibrationMethod) -> QuantParams {
        assert!(self.hist.total() > 0, "calibrator has no observations");
        let threshold = match method {
            CalibrationMethod::MinMax => self.hist.max_abs(),
            CalibrationMethod::Percentile(p) => self.hist.percentile(p),
            CalibrationMethod::Mse => self.mse_threshold(),
            CalibrationMethod::Entropy => self.entropy_threshold(),
        };
        // Guard degenerate all-zero observations.
        let threshold = if threshold > 0.0 { threshold } else { 1.0 };
        if self.hist.saw_negative() {
            QuantParams::from_range(-threshold, threshold)
        } else {
            QuantParams::from_range(0.0, threshold)
        }
    }

    /// Threshold minimizing expected squared error, scanned over bin
    /// edges.
    fn mse_threshold(&self) -> f32 {
        let hist = &self.hist;
        let levels: f32 = if hist.saw_negative() { 127.5 } else { 255.0 };
        let mut best_t = hist.max_abs().max(f32::MIN_POSITIVE);
        let mut best_err = f64::INFINITY;
        // Candidate thresholds: 64 evenly spaced bin edges covering the
        // occupied range.
        let occupied = ((hist.max_abs() / hist.limit) * BINS as f32).ceil() as usize;
        let occupied = occupied.clamp(1, BINS);
        let step = (occupied / 64).max(1);
        for edge in (step..=occupied).step_by(step) {
            let t = hist.bin_edge(edge - 1);
            let scale = t / levels;
            let mut err = 0.0f64;
            for (i, &c) in hist.counts.iter().enumerate().take(occupied) {
                if c == 0 {
                    continue;
                }
                let center = hist.bin_center(i);
                let e = if center > t {
                    // Clipped: error is the overshoot.
                    (center - t) as f64
                } else {
                    // In range: expected rounding error ~ scale / sqrt(12).
                    scale as f64 / 12f64.sqrt()
                };
                err += c as f64 * e * e;
            }
            if err < best_err {
                best_err = err;
                best_t = t;
            }
        }
        best_t
    }

    /// Threshold minimizing KL divergence between the reference
    /// distribution and its 256-level quantized reconstruction.
    fn entropy_threshold(&self) -> f32 {
        let hist = &self.hist;
        let occupied = ((hist.max_abs() / hist.limit) * BINS as f32).ceil() as usize;
        let occupied = occupied.clamp(1, BINS);
        let quant_levels = 256usize;
        if occupied <= quant_levels {
            return hist.max_abs();
        }
        let mut best_t = hist.max_abs();
        let mut best_kl = f64::INFINITY;
        let step = ((occupied - quant_levels) / 48).max(1);
        for edge in (quant_levels..=occupied).step_by(step) {
            let kl = self.kl_for_threshold(edge, quant_levels);
            if kl < best_kl {
                best_kl = kl;
                best_t = hist.bin_edge(edge - 1);
            }
        }
        best_t
    }

    /// KL(P || Q) where P is the *full* observed distribution and Q is
    /// its reconstruction after clipping at `edge` bins and quantizing to
    /// `quant_levels` codes.
    ///
    /// Two distortions compete: a small `edge` reconstructs the clipped
    /// tail at the threshold (bins past `edge` get only a smoothing
    /// epsilon, so tail mass pays `p * ln(p / eps)`), while a large
    /// `edge` spreads each quantization bucket over many bins. The
    /// minimizing threshold balances them.
    fn kl_for_threshold(&self, edge: usize, quant_levels: usize) -> f64 {
        let occupied = ((self.hist.max_abs() / self.hist.limit) * BINS as f32).ceil() as usize;
        let occupied = occupied.clamp(edge, BINS);
        let counts = &self.hist.counts[..occupied];
        let p: Vec<f64> = counts.iter().map(|&c| c as f64).collect();

        // Quantized reconstruction over [0, edge): merge into
        // quant_levels buckets, spread each bucket back uniformly over
        // its nonzero source bins.
        let mut q = vec![0.0f64; occupied];
        for level in 0..quant_levels {
            let lo = level * edge / quant_levels;
            let hi = ((level + 1) * edge / quant_levels).max(lo + 1).min(edge);
            let mass: f64 = p[lo..hi].iter().sum();
            let nonzero = p[lo..hi].iter().filter(|&&x| x > 0.0).count();
            if nonzero > 0 {
                let share = mass / nonzero as f64;
                for (i, &pv) in p[lo..hi].iter().enumerate() {
                    if pv > 0.0 {
                        q[lo + i] = share;
                    }
                }
            }
        }
        // Clipped values saturate to the top code: their mass is
        // reconstructed at the threshold bin, not where they lived.
        let clipped: f64 = p[edge..].iter().sum();
        q[edge - 1] += clipped;

        let p_sum: f64 = p.iter().sum();
        if p_sum == 0.0 {
            return f64::INFINITY;
        }
        // Epsilon-smooth Q so clipped-tail bins carry a finite penalty.
        let eps = 1e-12;
        let q_sum: f64 = q.iter().sum::<f64>() + eps * occupied as f64;
        let mut kl = 0.0;
        for (&pv, &qv) in p.iter().zip(&q) {
            if pv > 0.0 {
                let pn = pv / p_sum;
                let qn = (qv + eps) / q_sum;
                kl += pn * (pn / qn).ln();
            }
        }
        kl
    }
}

/// Mean squared quantization error of `values` under `params` — the
/// figure of merit calibration minimizes.
pub fn quantization_mse(values: &Matrix, params: QuantParams) -> f64 {
    let n = values.data().len();
    if n == 0 {
        return 0.0;
    }
    let sum: f64 = values
        .data()
        .iter()
        .map(|&v| {
            let e = (params.dequantize(params.quantize(v)) - v) as f64;
            e * e
        })
        .sum();
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn gaussian_like(n: usize, seed: u64) -> Matrix {
        // Sum of uniforms: light-tailed, symmetric.
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_rows(
            1,
            n,
            (0..n)
                .map(|_| {
                    let s: f32 = (0..12).map(|_| rng.gen_range(-0.5f32..0.5)).sum();
                    s
                })
                .collect(),
        )
    }

    fn heavy_tailed(n: usize, seed: u64) -> Matrix {
        // Mostly small values, 0.1% enormous outliers.
        let mut rng = StdRng::seed_from_u64(seed);
        Matrix::from_rows(
            1,
            n,
            (0..n)
                .map(|i| {
                    if i % 1000 == 0 {
                        rng.gen_range(50.0f32..100.0)
                    } else {
                        rng.gen_range(-1.0f32..1.0)
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn minmax_covers_observed_range() {
        let m = Matrix::from_rows(1, 4, vec![-3.0, 0.5, 1.0, 2.5]);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let p = cal.params(CalibrationMethod::MinMax);
        for &v in m.data() {
            let err = (p.dequantize(p.quantize(v)) - v).abs();
            assert!(err <= p.scale, "value {v} error {err} vs scale {}", p.scale);
        }
    }

    #[test]
    fn nonnegative_data_gets_one_sided_range() {
        let mut cal = Calibrator::new();
        cal.observe_slice(&[0.0, 1.0, 2.0, 3.0]);
        let p = cal.params(CalibrationMethod::MinMax);
        assert_eq!(
            p.zero_point, 0,
            "post-ReLU tensors use all codes for positives"
        );
    }

    #[test]
    fn signed_data_gets_symmetric_range() {
        let mut cal = Calibrator::new();
        cal.observe_slice(&[-2.0, 1.0]);
        let p = cal.params(CalibrationMethod::MinMax);
        // Zero point near the middle of the code space.
        assert!(
            (p.zero_point as i32 - 128).abs() <= 1,
            "zero point {}",
            p.zero_point
        );
    }

    #[test]
    fn percentile_ignores_rare_outliers() {
        let m = heavy_tailed(100_000, 7);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let t_minmax = cal.histogram().max_abs();
        let t_p999 = cal.histogram().percentile(99.9);
        assert!(t_minmax > 50.0);
        assert!(t_p999 < 2.0, "99.9th percentile threshold {t_p999}");
    }

    #[test]
    fn percentile_preserves_resolution_on_the_bulk() {
        // Min-max stretches the 256 codes over the outliers, leaving the
        // 99.9% of ordinary activations with ~0.4 resolution; percentile
        // calibration keeps them at ~0.008. (Total MSE can still favor
        // min-max because clipped outliers pay (v - T)^2 — the clipping
        // win is resolution where the information lives, which is why
        // accuracy, not raw MSE, is the usual figure of merit.)
        let m = heavy_tailed(100_000, 11);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let inliers = Matrix::from_rows(
            1,
            m.data().iter().filter(|v| v.abs() <= 1.0).count(),
            m.data()
                .iter()
                .copied()
                .filter(|v| v.abs() <= 1.0)
                .collect(),
        );
        let bulk_minmax = quantization_mse(&inliers, cal.params(CalibrationMethod::MinMax));
        let bulk_pct = quantization_mse(&inliers, cal.params(CalibrationMethod::Percentile(99.9)));
        assert!(
            bulk_pct < bulk_minmax / 100.0,
            "bulk MSE: percentile {bulk_pct} vs min-max {bulk_minmax}"
        );
    }

    #[test]
    fn mse_method_never_loses_badly_to_minmax() {
        for (name, m) in [
            ("gaussian", gaussian_like(50_000, 3)),
            ("heavy", heavy_tailed(50_000, 5)),
        ] {
            let mut cal = Calibrator::new();
            cal.observe(&m);
            let mse_minmax = quantization_mse(&m, cal.params(CalibrationMethod::MinMax));
            let mse_opt = quantization_mse(&m, cal.params(CalibrationMethod::Mse));
            assert!(
                mse_opt <= mse_minmax * 1.05,
                "{name}: MSE-calibrated {mse_opt} vs min-max {mse_minmax}"
            );
        }
    }

    #[test]
    fn mse_method_clips_when_outliers_are_rare_enough() {
        // Clipping lowers *total* MSE only when outlier frequency f
        // satisfies f * (v - T)^2 < scale^2 / 12 — roughly f < 5e-6 for
        // outliers at the full range. Two outliers in a million qualify.
        // The inliers span [-10, 10] so that under min-max they cover
        // several quantization steps and pay the full rounding error.
        let mut rng = StdRng::seed_from_u64(13);
        let mut data: Vec<f32> = (0..1_000_000)
            .map(|_| rng.gen_range(-10.0f32..10.0))
            .collect();
        data[1_234] = 500.0;
        data[987_654] = -480.0;
        let m = Matrix::from_rows(1, data.len(), data);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let minmax = quantization_mse(&m, cal.params(CalibrationMethod::MinMax));
        let opt = quantization_mse(&m, cal.params(CalibrationMethod::Mse));
        assert!(
            opt < minmax / 2.0,
            "MSE calibration {opt} vs min-max {minmax}"
        );
    }

    #[test]
    fn entropy_method_produces_valid_params_and_never_exceeds_minmax() {
        // Entropy calibration weighs the KL cost of reconstructing the
        // clipped tail at the threshold against the resolution gained on
        // the bulk. With a *uniform* bulk the resolution gain in KL terms
        // is small, so the chosen threshold may sit anywhere up to the
        // maximum — but never beyond it, and the bulk never loses
        // resolution relative to min-max.
        let m = heavy_tailed(100_000, 17);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let p = cal.params(CalibrationMethod::Entropy);
        assert!(p.scale > 0.0 && p.scale.is_finite());
        let threshold = p.scale * 127.5; // symmetric range [-T, T]
        let max = cal.histogram().max_abs();
        assert!(
            threshold <= max * 1.01,
            "threshold {threshold} beyond max {max}"
        );
        let inliers = Matrix::from_rows(
            1,
            m.data().iter().filter(|v| v.abs() <= 1.0).count(),
            m.data()
                .iter()
                .copied()
                .filter(|v| v.abs() <= 1.0)
                .collect(),
        );
        let bulk_minmax = quantization_mse(&inliers, cal.params(CalibrationMethod::MinMax));
        let bulk_entropy = quantization_mse(&inliers, p);
        assert!(
            bulk_entropy <= bulk_minmax * 1.01,
            "entropy bulk MSE {bulk_entropy} vs min-max {bulk_minmax}"
        );
    }

    #[test]
    fn methods_agree_on_well_behaved_data() {
        let m = gaussian_like(50_000, 23);
        let mut cal = Calibrator::new();
        cal.observe(&m);
        let t_minmax = cal.histogram().max_abs();
        let t_pct = cal.histogram().percentile(99.99);
        // On light-tailed data the 99.99th percentile is close to the max.
        assert!(t_pct > 0.5 * t_minmax, "{t_pct} vs {t_minmax}");
        // And entropy calibration must not clip into the body of the
        // distribution: its threshold stays above the 99th percentile.
        let p = cal.params(CalibrationMethod::Entropy);
        let t_entropy = p.scale * 127.5;
        let t_p99 = cal.histogram().percentile(99.0);
        assert!(
            t_entropy >= t_p99,
            "entropy threshold {t_entropy} clipped into the bulk (p99 {t_p99})"
        );
        // Total quantization error stays within a small factor of min-max.
        let mse_minmax = quantization_mse(&m, cal.params(CalibrationMethod::MinMax));
        let mse_entropy = quantization_mse(&m, p);
        assert!(
            mse_entropy < mse_minmax * 10.0,
            "entropy MSE {mse_entropy} vs min-max {mse_minmax}"
        );
    }

    #[test]
    fn histogram_range_growth_preserves_counts() {
        let mut h = MagnitudeHistogram::new();
        for i in 0..1000 {
            h.record(i as f32 * 0.01); // up to 10.0: forces several doublings
        }
        assert_eq!(h.total(), 1000);
        assert!(h.limit >= 10.0);
        assert_eq!(h.counts.iter().sum::<u64>(), 1000);
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = MagnitudeHistogram::new();
        h.record(f32::NAN);
        h.record(f32::INFINITY);
        h.record(f32::NEG_INFINITY);
        h.record(1.0);
        assert_eq!(h.total(), 1);
    }

    #[test]
    fn merged_histogram_equals_sequential_observation() {
        let a_vals = gaussian_like(10_000, 31);
        let b_vals = heavy_tailed(10_000, 37);
        let mut together = Calibrator::new();
        together.observe(&a_vals);
        together.observe(&b_vals);
        let mut sharded_a = Calibrator::new();
        sharded_a.observe(&a_vals);
        let mut sharded_b = Calibrator::new();
        sharded_b.observe(&b_vals);
        sharded_a.merge(&sharded_b);
        assert_eq!(sharded_a.observations(), together.observations());
        assert_eq!(
            sharded_a.histogram().max_abs(),
            together.histogram().max_abs()
        );
        // Thresholds agree (histograms may differ only by merge-order
        // bin-boundary effects, which equal limits rule out here).
        let p_together = together.histogram().percentile(99.0);
        let p_sharded = sharded_a.histogram().percentile(99.0);
        assert!(
            (p_together - p_sharded).abs() / p_together < 0.02,
            "{p_together} vs {p_sharded}"
        );
    }

    #[test]
    fn all_zero_observations_yield_valid_params() {
        let mut cal = Calibrator::new();
        cal.observe_slice(&[0.0; 16]);
        let p = cal.params(CalibrationMethod::MinMax);
        assert!(p.scale > 0.0);
        assert_eq!(p.quantize(0.0), p.zero_point);
    }

    #[test]
    #[should_panic(expected = "no observations")]
    fn empty_calibrator_panics() {
        let _ = Calibrator::new().params(CalibrationMethod::MinMax);
    }

    #[test]
    #[should_panic(expected = "percentile must be in (0, 100]")]
    fn bad_percentile_panics() {
        let mut cal = Calibrator::new();
        cal.observe_slice(&[1.0]);
        let _ = cal.params(CalibrationMethod::Percentile(0.0));
    }

    #[test]
    fn quantization_mse_is_zero_for_exactly_representable() {
        let p = QuantParams::new(0.5, 10);
        let m = Matrix::from_rows(1, 3, vec![0.0, 0.5, -1.0]);
        assert!(quantization_mse(&m, p) < 1e-12);
    }
}
