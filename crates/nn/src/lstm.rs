//! LSTM cell mathematics.
//!
//! "The art of the LSTM is in deciding what to forget and what to pass on
//! as state to the next layer" (Section 1). A cell holds four gate weight
//! matrices; each timestep computes
//!
//! ```text
//! i = sigmoid([x, h] Wi)      input gate
//! f = sigmoid([x, h] Wf)      forget gate
//! g = tanh   ([x, h] Wg)      candidate state
//! o = sigmoid([x, h] Wo)      output gate
//! c' = f * c + i * g
//! h' = o * tanh(c')
//! ```
//!
//! On the TPU the four gate products are matrix-unit work (Table 1's FC
//! layers) and the elementwise combinations are Vector layers on the
//! activation datapath. Weights are reused across time steps, which is why
//! the LSTMs' operational intensity equals their batch size.

use crate::tensor::Matrix;

fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// The four gate weight matrices of one LSTM cell, each
/// `(inputs + hidden) x hidden`.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmCell {
    /// Input width.
    inputs: usize,
    /// Hidden/state width.
    hidden: usize,
    /// Input gate weights.
    wi: Matrix,
    /// Forget gate weights.
    wf: Matrix,
    /// Candidate weights.
    wg: Matrix,
    /// Output gate weights.
    wo: Matrix,
}

/// Hidden and cell state carried between timesteps, one row per batch
/// element.
#[derive(Debug, Clone, PartialEq)]
pub struct LstmState {
    /// Hidden state `h`, `batch x hidden`.
    pub h: Matrix,
    /// Cell state `c`, `batch x hidden`.
    pub c: Matrix,
}

impl LstmState {
    /// Zero state for a batch.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        Self {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

impl LstmCell {
    /// Create a cell from four gate matrices.
    ///
    /// # Panics
    ///
    /// Panics if any gate matrix is not `(inputs + hidden) x hidden`.
    pub fn new(
        inputs: usize,
        hidden: usize,
        wi: Matrix,
        wf: Matrix,
        wg: Matrix,
        wo: Matrix,
    ) -> Self {
        for (name, w) in [("wi", &wi), ("wf", &wf), ("wg", &wg), ("wo", &wo)] {
            assert_eq!(
                w.shape(),
                (inputs + hidden, hidden),
                "{name} must be (inputs+hidden) x hidden"
            );
        }
        Self {
            inputs,
            hidden,
            wi,
            wf,
            wg,
            wo,
        }
    }

    /// Random cell for testing, weights in `[-scale, scale]`.
    pub fn random(inputs: usize, hidden: usize, scale: f32, rng: &mut impl rand::Rng) -> Self {
        let mut gen = || {
            Matrix::from_fn(inputs + hidden, hidden, |_, _| {
                rng.gen_range(-scale..=scale)
            })
        };
        let wi = gen();
        let wf = gen();
        let wg = gen();
        let wo = gen();
        Self::new(inputs, hidden, wi, wf, wg, wo)
    }

    /// Input width.
    pub fn inputs(&self) -> usize {
        self.inputs
    }

    /// Hidden width.
    pub fn hidden(&self) -> usize {
        self.hidden
    }

    /// Total weights (4 gate matrices).
    pub fn weights(&self) -> u64 {
        4 * ((self.inputs + self.hidden) * self.hidden) as u64
    }

    /// Advance one timestep: consume `x` (`batch x inputs`) and the
    /// previous state, produce the next state.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn step(&self, x: &Matrix, state: &LstmState) -> LstmState {
        let batch = x.rows();
        assert_eq!(x.cols(), self.inputs, "input width mismatch");
        assert_eq!(
            state.h.shape(),
            (batch, self.hidden),
            "hidden state mismatch"
        );

        // Concatenate [x, h] once.
        let xh = Matrix::from_fn(batch, self.inputs + self.hidden, |r, c| {
            if c < self.inputs {
                x.get(r, c)
            } else {
                state.h.get(r, c - self.inputs)
            }
        });

        let i = xh.matmul(&self.wi).map(sigmoid);
        let f = xh.matmul(&self.wf).map(sigmoid);
        let g = xh.matmul(&self.wg).map(|v| v.tanh());
        let o = xh.matmul(&self.wo).map(sigmoid);

        let c = f
            .zip(&state.c, |f, c| f * c)
            .zip(&i.zip(&g, |i, g| i * g), |a, b| a + b);
        let h = o.zip(&c.map(|v| v.tanh()), |o, t| o * t);
        LstmState { h, c }
    }

    /// Run a sequence of `steps` identical-shape inputs, returning the
    /// final state (weights are reused across time steps).
    pub fn run_sequence(&self, xs: &[Matrix], init: LstmState) -> LstmState {
        xs.iter().fold(init, |state, x| self.step(x, &state))
    }
}

/// An LSTM cell quantized the way the TPU executes it: i8 gate weights,
/// u8 activations through the matrix unit's integer path, and sigmoid/
/// tanh through the Activation Unit's 256-entry lookup tables. Cell and
/// hidden state are carried at higher precision between steps (the TPU
/// runs LSTM activations in 16-bit, Section 2's half-speed mode).
#[derive(Debug, Clone)]
pub struct QuantizedLstmCell {
    inputs: usize,
    hidden: usize,
    qwi: crate::quant::QuantizedWeights,
    qwf: crate::quant::QuantizedWeights,
    qwg: crate::quant::QuantizedWeights,
    qwo: crate::quant::QuantizedWeights,
}

impl QuantizedLstmCell {
    /// Quantize a float cell's four gate matrices.
    pub fn quantize(cell: &LstmCell) -> Self {
        Self {
            inputs: cell.inputs,
            hidden: cell.hidden,
            qwi: crate::quant::QuantizedWeights::quantize(&cell.wi),
            qwf: crate::quant::QuantizedWeights::quantize(&cell.wf),
            qwg: crate::quant::QuantizedWeights::quantize(&cell.wg),
            qwo: crate::quant::QuantizedWeights::quantize(&cell.wo),
        }
    }

    /// One timestep on the quantized path. `x` is `batch x inputs` in
    /// f32; activations are quantized at the step boundary exactly as the
    /// User Space Driver reformats data for the device.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatches.
    pub fn step(&self, x: &Matrix, state: &LstmState) -> LstmState {
        use crate::quant::{choose_activation_params, quantized_matmul, QuantizedActivations};
        use tpu_core::act::{Lut256, QuantParams};

        let batch = x.rows();
        assert_eq!(x.cols(), self.inputs, "input width mismatch");
        assert_eq!(
            state.h.shape(),
            (batch, self.hidden),
            "hidden state mismatch"
        );

        let xh = Matrix::from_fn(batch, self.inputs + self.hidden, |r, c| {
            if c < self.inputs {
                x.get(r, c)
            } else {
                state.h.get(r, c - self.inputs)
            }
        });
        let in_q = choose_activation_params(&xh);
        let qa = QuantizedActivations::quantize(&xh, in_q);

        // Hardware LUTs for the gate nonlinearities.
        let sig_out = QuantParams::from_range(0.0, 1.0);
        let tanh_out = QuantParams::from_range(-1.0, 1.0);
        let sigmoid_lut = Lut256::build(|v| 1.0 / (1.0 + (-v).exp()), sig_out);
        let tanh_lut = Lut256::build(f32::tanh, tanh_out);

        let gate =
            |w: &crate::quant::QuantizedWeights, lut: &Lut256, out_q: QuantParams| -> Matrix {
                let acc = quantized_matmul(&qa, w);
                let scale = in_q.scale * w.scale();
                Matrix::from_rows(
                    batch,
                    self.hidden,
                    acc.iter()
                        .map(|&v| out_q.dequantize(lut.lookup(v as f32 * scale)))
                        .collect(),
                )
            };

        let i = gate(&self.qwi, &sigmoid_lut, sig_out);
        let f = gate(&self.qwf, &sigmoid_lut, sig_out);
        let g = gate(&self.qwg, &tanh_lut, tanh_out);
        let o = gate(&self.qwo, &sigmoid_lut, sig_out);

        // Elementwise combinations on the (16-bit) vector datapath; the
        // state stays at higher precision between steps.
        let c = f
            .zip(&state.c, |f, c| f * c)
            .zip(&i.zip(&g, |i, g| i * g), |a, b| a + b);
        let h = o.zip(&c.map(|v| v.tanh()), |o, t| o * t);
        LstmState { h, c }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn zero_weights_give_zero_ish_state() {
        let z = Matrix::zeros(3, 2);
        let cell = LstmCell::new(1, 2, z.clone(), z.clone(), z.clone(), z.clone());
        let state = cell.step(&Matrix::zeros(4, 1), &LstmState::zeros(4, 2));
        // gates = sigmoid(0) = 0.5, g = tanh(0) = 0 -> c = 0, h = 0.
        assert_eq!(state.c, Matrix::zeros(4, 2));
        assert_eq!(state.h, Matrix::zeros(4, 2));
    }

    #[test]
    fn forget_gate_decays_cell_state() {
        // Strong negative forget weights -> f ~ 0 -> old cell state gone.
        let neg = Matrix::from_fn(2, 1, |_, _| -100.0);
        let zero = Matrix::zeros(2, 1);
        let cell = LstmCell::new(1, 1, zero.clone(), neg, zero.clone(), zero.clone());
        let mut state = LstmState::zeros(1, 1);
        state.c.set(0, 0, 5.0);
        let next = cell.step(&Matrix::from_rows(1, 1, vec![1.0]), &state);
        assert!(next.c.get(0, 0).abs() < 1e-3, "c' = {}", next.c.get(0, 0));
    }

    #[test]
    fn state_is_bounded_by_gates() {
        let mut r = rng();
        let cell = LstmCell::random(4, 8, 0.5, &mut r);
        let mut state = LstmState::zeros(2, 8);
        for _ in 0..20 {
            let x = Matrix::from_fn(2, 4, |_, _| 1.0);
            state = cell.step(&x, &state);
        }
        // h = o * tanh(c) is always in (-1, 1).
        for &v in state.h.data() {
            assert!(v.abs() < 1.0, "h unbounded: {v}");
        }
        // c accumulates but the forget gate < 1 keeps it finite; generous
        // bound to catch blow-ups.
        for &v in state.c.data() {
            assert!(v.abs() < 50.0, "c blew up: {v}");
        }
    }

    #[test]
    fn sequence_matches_manual_steps() {
        let mut r = rng();
        let cell = LstmCell::random(3, 4, 0.3, &mut r);
        let xs: Vec<Matrix> = (0..3)
            .map(|i| Matrix::from_fn(2, 3, |r_, c| (i + r_ + c) as f32 * 0.1))
            .collect();
        let manual = {
            let mut s = LstmState::zeros(2, 4);
            for x in &xs {
                s = cell.step(x, &s);
            }
            s
        };
        let seq = cell.run_sequence(&xs, LstmState::zeros(2, 4));
        assert_eq!(manual, seq);
    }

    #[test]
    fn weight_count() {
        let mut r = rng();
        let cell = LstmCell::random(10, 20, 0.1, &mut r);
        assert_eq!(cell.weights(), 4 * 30 * 20);
        assert_eq!(cell.inputs(), 10);
        assert_eq!(cell.hidden(), 20);
    }

    #[test]
    #[should_panic(expected = "input width mismatch")]
    fn shape_mismatch_panics() {
        let mut r = rng();
        let cell = LstmCell::random(3, 4, 0.3, &mut r);
        let _ = cell.step(&Matrix::zeros(1, 5), &LstmState::zeros(1, 4));
    }

    #[test]
    fn quantized_cell_tracks_float_cell_one_step() {
        let mut r = rng();
        let cell = LstmCell::random(6, 10, 0.3, &mut r);
        let q = QuantizedLstmCell::quantize(&cell);
        let x = Matrix::from_fn(3, 6, |row, col| ((row * 5 + col) % 7) as f32 * 0.15 - 0.4);
        let state = LstmState::zeros(3, 10);
        let want = cell.step(&x, &state);
        let got = q.step(&x, &state);
        let h_err = want.h.max_abs_diff(&got.h);
        let c_err = want.c.max_abs_diff(&got.c);
        // LUT resolution (~1/256 of the gate range) times a few gates.
        assert!(h_err < 0.06, "hidden state error {h_err}");
        assert!(c_err < 0.06, "cell state error {c_err}");
    }

    #[test]
    fn quantized_cell_error_stays_bounded_over_a_sequence() {
        // Quantization error must not compound catastrophically across
        // timesteps: the gates' saturating nonlinearities keep it in
        // check, which is why 8-bit inference works at all.
        let mut r = rng();
        let cell = LstmCell::random(4, 8, 0.3, &mut r);
        let q = QuantizedLstmCell::quantize(&cell);
        let mut fs = LstmState::zeros(2, 8);
        let mut qs = LstmState::zeros(2, 8);
        for t in 0..12 {
            let x = Matrix::from_fn(2, 4, |row, col| {
                ((t + row * 3 + col) % 9) as f32 * 0.1 - 0.35
            });
            fs = cell.step(&x, &fs);
            qs = q.step(&x, &qs);
        }
        let h_err = fs.h.max_abs_diff(&qs.h);
        assert!(h_err < 0.25, "hidden-state drift after 12 steps: {h_err}");
        for &v in qs.h.data() {
            assert!(v.abs() <= 1.0, "quantized h must stay gate-bounded");
        }
    }

    #[test]
    fn quantized_cell_is_deterministic() {
        let mut r = rng();
        let cell = LstmCell::random(3, 5, 0.4, &mut r);
        let q = QuantizedLstmCell::quantize(&cell);
        let x = Matrix::from_fn(2, 3, |a, b| (a + b) as f32 * 0.2);
        let s = LstmState::zeros(2, 5);
        assert_eq!(q.step(&x, &s), q.step(&x, &s));
    }
}
