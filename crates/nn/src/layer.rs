//! Layer taxonomy of the paper's Table 1.
//!
//! Table 1 characterises each workload by its layer mix: FC (fully
//! connected), Conv (convolution), Vector (elementwise), and Pool. Every
//! layer kind here knows its weight count, its multiply-accumulate count
//! per example, and — because the TPU lowers everything to the matrix unit
//! — the shape of the weight matrix it presents for tiling (convolutions
//! in im2col form: `in_ch*kh*kw` rows by `out_ch` columns, applied once
//! per output position).

use serde::{Deserialize, Serialize};

/// Nonlinearity attached to a layer (Table 1's "Nonlinear function"
/// column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Nonlinearity {
    /// No nonlinearity (linear projection).
    None,
    /// `max(0, x)` — MLPs and CNNs.
    Relu,
    /// Logistic sigmoid — LSTM gates.
    Sigmoid,
    /// Hyperbolic tangent — LSTM cell updates.
    Tanh,
}

/// A fully connected layer: `inputs x outputs` weights, reused across the
/// batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FcLayer {
    /// Input width.
    pub inputs: usize,
    /// Output width.
    pub outputs: usize,
    /// Nonlinearity applied to the output.
    pub act: Nonlinearity,
}

/// A convolutional layer in im2col form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConvLayer {
    /// Input channels.
    pub in_ch: usize,
    /// Output channels (filters).
    pub out_ch: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Output spatial positions per example (`out_h * out_w`).
    pub out_positions: usize,
    /// Nonlinearity applied to the output.
    pub act: Nonlinearity,
}

/// A pooling layer ("nonlinear downsizing" in Table 1), executed on the
/// Activation Unit's dedicated hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolLayer {
    /// Channels (lane width of each pooled row).
    pub channels: usize,
    /// Pooling window edge.
    pub window: usize,
    /// Input spatial positions per example.
    pub in_positions: usize,
}

/// An elementwise vector layer (LSTM gate combinations), executed on the
/// activation datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VectorLayer {
    /// Vector width.
    pub width: usize,
    /// Datapath cycles per 256-wide row (compound gate math costs more
    /// than a plain nonlinearity).
    pub cost_per_row: u64,
}

/// One layer of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Layer {
    /// Fully connected.
    Fc(FcLayer),
    /// Convolution.
    Conv(ConvLayer),
    /// Pooling.
    Pool(PoolLayer),
    /// Elementwise vector work.
    Vector(VectorLayer),
}

impl Layer {
    /// Convenience constructor for an FC layer.
    pub fn fc(inputs: usize, outputs: usize, act: Nonlinearity) -> Self {
        Layer::Fc(FcLayer {
            inputs,
            outputs,
            act,
        })
    }

    /// Convenience constructor for a conv layer.
    pub fn conv(
        in_ch: usize,
        out_ch: usize,
        k: usize,
        out_positions: usize,
        act: Nonlinearity,
    ) -> Self {
        Layer::Conv(ConvLayer {
            in_ch,
            out_ch,
            kh: k,
            kw: k,
            out_positions,
            act,
        })
    }

    /// Convenience constructor for a pool layer.
    pub fn pool(channels: usize, window: usize, in_positions: usize) -> Self {
        Layer::Pool(PoolLayer {
            channels,
            window,
            in_positions,
        })
    }

    /// Convenience constructor for a vector layer.
    pub fn vector(width: usize, cost_per_row: u64) -> Self {
        Layer::Vector(VectorLayer {
            width,
            cost_per_row,
        })
    }

    /// Number of 8-bit weights held by this layer.
    pub fn weights(&self) -> u64 {
        match self {
            Layer::Fc(l) => (l.inputs * l.outputs) as u64,
            Layer::Conv(l) => (l.in_ch * l.kh * l.kw * l.out_ch) as u64,
            Layer::Pool(_) | Layer::Vector(_) => 0,
        }
    }

    /// Multiply-accumulates per example.
    pub fn macs_per_example(&self) -> u64 {
        match self {
            Layer::Fc(l) => (l.inputs * l.outputs) as u64,
            Layer::Conv(l) => (l.in_ch * l.kh * l.kw * l.out_ch * l.out_positions) as u64,
            Layer::Pool(_) | Layer::Vector(_) => 0,
        }
    }

    /// Shape of the matrix-unit weight operand: `(depth, width)` =
    /// (reduction rows, output columns). `None` for non-matrix layers.
    pub fn matrix_shape(&self) -> Option<(usize, usize)> {
        match self {
            Layer::Fc(l) => Some((l.inputs, l.outputs)),
            Layer::Conv(l) => Some((l.in_ch * l.kh * l.kw, l.out_ch)),
            Layer::Pool(_) | Layer::Vector(_) => None,
        }
    }

    /// Matrix-unit input rows per example (1 for FC; output positions for
    /// conv, whose weights are reused across positions).
    pub fn matrix_rows_per_example(&self) -> u64 {
        match self {
            Layer::Fc(_) => 1,
            Layer::Conv(l) => l.out_positions as u64,
            Layer::Pool(_) | Layer::Vector(_) => 0,
        }
    }

    /// The nonlinearity, if this layer has one.
    pub fn nonlinearity(&self) -> Option<Nonlinearity> {
        match self {
            Layer::Fc(l) => Some(l.act),
            Layer::Conv(l) => Some(l.act),
            Layer::Pool(_) | Layer::Vector(_) => None,
        }
    }

    /// Output width (activations produced per example row).
    pub fn output_width(&self) -> usize {
        match self {
            Layer::Fc(l) => l.outputs,
            Layer::Conv(l) => l.out_ch,
            Layer::Pool(l) => l.channels,
            Layer::Vector(l) => l.width,
        }
    }

    /// Table 1 category name.
    pub fn category(&self) -> &'static str {
        match self {
            Layer::Fc(_) => "FC",
            Layer::Conv(_) => "Conv",
            Layer::Pool(_) => "Pool",
            Layer::Vector(_) => "Vector",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fc_weights_and_macs() {
        let l = Layer::fc(1000, 500, Nonlinearity::Relu);
        assert_eq!(l.weights(), 500_000);
        assert_eq!(l.macs_per_example(), 500_000);
        assert_eq!(l.matrix_shape(), Some((1000, 500)));
        assert_eq!(l.matrix_rows_per_example(), 1);
        assert_eq!(l.category(), "FC");
    }

    #[test]
    fn conv_weight_reuse_multiplies_macs() {
        // 3x3, 256->256 channels, 19x19 outputs (the AlphaGo shape).
        let l = Layer::conv(256, 256, 3, 361, Nonlinearity::Relu);
        assert_eq!(l.weights(), 3 * 3 * 256 * 256);
        assert_eq!(l.macs_per_example(), l.weights() * 361);
        assert_eq!(l.matrix_shape(), Some((3 * 3 * 256, 256)));
        assert_eq!(l.matrix_rows_per_example(), 361);
    }

    #[test]
    fn pool_and_vector_have_no_weights() {
        assert_eq!(Layer::pool(256, 2, 196).weights(), 0);
        assert_eq!(Layer::vector(1024, 3).weights(), 0);
        assert_eq!(Layer::pool(256, 2, 196).macs_per_example(), 0);
        assert!(Layer::vector(1024, 3).matrix_shape().is_none());
    }

    #[test]
    fn output_width_per_kind() {
        assert_eq!(Layer::fc(10, 20, Nonlinearity::None).output_width(), 20);
        assert_eq!(
            Layer::conv(3, 64, 3, 100, Nonlinearity::Relu).output_width(),
            64
        );
        assert_eq!(Layer::pool(64, 2, 100).output_width(), 64);
        assert_eq!(Layer::vector(512, 2).output_width(), 512);
    }

    #[test]
    fn nonlinearity_exposure() {
        assert_eq!(
            Layer::fc(1, 1, Nonlinearity::Sigmoid).nonlinearity(),
            Some(Nonlinearity::Sigmoid)
        );
        assert_eq!(Layer::pool(1, 2, 4).nonlinearity(), None);
    }
}
