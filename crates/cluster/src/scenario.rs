//! Named, reproducible fleet experiments.
//!
//! Each scenario is a fleet topology plus tenants, sometimes swept over
//! a parameter (router policy, straggler on/off). The `tpu_cluster` CLI
//! runs them by name; the integration tests pin their qualitative
//! outcomes (failover keeps SLO attainment above a threshold, the
//! straggler stretches the tail, least-outstanding routing beats
//! round-robin under a straggler).
//!
//! Arrival rates are sized against the calibrated per-die capacities of
//! the Table 1 workloads (MLP0 ~242k rps/die, LSTM0 ~27k, CNN0 ~8.3k;
//! see `tpu_serve::scenario`).

use crate::autoscale::AutoscaleConfig;
use crate::engine::{run_fleet, run_fleet_telemetry, FleetRun};
use crate::failure::FailureEvent;
use crate::fleet::{ColocateConfig, FleetSpec, FleetTenantSpec, HopModel, PlacementPolicy};
use crate::resilience::{BrownoutConfig, HedgeConfig, RetryBudget, RetryPolicy};
use crate::route::RouterPolicy;
use crate::topology::{seeded_domain_outages, FleetTopology};
use tpu_core::TpuConfig;
use tpu_serve::tenant::ArrivalProcess;
use tpu_serve::workload::{DiurnalProfile, Trace};
use tpu_serve::{BatchPolicy, TenantSpec};

/// One concrete run within a scenario.
#[derive(Debug, Clone)]
pub struct FleetScenarioRun {
    /// Label distinguishing this run within the scenario.
    pub label: String,
    /// The fleet topology and front-end configuration.
    pub spec: FleetSpec,
    /// The tenants admitted to it.
    pub tenants: Vec<FleetTenantSpec>,
}

/// A named, reproducible fleet experiment.
#[derive(Debug, Clone)]
pub struct FleetScenario {
    /// CLI name, e.g. `host-failover`.
    pub name: &'static str,
    /// One-line description for `tpu_cluster list`.
    pub description: &'static str,
    /// The failure-domain topology the scenario's fleets are carved
    /// into, when it has one (the health monitor uses it to collapse
    /// host-level outage alerts into rack- and domain-level incidents).
    pub topology: Option<FleetTopology>,
    /// The runs, executed in order.
    pub runs: Vec<FleetScenarioRun>,
}

impl FleetScenario {
    /// Execute every run and pair it with its label.
    pub fn execute(&self, cfg: &TpuConfig) -> Vec<(String, FleetRun)> {
        self.runs
            .iter()
            .map(|r| (r.label.clone(), run_fleet(&r.spec, &r.tenants, cfg)))
            .collect()
    }

    /// [`Self::execute`] with one [`tpu_telemetry::RunTelemetry`] per
    /// run (the reports stay bit-identical to the uninstrumented runs).
    pub fn execute_telemetry(
        &self,
        cfg: &TpuConfig,
        tel: &mut [tpu_telemetry::RunTelemetry],
    ) -> Vec<(String, FleetRun)> {
        assert_eq!(tel.len(), self.runs.len(), "one RunTelemetry per run");
        self.runs
            .iter()
            .zip(tel)
            .map(|(r, t)| {
                (
                    r.label.clone(),
                    run_fleet_telemetry(&r.spec, &r.tenants, cfg, t),
                )
            })
            .collect()
    }

    /// Re-seed every run (CLI `--seed`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        for r in &mut self.runs {
            r.spec.seed = seed;
        }
        self
    }

    /// Scale every tenant's request count by `factor` (CLI
    /// `--requests-scale`), keeping at least one request per tenant.
    /// Failure and autoscaler times are left alone; note that failure
    /// events are pre-scheduled and still fire (appearing in crash
    /// counts and on the timeline) even when a heavily scaled run
    /// serves its last request before they strike. Tenants replaying an
    /// inline recording are capped at the recording's length (they
    /// replay a prefix; there is nothing to scale up into).
    pub fn scale_requests(mut self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale must be positive");
        for r in &mut self.runs {
            for t in &mut r.tenants {
                t.tenant.scale_requests(factor);
            }
        }
        self
    }

    /// Record the arrival streams of one run — by label, or the first
    /// run when `run_label` is `None` — without simulating (the streams
    /// are a pure function of the tenant specs and the fleet seed; see
    /// `tpu_serve::workload`). The CLI's `trace record` writes the
    /// result to disk, and the same file replays through `tpu_serve`.
    ///
    /// # Panics
    ///
    /// Panics on an unknown run label.
    pub fn record_trace(&self, run_label: Option<&str>) -> Trace {
        let run = match run_label {
            None => &self.runs[0],
            Some(l) => self
                .runs
                .iter()
                .find(|r| r.label == l)
                .unwrap_or_else(|| panic!("scenario {} has no run {l:?}", self.name)),
        };
        let tenants: Vec<TenantSpec> = run.tenants.iter().map(|t| t.tenant.clone()).collect();
        Trace::record(
            &tenants,
            run.spec.seed,
            &format!("{}/{}", self.name, run.label),
        )
    }

    /// Drive every run's tenants from a recorded trace (CLI `--trace`):
    /// each tenant replays its recorded stream, matched by name, with
    /// its request count capped at the stream length (a scaled-down
    /// scenario replays a prefix — see `Trace::apply`).
    ///
    /// # Panics
    ///
    /// Panics when the trace lacks one of the scenario's tenants
    /// (pre-check with `Trace::covers`).
    pub fn with_trace(mut self, trace: &Trace) -> Self {
        for r in &mut self.runs {
            for t in &mut r.tenants {
                trace.apply(std::slice::from_mut(&mut t.tenant));
            }
        }
        self
    }
}

fn timeout_tenant(
    workload: &str,
    rate_rps: f64,
    max_batch: usize,
    t_max_ms: f64,
    slo_ms: f64,
    priority: u8,
    requests: usize,
) -> TenantSpec {
    TenantSpec::new(
        workload,
        ArrivalProcess::Poisson { rate_rps },
        BatchPolicy::Timeout {
            max_batch,
            t_max_ms,
        },
        slo_ms,
        requests,
    )
    .with_priority(priority)
}

/// The steady-state datacenter mix: three workload classes replicated
/// across six 2-die hosts behind least-outstanding routing with
/// Table 5 hops, every tenant comfortably inside its SLO.
fn fleet_steady() -> FleetScenario {
    let spec = FleetSpec::new(6, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 });
    FleetScenario {
        name: "fleet-steady",
        description: "MLP0+LSTM0+CNN0 replicated over 6×2-die hosts at ~40% load",
        topology: None,
        runs: vec![FleetScenarioRun {
            label: "steady".into(),
            spec,
            tenants: vec![
                FleetTenantSpec::new(
                    timeout_tenant("MLP0", 600_000.0, 200, 2.0, 7.0, 3, 60_000),
                    3,
                ),
                FleetTenantSpec::new(
                    timeout_tenant("LSTM0", 40_000.0, 64, 5.0, 50.0, 2, 8_000),
                    3,
                ),
                FleetTenantSpec::new(timeout_tenant("CNN0", 10_000.0, 8, 10.0, 30.0, 1, 2_000), 2),
            ],
        }],
    }
}

/// Diurnal load on an autoscaled fleet: MLP0 rides a true piecewise-
/// linear day/night rate curve (trough 100k rps, peak 900k rps over an
/// 80 ms "day"); the reactive controller grows the replica set into the
/// peak and drains it back through the trough.
fn diurnal_autoscale() -> FleetScenario {
    let tenant = TenantSpec::new(
        "MLP0",
        ArrivalProcess::Diurnal {
            profile: DiurnalProfile::day_night(100_000.0, 900_000.0, 80.0),
        },
        BatchPolicy::Timeout {
            max_batch: 200,
            t_max_ms: 2.0,
        },
        7.0,
        120_000,
    )
    .with_priority(3);
    let spec = FleetSpec::new(8, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_autoscale(AutoscaleConfig {
            interval_ms: 10.0,
            cooldown_ms: 20.0,
            ..AutoscaleConfig::reactive()
        });
    FleetScenario {
        name: "diurnal-autoscale",
        description: "diurnal MLP0 (100k..900k rps) on 8 hosts: reactive scaling, 2..8 replicas",
        topology: None,
        runs: vec![FleetScenarioRun {
            label: "diurnal".into(),
            spec,
            tenants: vec![FleetTenantSpec::new(tenant, 3).with_replica_bounds(2, 8)],
        }],
    }
}

/// Trace record/replay, end to end: a diurnal MLP0 plus a bursty LSTM0
/// drive a 4-host fleet; the `replay` run feeds the *recorded* arrival
/// streams of the `synthetic` run back through the front end and must
/// reproduce its report bit for bit (the integration tests pin it).
///
/// `--seed` re-seeds only the service-jitter streams and the synthetic
/// run's arrivals — the replay run keeps the arrivals recorded at
/// construction (seed 42), so the two runs match only at the default
/// seed.
fn trace_replay() -> FleetScenario {
    let spec = || {
        FleetSpec::new(4, 2, 42)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 })
    };
    let tenants = vec![
        FleetTenantSpec::new(
            TenantSpec::new(
                "MLP0",
                ArrivalProcess::Diurnal {
                    profile: DiurnalProfile::day_night(100_000.0, 500_000.0, 60.0),
                },
                BatchPolicy::Timeout {
                    max_batch: 200,
                    t_max_ms: 2.0,
                },
                7.0,
                40_000,
            )
            .with_priority(3),
            3,
        ),
        FleetTenantSpec::new(
            TenantSpec::new(
                "LSTM0",
                ArrivalProcess::Bursty {
                    rate_rps: 30_000.0,
                    burst_factor: 3.0,
                    period_ms: 30.0,
                    duty: 0.25,
                },
                BatchPolicy::Timeout {
                    max_batch: 64,
                    t_max_ms: 5.0,
                },
                50.0,
                6_000,
            )
            .with_priority(2),
            2,
        ),
    ];
    let synthetic = FleetScenarioRun {
        label: "synthetic".into(),
        spec: spec(),
        tenants: tenants.clone(),
    };
    // Record the synthetic streams (a pure function of specs + seed)
    // and embed them inline for the replay run.
    let specs: Vec<TenantSpec> = tenants.iter().map(|t| t.tenant.clone()).collect();
    let trace = Trace::record(&specs, synthetic.spec.seed, "trace-replay/synthetic");
    let mut replay_tenants = tenants;
    for t in &mut replay_tenants {
        trace.apply(std::slice::from_mut(&mut t.tenant));
    }
    FleetScenario {
        name: "trace-replay",
        description: "diurnal+bursty mix on 4 hosts: synthetic run vs bit-identical trace replay",
        topology: None,
        runs: vec![
            synthetic,
            FleetScenarioRun {
                label: "replay".into(),
                spec: spec(),
                tenants: replay_tenants,
            },
        ],
    }
}

/// The failover drill: host 0 crashes mid-run taking replicas of both
/// tenants with it, displaced requests retry on the survivors, and the
/// host rejoins later. The integration tests pin that post-recovery
/// SLO attainment stays above a threshold for every tenant.
fn host_failover() -> FleetScenario {
    let spec = FleetSpec::new(4, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_failures(vec![
            FailureEvent::crash(30.0, 0),
            FailureEvent::recover(80.0, 0),
        ]);
    FleetScenario {
        name: "host-failover",
        description: "4-host fleet: host 0 crashes at 30 ms, recovers at 80 ms",
        topology: None,
        runs: vec![FleetScenarioRun {
            label: "failover".into(),
            spec,
            tenants: vec![
                FleetTenantSpec::new(
                    timeout_tenant("MLP0", 300_000.0, 200, 2.0, 7.0, 3, 60_000),
                    3,
                ),
                FleetTenantSpec::new(
                    timeout_tenant("LSTM0", 20_000.0, 64, 5.0, 50.0, 2, 4_000),
                    2,
                ),
            ],
        }],
    }
}

/// Router shoot-out: the same fleet and load under round-robin,
/// least-outstanding, and bounded consistent hashing, with host 2
/// turned into a 3× straggler mid-run. Load-aware policies route
/// around the straggler; round-robin keeps feeding it and pays in p99.
fn router_shootout() -> FleetScenario {
    let mk = |label: &str, router: RouterPolicy| {
        let spec = FleetSpec::new(4, 2, 42)
            .with_router(router)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 })
            .with_failures(FailureEvent::slow_window(10.0, 60.0, 2, 3.0).to_vec());
        FleetScenarioRun {
            label: label.into(),
            spec,
            tenants: vec![FleetTenantSpec::new(
                timeout_tenant("MLP0", 700_000.0, 200, 2.0, 7.0, 3, 100_000),
                4,
            )],
        }
    };
    FleetScenario {
        name: "router-shootout",
        description: "RR vs least-outstanding vs consistent-hash with a 3× straggler",
        topology: None,
        runs: vec![
            mk("round-robin", RouterPolicy::RoundRobin),
            mk("least-outstanding", RouterPolicy::LeastOutstanding),
            mk(
                "consistent-hash",
                RouterPolicy::ConsistentHash {
                    vnodes: 16,
                    bound: 1.25,
                },
            ),
        ],
    }
}

/// The straggler-tail experiment: identical fleets, one with host 2
/// running 4× slow for a window. Round-robin routing spreads requests
/// evenly, so the slow host's share defines the tail.
fn straggler_tail() -> FleetScenario {
    let tenants = || {
        vec![
            FleetTenantSpec::new(
                timeout_tenant("MLP0", 450_000.0, 200, 2.0, 7.0, 3, 60_000),
                3,
            ),
            FleetTenantSpec::new(
                timeout_tenant("LSTM1", 30_000.0, 96, 5.0, 50.0, 2, 4_000),
                2,
            ),
        ]
    };
    let base = FleetSpec::new(3, 2, 42)
        .with_router(RouterPolicy::RoundRobin)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 });
    FleetScenario {
        name: "straggler-tail",
        description: "3-host fleet, round-robin: baseline vs 4× straggler window",
        topology: None,
        runs: vec![
            FleetScenarioRun {
                label: "baseline".into(),
                spec: base.clone(),
                tenants: tenants(),
            },
            FleetScenarioRun {
                label: "straggler-4x".into(),
                spec: base.with_failures(FailureEvent::slow_window(15.0, 45.0, 2, 4.0).to_vec()),
                tenants: tenants(),
            },
        ],
    }
}

/// The mixed Table 1 tenant set: all six workloads with the
/// `mixed-tenants` rates (sized for ~60% of a 4-die pool together),
/// `replicas` replicas each.
fn table1_mix(replicas: usize) -> Vec<FleetTenantSpec> {
    vec![
        FleetTenantSpec::new(
            timeout_tenant("MLP0", 150_000.0, 200, 2.0, 7.0, 3, 45_000),
            replicas,
        ),
        FleetTenantSpec::new(
            timeout_tenant("MLP1", 80_000.0, 168, 2.0, 7.0, 3, 24_000),
            replicas,
        ),
        FleetTenantSpec::new(
            timeout_tenant("LSTM0", 12_000.0, 64, 5.0, 50.0, 2, 3_600),
            replicas,
        ),
        FleetTenantSpec::new(
            timeout_tenant("LSTM1", 20_000.0, 96, 5.0, 50.0, 2, 6_000),
            replicas,
        ),
        FleetTenantSpec::new(
            timeout_tenant("CNN0", 3_000.0, 8, 10.0, 30.0, 1, 900),
            replicas,
        ),
        FleetTenantSpec::new(
            timeout_tenant("CNN1", 800.0, 32, 20.0, 60.0, 1, 240),
            replicas,
        ),
    ]
}

/// Co-location interference vs swap-affinity routing: the mixed
/// Table 1 set, two replicas each, bin-packed onto four 2-die hosts
/// with weight-swap costs on. The `least-outstanding` run routes
/// blindly and keeps forcing dies to reload weights; the `swap-aware`
/// run prefers replicas whose host already holds the model's weights
/// warm, trading a little load balance for fewer swaps.
fn colocate_interference() -> FleetScenario {
    let mk = |label: &str, router: RouterPolicy| {
        let spec = FleetSpec::new(4, 2, 42)
            .with_router(router)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 })
            .with_colocate(ColocateConfig::bin_packed());
        FleetScenarioRun {
            label: label.into(),
            spec,
            tenants: table1_mix(2),
        }
    };
    FleetScenario {
        name: "colocate-interference",
        description: "Table 1 mix x2 bin-packed on 4 hosts: blind vs swap-affinity routing",
        topology: None,
        runs: vec![
            mk("least-outstanding", RouterPolicy::LeastOutstanding),
            mk("swap-aware", RouterPolicy::SwapAware),
        ],
    }
}

/// Co-located vs dedicated placement under the same offered load: the
/// `dedicated` run gives each of the six Table 1 tenants its own
/// 1-die host (a die only ever pays its cold weight load), the
/// `colocated` run bin-packs the same tenants onto three 1-die hosts —
/// half the hardware — where each die ping-pongs between two models
/// and pays the DDR3 weight-swap stall on every alternation. Both runs
/// carry the weight subsystem, so the per-tenant swap counters and
/// the p99 gap are a like-for-like interference measurement.
fn colocate_vs_dedicated() -> FleetScenario {
    let dedicated = FleetSpec::new(6, 1, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_colocate(ColocateConfig::new(PlacementPolicy::Spread));
    let colocated = FleetSpec::new(3, 1, 42)
        .with_router(RouterPolicy::SwapAware)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_colocate(ColocateConfig::bin_packed());
    FleetScenario {
        name: "colocate-vs-dedicated",
        description: "Table 1 mix: one model per die (6 hosts) vs bin-packed co-location (3 hosts)",
        topology: None,
        runs: vec![
            FleetScenarioRun {
                label: "dedicated".into(),
                spec: dedicated,
                tenants: table1_mix(1),
            },
            FleetScenarioRun {
                label: "colocated".into(),
                spec: colocated,
                tenants: table1_mix(1),
            },
        ],
    }
}

/// The default `fleet-sweep` host count — small enough that the golden
/// snapshot stays reviewable, large enough for four independent cells.
pub const FLEET_SWEEP_DEFAULT_HOSTS: usize = 40;

/// The sharded-engine scale sweep: `hosts` 2-die hosts carved into
/// 10-host **cells**, one MLP0-class tenant spread across each cell.
/// Spread placement fills hosts in index order, so the cells are
/// disjoint and the tenant↔host graph has one connected component per
/// cell — exactly the shape the parallel engine shards across cores
/// (and, by the determinism contract, byte-identical to the
/// single-threaded reference at any `--hosts`). A crash/recover pair
/// in each of the first two cells keeps the failure path honest at
/// every scale. The CLI's `--hosts` flag re-parameterizes it
/// (`tpu_cluster run fleet-sweep --hosts 1000`).
///
/// # Panics
///
/// Panics when `hosts` is below 20 (the failure schedule touches the
/// first two cells).
pub fn fleet_sweep(hosts: usize) -> FleetScenario {
    assert!(hosts >= 20, "fleet-sweep needs at least two 10-host cells");
    let cells = hosts / 10;
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_failures(vec![
            FailureEvent::crash(2.0, 3),
            FailureEvent::crash(3.0, 13),
            FailureEvent::recover(5.0, 3),
            FailureEvent::recover(6.0, 13),
        ]);
    let tenants = (0..cells)
        .map(|c| {
            FleetTenantSpec::new(
                timeout_tenant("MLP0", 1_200_000.0, 200, 2.0, 7.0, 2, 20_000)
                    .named(&format!("cell{c:03}")),
                10,
            )
        })
        .collect();
    FleetScenario {
        name: "fleet-sweep",
        description: "10-host MLP0 cells swept over fleet size: one shard per cell",
        topology: None,
        runs: vec![FleetScenarioRun {
            label: "sweep".into(),
            spec,
            tenants,
        }],
    }
}

/// The default `rack-outage` fleet — one 8-host failure-domain cell:
/// two 4-host racks under a single power-domain.
pub const RACK_OUTAGE_DEFAULT_HOSTS: usize = 8;

/// The correlated-failure drill: `hosts` 2-die hosts carved into
/// 8-host **cells** (two 4-host racks to a power-domain, one
/// MLP0-class tenant spread across each cell), run with bounded
/// backed-off retries, a retry budget, and p95 hedging.
///
/// Cell 0 takes a deterministic beating — a whole-rack outage at
/// 0.3 ms via [`FleetTopology::rack_outage`], a front-end partition of
/// the sibling rack (the hosts keep draining, invisible to the
/// router), and a die failure on a freshly recovered host. Fleets
/// beyond the default size (`--hosts`) additionally replay a seeded
/// **correlated** outage schedule ([`seeded_domain_outages`]) across
/// the remaining racks — the schedule the CI sharded-vs-single diff
/// replays at 1000 hosts, byte-identical at every
/// `TPU_CLUSTER_SHARDS`.
///
/// # Panics
///
/// Panics when `hosts` is below one 8-host cell.
pub fn rack_outage(hosts: usize) -> FleetScenario {
    assert!(
        hosts >= RACK_OUTAGE_DEFAULT_HOSTS,
        "rack-outage needs at least one 8-host cell"
    );
    let topo = FleetTopology::new(4, 2);
    let cells = hosts / RACK_OUTAGE_DEFAULT_HOSTS;
    // Deterministic faults in cell 0, timed to land inside even a
    // heavily scaled-down run.
    let mut failures = topo.rack_outage(0.30, 0.70, 0, hosts);
    failures.extend(topo.rack_partition(0.75, 1.00, 1, hosts));
    failures.push(FailureEvent::die_fail(0.80, 1, 0));
    failures.push(FailureEvent::die_recover(1.00, 1, 0));
    // A 4x-slow die on the surviving rack while it carries the whole
    // cell: the straggler tail is what the hedges race against.
    failures.push(FailureEvent::die_slow(0.10, 6, 0, 8.0));
    failures.push(FailureEvent::die_slow(0.10, 6, 1, 8.0));
    failures.push(FailureEvent::die_slow(3.00, 6, 0, 1.0));
    failures.push(FailureEvent::die_slow(3.00, 6, 1, 1.0));
    // Larger fleets add seeded rack- and domain-level outages over the
    // remaining cells (empty at the default size).
    failures.extend(
        seeded_domain_outages(42, topo, hosts, 16.0, 60.0, 240.0, 2.0)
            .into_iter()
            .filter(|e| e.host >= RACK_OUTAGE_DEFAULT_HOSTS),
    );
    let retry = RetryPolicy {
        max_attempts: 5,
        backoff_base_ms: 0.2,
        backoff_max_ms: 3.0,
        jitter_frac: 0.2,
        budget: Some(RetryBudget {
            tokens: 256.0,
            refill_per_ms: 16.0,
        }),
        hedge: Some(HedgeConfig {
            min_delay_ms: 0.5,
            quantile: 0.95,
            window: 128,
        }),
    };
    let spec = FleetSpec::new(hosts, 2, 42)
        .with_router(RouterPolicy::LeastOutstanding)
        .with_hop(HopModel::Table5 { scale_ms: 1.0 })
        .with_failures(failures)
        .with_retry(retry);
    let tenants = (0..cells)
        .map(|c| {
            FleetTenantSpec::new(
                timeout_tenant("MLP0", 1_200_000.0, 200, 2.0, 7.0, 2, 60_000)
                    .named(&format!("cell{c:03}")),
                RACK_OUTAGE_DEFAULT_HOSTS,
            )
        })
        .collect();
    FleetScenario {
        name: "rack-outage",
        description: "8-host cells under correlated rack/domain faults: backoff, budget, hedging",
        topology: Some(topo),
        runs: vec![FleetScenarioRun {
            label: "outage".into(),
            spec,
            tenants,
        }],
    }
}

/// The retry-storm contrast: one overcommitted 8-host cell (a
/// priority-3 `critical` tenant plus a priority-1 `bulk` tenant at
/// ~3× its rate) hit by staggered whole-rack outages, run twice over
/// the identical failure schedule —
///
/// * `blind` — the legacy front end: every displaced request retries
///   immediately and unboundedly, so each crash re-amplifies the
///   queue it displaced;
/// * `resilient` — bounded attempts with exponential backoff and
///   seeded jitter, a per-tenant retry budget that breaks the circuit
///   (dropping, and reporting, what it refuses to amplify), and a
///   brownout controller shedding `bulk` admissions while the cell's
///   SLO burn is over threshold.
///
/// The integration tests pin the contrast: the resilient run issues
/// strictly fewer retries and holds strictly higher SLO attainment
/// for `critical` than the blind run.
fn retry_storm() -> FleetScenario {
    let topo = FleetTopology::new(4, 2);
    let hosts = 8;
    // Staggered rack outages: rack 0 dies first, recovers, then rack 1
    // dies — each crash displacing the backlog the previous one built.
    // A die failure on a rack-1 host persists across that host's
    // crash/recover pair (die state survives host restarts). Times sit
    // inside the arrival window even at the goldens' 0.05 scale, so
    // the storm always overlaps admission.
    let mut failures = topo.rack_outage(1.0, 2.5, 0, hosts);
    failures.extend(topo.rack_outage(3.0, 4.5, 1, hosts));
    failures.push(FailureEvent::die_fail(2.6, 5, 0));
    failures.push(FailureEvent::die_recover(5.0, 5, 0));
    let spec = || {
        FleetSpec::new(hosts, 2, 42)
            .with_router(RouterPolicy::LeastOutstanding)
            .with_hop(HopModel::Table5 { scale_ms: 1.0 })
            .with_failures(failures.clone())
    };
    // Short batching timeouts keep queues shallow (a crash displaces
    // at most a timeout's worth of backlog); the tight 2 ms SLO on
    // `critical` is what the storm threatens.
    let tenants = || {
        vec![
            FleetTenantSpec::new(
                timeout_tenant("MLP0", 600_000.0, 64, 0.3, 1.2, 3, 72_000).named("critical"),
                hosts,
            ),
            FleetTenantSpec::new(
                timeout_tenant("MLP0", 3_300_000.0, 200, 0.5, 2.5, 1, 400_000).named("bulk"),
                hosts,
            ),
        ]
    };
    let retry = RetryPolicy {
        max_attempts: 4,
        backoff_base_ms: 0.1,
        backoff_max_ms: 1.0,
        jitter_frac: 0.25,
        budget: Some(RetryBudget {
            tokens: 1024.0,
            refill_per_ms: 64.0,
        }),
        hedge: None,
    };
    let brownout = BrownoutConfig {
        max_priority_shed: 1,
        slo_burn_threshold: 0.4,
        window: 32,
        clear_threshold: 0.15,
        min_trip_ms: 0.5,
    };
    FleetScenario {
        name: "retry-storm",
        description:
            "staggered rack outages, 2 tenants: blind infinite retry vs backoff+budget+shedding",
        topology: Some(topo),
        runs: vec![
            FleetScenarioRun {
                label: "blind".into(),
                spec: spec(),
                tenants: tenants(),
            },
            FleetScenarioRun {
                label: "resilient".into(),
                spec: spec().with_retry(retry).with_brownout(brownout),
                tenants: tenants(),
            },
        ],
    }
}

/// All named scenarios, in CLI listing order.
pub fn all_scenarios() -> Vec<FleetScenario> {
    vec![
        fleet_steady(),
        diurnal_autoscale(),
        trace_replay(),
        host_failover(),
        router_shootout(),
        straggler_tail(),
        colocate_interference(),
        colocate_vs_dedicated(),
        fleet_sweep(FLEET_SWEEP_DEFAULT_HOSTS),
        rack_outage(RACK_OUTAGE_DEFAULT_HOSTS),
        retry_storm(),
    ]
}

/// Look a scenario up by its CLI name.
pub fn scenario_by_name(name: &str) -> Option<FleetScenario> {
    all_scenarios().into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scenario_resolves_by_name() {
        for s in all_scenarios() {
            assert!(scenario_by_name(s.name).is_some(), "{}", s.name);
            assert!(!s.runs.is_empty(), "{} has no runs", s.name);
        }
        assert!(scenario_by_name("nope").is_none());
    }

    #[test]
    fn seeding_and_scaling_apply_to_every_run() {
        let s = scenario_by_name("router-shootout")
            .unwrap()
            .with_seed(7)
            .scale_requests(0.01);
        for r in &s.runs {
            assert_eq!(r.spec.seed, 7);
            assert_eq!(r.tenants[0].tenant.requests, 1_000);
        }
    }

    #[test]
    fn scaling_up_clamps_recorded_replays_instead_of_panicking() {
        let s = scenario_by_name("trace-replay")
            .unwrap()
            .scale_requests(2.0);
        let synth = &s.runs[0].tenants[0].tenant;
        let replay = &s.runs[1].tenants[0].tenant;
        assert_eq!(synth.requests, 80_000, "synthetic tenants scale freely");
        assert_eq!(replay.requests, 40_000, "replays cap at the recording");
    }

    #[test]
    fn trace_replay_scenario_reproduces_its_synthetic_run_bit_for_bit() {
        let cfg = TpuConfig::paper();
        let s = scenario_by_name("trace-replay")
            .unwrap()
            .scale_requests(0.1);
        let runs = s.execute(&cfg);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].0, "synthetic");
        assert_eq!(runs[1].0, "replay");
        assert_eq!(
            format!("{}", runs[0].1.report),
            format!("{}", runs[1].1.report),
            "replaying the recorded streams must reproduce the synthetic report"
        );
        assert_eq!(
            runs[0].1.report.to_json().to_string(),
            runs[1].1.report.to_json().to_string()
        );
    }

    #[test]
    fn colocated_runs_swap_and_swap_affinity_routing_reduces_it() {
        let cfg = TpuConfig::paper();
        let s = scenario_by_name("colocate-interference")
            .unwrap()
            .scale_requests(0.2);
        let runs = s.execute(&cfg);
        assert_eq!(runs.len(), 2);
        let blind = &runs[0].1.report;
        let aware = &runs[1].1.report;
        assert!(blind.colocated && aware.colocated);
        let swaps =
            |r: &crate::report::FleetReport| -> usize { r.tenants.iter().map(|t| t.swaps).sum() };
        assert!(swaps(blind) > 0, "co-located dies must swap");
        assert!(
            swaps(aware) < swaps(blind),
            "swap-affinity routing must reduce swaps: {} vs {}",
            swaps(aware),
            swaps(blind)
        );
    }

    #[test]
    fn fleet_steady_executes_within_slo_when_scaled_down() {
        let cfg = TpuConfig::paper();
        let s = scenario_by_name("fleet-steady")
            .unwrap()
            .scale_requests(0.05);
        let runs = s.execute(&cfg);
        assert_eq!(runs.len(), 1);
        let r = &runs[0].1.report;
        assert_eq!(r.tenants.len(), 3);
        for t in &r.tenants {
            assert!(
                t.slo_attainment > 0.95,
                "{}: attainment {} (p99 {} vs SLO {})",
                t.name,
                t.slo_attainment,
                t.p99_ms,
                t.slo_ms
            );
        }
    }
}
