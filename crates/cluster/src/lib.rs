//! # tpu-cluster — fleet-level multi-host serving simulation
//!
//! The TPU paper analyzes one accelerator card, but its motivating
//! context is datacenter-scale inference under tight p99 bounds. This
//! crate is the layer above `tpu_serve`'s single-host runtime: a fleet
//! of TPU hosts under **one** simulated clock, with the concerns a
//! production serving stack actually has —
//!
//! * [`fleet`] — topology and model placement: each Table 1 workload is
//!   replicated across hosts, charged its full weight footprint against
//!   per-host weight-memory capacity (the paper's 8 GiB DDR3). Opt-in
//!   **multi-model co-location** ([`fleet::ColocateConfig`]) switches
//!   placement to a bin-packing planner balancing weight memory *and*
//!   expected load, and charges the deterministic DDR3 weight-swap
//!   stall (`tpu_serve::weights`) whenever a die changes models;
//! * [`route`] — front-end routing: round-robin,
//!   least-outstanding-requests, and consistent hashing with bounded
//!   load, all deterministic;
//! * [`autoscale`] — a reactive controller that adds and drains
//!   replicas from windowed per-tenant p99 and utilization signals,
//!   with cooldowns;
//! * [`failure`] — seeded, deterministic failure schedules: host
//!   crashes (queued *and* in-flight work retried on survivors), slow
//!   stragglers, recoveries, front-end↔host partitions, and die-level
//!   partial degradation — validated up front by
//!   [`failure::validate_schedule`];
//! * [`topology`] — failure-domain containment (die ⊂ host ⊂ rack ⊂
//!   power-domain) with seeded **correlated** outage generation
//!   ([`topology::seeded_domain_outages`]);
//! * [`resilience`] — opt-in retry policies (bounded attempts,
//!   deterministic exponential backoff with seeded jitter, per-tenant
//!   retry budgets), request hedging with first-wins cancellation, and
//!   brownout load-shedding ([`resilience::RetryPolicy`],
//!   [`resilience::BrownoutConfig`]);
//! * [`engine`] — the fleet event loop tying it together over the
//!   event core extracted into `tpu_serve::sim`;
//! * [`report`] — fleet-wide per-tenant tails, SLO attainment, per-host
//!   utilization, and replica-count timelines, as text or JSON —
//!   bit-identical for a fixed seed;
//! * [`scenario`] — named experiments (`fleet-steady`,
//!   `diurnal-autoscale`, `trace-replay`, `host-failover`,
//!   `router-shootout`, `straggler-tail`, `colocate-interference`,
//!   `colocate-vs-dedicated`, `fleet-sweep`, `rack-outage`,
//!   `retry-storm`) behind the `tpu_cluster` CLI, which also ships a
//!   `place` inspector printing any scenario's
//!   [`fleet::PlacementPlan`] without simulating.
//!
//! The engine runs **multi-core by default**: the connected components
//! of the tenant↔host placement graph are independent sub-simulations,
//! so eligible fleets (no autoscaler, no live telemetry) shard across
//! worker threads and merge — byte-identical to the single-threaded
//! reference for every seed and worker count (`TPU_CLUSTER_ENGINE`,
//! `TPU_CLUSTER_SHARDS`; see `engine` and `shard`).
//!
//! The front end draws its request streams from
//! `tpu_serve::workload` — any [`tpu_serve::workload::ArrivalSource`]
//! (Poisson, bursty/MMPP, piecewise-linear diurnal, recorded-trace
//! replay) plugs into the fleet, and any scenario's streams can be
//! recorded to a versioned `tpu-trace` file (`tpu_cluster trace
//! record`) and replayed bit-identically here or through `tpu_serve`
//! (`--trace`).
//!
//! The anchor invariant: a 1-host, 1-replica fleet with zero-cost hops
//! replays `tpu_serve::run`'s event sequence **exactly** — same seed
//! derivation, same event order, same report, bit for bit. The
//! integration tests pin it, which keeps every fleet mechanism anchored
//! to the single-host runtime the paper's serving data calibrated.
//!
//! ```
//! use tpu_cluster::{run_fleet, FleetSpec, FleetTenantSpec};
//! use tpu_serve::tenant::ArrivalProcess;
//! use tpu_serve::{BatchPolicy, TenantSpec};
//!
//! let cfg = tpu_core::TpuConfig::paper();
//! let tenant = TenantSpec::new(
//!     "MLP0",
//!     ArrivalProcess::Poisson { rate_rps: 200_000.0 },
//!     BatchPolicy::Timeout { max_batch: 200, t_max_ms: 2.0 },
//!     7.0,
//!     5_000,
//! );
//! let fleet = FleetSpec::new(2, 2, 42);
//! let run = run_fleet(&fleet, &[FleetTenantSpec::new(tenant, 2)], &cfg);
//! assert!(run.report.tenant("MLP0").unwrap().slo_attainment > 0.99);
//! ```

#![warn(missing_docs)]

pub mod autoscale;
pub mod engine;
pub mod failure;
pub mod fleet;
pub mod report;
pub mod resilience;
pub mod route;
pub mod scenario;
mod shard;
pub mod topology;

pub use autoscale::{AutoscaleConfig, ScaleSignals};
pub use engine::{run_fleet, run_fleet_telemetry, FleetRun};
pub use failure::{seeded_outages, validate_schedule, FailureEvent, FailureKind};
pub use fleet::{
    place, plan_placement, ColocateConfig, FleetSpec, FleetTenantSpec, HopModel, HostPlacement,
    HostSpec, PlacementPlan, PlacementPolicy,
};
pub use report::{FleetHostReport, FleetReport, FleetTenantReport, ReplicaSample};
pub use resilience::{BrownoutConfig, HedgeConfig, RetryBudget, RetryPolicy};
pub use route::{OutstandingIndex, RouterPolicy};
pub use scenario::{
    all_scenarios, fleet_sweep, rack_outage, scenario_by_name, FleetScenario, FleetScenarioRun,
    FLEET_SWEEP_DEFAULT_HOSTS, RACK_OUTAGE_DEFAULT_HOSTS,
};
pub use topology::{seeded_domain_outages, FleetTopology};
