//! Failure-domain topology: die ⊂ host ⊂ rack ⊂ power-domain.
//!
//! Real fleets do not fail host-by-host — a top-of-rack switch takes
//! its whole rack offline at one instant, a power-domain event takes
//! several racks. [`FleetTopology`] names that containment structure
//! over the fleet's flat host indices (hosts `[r·H, (r+1)·H)` form
//! rack `r`, racks `[d·R, (d+1)·R)` form power-domain `d`), and its
//! constructors expand a correlated event into plain per-host
//! [`FailureEvent`]s at the same timestamp. The engine and the sharded
//! partitioner keep seeing only per-host events, so the correlation
//! machinery composes with every existing code path — including the
//! byte-identity contract across `TPU_CLUSTER_SHARDS` and
//! `TPU_CLUSTER_ENGINE=single`.
//!
//! [`seeded_domain_outages`] draws outage windows from per-rack and
//! per-domain exponential streams (stream ids `0xD0_0000 + rack` and
//! `0xD1_0000 + domain` off the master seed), merges overlapping
//! windows per host — a rack outage inside a domain outage collapses
//! to one crash/recover pair, so [`crate::failure::validate_schedule`]
//! never sees a double crash — and clamps everything to the run
//! horizon, same as [`crate::failure::seeded_outages`].

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tpu_serve::sim;

use crate::failure::FailureEvent;

/// The containment structure of the fleet's failure domains.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FleetTopology {
    /// Hosts per rack (≥ 1). Host `h` is in rack `h / hosts_per_rack`.
    pub hosts_per_rack: usize,
    /// Racks per power-domain (≥ 1). Rack `r` is in domain
    /// `r / racks_per_domain`.
    pub racks_per_domain: usize,
}

impl FleetTopology {
    /// A topology of `hosts_per_rack`-host racks grouped
    /// `racks_per_domain` to a power-domain.
    ///
    /// # Panics
    ///
    /// Panics when either level is empty.
    pub fn new(hosts_per_rack: usize, racks_per_domain: usize) -> Self {
        assert!(hosts_per_rack >= 1, "a rack holds at least one host");
        assert!(racks_per_domain >= 1, "a domain holds at least one rack");
        FleetTopology {
            hosts_per_rack,
            racks_per_domain,
        }
    }

    /// The rack containing `host`.
    pub fn rack_of(&self, host: usize) -> usize {
        host / self.hosts_per_rack
    }

    /// The power-domain containing `host`.
    pub fn domain_of(&self, host: usize) -> usize {
        self.rack_of(host) / self.racks_per_domain
    }

    /// The hosts of `rack`, clipped to a fleet of `hosts` hosts (the
    /// last rack may be partial).
    pub fn rack_hosts(&self, rack: usize, hosts: usize) -> std::ops::Range<usize> {
        let lo = (rack * self.hosts_per_rack).min(hosts);
        let hi = ((rack + 1) * self.hosts_per_rack).min(hosts);
        lo..hi
    }

    /// The hosts of power-domain `domain`, clipped to `hosts`.
    pub fn domain_hosts(&self, domain: usize, hosts: usize) -> std::ops::Range<usize> {
        let per = self.hosts_per_rack * self.racks_per_domain;
        let lo = (domain * per).min(hosts);
        let hi = ((domain + 1) * per).min(hosts);
        lo..hi
    }

    /// A whole-rack outage window `[at_ms, until_ms)`: every member
    /// host crashes at `at_ms` and recovers at `until_ms`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a rack outside a `hosts`-host
    /// fleet.
    pub fn rack_outage(
        &self,
        at_ms: f64,
        until_ms: f64,
        rack: usize,
        hosts: usize,
    ) -> Vec<FailureEvent> {
        assert!(until_ms > at_ms, "outage window must have extent");
        let members = self.rack_hosts(rack, hosts);
        assert!(!members.is_empty(), "rack {rack} is outside the fleet");
        members
            .flat_map(|h| {
                [
                    FailureEvent::crash(at_ms, h),
                    FailureEvent::recover(until_ms, h),
                ]
            })
            .collect()
    }

    /// A whole-power-domain outage window `[at_ms, until_ms)`.
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a domain outside the fleet.
    pub fn domain_outage(
        &self,
        at_ms: f64,
        until_ms: f64,
        domain: usize,
        hosts: usize,
    ) -> Vec<FailureEvent> {
        assert!(until_ms > at_ms, "outage window must have extent");
        let members = self.domain_hosts(domain, hosts);
        assert!(!members.is_empty(), "domain {domain} is outside the fleet");
        members
            .flat_map(|h| {
                [
                    FailureEvent::crash(at_ms, h),
                    FailureEvent::recover(until_ms, h),
                ]
            })
            .collect()
    }

    /// A rack-wide front-end partition window `[at_ms, until_ms)`:
    /// every member host partitions at `at_ms` and rejoins at
    /// `until_ms` (draining, not losing, its in-flight work).
    ///
    /// # Panics
    ///
    /// Panics on an empty window or a rack outside the fleet.
    pub fn rack_partition(
        &self,
        at_ms: f64,
        until_ms: f64,
        rack: usize,
        hosts: usize,
    ) -> Vec<FailureEvent> {
        assert!(until_ms > at_ms, "partition window must have extent");
        let members = self.rack_hosts(rack, hosts);
        assert!(!members.is_empty(), "rack {rack} is outside the fleet");
        members
            .flat_map(|h| FailureEvent::partition_window(at_ms, until_ms, h))
            .collect()
    }
}

/// Generate a **correlated** outage schedule: per-rack and per-domain
/// exponential failure streams (means `rack_mtbf_ms` / `domain_mtbf_ms`
/// between outages, each lasting `mttr_ms`), expanded to the member
/// hosts and merged — a host inside overlapping rack and domain
/// outages crashes once and recovers once, at the union window's
/// edges. Everything is clamped to `horizon_ms`, and the result always
/// passes [`crate::failure::validate_schedule`]. Events come out
/// sorted by `(time, host)`.
///
/// Streams derive from `seed` (rack `r` uses stream `0xD0_0000 + r`,
/// domain `d` uses `0xD1_0000 + d`), so the schedule is a pure
/// function of its arguments — no wall clock anywhere.
///
/// # Panics
///
/// Panics on nonpositive horizon, MTBFs, or MTTR.
pub fn seeded_domain_outages(
    seed: u64,
    topo: FleetTopology,
    hosts: usize,
    horizon_ms: f64,
    rack_mtbf_ms: f64,
    domain_mtbf_ms: f64,
    mttr_ms: f64,
) -> Vec<FailureEvent> {
    assert!(
        horizon_ms > 0.0 && rack_mtbf_ms > 0.0 && domain_mtbf_ms > 0.0 && mttr_ms > 0.0,
        "horizon, MTBFs, and MTTR must be positive"
    );
    let windows = |stream: u64, mtbf: f64| -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(sim::stream_seed(seed, stream));
        let mut out = Vec::new();
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mtbf * u.ln();
            if t >= horizon_ms {
                break;
            }
            out.push((t, (t + mttr_ms).min(horizon_ms)));
            t += mttr_ms;
        }
        out
    };

    // Draw domain and rack streams, then scatter the windows onto
    // member hosts.
    let mut per_host: Vec<Vec<(f64, f64)>> = vec![Vec::new(); hosts];
    let racks = hosts.div_ceil(topo.hosts_per_rack);
    let domains = racks.div_ceil(topo.racks_per_domain);
    for d in 0..domains {
        for w in windows(0xD1_0000 + d as u64, domain_mtbf_ms) {
            for h in topo.domain_hosts(d, hosts) {
                per_host[h].push(w);
            }
        }
    }
    for r in 0..racks {
        for w in windows(0xD0_0000 + r as u64, rack_mtbf_ms) {
            for h in topo.rack_hosts(r, hosts) {
                per_host[h].push(w);
            }
        }
    }

    // Merge overlapping windows per host so a rack outage inside a
    // domain outage yields one crash/recover pair.
    let mut events = Vec::new();
    for (host, mut ws) in per_host.into_iter().enumerate() {
        ws.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.total_cmp(&b.1)));
        let mut it = ws.into_iter();
        let Some(mut cur) = it.next() else { continue };
        for w in it {
            if w.0 <= cur.1 {
                cur.1 = cur.1.max(w.1);
            } else {
                events.push(FailureEvent::crash(cur.0, host));
                events.push(FailureEvent::recover(cur.1, host));
                cur = w;
            }
        }
        events.push(FailureEvent::crash(cur.0, host));
        events.push(FailureEvent::recover(cur.1, host));
    }
    events.sort_by(|a, b| {
        a.at_ms
            .partial_cmp(&b.at_ms)
            .expect("finite failure times")
            .then(a.host.cmp(&b.host))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::failure::{validate_schedule, FailureKind};

    #[test]
    fn containment_maps_hosts_to_racks_to_domains() {
        let t = FleetTopology::new(4, 2);
        assert_eq!(t.rack_of(0), 0);
        assert_eq!(t.rack_of(7), 1);
        assert_eq!(t.rack_of(8), 2);
        assert_eq!(t.domain_of(7), 0);
        assert_eq!(t.domain_of(8), 1);
        assert_eq!(t.rack_hosts(1, 16), 4..8);
        assert_eq!(t.rack_hosts(3, 14), 12..14, "last rack may be partial");
        assert_eq!(t.domain_hosts(1, 16), 8..16);
    }

    #[test]
    fn rack_outage_crashes_every_member_at_one_timestamp() {
        let t = FleetTopology::new(4, 2);
        let evs = t.rack_outage(10.0, 25.0, 1, 16);
        assert_eq!(evs.len(), 8);
        for h in 4..8 {
            assert!(evs.contains(&FailureEvent::crash(10.0, h)));
            assert!(evs.contains(&FailureEvent::recover(25.0, h)));
        }
        assert!(validate_schedule(&evs, &[2; 16]).is_ok());
    }

    #[test]
    fn rack_partition_expands_to_member_partition_windows() {
        let t = FleetTopology::new(2, 2);
        let evs = t.rack_partition(5.0, 9.0, 0, 4);
        assert_eq!(evs.len(), 4);
        assert_eq!(
            evs.iter()
                .filter(|e| e.kind == FailureKind::PartitionStart)
                .count(),
            2
        );
        assert!(validate_schedule(&evs, &[2; 4]).is_ok());
    }

    #[test]
    fn seeded_domain_outages_are_reproducible_correlated_and_valid() {
        let t = FleetTopology::new(4, 2);
        let a = seeded_domain_outages(42, t, 16, 2000.0, 900.0, 3000.0, 60.0);
        let b = seeded_domain_outages(42, t, 16, 2000.0, 900.0, 3000.0, 60.0);
        assert_eq!(a, b, "pure function of the seed");
        assert_ne!(
            a,
            seeded_domain_outages(43, t, 16, 2000.0, 900.0, 3000.0, 60.0)
        );
        assert!(!a.is_empty(), "a 2 s horizon at these MTBFs must fail");
        assert!(a.iter().all(|e| e.at_ms <= 2000.0), "clamped to horizon");
        // Correlation: some crash timestamp is shared by a whole rack.
        let mut by_time: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for e in a.iter().filter(|e| e.kind == FailureKind::Crash) {
            by_time.entry(e.at_ms.to_bits()).or_default().push(e.host);
        }
        assert!(
            by_time.values().any(|hosts| hosts.len() >= 4),
            "no correlated (whole-rack) crash found"
        );
        // Overlap merging: the expanded schedule is always legal.
        assert!(validate_schedule(&a, &[2; 16]).is_ok());
    }

    #[test]
    fn overlapping_rack_and_domain_windows_merge_per_host() {
        // Force overlap by making domain outages as common as rack
        // outages with a long MTTR: merging must keep the schedule
        // valid (no double crash) at every seed tried.
        let t = FleetTopology::new(2, 2);
        for seed in 0..8 {
            let evs = seeded_domain_outages(seed, t, 8, 1000.0, 300.0, 300.0, 150.0);
            assert!(
                validate_schedule(&evs, &[2; 8]).is_ok(),
                "seed {seed} produced an invalid merged schedule"
            );
        }
    }
}
