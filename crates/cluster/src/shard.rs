//! Partitioning a fleet into independent shards for the parallel
//! engine.
//!
//! The fleet simulation's only cross-host coupling is the front end:
//! a tenant's router picks among *its own* replicas, and a failure
//! touches one host. That makes the tenant↔host bipartite graph of the
//! placement plan the exact interaction structure of the run — two
//! hosts interact iff some tenant has replicas on both, transitively.
//! Each connected component of that graph is a fully independent
//! sub-simulation: no event in one component ever reads or writes
//! state in another, every RNG stream is keyed by *global* host/tenant
//! index, and the event queue's `(time, seq)` order restricted to a
//! component equals the order the component's own queue produces (the
//! engine schedules initial arrivals in ascending tenant order and
//! failures in schedule order, both preserved per component). So the
//! sharded engine runs components on worker threads and merges — and
//! is **byte-identical** to the single-threaded reference for every
//! seed, which `TPU_CLUSTER_ENGINE=single` keeps available as the
//! differential baseline (the same escape-hatch pattern as
//! `TPU_SIM_EVENT_QUEUE=heap` and `TPU_CLUSTER_ROUTER=scan`).
//!
//! Sharding is conservative about what it accepts (anything else falls
//! back to the reference engine, trivially byte-identical):
//!
//! * **no autoscaler** — scale-up may place a replica on any host,
//!   coupling components dynamically;
//! * **no telemetry instruments** — artifacts interleave events across
//!   hosts in global orders the shards don't see;
//! * (for the automatic default) **≥ 2 components and ≥ 2 workers** —
//!   otherwise parallelism buys nothing.
//!
//! `TPU_CLUSTER_SHARDS=N` pins the worker count (results are identical
//! for every `N`; only wall-clock changes). Components are assigned to
//! workers longest-processing-time-first by expected event volume, so
//! a few heavy cells don't serialize behind one thread.

use crate::failure::FailureEvent;
use crate::fleet::{FleetSpec, FleetTenantSpec};

/// One shard's slice of the fleet, everything in **local** index space
/// with the mapping back to global ids. The identity scope (all hosts,
/// all tenants) is what the single-threaded reference runs under.
pub(crate) struct Scope {
    /// Global host index per local host, ascending.
    pub hosts: Vec<usize>,
    /// Global tenant index per local tenant, ascending.
    pub tenants: Vec<usize>,
    /// `(global failure index, event)` in schedule order, with
    /// `event.host` rewritten to the local host index.
    pub failures: Vec<(usize, FailureEvent)>,
    /// `plan[local_tenant][replica]` = local host index — the slice of
    /// the *globally computed* placement (never re-planned, which
    /// could differ).
    pub plan: Vec<Vec<usize>>,
}

impl Scope {
    /// The whole fleet as one scope — the single-threaded reference.
    pub fn identity(spec: &FleetSpec, assignments: &[Vec<usize>]) -> Self {
        Scope {
            hosts: (0..spec.hosts.len()).collect(),
            tenants: (0..assignments.len()).collect(),
            failures: spec.failures.iter().copied().enumerate().collect(),
            plan: assignments.to_vec(),
        }
    }
}

/// Which engine a run should use.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum EngineChoice {
    /// Forced single-threaded reference (`TPU_CLUSTER_ENGINE=single`).
    Single,
    /// Forced sharded when eligible (`TPU_CLUSTER_ENGINE=sharded`);
    /// ineligible specs still fall back to the reference.
    Sharded,
    /// Shard when eligible and it can actually help (≥ 2 components,
    /// ≥ 2 workers).
    Auto,
}

/// Read `TPU_CLUSTER_ENGINE`; anything but `single`/`sharded` is auto.
pub(crate) fn engine_choice() -> EngineChoice {
    match std::env::var("TPU_CLUSTER_ENGINE").as_deref() {
        Ok("single") => EngineChoice::Single,
        Ok("sharded") => EngineChoice::Sharded,
        _ => EngineChoice::Auto,
    }
}

/// Worker thread count: `TPU_CLUSTER_SHARDS` if set and positive, else
/// the machine's available parallelism.
pub(crate) fn shard_workers() -> usize {
    match std::env::var("TPU_CLUSTER_SHARDS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
    }
}

/// Partition the fleet into connected components of the tenant↔host
/// graph, each as a self-contained [`Scope`]. Hosts carrying no
/// replica join the first component (they exchange no events with
/// anyone; their failures only flip their own counters). Components
/// come out ordered by their lowest global host index.
pub(crate) fn partition(spec: &FleetSpec, assignments: &[Vec<usize>]) -> Vec<Scope> {
    let n = spec.hosts.len();
    let mut uf = UnionFind::new(n);
    for hosts in assignments {
        for &h in &hosts[1..] {
            uf.union(hosts[0], h);
        }
    }
    // Tenantless hosts ride with the component of the first placed
    // replica's host (tenants are non-empty, so one exists).
    let anchor = assignments[0][0];
    let placed: Vec<bool> = {
        let mut p = vec![false; n];
        for hosts in assignments {
            for &h in hosts {
                p[h] = true;
            }
        }
        p
    };
    for (h, &p) in placed.iter().enumerate() {
        if !p {
            uf.union(anchor, h);
        }
    }

    // Group hosts by root, components ordered by lowest host index
    // (host iteration order is ascending, so first-seen order is it).
    let mut comp_of_root: Vec<Option<usize>> = vec![None; n];
    let mut comp_hosts: Vec<Vec<usize>> = Vec::new();
    let mut comp_of_host = vec![0usize; n];
    for (h, slot) in comp_of_host.iter_mut().enumerate() {
        let root = uf.find(h);
        let c = *comp_of_root[root].get_or_insert_with(|| {
            comp_hosts.push(Vec::new());
            comp_hosts.len() - 1
        });
        comp_hosts[c].push(h);
        *slot = c;
    }

    let mut scopes: Vec<Scope> = comp_hosts
        .into_iter()
        .map(|hosts| Scope {
            hosts,
            tenants: Vec::new(),
            failures: Vec::new(),
            plan: Vec::new(),
        })
        .collect();

    // Local host index lookup, shared across components (host ids are
    // disjoint between scopes).
    let mut local_host = vec![0usize; n];
    for s in &scopes {
        for (local, &h) in s.hosts.iter().enumerate() {
            local_host[h] = local;
        }
    }

    for (t, hosts) in assignments.iter().enumerate() {
        let c = comp_of_host[hosts[0]];
        let s = &mut scopes[c];
        s.tenants.push(t);
        s.plan.push(hosts.iter().map(|&h| local_host[h]).collect());
    }
    for (i, f) in spec.failures.iter().enumerate() {
        let mut local = *f;
        local.host = local_host[f.host];
        scopes[comp_of_host[f.host]].failures.push((i, local));
    }
    scopes
}

/// The expected event volume of a scope — the load-balancing weight
/// for worker assignment (requests dominate the event count; hosts
/// break near-ties between cells of equal traffic).
pub(crate) fn scope_weight(scope: &Scope, tenants: &[FleetTenantSpec]) -> u64 {
    scope
        .tenants
        .iter()
        .map(|&t| tenants[t].tenant.requests as u64)
        .sum::<u64>()
        + scope.hosts.len() as u64
}

/// Deterministic longest-processing-time-first assignment of
/// components to `workers` threads: heaviest first, each onto the
/// least-loaded worker (ties by index). Purely a wall-clock concern —
/// any assignment produces identical results.
pub(crate) fn assign_workers(weights: &[u64], workers: usize) -> Vec<Vec<usize>> {
    let workers = workers.min(weights.len()).max(1);
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&c| (std::cmp::Reverse(weights[c]), c));
    let mut load = vec![0u64; workers];
    let mut out = vec![Vec::new(); workers];
    for c in order {
        let w = (0..workers).min_by_key(|&w| (load[w], w)).expect(">= 1");
        load[w] += weights[c];
        out[w].push(c);
    }
    out
}

/// Path-compressed union-find over host indices.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            // Lower root wins: keeps component identity stable under
            // permutations of the union order.
            let (lo, hi) = (ra.min(rb), ra.max(rb));
            self.parent[hi] = lo;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec_with_hosts(n: usize) -> FleetSpec {
        FleetSpec::new(n, 4, 42)
    }

    #[test]
    fn disjoint_tenants_split_into_components() {
        let spec = spec_with_hosts(6);
        // Tenant 0 on hosts {0,1}, tenant 1 on {2,3}, tenant 2 on {3,4}
        // (overlaps tenant 1), host 5 tenantless.
        let plan = vec![vec![0, 1], vec![2, 3], vec![3, 4]];
        let scopes = partition(&spec, &plan);
        assert_eq!(scopes.len(), 2);
        assert_eq!(scopes[0].hosts, vec![0, 1, 5]); // tenantless rides along
        assert_eq!(scopes[0].tenants, vec![0]);
        assert_eq!(scopes[0].plan, vec![vec![0, 1]]);
        assert_eq!(scopes[1].hosts, vec![2, 3, 4]);
        assert_eq!(scopes[1].tenants, vec![1, 2]);
        assert_eq!(scopes[1].plan, vec![vec![0, 1], vec![1, 2]]);
    }

    #[test]
    fn failures_follow_their_host_with_localized_indices() {
        let mut spec = spec_with_hosts(4);
        spec.failures = vec![
            FailureEvent::crash(10.0, 3),
            FailureEvent::crash(20.0, 0),
            FailureEvent::recover(30.0, 3),
        ];
        let plan = vec![vec![0, 1], vec![2, 3]];
        let scopes = partition(&spec, &plan);
        assert_eq!(scopes.len(), 2);
        assert_eq!(scopes[0].failures.len(), 1);
        assert_eq!(scopes[0].failures[0].0, 1); // global index kept
        assert_eq!(scopes[0].failures[0].1.host, 0);
        assert_eq!(scopes[1].failures.len(), 2);
        assert_eq!(scopes[1].failures[0].0, 0);
        assert_eq!(scopes[1].failures[0].1.host, 1); // host 3 → local 1
        assert_eq!(scopes[1].failures[1].0, 2);
    }

    #[test]
    fn lpt_assignment_balances_and_is_deterministic() {
        let weights = [100, 10, 90, 50, 60];
        let a = assign_workers(&weights, 2);
        assert_eq!(a, assign_workers(&weights, 2));
        let loads: Vec<u64> = a
            .iter()
            .map(|comps| comps.iter().map(|&c| weights[c]).sum())
            .collect();
        // LPT on these weights lands within one item of even.
        assert!(loads.iter().max().unwrap() - loads.iter().min().unwrap() <= 20);
        // Every component appears exactly once.
        let mut seen: Vec<usize> = a.into_iter().flatten().collect();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4]);
    }
}
