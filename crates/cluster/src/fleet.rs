//! Fleet topology: hosts, replicated tenants, network hops, and model
//! placement under weight-memory capacity constraints.
//!
//! A fleet is a set of TPU hosts (each a [`tpu_serve::HostCore`] die
//! pool) plus the front-end configuration: the routing policy, the
//! per-hop latency model, an optional autoscaler, and a failure
//! schedule. Placement replicates each Table 1 workload across hosts,
//! charging each replica the workload's full 8-bit weight footprint
//! ([`tpu_nn::model::NnModel::total_weights`]) against the host's
//! weight-memory capacity — the paper's TPU carries 8 GiB of DDR3
//! weight DRAM, which is the default budget here.

use crate::autoscale::AutoscaleConfig;
use crate::failure::FailureEvent;
use crate::route::RouterPolicy;
use serde::{Deserialize, Serialize};
use tpu_platforms::server::Dispatch;
use tpu_platforms::HostOverhead;
use tpu_serve::tenant::resolve_workload;
use tpu_serve::TenantSpec;

/// The paper's TPU weight-memory budget: 8 GiB of DDR3.
pub const DEFAULT_WEIGHT_CAPACITY_BYTES: u64 = 8 * 1024 * 1024 * 1024;

/// One TPU host of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Accelerator dies behind this host.
    pub dies: usize,
    /// How the host routes ready batches to free dies.
    pub dispatch: Dispatch,
    /// Weight-memory capacity, bytes (8-bit weights).
    pub weight_capacity_bytes: u64,
}

impl HostSpec {
    /// A host with `dies` dies, least-loaded dispatch, and the paper's
    /// 8 GiB weight memory.
    pub fn new(dies: usize) -> Self {
        HostSpec {
            dies,
            dispatch: Dispatch::LeastLoaded,
            weight_capacity_bytes: DEFAULT_WEIGHT_CAPACITY_BYTES,
        }
    }

    /// Override the weight-memory capacity.
    pub fn with_weight_capacity(mut self, bytes: u64) -> Self {
        self.weight_capacity_bytes = bytes;
        self
    }
}

/// The front-end → host network/PCIe hop latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HopModel {
    /// Zero-cost hops: requests reach the host queue instantly. A
    /// 1-host fleet with this model reproduces `tpu_serve` bit for bit.
    None,
    /// Hop latency derived from the Table 5 host-interaction data: each
    /// hop costs `scale_ms` × the workload's measured host-overhead
    /// fraction (e.g. MLP0's 21% → 0.21 ms at scale 1.0). Heavier
    /// host-interaction workloads pay proportionally more per hop.
    Table5 {
        /// Milliseconds per unit of Table 5 overhead fraction.
        scale_ms: f64,
    },
}

impl HopModel {
    /// The hop latency for one workload, ms.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name (Table 5 is keyed by name).
    pub fn hop_ms(&self, workload: &str) -> f64 {
        match *self {
            HopModel::None => 0.0,
            HopModel::Table5 { scale_ms } => {
                assert!(scale_ms >= 0.0, "hop scale must be nonnegative");
                scale_ms * HostOverhead::for_app(workload).fraction
            }
        }
    }
}

/// One tenant of the fleet: a `tpu_serve` tenant spec plus replication
/// bounds. `tenant.requests` is the tenant's *fleet-wide* request
/// count; the router spreads it across replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantSpec {
    /// The workload, arrival process, policy, priority, and SLO.
    pub tenant: TenantSpec,
    /// Replicas placed at simulation start.
    pub replicas: usize,
    /// Autoscaler floor (≥ 1).
    pub min_replicas: usize,
    /// Autoscaler ceiling.
    pub max_replicas: usize,
}

impl FleetTenantSpec {
    /// A tenant with a fixed replica count (autoscaler bounds pinned to
    /// `replicas`).
    ///
    /// # Panics
    ///
    /// Panics on zero replicas.
    pub fn new(tenant: TenantSpec, replicas: usize) -> Self {
        assert!(replicas > 0, "tenant {} needs a replica", tenant.name);
        FleetTenantSpec {
            tenant,
            replicas,
            min_replicas: replicas,
            max_replicas: replicas,
        }
    }

    /// Let the autoscaler move the replica count within `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= replicas <= max`.
    pub fn with_replica_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(
            1 <= min && min <= self.replicas && self.replicas <= max,
            "replica bounds must satisfy 1 <= min <= start <= max"
        );
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }

    /// The replica's weight-memory footprint, bytes (8-bit weights).
    pub fn weight_bytes(&self) -> u64 {
        resolve_workload(&self.tenant.workload)
            .expect("validated at TenantSpec construction")
            .total_weights()
    }
}

/// The whole fleet: hosts plus front-end configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// The hosts, in index order.
    pub hosts: Vec<HostSpec>,
    /// Master seed; host service streams, tenant arrival streams, and
    /// failure schedules all derive from it.
    pub seed: u64,
    /// Front-end routing policy.
    pub router: RouterPolicy,
    /// Network/PCIe hop latency model.
    pub hop: HopModel,
    /// Reactive autoscaler; `None` freezes replica counts.
    pub autoscale: Option<AutoscaleConfig>,
    /// Failure injection schedule (crashes, stragglers, recoveries).
    pub failures: Vec<FailureEvent>,
}

impl FleetSpec {
    /// A uniform fleet: `hosts` hosts of `dies_per_host` dies each,
    /// least-outstanding routing, zero-cost hops, no autoscaler, no
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn new(hosts: usize, dies_per_host: usize, seed: u64) -> Self {
        assert!(hosts > 0, "need at least one host");
        FleetSpec {
            hosts: (0..hosts).map(|_| HostSpec::new(dies_per_host)).collect(),
            seed,
            router: RouterPolicy::LeastOutstanding,
            hop: HopModel::None,
            autoscale: None,
            failures: Vec::new(),
        }
    }

    /// Select the routing policy.
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Select the hop latency model.
    pub fn with_hop(mut self, hop: HopModel) -> Self {
        self.hop = hop;
        self
    }

    /// Enable the reactive autoscaler.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Install a failure schedule.
    pub fn with_failures(mut self, failures: Vec<FailureEvent>) -> Self {
        self.failures = failures;
        self
    }
}

/// Plan initial placement: for each tenant in declaration order, place
/// each replica on the eligible host (enough free weight memory, not
/// already hosting the tenant) carrying the fewest replicas so far,
/// breaking ties by host index. Returns `plan[tenant][replica] = host`.
///
/// # Panics
///
/// Panics when a replica cannot be placed — the error names the
/// tenant, its footprint, and the per-host free memory so capacity
/// bugs in scenario definitions surface immediately.
pub fn place(hosts: &[HostSpec], tenants: &[FleetTenantSpec]) -> Vec<Vec<usize>> {
    let mut used = vec![0u64; hosts.len()];
    let mut slots = vec![0usize; hosts.len()];
    let mut plan = Vec::with_capacity(tenants.len());
    for t in tenants {
        let w = t.weight_bytes();
        let mut mine = Vec::with_capacity(t.replicas);
        for r in 0..t.replicas {
            let host = hosts
                .iter()
                .enumerate()
                .filter(|(h, spec)| !mine.contains(h) && used[*h] + w <= spec.weight_capacity_bytes)
                .min_by_key(|(h, _)| (slots[*h], *h))
                .map(|(h, _)| h)
                .unwrap_or_else(|| {
                    panic!(
                        "cannot place replica {r} of tenant {} ({w} weight bytes): \
                         free per host = {:?}",
                        t.tenant.name,
                        hosts
                            .iter()
                            .enumerate()
                            .map(|(h, s)| s.weight_capacity_bytes.saturating_sub(used[h]))
                            .collect::<Vec<_>>()
                    )
                });
            used[host] += w;
            slots[host] += 1;
            mine.push(host);
        }
        plan.push(mine);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_serve::tenant::ArrivalProcess;
    use tpu_serve::BatchPolicy;

    fn tenant(workload: &str, replicas: usize) -> FleetTenantSpec {
        FleetTenantSpec::new(
            TenantSpec::new(
                workload,
                ArrivalProcess::Poisson { rate_rps: 1000.0 },
                BatchPolicy::Fixed { batch: 8 },
                7.0,
                100,
            ),
            replicas,
        )
    }

    #[test]
    fn placement_spreads_replicas_across_distinct_hosts() {
        let hosts: Vec<HostSpec> = (0..4).map(|_| HostSpec::new(2)).collect();
        let plan = place(&hosts, &[tenant("MLP0", 3), tenant("LSTM0", 2)]);
        assert_eq!(plan[0], vec![0, 1, 2]);
        // LSTM0 prefers the emptiest host (3), then the least-loaded
        // remaining one by index.
        assert_eq!(plan[1], vec![3, 0]);
        let mut all = plan[0].clone();
        all.dedup();
        assert_eq!(all.len(), 3, "replicas of one tenant on distinct hosts");
    }

    #[test]
    fn placement_respects_weight_capacity() {
        // CNN1 carries ~86M weights, MLP0 20M. A 90 MB host fits one
        // CNN1 replica and nothing more, so MLP0 lands on host 2.
        let small = HostSpec::new(1).with_weight_capacity(90_000_000);
        let plan = place(
            &[small.clone(), small.clone(), small],
            &[tenant("CNN1", 2), tenant("MLP0", 1)],
        );
        assert_eq!(plan[0], vec![0, 1]);
        assert_eq!(plan[1], vec![2], "only host 2 has 20M free");
    }

    #[test]
    #[should_panic(expected = "cannot place replica 1")]
    fn capacity_exhaustion_blocks_the_second_replica() {
        let small = HostSpec::new(1).with_weight_capacity(90_000_000);
        let _ = place(
            &[small.clone(), small.clone(), small],
            &[tenant("CNN1", 2), tenant("MLP0", 2)],
        );
    }

    #[test]
    #[should_panic(expected = "cannot place replica")]
    fn infeasible_placement_panics_with_context() {
        let tiny = HostSpec::new(1).with_weight_capacity(1_000_000);
        let _ = place(&[tiny], &[tenant("CNN1", 1)]);
    }

    #[test]
    fn table5_hops_scale_with_host_overhead() {
        let hop = HopModel::Table5 { scale_ms: 2.0 };
        assert!((hop.hop_ms("MLP0") - 0.42).abs() < 1e-12);
        assert!((hop.hop_ms("MLP1") - 1.52).abs() < 1e-12);
        assert_eq!(HopModel::None.hop_ms("CNN0"), 0.0);
    }

    #[test]
    fn replica_bounds_validate() {
        let t = tenant("MLP0", 3).with_replica_bounds(2, 6);
        assert_eq!((t.min_replicas, t.max_replicas), (2, 6));
    }

    #[test]
    #[should_panic(expected = "replica bounds")]
    fn bad_replica_bounds_rejected() {
        let _ = tenant("MLP0", 3).with_replica_bounds(4, 6);
    }
}
