//! Fleet topology: hosts, replicated tenants, network hops, and model
//! placement under weight-memory capacity constraints.
//!
//! A fleet is a set of TPU hosts (each a [`tpu_serve::HostCore`] die
//! pool) plus the front-end configuration: the routing policy, the
//! per-hop latency model, an optional autoscaler, and a failure
//! schedule. Placement replicates each Table 1 workload across hosts,
//! charging each replica the workload's full 8-bit weight footprint
//! ([`tpu_nn::model::NnModel::total_weights`]) against the host's
//! weight-memory capacity — the paper's TPU carries 8 GiB of DDR3
//! weight DRAM, which is the default budget here.

use crate::autoscale::AutoscaleConfig;
use crate::failure::FailureEvent;
use crate::resilience::{BrownoutConfig, RetryPolicy};
use crate::route::RouterPolicy;
use serde::{Deserialize, Serialize};
use std::fmt;
use tpu_core::TpuConfig;
use tpu_platforms::server::Dispatch;
use tpu_platforms::HostOverhead;
use tpu_serve::tenant::resolve_workload;
use tpu_serve::weights::{swap_cost_ms, WeightSet};
use tpu_serve::TenantSpec;

/// The paper's TPU weight-memory budget: 8 GiB of DDR3 (the single
/// definition lives in `tpu_serve::weights`, shared with the swap-cost
/// model).
pub const DEFAULT_WEIGHT_CAPACITY_BYTES: u64 = tpu_serve::weights::DDR3_CAPACITY_BYTES;

/// One TPU host of the fleet.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostSpec {
    /// Accelerator dies behind this host.
    pub dies: usize,
    /// How the host routes ready batches to free dies.
    pub dispatch: Dispatch,
    /// Weight-memory capacity, bytes (8-bit weights).
    pub weight_capacity_bytes: u64,
}

impl HostSpec {
    /// A host with `dies` dies, least-loaded dispatch, and the paper's
    /// 8 GiB weight memory.
    pub fn new(dies: usize) -> Self {
        HostSpec {
            dies,
            dispatch: Dispatch::LeastLoaded,
            weight_capacity_bytes: DEFAULT_WEIGHT_CAPACITY_BYTES,
        }
    }

    /// Override the weight-memory capacity.
    pub fn with_weight_capacity(mut self, bytes: u64) -> Self {
        self.weight_capacity_bytes = bytes;
        self
    }
}

/// The front-end → host network/PCIe hop latency model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HopModel {
    /// Zero-cost hops: requests reach the host queue instantly. A
    /// 1-host fleet with this model reproduces `tpu_serve` bit for bit.
    None,
    /// Hop latency derived from the Table 5 host-interaction data: each
    /// hop costs `scale_ms` × the workload's measured host-overhead
    /// fraction (e.g. MLP0's 21% → 0.21 ms at scale 1.0). Heavier
    /// host-interaction workloads pay proportionally more per hop.
    Table5 {
        /// Milliseconds per unit of Table 5 overhead fraction.
        scale_ms: f64,
    },
}

impl HopModel {
    /// The hop latency for one workload, ms.
    ///
    /// # Panics
    ///
    /// Panics on an unknown workload name (Table 5 is keyed by name).
    pub fn hop_ms(&self, workload: &str) -> f64 {
        match *self {
            HopModel::None => 0.0,
            HopModel::Table5 { scale_ms } => {
                assert!(scale_ms >= 0.0, "hop scale must be nonnegative");
                scale_ms * HostOverhead::for_app(workload).fraction
            }
        }
    }
}

/// One tenant of the fleet: a `tpu_serve` tenant spec plus replication
/// bounds. `tenant.requests` is the tenant's *fleet-wide* request
/// count; the router spreads it across replicas.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantSpec {
    /// The workload, arrival process, policy, priority, and SLO.
    pub tenant: TenantSpec,
    /// Replicas placed at simulation start.
    pub replicas: usize,
    /// Autoscaler floor (≥ 1).
    pub min_replicas: usize,
    /// Autoscaler ceiling.
    pub max_replicas: usize,
}

impl FleetTenantSpec {
    /// A tenant with a fixed replica count (autoscaler bounds pinned to
    /// `replicas`).
    ///
    /// # Panics
    ///
    /// Panics on zero replicas.
    pub fn new(tenant: TenantSpec, replicas: usize) -> Self {
        assert!(replicas > 0, "tenant {} needs a replica", tenant.name);
        FleetTenantSpec {
            tenant,
            replicas,
            min_replicas: replicas,
            max_replicas: replicas,
        }
    }

    /// Let the autoscaler move the replica count within `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= min <= replicas <= max`.
    pub fn with_replica_bounds(mut self, min: usize, max: usize) -> Self {
        assert!(
            1 <= min && min <= self.replicas && self.replicas <= max,
            "replica bounds must satisfy 1 <= min <= start <= max"
        );
        self.min_replicas = min;
        self.max_replicas = max;
        self
    }

    /// The replica's weight-memory footprint, bytes (8-bit weights).
    pub fn weight_bytes(&self) -> u64 {
        resolve_workload(&self.tenant.workload)
            .expect("validated at TenantSpec construction")
            .total_weights()
    }
}

/// How the initial placement plan is computed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PlacementPolicy {
    /// The legacy spread planner: tenants in declaration order, each
    /// replica on the eligible host carrying the fewest slots so far
    /// (ties by index). Replicas of one tenant land on distinct hosts.
    Spread,
    /// Best-fit-decreasing bin packing with a combined objective:
    /// replicas are placed heaviest-footprint first, each on the
    /// feasible host minimizing `mem_weight × weight-memory fill +
    /// load_weight × expected die utilization` after the placement
    /// (ties by host index). Balances the 8 GiB DDR3 budget *and* the
    /// expected per-tenant load instead of just spreading slots.
    BinPack {
        /// Weight of the weight-memory fill term (≥ 0).
        mem_weight: f64,
        /// Weight of the expected-die-utilization term (≥ 0).
        load_weight: f64,
    },
}

impl PlacementPolicy {
    /// Reject degenerate objectives up front.
    ///
    /// # Panics
    ///
    /// Panics on negative or all-zero `BinPack` weights.
    pub fn validate(&self) {
        if let PlacementPolicy::BinPack {
            mem_weight,
            load_weight,
        } = *self
        {
            assert!(
                mem_weight >= 0.0 && load_weight >= 0.0,
                "bin-pack objective weights must be nonnegative"
            );
            assert!(
                mem_weight + load_weight > 0.0,
                "bin-pack objective needs at least one positive weight"
            );
        }
    }
}

/// Opt-in multi-model co-location. When set, the fleet charges the
/// DDR3-derived weight-swap stall whenever a die dispatches a batch
/// for a model other than the one its weight FIFO last streamed (see
/// `tpu_serve::weights`), the placement plan comes from
/// [`ColocateConfig::placement`], and the fleet report gains per-host
/// residency/swap columns and per-tenant swap counters. When `None`
/// (the default), every run is byte-identical to the pre-subsystem
/// engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocateConfig {
    /// The placement planner for the initial plan (autoscaling always
    /// adds replicas greedily, as before).
    pub placement: PlacementPolicy,
    /// Scale on the calibrated swap cost (1.0 = the Table 2 DDR3
    /// bandwidth with the Table 5 host-overhead inflation).
    pub swap_scale: f64,
}

impl ColocateConfig {
    /// Co-location under `placement` with the calibrated swap cost.
    pub fn new(placement: PlacementPolicy) -> Self {
        ColocateConfig {
            placement,
            swap_scale: 1.0,
        }
    }

    /// Bin packing with equal memory/load objective weights — the
    /// default co-located planner.
    pub fn bin_packed() -> Self {
        Self::new(PlacementPolicy::BinPack {
            mem_weight: 1.0,
            load_weight: 1.0,
        })
    }

    /// Scale the swap cost (scenarios sweep it).
    pub fn with_swap_scale(mut self, scale: f64) -> Self {
        self.swap_scale = scale;
        self
    }

    /// Reject degenerate configurations up front.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive or non-finite swap scale or a degenerate
    /// placement objective.
    pub fn validate(&self) {
        assert!(
            self.swap_scale > 0.0 && self.swap_scale.is_finite(),
            "swap scale must be positive and finite"
        );
        self.placement.validate();
    }
}

/// The whole fleet: hosts plus front-end configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetSpec {
    /// The hosts, in index order.
    pub hosts: Vec<HostSpec>,
    /// Master seed; host service streams, tenant arrival streams, and
    /// failure schedules all derive from it.
    pub seed: u64,
    /// Front-end routing policy.
    pub router: RouterPolicy,
    /// Network/PCIe hop latency model.
    pub hop: HopModel,
    /// Reactive autoscaler; `None` freezes replica counts.
    pub autoscale: Option<AutoscaleConfig>,
    /// Failure injection schedule (crashes, stragglers, recoveries).
    pub failures: Vec<FailureEvent>,
    /// Multi-model co-location; `None` (the default) keeps the legacy
    /// whole-replica behaviour bit for bit.
    pub colocate: Option<ColocateConfig>,
    /// Retry policy for displaced work; `None` (the default) keeps the
    /// legacy immediate-infinite retry bit for bit.
    pub retry: Option<RetryPolicy>,
    /// Brownout load-shedding; `None` (the default) admits everything.
    pub brownout: Option<BrownoutConfig>,
}

impl FleetSpec {
    /// A uniform fleet: `hosts` hosts of `dies_per_host` dies each,
    /// least-outstanding routing, zero-cost hops, no autoscaler, no
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics on an empty fleet.
    pub fn new(hosts: usize, dies_per_host: usize, seed: u64) -> Self {
        assert!(hosts > 0, "need at least one host");
        FleetSpec {
            hosts: (0..hosts).map(|_| HostSpec::new(dies_per_host)).collect(),
            seed,
            router: RouterPolicy::LeastOutstanding,
            hop: HopModel::None,
            autoscale: None,
            failures: Vec::new(),
            colocate: None,
            retry: None,
            brownout: None,
        }
    }

    /// Select the routing policy.
    pub fn with_router(mut self, router: RouterPolicy) -> Self {
        self.router = router;
        self
    }

    /// Select the hop latency model.
    pub fn with_hop(mut self, hop: HopModel) -> Self {
        self.hop = hop;
        self
    }

    /// Enable the reactive autoscaler.
    pub fn with_autoscale(mut self, autoscale: AutoscaleConfig) -> Self {
        self.autoscale = Some(autoscale);
        self
    }

    /// Install a failure schedule.
    pub fn with_failures(mut self, failures: Vec<FailureEvent>) -> Self {
        self.failures = failures;
        self
    }

    /// Opt in to multi-model co-location (weight-swap costs, the
    /// configured placement planner, residency/swap reporting).
    pub fn with_colocate(mut self, colocate: ColocateConfig) -> Self {
        colocate.validate();
        self.colocate = Some(colocate);
        self
    }

    /// Opt in to bounded, backed-off retries (with optional budget and
    /// hedging) instead of the legacy immediate-infinite retry.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        retry.validate();
        self.retry = Some(retry);
        self
    }

    /// Opt in to brownout load-shedding of low-priority admissions
    /// under SLO burn.
    pub fn with_brownout(mut self, brownout: BrownoutConfig) -> Self {
        brownout.validate();
        self.brownout = Some(brownout);
        self
    }

    /// The placement planner in force: the colocate config's, or the
    /// legacy spread planner.
    pub fn placement_policy(&self) -> PlacementPolicy {
        self.colocate
            .map(|c| c.placement)
            .unwrap_or(PlacementPolicy::Spread)
    }
}

/// Plan initial placement: for each tenant in declaration order, place
/// each replica on the eligible host (enough free weight memory, not
/// already hosting the tenant) carrying the fewest replicas so far,
/// breaking ties by host index. Returns `plan[tenant][replica] = host`.
///
/// # Panics
///
/// Panics when a replica cannot be placed — the error names the
/// tenant, its footprint, and the per-host free memory so capacity
/// bugs in scenario definitions surface immediately.
pub fn place(hosts: &[HostSpec], tenants: &[FleetTenantSpec]) -> Vec<Vec<usize>> {
    let mut used = vec![0u64; hosts.len()];
    let mut slots = vec![0usize; hosts.len()];
    let mut plan = Vec::with_capacity(tenants.len());
    for t in tenants {
        let w = t.weight_bytes();
        let mut mine = Vec::with_capacity(t.replicas);
        for r in 0..t.replicas {
            let host = hosts
                .iter()
                .enumerate()
                .filter(|(h, spec)| !mine.contains(h) && used[*h] + w <= spec.weight_capacity_bytes)
                .min_by_key(|(h, _)| (slots[*h], *h))
                .map(|(h, _)| h)
                .unwrap_or_else(|| {
                    panic!(
                        "cannot place replica {r} of tenant {} ({w} weight bytes): \
                         free per host = {:?}",
                        t.tenant.name,
                        hosts
                            .iter()
                            .enumerate()
                            .map(|(h, s)| s.weight_capacity_bytes.saturating_sub(used[h]))
                            .collect::<Vec<_>>()
                    )
                });
            used[host] += w;
            slots[host] += 1;
            mine.push(host);
        }
        plan.push(mine);
    }
    plan
}

/// The deterministic weight-swap stall one of `tenant`'s batches pays
/// when its die changes models: the Table 1 footprint streamed at the
/// configured DDR3 bandwidth, inflated by the workload's Table 5
/// host-interaction fraction and the colocate `swap_scale`.
pub fn tenant_swap_ms(tenant: &FleetTenantSpec, cfg: &TpuConfig, swap_scale: f64) -> f64 {
    swap_cost_ms(
        tenant.weight_bytes(),
        cfg,
        HostOverhead::for_app(&tenant.tenant.workload).fraction,
        swap_scale,
    )
}

/// The expected die-busy seconds per second one replica of `tenant`
/// contributes: its share of the tenant's mean offered rate times the
/// per-request die time at the policy's batch bound. Trace-file-backed
/// tenants (no analytic rate) contribute zero.
pub fn expected_replica_load(tenant: &FleetTenantSpec, cfg: &TpuConfig) -> f64 {
    let Some(rate) = tenant.tenant.arrivals.mean_rate_rps() else {
        return 0.0;
    };
    let per_replica = rate / tenant.replicas as f64;
    let b = tenant.tenant.policy.max_batch();
    let curve = tenant.tenant.effective_curve(cfg);
    per_replica * (curve.service_ms(b) / b as f64) / 1000.0
}

/// One host's share of a [`PlacementPlan`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostPlacement {
    /// Host index.
    pub host: usize,
    /// Dies behind the host.
    pub dies: usize,
    /// Weight bytes the plan places here.
    pub weight_bytes: u64,
    /// The host's weight-memory budget, bytes.
    pub capacity_bytes: u64,
    /// Expected die utilization from the placed replicas, in [0, ∞)
    /// (sum of [`expected_replica_load`] over the replicas ÷ dies).
    pub expected_load: f64,
    /// Tenant names of the placed replicas, in tenant declaration
    /// order.
    pub replicas: Vec<String>,
}

/// An initial placement: which host each tenant replica starts on,
/// plus the per-host residency/load summary the `tpu_cluster place`
/// inspector prints. The engine uses exactly this plan at run start —
/// a property test pins it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// `assignments[tenant][replica]` = host index.
    pub assignments: Vec<Vec<usize>>,
    /// Per-host summaries, in host index order.
    pub hosts: Vec<HostPlacement>,
}

impl PlacementPlan {
    /// The plan as a JSON value (stable key order), for
    /// `tpu_cluster place --json`.
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        Value::object([
            (
                "assignments".into(),
                Value::Array(
                    self.assignments
                        .iter()
                        .map(|hosts| {
                            Value::Array(hosts.iter().map(|&h| Value::Number(h as f64)).collect())
                        })
                        .collect(),
                ),
            ),
            (
                "hosts".into(),
                Value::Array(
                    self.hosts
                        .iter()
                        .map(|h| {
                            Value::object([
                                ("host".into(), Value::Number(h.host as f64)),
                                ("dies".into(), Value::Number(h.dies as f64)),
                                ("weight_bytes".into(), Value::Number(h.weight_bytes as f64)),
                                (
                                    "capacity_bytes".into(),
                                    Value::Number(h.capacity_bytes as f64),
                                ),
                                (
                                    "expected_load".into(),
                                    Value::Number((h.expected_load * 1000.0).round() / 1000.0),
                                ),
                                (
                                    "replicas".into(),
                                    Value::Array(
                                        h.replicas
                                            .iter()
                                            .map(|r| Value::String(r.clone()))
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

impl fmt::Display for PlacementPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<6} {:>5} {:>12} {:>9} {:>10}  replicas",
            "host", "dies", "weight MB", "fill%", "exp. load"
        )?;
        for h in &self.hosts {
            writeln!(
                f,
                "{:<6} {:>5} {:>12.1} {:>8.1}% {:>10.3}  {}",
                h.host,
                h.dies,
                h.weight_bytes as f64 / 1e6,
                100.0 * h.weight_bytes as f64 / h.capacity_bytes.max(1) as f64,
                h.expected_load,
                h.replicas.join(","),
            )?;
        }
        Ok(())
    }
}

/// Compute the initial placement plan the engine will use: the legacy
/// spread planner, or — when the spec opts into co-location — the
/// configured bin-packing planner. Either way every placement is
/// admitted through a `tpu_serve::weights::WeightSet` per host, so no
/// plan can oversubscribe a host's weight memory.
///
/// # Panics
///
/// Panics when a replica cannot be placed (the error names the tenant,
/// its footprint, and per-host free memory).
pub fn plan_placement(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
) -> PlacementPlan {
    let assignments = match spec.placement_policy() {
        PlacementPolicy::Spread => place(&spec.hosts, tenants),
        PlacementPolicy::BinPack {
            mem_weight,
            load_weight,
        } => bin_pack(&spec.hosts, tenants, cfg, mem_weight, load_weight),
    };
    let mut sets: Vec<WeightSet> = spec
        .hosts
        .iter()
        .map(|h| WeightSet::new(h.weight_capacity_bytes))
        .collect();
    let mut loads = vec![0.0f64; spec.hosts.len()];
    let mut replicas: Vec<Vec<String>> = vec![Vec::new(); spec.hosts.len()];
    for (t, ft) in tenants.iter().enumerate() {
        let w = ft.weight_bytes();
        let l = expected_replica_load(ft, cfg);
        for &host in &assignments[t] {
            sets[host]
                .admit(t, w)
                .unwrap_or_else(|e| panic!("planner oversubscribed host {host}: {e}"));
            loads[host] += l;
            replicas[host].push(ft.tenant.name.clone());
        }
    }
    let hosts = spec
        .hosts
        .iter()
        .enumerate()
        .map(|(h, hs)| HostPlacement {
            host: h,
            dies: hs.dies,
            weight_bytes: sets[h].used_bytes(),
            capacity_bytes: hs.weight_capacity_bytes,
            expected_load: loads[h] / hs.dies.max(1) as f64,
            replicas: std::mem::take(&mut replicas[h]),
        })
        .collect();
    PlacementPlan { assignments, hosts }
}

/// Best-fit-decreasing bin packing (see
/// [`PlacementPolicy::BinPack`]): replicas in heaviest-footprint-first
/// order (ties by tenant declaration order), each placed on the
/// feasible host — enough free weight memory, not already hosting the
/// tenant — minimizing the combined fill/load objective, ties by host
/// index. Deterministic: no RNG, stable orderings throughout.
///
/// # Panics
///
/// Panics when a replica cannot be placed.
fn bin_pack(
    hosts: &[HostSpec],
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    mem_weight: f64,
    load_weight: f64,
) -> Vec<Vec<usize>> {
    let mut order: Vec<usize> = (0..tenants.len()).collect();
    // Heaviest model first (classic BFD); stable, so equal footprints
    // keep declaration order.
    order.sort_by_key(|&t| std::cmp::Reverse(tenants[t].weight_bytes()));
    let mut sets: Vec<WeightSet> = hosts
        .iter()
        .map(|h| WeightSet::new(h.weight_capacity_bytes))
        .collect();
    let mut loads = vec![0.0f64; hosts.len()];
    let mut plan: Vec<Vec<usize>> = vec![Vec::new(); tenants.len()];
    for &t in &order {
        let ft = &tenants[t];
        let w = ft.weight_bytes();
        let l = expected_replica_load(ft, cfg);
        for r in 0..ft.replicas {
            let host = hosts
                .iter()
                .enumerate()
                .filter(|(h, _)| !plan[t].contains(h) && sets[*h].fits(w))
                .map(|(h, hs)| {
                    let fill =
                        (sets[h].used_bytes() + w) as f64 / hs.weight_capacity_bytes.max(1) as f64;
                    let util = (loads[h] + l) / hs.dies.max(1) as f64;
                    (mem_weight * fill + load_weight * util, h)
                })
                .min_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)))
                .map(|(_, h)| h)
                .unwrap_or_else(|| {
                    panic!(
                        "cannot bin-pack replica {r} of tenant {} ({w} weight bytes): \
                         free per host = {:?}",
                        ft.tenant.name,
                        sets.iter().map(WeightSet::free_bytes).collect::<Vec<_>>()
                    )
                });
            sets[host]
                .admit(t, w)
                .expect("feasibility checked by the filter");
            loads[host] += l;
            plan[t].push(host);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use tpu_serve::tenant::ArrivalProcess;
    use tpu_serve::BatchPolicy;

    fn tenant(workload: &str, replicas: usize) -> FleetTenantSpec {
        FleetTenantSpec::new(
            TenantSpec::new(
                workload,
                ArrivalProcess::Poisson { rate_rps: 1000.0 },
                BatchPolicy::Fixed { batch: 8 },
                7.0,
                100,
            ),
            replicas,
        )
    }

    #[test]
    fn placement_spreads_replicas_across_distinct_hosts() {
        let hosts: Vec<HostSpec> = (0..4).map(|_| HostSpec::new(2)).collect();
        let plan = place(&hosts, &[tenant("MLP0", 3), tenant("LSTM0", 2)]);
        assert_eq!(plan[0], vec![0, 1, 2]);
        // LSTM0 prefers the emptiest host (3), then the least-loaded
        // remaining one by index.
        assert_eq!(plan[1], vec![3, 0]);
        let mut all = plan[0].clone();
        all.dedup();
        assert_eq!(all.len(), 3, "replicas of one tenant on distinct hosts");
    }

    #[test]
    fn placement_respects_weight_capacity() {
        // CNN1 carries ~86M weights, MLP0 20M. A 90 MB host fits one
        // CNN1 replica and nothing more, so MLP0 lands on host 2.
        let small = HostSpec::new(1).with_weight_capacity(90_000_000);
        let plan = place(
            &[small.clone(), small.clone(), small],
            &[tenant("CNN1", 2), tenant("MLP0", 1)],
        );
        assert_eq!(plan[0], vec![0, 1]);
        assert_eq!(plan[1], vec![2], "only host 2 has 20M free");
    }

    #[test]
    #[should_panic(expected = "cannot place replica 1")]
    fn capacity_exhaustion_blocks_the_second_replica() {
        let small = HostSpec::new(1).with_weight_capacity(90_000_000);
        let _ = place(
            &[small.clone(), small.clone(), small],
            &[tenant("CNN1", 2), tenant("MLP0", 2)],
        );
    }

    #[test]
    #[should_panic(expected = "cannot place replica")]
    fn infeasible_placement_panics_with_context() {
        let tiny = HostSpec::new(1).with_weight_capacity(1_000_000);
        let _ = place(&[tiny], &[tenant("CNN1", 1)]);
    }

    fn spec_with(hosts: usize, dies: usize) -> FleetSpec {
        FleetSpec::new(hosts, dies, 42)
    }

    #[test]
    fn spread_plan_matches_the_legacy_placer_exactly() {
        let cfg = TpuConfig::paper();
        let spec = spec_with(4, 2);
        let tenants = [tenant("MLP0", 3), tenant("LSTM0", 2)];
        let plan = plan_placement(&spec, &tenants, &cfg);
        assert_eq!(plan.assignments, place(&spec.hosts, &tenants));
        assert_eq!(plan.hosts.len(), 4);
        let placed: usize = plan.hosts.iter().map(|h| h.replicas.len()).sum();
        assert_eq!(placed, 5);
        // MLP0 (20M weights) on hosts 0-2, LSTM0 (52M) on 3 and 0.
        assert_eq!(plan.hosts[0].replicas, vec!["MLP0", "LSTM0"]);
        assert_eq!(
            plan.hosts[0].weight_bytes,
            tenants[0].weight_bytes() + tenants[1].weight_bytes()
        );
    }

    #[test]
    fn bin_pack_places_heaviest_models_first_and_respects_capacity() {
        let cfg = TpuConfig::paper();
        // Hosts that fit CNN1 (~100M) plus one small model, nothing more.
        let mut spec = spec_with(3, 2).with_colocate(ColocateConfig::bin_packed());
        for h in &mut spec.hosts {
            h.weight_capacity_bytes = 130_000_000;
        }
        let tenants = [tenant("MLP0", 2), tenant("CNN1", 2), tenant("MLP1", 1)];
        let plan = plan_placement(&spec, &tenants, &cfg);
        for h in &plan.hosts {
            assert!(
                h.weight_bytes <= h.capacity_bytes,
                "host {} oversubscribed: {} > {}",
                h.host,
                h.weight_bytes,
                h.capacity_bytes
            );
        }
        // CNN1's two replicas land on distinct hosts despite being
        // placed first (heaviest).
        assert_eq!(plan.assignments[1].len(), 2);
        assert_ne!(plan.assignments[1][0], plan.assignments[1][1]);
    }

    #[test]
    fn bin_pack_load_objective_separates_hot_tenants() {
        let cfg = TpuConfig::paper();
        // Two equally heavy, hot tenants and plenty of memory: the
        // load term must spread them over both hosts rather than
        // stacking one host.
        let spec = spec_with(2, 2).with_colocate(ColocateConfig::new(PlacementPolicy::BinPack {
            mem_weight: 0.0,
            load_weight: 1.0,
        }));
        let mk = |name: &str| {
            let mut t = tenant("MLP0", 1);
            t.tenant = t.tenant.named(name);
            t
        };
        let tenants = [mk("hot-a"), mk("hot-b")];
        let plan = plan_placement(&spec, &tenants, &cfg);
        assert_ne!(
            plan.assignments[0][0], plan.assignments[1][0],
            "load-aware packing must not stack both hot tenants: {plan}"
        );
    }

    #[test]
    #[should_panic(expected = "cannot bin-pack replica")]
    fn bin_pack_panics_with_context_when_infeasible() {
        let cfg = TpuConfig::paper();
        let mut spec = spec_with(1, 1).with_colocate(ColocateConfig::bin_packed());
        spec.hosts[0].weight_capacity_bytes = 1_000_000;
        let _ = plan_placement(&spec, &[tenant("CNN1", 1)], &cfg);
    }

    #[test]
    fn swap_cost_tracks_footprint_and_table5_overhead() {
        let cfg = TpuConfig::paper();
        let mlp0 = tenant_swap_ms(&tenant("MLP0", 1), &cfg, 1.0);
        let cnn1 = tenant_swap_ms(&tenant("CNN1", 1), &cfg, 1.0);
        assert!(mlp0 > 0.0);
        // CNN1 carries ~5x MLP0's weights; overhead fractions differ
        // (0.14 vs 0.21) but the footprint dominates.
        assert!(cnn1 > 3.0 * mlp0, "CNN1 {cnn1} vs MLP0 {mlp0}");
        assert_eq!(tenant_swap_ms(&tenant("MLP0", 1), &cfg, 2.0), 2.0 * mlp0);
    }

    #[test]
    fn expected_replica_load_divides_by_replicas() {
        let cfg = TpuConfig::paper();
        let one = expected_replica_load(&tenant("MLP0", 1), &cfg);
        let four = expected_replica_load(&tenant("MLP0", 4), &cfg);
        assert!(one > 0.0);
        assert!((one / four - 4.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "swap scale must be positive")]
    fn degenerate_colocate_config_is_rejected() {
        let _ = spec_with(1, 1).with_colocate(ColocateConfig::bin_packed().with_swap_scale(0.0));
    }

    #[test]
    fn placement_plan_renders_text_and_json() {
        let cfg = TpuConfig::paper();
        let spec = spec_with(2, 2).with_colocate(ColocateConfig::bin_packed());
        let plan = plan_placement(&spec, &[tenant("MLP0", 2), tenant("LSTM0", 1)], &cfg);
        let text = format!("{plan}");
        for needle in ["host", "weight MB", "exp. load", "MLP0"] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
        let json = serde_json::to_string(&plan.to_json());
        for needle in ["\"assignments\"", "\"capacity_bytes\"", "\"expected_load\""] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
    }

    #[test]
    fn table5_hops_scale_with_host_overhead() {
        let hop = HopModel::Table5 { scale_ms: 2.0 };
        assert!((hop.hop_ms("MLP0") - 0.42).abs() < 1e-12);
        assert!((hop.hop_ms("MLP1") - 1.52).abs() < 1e-12);
        assert_eq!(HopModel::None.hop_ms("CNN0"), 0.0);
    }

    #[test]
    fn replica_bounds_validate() {
        let t = tenant("MLP0", 3).with_replica_bounds(2, 6);
        assert_eq!((t.min_replicas, t.max_replicas), (2, 6));
    }

    #[test]
    #[should_panic(expected = "replica bounds")]
    fn bad_replica_bounds_rejected() {
        let _ = tenant("MLP0", 3).with_replica_bounds(4, 6);
    }
}
