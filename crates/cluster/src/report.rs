//! Fleet-wide reporting: per-tenant tails across all replicas, per-host
//! utilization, and the replica-count timeline.
//!
//! Like `tpu_serve`'s report, the `Display` rendering and the JSON
//! field set are fixed-format and fully determined by the simulation:
//! "same seed ⇒ bit-identical fleet report" is assertable as string
//! equality, and the JSON key set is a stable schema the snapshot tests
//! pin.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One tenant's fleet-wide outcome (latencies merged across replicas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantReport {
    /// Tenant display name.
    pub name: String,
    /// Table 1 workload the tenant runs.
    pub workload: String,
    /// Admission priority.
    pub priority: u8,
    /// Requests served across the fleet.
    pub requests: usize,
    /// Requests the front end generated for the tenant (served +
    /// dropped + shed; reported only when [`FleetReport::resilient`]).
    pub offered: usize,
    /// Displaced requests the retry policy abandoned (attempts
    /// exhausted or retry budget empty).
    pub dropped: usize,
    /// Requests rejected at admission by a tripped brownout controller.
    pub shed: usize,
    /// Tied hedge copies launched.
    pub hedges: usize,
    /// Hedged requests whose hedge copy dispatched first.
    pub hedge_wins: usize,
    /// Requests retried after a host crash.
    pub retries: usize,
    /// Batches dispatched across all replicas.
    pub batches: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Mean end-to-end latency (routing hop + queue + service), ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// The tenant's latency target, ms.
    pub slo_ms: f64,
    /// Fraction of requests at or under the target.
    pub slo_attainment: f64,
    /// Served throughput over the whole run, requests/s.
    pub throughput_rps: f64,
    /// Live replicas at the end of the run.
    pub replicas_final: usize,
    /// Fewest live replicas observed on the timeline.
    pub replicas_min: usize,
    /// Most live replicas observed on the timeline.
    pub replicas_max: usize,
    /// Weight swaps this tenant's batches initiated (always 0 outside
    /// co-located runs; reported only when [`FleetReport::colocated`]).
    pub swaps: usize,
    /// Total weight-swap stall this tenant's batches paid, ms.
    pub swap_ms: f64,
}

/// One host's fleet-level outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHostReport {
    /// Host index.
    pub host: usize,
    /// Dies behind the host.
    pub dies: usize,
    /// Batches its dies executed.
    pub batches: usize,
    /// Total die busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of `dies × makespan`, in [0, 1].
    pub utilization: f64,
    /// Crashes the host suffered.
    pub crashes: usize,
    /// Tenant slots ever placed on the host (live + retired).
    pub slots: usize,
    /// Models resident in the host's weight memory at run end
    /// (reported only when [`FleetReport::colocated`]).
    pub resident_models: usize,
    /// Weight bytes resident at run end.
    pub resident_bytes: u64,
    /// Weight swaps the host's dies initiated.
    pub swaps: usize,
    /// Total weight-swap stall on the host's dies, ms.
    pub swap_ms: f64,
}

/// Live replica counts per tenant at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSample {
    /// Sample time, ms.
    pub t_ms: f64,
    /// Live replicas per tenant, in tenant declaration order.
    pub replicas: Vec<usize>,
}

/// The full outcome of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-tenant outcomes, in tenant declaration order.
    pub tenants: Vec<FleetTenantReport>,
    /// Per-host outcomes, in host index order.
    pub hosts: Vec<FleetHostReport>,
    /// Replica-count timeline (start, autoscaler ticks, failures, end).
    pub replica_timeline: Vec<ReplicaSample>,
    /// Completion time of the last batch anywhere in the fleet, ms.
    pub makespan_ms: f64,
    /// Events the fleet engine processed.
    pub events_processed: u64,
    /// Whether the run opted into multi-model co-location. Gates the
    /// residency/swap columns in both renderings, so non-co-located
    /// reports stay byte-identical to the pre-subsystem format.
    pub colocated: bool,
    /// Whether the run opted into the resilience layer (a retry policy
    /// or a brownout controller). Gates the offered/dropped/shed/hedge
    /// section in both renderings — same contract as [`Self::colocated`]:
    /// runs that don't opt in render byte-identically to before.
    pub resilient: bool,
}

impl FleetReport {
    /// Requests served across all tenants.
    pub fn total_requests(&self) -> usize {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Find one tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&FleetTenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Mean host utilization, in [0, 1].
    pub fn mean_utilization(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts.iter().map(|h| h.utilization).sum::<f64>() / self.hosts.len() as f64
    }

    /// The report as a `serde_json` value (stable key order).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                let mut fields = vec![
                    ("name".into(), Value::String(t.name.clone())),
                    ("workload".into(), Value::String(t.workload.clone())),
                    ("priority".into(), Value::Number(t.priority as f64)),
                    ("requests".into(), Value::Number(t.requests as f64)),
                    ("retries".into(), Value::Number(t.retries as f64)),
                    ("batches".into(), Value::Number(t.batches as f64)),
                    ("mean_batch".into(), Value::Number(round3(t.mean_batch))),
                    ("mean_ms".into(), Value::Number(round3(t.mean_ms))),
                    ("p50_ms".into(), Value::Number(round3(t.p50_ms))),
                    ("p95_ms".into(), Value::Number(round3(t.p95_ms))),
                    ("p99_ms".into(), Value::Number(round3(t.p99_ms))),
                    ("slo_ms".into(), Value::Number(t.slo_ms)),
                    (
                        "slo_attainment".into(),
                        Value::Number(round3(t.slo_attainment)),
                    ),
                    (
                        "throughput_rps".into(),
                        Value::Number(round3(t.throughput_rps)),
                    ),
                    (
                        "replicas_final".into(),
                        Value::Number(t.replicas_final as f64),
                    ),
                    ("replicas_min".into(), Value::Number(t.replicas_min as f64)),
                    ("replicas_max".into(), Value::Number(t.replicas_max as f64)),
                ];
                if self.colocated {
                    fields.push(("swaps".into(), Value::Number(t.swaps as f64)));
                    fields.push(("swap_ms".into(), Value::Number(round3(t.swap_ms))));
                }
                if self.resilient {
                    fields.push(("offered".into(), Value::Number(t.offered as f64)));
                    fields.push(("dropped".into(), Value::Number(t.dropped as f64)));
                    fields.push(("shed".into(), Value::Number(t.shed as f64)));
                    fields.push(("hedges".into(), Value::Number(t.hedges as f64)));
                    fields.push(("hedge_wins".into(), Value::Number(t.hedge_wins as f64)));
                }
                Value::object(fields)
            })
            .collect();
        let hosts = self
            .hosts
            .iter()
            .map(|h| {
                let mut fields = vec![
                    ("host".into(), Value::Number(h.host as f64)),
                    ("dies".into(), Value::Number(h.dies as f64)),
                    ("batches".into(), Value::Number(h.batches as f64)),
                    ("busy_ms".into(), Value::Number(round3(h.busy_ms))),
                    ("utilization".into(), Value::Number(round3(h.utilization))),
                    ("crashes".into(), Value::Number(h.crashes as f64)),
                    ("slots".into(), Value::Number(h.slots as f64)),
                ];
                if self.colocated {
                    fields.push((
                        "resident_models".into(),
                        Value::Number(h.resident_models as f64),
                    ));
                    fields.push((
                        "resident_bytes".into(),
                        Value::Number(h.resident_bytes as f64),
                    ));
                    fields.push(("swaps".into(), Value::Number(h.swaps as f64)));
                    fields.push(("swap_ms".into(), Value::Number(round3(h.swap_ms))));
                }
                Value::object(fields)
            })
            .collect();
        let timeline = self
            .replica_timeline
            .iter()
            .map(|s| {
                Value::object([
                    ("t_ms".into(), Value::Number(round3(s.t_ms))),
                    (
                        "replicas".into(),
                        Value::Array(
                            s.replicas
                                .iter()
                                .map(|&r| Value::Number(r as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        let mut top = vec![
            ("tenants".into(), Value::Array(tenants)),
            ("hosts".into(), Value::Array(hosts)),
            ("replica_timeline".into(), Value::Array(timeline)),
            (
                "makespan_ms".into(),
                Value::Number(round3(self.makespan_ms)),
            ),
            (
                "events_processed".into(),
                Value::Number(self.events_processed as f64),
            ),
        ];
        if self.colocated {
            top.push(("colocated".into(), Value::Bool(true)));
        }
        if self.resilient {
            top.push(("resilient".into(), Value::Bool(true)));
        }
        Value::object(top)
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>5} {:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>7} {:>12} {:>9}",
            "tenant",
            "prio",
            "requests",
            "retry",
            "batch",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "SLO%",
            "rps",
            "replicas"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{:<12} {:>5} {:>9} {:>7} {:>8.1} {:>9.3} {:>9.3} {:>9.3} {:>7.2} {:>12.0} {:>9}",
                t.name,
                t.priority,
                t.requests,
                t.retries,
                t.mean_batch,
                t.p50_ms,
                t.p95_ms,
                t.p99_ms,
                100.0 * t.slo_attainment,
                t.throughput_rps,
                format!(
                    "{}/{}..{}",
                    t.replicas_final, t.replicas_min, t.replicas_max
                ),
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<6} {:>5} {:>9} {:>12} {:>12} {:>8} {:>6}",
            "host", "dies", "batches", "busy ms", "utilization", "crashes", "slots"
        )?;
        for h in &self.hosts {
            writeln!(
                f,
                "{:<6} {:>5} {:>9} {:>12.3} {:>11.1}% {:>8} {:>6}",
                h.host,
                h.dies,
                h.batches,
                h.busy_ms,
                100.0 * h.utilization,
                h.crashes,
                h.slots
            )?;
        }
        if self.colocated {
            writeln!(f)?;
            writeln!(
                f,
                "{:<6} {:>7} {:>12} {:>7} {:>10}",
                "co-loc", "models", "resident MB", "swaps", "swap ms"
            )?;
            for h in &self.hosts {
                writeln!(
                    f,
                    "{:<6} {:>7} {:>12.1} {:>7} {:>10.3}",
                    h.host,
                    h.resident_models,
                    h.resident_bytes as f64 / 1e6,
                    h.swaps,
                    h.swap_ms
                )?;
            }
            writeln!(f)?;
            writeln!(
                f,
                "{:<12} {:>7} {:>10} {:>12}",
                "tenant", "swaps", "swap ms", "swap/req ms"
            )?;
            for t in &self.tenants {
                writeln!(
                    f,
                    "{:<12} {:>7} {:>10.3} {:>12.4}",
                    t.name,
                    t.swaps,
                    t.swap_ms,
                    t.swap_ms / t.requests.max(1) as f64
                )?;
            }
        }
        if self.resilient {
            writeln!(f)?;
            writeln!(
                f,
                "{:<12} {:>8} {:>8} {:>8} {:>8} {:>7} {:>11}",
                "resilience", "offered", "served", "dropped", "shed", "hedges", "hedge wins"
            )?;
            for t in &self.tenants {
                writeln!(
                    f,
                    "{:<12} {:>8} {:>8} {:>8} {:>8} {:>7} {:>11}",
                    t.name, t.offered, t.requests, t.dropped, t.shed, t.hedges, t.hedge_wins
                )?;
            }
        }
        if self.replica_timeline.len() > 1 {
            writeln!(f)?;
            writeln!(f, "replica timeline (t ms: per-tenant live replicas):")?;
            for s in &self.replica_timeline {
                writeln!(f, "  {:>9.3}: {:?}", s.t_ms, s.replicas)?;
            }
        }
        writeln!(
            f,
            "\nmakespan {:.3} ms · {} events · mean host utilization {:.1}%",
            self.makespan_ms,
            self.events_processed,
            100.0 * self.mean_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetReport {
        FleetReport {
            tenants: vec![FleetTenantReport {
                name: "MLP0".into(),
                workload: "MLP0".into(),
                priority: 3,
                requests: 100,
                offered: 100,
                dropped: 0,
                shed: 0,
                hedges: 0,
                hedge_wins: 0,
                retries: 4,
                batches: 10,
                mean_batch: 10.0,
                mean_ms: 1.5,
                p50_ms: 1.2,
                p95_ms: 2.5,
                p99_ms: 3.0,
                slo_ms: 7.0,
                slo_attainment: 0.99,
                throughput_rps: 10_000.0,
                replicas_final: 2,
                replicas_min: 2,
                replicas_max: 3,
                swaps: 0,
                swap_ms: 0.0,
            }],
            hosts: vec![FleetHostReport {
                host: 0,
                dies: 2,
                batches: 10,
                busy_ms: 8.0,
                utilization: 0.4,
                crashes: 1,
                slots: 1,
                resident_models: 1,
                resident_bytes: 20_000_000,
                swaps: 0,
                swap_ms: 0.0,
            }],
            replica_timeline: vec![
                ReplicaSample {
                    t_ms: 0.0,
                    replicas: vec![3],
                },
                ReplicaSample {
                    t_ms: 10.0,
                    replicas: vec![2],
                },
            ],
            makespan_ms: 10.0,
            events_processed: 321,
            colocated: false,
            resilient: false,
        }
    }

    fn resilient_sample() -> FleetReport {
        let mut r = sample();
        r.resilient = true;
        r.tenants[0].offered = 110;
        r.tenants[0].dropped = 4;
        r.tenants[0].shed = 6;
        r.tenants[0].hedges = 3;
        r.tenants[0].hedge_wins = 2;
        r
    }

    fn colocated_sample() -> FleetReport {
        let mut r = sample();
        r.colocated = true;
        r.tenants[0].swaps = 4;
        r.tenants[0].swap_ms = 2.848;
        r.hosts[0].swaps = 4;
        r.hosts[0].swap_ms = 2.848;
        r.hosts[0].resident_models = 2;
        r
    }

    #[test]
    fn display_is_stable_and_complete() {
        let a = format!("{}", sample());
        assert_eq!(a, format!("{}", sample()));
        for needle in ["MLP0", "p99 ms", "replica timeline", "crashes", "2/2..3"] {
            assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
        }
    }

    #[test]
    fn json_has_the_fleet_fields() {
        let j = serde_json::to_string(&sample().to_json());
        for needle in [
            "\"retries\":4",
            "\"replicas_final\":2",
            "\"replica_timeline\"",
            "\"crashes\":1",
            "\"events_processed\":321",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    /// The co-location gating contract: the residency/swap columns and
    /// keys appear only when the run opted in, so every pre-existing
    /// (non-co-located) report is byte-identical to the old format.
    #[test]
    fn swap_columns_render_only_for_colocated_runs() {
        let plain = format!("{}", sample());
        for needle in ["co-loc", "swap ms", "resident MB"] {
            assert!(!plain.contains(needle), "{needle:?} leaked into:\n{plain}");
        }
        let plain_json = serde_json::to_string(&sample().to_json());
        for needle in ["swaps", "resident_models", "colocated"] {
            assert!(
                !plain_json.contains(needle),
                "{needle} leaked into {plain_json}"
            );
        }

        let colo = format!("{}", colocated_sample());
        for needle in ["co-loc", "resident MB", "swap/req ms", "2.848"] {
            assert!(colo.contains(needle), "missing {needle:?} in:\n{colo}");
        }
        let colo_json = serde_json::to_string(&colocated_sample().to_json());
        for needle in [
            "\"colocated\":true",
            "\"swaps\":4",
            "\"swap_ms\":2.848",
            "\"resident_models\":2",
            "\"resident_bytes\":20000000",
        ] {
            assert!(
                colo_json.contains(needle),
                "missing {needle} in {colo_json}"
            );
        }
    }

    /// The resilience gating contract, mirroring the co-location one:
    /// the offered/dropped/shed/hedge section and keys appear only when
    /// the run opted into the resilience layer, so every pre-existing
    /// report stays byte-identical to the old format.
    #[test]
    fn resilience_columns_render_only_for_resilient_runs() {
        let plain = format!("{}", sample());
        for needle in ["resilience", "offered", "shed", "hedge"] {
            assert!(!plain.contains(needle), "{needle:?} leaked into:\n{plain}");
        }
        let plain_json = serde_json::to_string(&sample().to_json());
        for needle in ["offered", "dropped", "shed", "hedges", "resilient"] {
            assert!(
                !plain_json.contains(needle),
                "{needle} leaked into {plain_json}"
            );
        }

        let res = format!("{}", resilient_sample());
        for needle in ["resilience", "offered", "hedge wins"] {
            assert!(res.contains(needle), "missing {needle:?} in:\n{res}");
        }
        let res_json = serde_json::to_string(&resilient_sample().to_json());
        for needle in [
            "\"resilient\":true",
            "\"offered\":110",
            "\"dropped\":4",
            "\"shed\":6",
            "\"hedges\":3",
            "\"hedge_wins\":2",
        ] {
            assert!(res_json.contains(needle), "missing {needle} in {res_json}");
        }
    }

    #[test]
    fn lookups_work() {
        let r = sample();
        assert!(r.tenant("MLP0").is_some());
        assert!(r.tenant("CNN9").is_none());
        assert_eq!(r.total_requests(), 100);
        assert!((r.mean_utilization() - 0.4).abs() < 1e-12);
    }
}
