//! Fleet-wide reporting: per-tenant tails across all replicas, per-host
//! utilization, and the replica-count timeline.
//!
//! Like `tpu_serve`'s report, the `Display` rendering and the JSON
//! field set are fixed-format and fully determined by the simulation:
//! "same seed ⇒ bit-identical fleet report" is assertable as string
//! equality, and the JSON key set is a stable schema the snapshot tests
//! pin.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One tenant's fleet-wide outcome (latencies merged across replicas).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetTenantReport {
    /// Tenant display name.
    pub name: String,
    /// Table 1 workload the tenant runs.
    pub workload: String,
    /// Admission priority.
    pub priority: u8,
    /// Requests served across the fleet.
    pub requests: usize,
    /// Requests retried after a host crash.
    pub retries: usize,
    /// Batches dispatched across all replicas.
    pub batches: usize,
    /// Mean dispatched batch size.
    pub mean_batch: f64,
    /// Mean end-to-end latency (routing hop + queue + service), ms.
    pub mean_ms: f64,
    /// Median latency, ms.
    pub p50_ms: f64,
    /// 95th-percentile latency, ms.
    pub p95_ms: f64,
    /// 99th-percentile latency, ms.
    pub p99_ms: f64,
    /// The tenant's latency target, ms.
    pub slo_ms: f64,
    /// Fraction of requests at or under the target.
    pub slo_attainment: f64,
    /// Served throughput over the whole run, requests/s.
    pub throughput_rps: f64,
    /// Live replicas at the end of the run.
    pub replicas_final: usize,
    /// Fewest live replicas observed on the timeline.
    pub replicas_min: usize,
    /// Most live replicas observed on the timeline.
    pub replicas_max: usize,
}

/// One host's fleet-level outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetHostReport {
    /// Host index.
    pub host: usize,
    /// Dies behind the host.
    pub dies: usize,
    /// Batches its dies executed.
    pub batches: usize,
    /// Total die busy time, ms.
    pub busy_ms: f64,
    /// Busy fraction of `dies × makespan`, in [0, 1].
    pub utilization: f64,
    /// Crashes the host suffered.
    pub crashes: usize,
    /// Tenant slots ever placed on the host (live + retired).
    pub slots: usize,
}

/// Live replica counts per tenant at one instant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicaSample {
    /// Sample time, ms.
    pub t_ms: f64,
    /// Live replicas per tenant, in tenant declaration order.
    pub replicas: Vec<usize>,
}

/// The full outcome of one fleet simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Per-tenant outcomes, in tenant declaration order.
    pub tenants: Vec<FleetTenantReport>,
    /// Per-host outcomes, in host index order.
    pub hosts: Vec<FleetHostReport>,
    /// Replica-count timeline (start, autoscaler ticks, failures, end).
    pub replica_timeline: Vec<ReplicaSample>,
    /// Completion time of the last batch anywhere in the fleet, ms.
    pub makespan_ms: f64,
    /// Events the fleet engine processed.
    pub events_processed: u64,
}

impl FleetReport {
    /// Requests served across all tenants.
    pub fn total_requests(&self) -> usize {
        self.tenants.iter().map(|t| t.requests).sum()
    }

    /// Find one tenant's report by name.
    pub fn tenant(&self, name: &str) -> Option<&FleetTenantReport> {
        self.tenants.iter().find(|t| t.name == name)
    }

    /// Mean host utilization, in [0, 1].
    pub fn mean_utilization(&self) -> f64 {
        if self.hosts.is_empty() {
            return 0.0;
        }
        self.hosts.iter().map(|h| h.utilization).sum::<f64>() / self.hosts.len() as f64
    }

    /// The report as a `serde_json` value (stable key order).
    pub fn to_json(&self) -> serde_json::Value {
        use serde_json::Value;
        let tenants = self
            .tenants
            .iter()
            .map(|t| {
                Value::object([
                    ("name".into(), Value::String(t.name.clone())),
                    ("workload".into(), Value::String(t.workload.clone())),
                    ("priority".into(), Value::Number(t.priority as f64)),
                    ("requests".into(), Value::Number(t.requests as f64)),
                    ("retries".into(), Value::Number(t.retries as f64)),
                    ("batches".into(), Value::Number(t.batches as f64)),
                    ("mean_batch".into(), Value::Number(round3(t.mean_batch))),
                    ("mean_ms".into(), Value::Number(round3(t.mean_ms))),
                    ("p50_ms".into(), Value::Number(round3(t.p50_ms))),
                    ("p95_ms".into(), Value::Number(round3(t.p95_ms))),
                    ("p99_ms".into(), Value::Number(round3(t.p99_ms))),
                    ("slo_ms".into(), Value::Number(t.slo_ms)),
                    (
                        "slo_attainment".into(),
                        Value::Number(round3(t.slo_attainment)),
                    ),
                    (
                        "throughput_rps".into(),
                        Value::Number(round3(t.throughput_rps)),
                    ),
                    (
                        "replicas_final".into(),
                        Value::Number(t.replicas_final as f64),
                    ),
                    ("replicas_min".into(), Value::Number(t.replicas_min as f64)),
                    ("replicas_max".into(), Value::Number(t.replicas_max as f64)),
                ])
            })
            .collect();
        let hosts = self
            .hosts
            .iter()
            .map(|h| {
                Value::object([
                    ("host".into(), Value::Number(h.host as f64)),
                    ("dies".into(), Value::Number(h.dies as f64)),
                    ("batches".into(), Value::Number(h.batches as f64)),
                    ("busy_ms".into(), Value::Number(round3(h.busy_ms))),
                    ("utilization".into(), Value::Number(round3(h.utilization))),
                    ("crashes".into(), Value::Number(h.crashes as f64)),
                    ("slots".into(), Value::Number(h.slots as f64)),
                ])
            })
            .collect();
        let timeline = self
            .replica_timeline
            .iter()
            .map(|s| {
                Value::object([
                    ("t_ms".into(), Value::Number(round3(s.t_ms))),
                    (
                        "replicas".into(),
                        Value::Array(
                            s.replicas
                                .iter()
                                .map(|&r| Value::Number(r as f64))
                                .collect(),
                        ),
                    ),
                ])
            })
            .collect();
        Value::object([
            ("tenants".into(), Value::Array(tenants)),
            ("hosts".into(), Value::Array(hosts)),
            ("replica_timeline".into(), Value::Array(timeline)),
            (
                "makespan_ms".into(),
                Value::Number(round3(self.makespan_ms)),
            ),
            (
                "events_processed".into(),
                Value::Number(self.events_processed as f64),
            ),
        ])
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

impl fmt::Display for FleetReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<12} {:>5} {:>9} {:>7} {:>8} {:>9} {:>9} {:>9} {:>7} {:>12} {:>9}",
            "tenant",
            "prio",
            "requests",
            "retry",
            "batch",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "SLO%",
            "rps",
            "replicas"
        )?;
        for t in &self.tenants {
            writeln!(
                f,
                "{:<12} {:>5} {:>9} {:>7} {:>8.1} {:>9.3} {:>9.3} {:>9.3} {:>7.2} {:>12.0} {:>9}",
                t.name,
                t.priority,
                t.requests,
                t.retries,
                t.mean_batch,
                t.p50_ms,
                t.p95_ms,
                t.p99_ms,
                100.0 * t.slo_attainment,
                t.throughput_rps,
                format!(
                    "{}/{}..{}",
                    t.replicas_final, t.replicas_min, t.replicas_max
                ),
            )?;
        }
        writeln!(f)?;
        writeln!(
            f,
            "{:<6} {:>5} {:>9} {:>12} {:>12} {:>8} {:>6}",
            "host", "dies", "batches", "busy ms", "utilization", "crashes", "slots"
        )?;
        for h in &self.hosts {
            writeln!(
                f,
                "{:<6} {:>5} {:>9} {:>12.3} {:>11.1}% {:>8} {:>6}",
                h.host,
                h.dies,
                h.batches,
                h.busy_ms,
                100.0 * h.utilization,
                h.crashes,
                h.slots
            )?;
        }
        if self.replica_timeline.len() > 1 {
            writeln!(f)?;
            writeln!(f, "replica timeline (t ms: per-tenant live replicas):")?;
            for s in &self.replica_timeline {
                writeln!(f, "  {:>9.3}: {:?}", s.t_ms, s.replicas)?;
            }
        }
        writeln!(
            f,
            "\nmakespan {:.3} ms · {} events · mean host utilization {:.1}%",
            self.makespan_ms,
            self.events_processed,
            100.0 * self.mean_utilization()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FleetReport {
        FleetReport {
            tenants: vec![FleetTenantReport {
                name: "MLP0".into(),
                workload: "MLP0".into(),
                priority: 3,
                requests: 100,
                retries: 4,
                batches: 10,
                mean_batch: 10.0,
                mean_ms: 1.5,
                p50_ms: 1.2,
                p95_ms: 2.5,
                p99_ms: 3.0,
                slo_ms: 7.0,
                slo_attainment: 0.99,
                throughput_rps: 10_000.0,
                replicas_final: 2,
                replicas_min: 2,
                replicas_max: 3,
            }],
            hosts: vec![FleetHostReport {
                host: 0,
                dies: 2,
                batches: 10,
                busy_ms: 8.0,
                utilization: 0.4,
                crashes: 1,
                slots: 1,
            }],
            replica_timeline: vec![
                ReplicaSample {
                    t_ms: 0.0,
                    replicas: vec![3],
                },
                ReplicaSample {
                    t_ms: 10.0,
                    replicas: vec![2],
                },
            ],
            makespan_ms: 10.0,
            events_processed: 321,
        }
    }

    #[test]
    fn display_is_stable_and_complete() {
        let a = format!("{}", sample());
        assert_eq!(a, format!("{}", sample()));
        for needle in ["MLP0", "p99 ms", "replica timeline", "crashes", "2/2..3"] {
            assert!(a.contains(needle), "missing {needle:?} in:\n{a}");
        }
    }

    #[test]
    fn json_has_the_fleet_fields() {
        let j = serde_json::to_string(&sample().to_json());
        for needle in [
            "\"retries\":4",
            "\"replicas_final\":2",
            "\"replica_timeline\"",
            "\"crashes\":1",
            "\"events_processed\":321",
        ] {
            assert!(j.contains(needle), "missing {needle} in {j}");
        }
    }

    #[test]
    fn lookups_work() {
        let r = sample();
        assert!(r.tenant("MLP0").is_some());
        assert!(r.tenant("CNN9").is_none());
        assert_eq!(r.total_requests(), 100);
        assert!((r.mean_utilization() - 0.4).abs() < 1e-12);
    }
}
