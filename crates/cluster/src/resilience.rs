//! Opt-in resilience policies: bounded retries with deterministic
//! backoff, per-tenant retry budgets, request hedging, and brownout
//! load-shedding.
//!
//! The default fleet front end retries displaced work **immediately
//! and unboundedly** — the retry-storm anti-pattern this module
//! exists to study. Attaching a [`RetryPolicy`] to a
//! [`crate::fleet::FleetSpec`] (`with_retry`) replaces that with:
//!
//! * **bounded attempts** — a request that fails `max_attempts` times
//!   is dropped (reported per tenant, never silently lost);
//! * **deterministic exponential backoff** — attempt `k` waits
//!   `min(backoff_base_ms · 2^(k-1), backoff_max_ms)` scaled by
//!   `1 + jitter_frac · u`, where `u` is drawn from a per-tenant
//!   seeded stream (`0xB0FF_0000 + tenant` off the fleet seed). No
//!   wall clock anywhere: the same seed replays the same backoffs bit
//!   for bit, on any engine (`TPU_CLUSTER_ENGINE`) at any shard count;
//! * **retry budgets** ([`RetryBudget`]) — a per-tenant token bucket
//!   spent on every retry; when it runs dry the circuit breaks and the
//!   request is dropped instead of amplifying the storm;
//! * **hedging** ([`HedgeConfig`]) — an opt-in tied request: if a
//!   request has neither dispatched nor failed after a p99-derived
//!   delay, a copy is enqueued on a second replica and whichever copy
//!   *dispatches first* cancels the other at queue level (first-wins;
//!   only one copy ever executes, so no capacity is double-spent on
//!   the same request's service).
//!
//! [`BrownoutConfig`] is the graceful-degradation side: a per-cell
//! controller watching the recent over-SLO completion fraction (and
//! retry-budget exhaustion) that sheds **lowest-priority** admissions
//! while tripped, so overload degrades the bulk tier instead of
//! collapsing every tenant's tail.
//!
//! Everything here is opt-in and report-gated: a spec with neither
//! policy runs byte-identical to a build without this module.

use serde::{Deserialize, Serialize};

/// Bounded, backed-off retries for displaced requests (host or die
/// crashes, dead-host deliveries). Attach with
/// [`crate::fleet::FleetSpec::with_retry`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts per request including the first (≥ 1). A request
    /// failing this many times is dropped and reported.
    pub max_attempts: u32,
    /// Backoff before retry attempt `k` (the `k`-th failure) starts at
    /// this base, ms (> 0).
    pub backoff_base_ms: f64,
    /// Exponential backoff ceiling, ms (≥ base).
    pub backoff_max_ms: f64,
    /// Uniform jitter fraction in `[0, 1]`: the backoff is scaled by
    /// `1 + jitter_frac · u` with `u ~ U[0,1)` from the tenant's
    /// seeded retry stream.
    pub jitter_frac: f64,
    /// Optional per-tenant retry budget (circuit breaker).
    pub budget: Option<RetryBudget>,
    /// Optional request hedging.
    pub hedge: Option<HedgeConfig>,
}

impl RetryPolicy {
    /// A conservative default: 4 attempts, 1 ms base doubling to 8 ms,
    /// 20% jitter, no budget, no hedging.
    pub fn backoff() -> Self {
        RetryPolicy {
            max_attempts: 4,
            backoff_base_ms: 1.0,
            backoff_max_ms: 8.0,
            jitter_frac: 0.2,
            budget: None,
            hedge: None,
        }
    }

    /// Attach a retry budget.
    pub fn with_budget(mut self, budget: RetryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Attach hedging.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> Self {
        self.hedge = Some(hedge);
        self
    }

    /// The deterministic backoff before retry attempt `k` (1-based),
    /// given the jitter draw `u ∈ [0, 1)`.
    pub fn backoff_ms(&self, attempt: u32, u: f64) -> f64 {
        let exp = self.backoff_base_ms * 2f64.powi(attempt.saturating_sub(1).min(62) as i32);
        exp.min(self.backoff_max_ms) * (1.0 + self.jitter_frac * u)
    }

    /// Check invariants.
    ///
    /// # Panics
    ///
    /// Panics on zero attempts, nonpositive/non-finite backoff bounds,
    /// a ceiling below the base, or jitter outside `[0, 1]`; also
    /// validates any attached budget and hedge config.
    pub fn validate(&self) {
        assert!(self.max_attempts >= 1, "at least one attempt");
        assert!(
            self.backoff_base_ms > 0.0 && self.backoff_base_ms.is_finite(),
            "backoff base must be positive and finite"
        );
        assert!(
            self.backoff_max_ms >= self.backoff_base_ms && self.backoff_max_ms.is_finite(),
            "backoff ceiling must be >= base and finite"
        );
        assert!(
            (0.0..=1.0).contains(&self.jitter_frac),
            "jitter fraction must be in [0, 1]"
        );
        if let Some(b) = &self.budget {
            b.validate();
        }
        if let Some(h) = &self.hedge {
            h.validate();
        }
    }
}

/// A per-tenant retry token bucket: each retry spends one token;
/// tokens refill continuously at `refill_per_ms` up to `tokens`. A
/// retry arriving to an empty bucket is **dropped** (circuit broken)
/// and counts toward brownout pressure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryBudget {
    /// Bucket capacity, tokens (> 0). Also the starting level.
    pub tokens: f64,
    /// Continuous refill rate, tokens per simulated ms (≥ 0).
    pub refill_per_ms: f64,
}

impl RetryBudget {
    /// Check invariants.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive/non-finite capacity or a negative/
    /// non-finite refill rate.
    pub fn validate(&self) {
        assert!(
            self.tokens > 0.0 && self.tokens.is_finite(),
            "budget capacity must be positive and finite"
        );
        assert!(
            self.refill_per_ms >= 0.0 && self.refill_per_ms.is_finite(),
            "refill rate must be non-negative and finite"
        );
    }
}

/// Opt-in request hedging ("tied requests"): a request that has
/// neither dispatched nor failed `delay` after its first enqueue gets
/// a copy on a second replica; whichever copy dispatches first cancels
/// the other in its queue. The delay is the tenant's recent
/// completion-latency `quantile` over a `window`-completion ring,
/// floored at `min_delay_ms` (and equal to the floor until the ring
/// has enough samples to trust).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HedgeConfig {
    /// Hedge-delay floor, ms (> 0) — also the delay while fewer than
    /// 20 completions have been observed.
    pub min_delay_ms: f64,
    /// Which recent-latency quantile sets the delay (in `(0, 1)`,
    /// typically 0.95–0.99).
    pub quantile: f64,
    /// Ring size of recent completions the quantile is taken over
    /// (≥ 1).
    pub window: usize,
}

impl HedgeConfig {
    /// The "tail at scale" shape: hedge after the recent p99, floored
    /// at 1 ms, over the last 256 completions.
    pub fn p99() -> Self {
        HedgeConfig {
            min_delay_ms: 1.0,
            quantile: 0.99,
            window: 256,
        }
    }

    /// Check invariants.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive/non-finite floor, a quantile outside
    /// `(0, 1)`, or an empty window.
    pub fn validate(&self) {
        assert!(
            self.min_delay_ms > 0.0 && self.min_delay_ms.is_finite(),
            "hedge delay floor must be positive and finite"
        );
        assert!(
            self.quantile > 0.0 && self.quantile < 1.0,
            "hedge quantile must be in (0, 1)"
        );
        assert!(self.window >= 1, "hedge window must hold a sample");
    }
}

/// Brownout load-shedding: per placement cell (connected component of
/// the tenant↔host graph — the sharded engine's own unit, so single
/// and sharded engines agree byte for byte), a controller watches the
/// fraction of recent completions that missed their SLO. When the
/// fraction crosses `slo_burn_threshold` (or a tenant's retry budget
/// runs dry), the cell **trips**: arrivals of tenants at priority ≤
/// `max_priority_shed` are shed at admission until the burn falls back
/// under `clear_threshold` — with `min_trip_ms` of hysteresis so the
/// controller doesn't flap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutConfig {
    /// Shed tenants with priority ≤ this while tripped.
    pub max_priority_shed: u8,
    /// Trip when over-SLO fraction of the window exceeds this.
    pub slo_burn_threshold: f64,
    /// Completions in the sliding window (≥ 1).
    pub window: usize,
    /// Clear when the fraction falls to or below this (≤ trip
    /// threshold).
    pub clear_threshold: f64,
    /// Minimum time tripped before clearing, ms (≥ 0).
    pub min_trip_ms: f64,
}

impl BrownoutConfig {
    /// Shed priority ≤ 1 when over 50% of the last 64 completions
    /// miss SLO; clear under 20% after at least 5 ms.
    pub fn shed_low_priority() -> Self {
        BrownoutConfig {
            max_priority_shed: 1,
            slo_burn_threshold: 0.5,
            window: 64,
            clear_threshold: 0.2,
            min_trip_ms: 5.0,
        }
    }

    /// Check invariants.
    ///
    /// # Panics
    ///
    /// Panics on thresholds outside `[0, 1]`, a clear threshold above
    /// the trip threshold, an empty window, or a negative/non-finite
    /// hysteresis.
    pub fn validate(&self) {
        assert!(
            (0.0..=1.0).contains(&self.slo_burn_threshold),
            "trip threshold must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&self.clear_threshold),
            "clear threshold must be in [0, 1]"
        );
        assert!(
            self.clear_threshold <= self.slo_burn_threshold,
            "clear threshold must not exceed the trip threshold"
        );
        assert!(self.window >= 1, "brownout window must hold a sample");
        assert!(
            self.min_trip_ms >= 0.0 && self.min_trip_ms.is_finite(),
            "hysteresis must be non-negative and finite"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_doubles_and_caps_with_jitter_on_top() {
        let p = RetryPolicy {
            max_attempts: 8,
            backoff_base_ms: 1.0,
            backoff_max_ms: 8.0,
            jitter_frac: 0.5,
            budget: None,
            hedge: None,
        };
        assert_eq!(p.backoff_ms(1, 0.0), 1.0);
        assert_eq!(p.backoff_ms(2, 0.0), 2.0);
        assert_eq!(p.backoff_ms(3, 0.0), 4.0);
        assert_eq!(p.backoff_ms(4, 0.0), 8.0);
        assert_eq!(p.backoff_ms(7, 0.0), 8.0, "capped at the ceiling");
        assert_eq!(p.backoff_ms(1, 1.0), 1.5, "jitter scales, never shrinks");
        // Huge attempt counts must not overflow the exponent.
        assert!(p.backoff_ms(u32::MAX, 0.0).is_finite());
    }

    #[test]
    fn defaults_validate() {
        RetryPolicy::backoff()
            .with_budget(RetryBudget {
                tokens: 16.0,
                refill_per_ms: 0.5,
            })
            .with_hedge(HedgeConfig::p99())
            .validate();
        BrownoutConfig::shed_low_priority().validate();
    }

    #[test]
    #[should_panic(expected = "ceiling")]
    fn inverted_backoff_bounds_rejected() {
        RetryPolicy {
            backoff_max_ms: 0.5,
            ..RetryPolicy::backoff()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "clear threshold")]
    fn clear_above_trip_rejected() {
        BrownoutConfig {
            clear_threshold: 0.9,
            ..BrownoutConfig::shed_low_priority()
        }
        .validate();
    }

    #[test]
    fn builders_layer_onto_the_base_policy() {
        let p = RetryPolicy::backoff()
            .with_budget(RetryBudget {
                tokens: 8.0,
                refill_per_ms: 1.0,
            })
            .with_hedge(HedgeConfig::p99());
        assert_eq!(p.max_attempts, RetryPolicy::backoff().max_attempts);
        assert_eq!(p.budget.unwrap().tokens, 8.0);
        assert_eq!(p.hedge.unwrap().quantile, 0.99);
    }
}
