//! The fleet event loop: many [`HostCore`]s under one simulated clock.
//!
//! One `tpu_serve::sim::EventQueue` carries every event in the fleet —
//! front-end arrivals, routed deliveries, per-host timers and die
//! completions, autoscaler ticks, and injected failures — so the whole
//! simulation is bit-identical from [`FleetSpec::seed`]. Host `h` seeds
//! its service stream from `stream_seed(seed, h)` and tenant `t` its
//! arrival stream from `stream_seed(seed, t)`; since stream 0 is the
//! master seed, a 1-host, 1-replica fleet with
//! [`crate::fleet::HopModel::None`] replays the *identical* event
//! sequence as `tpu_serve::run` — the
//! integration tests pin that per-host report equality bit for bit.
//!
//! Request life cycle: generated at the front end → routed to a
//! replica (round-robin / least-outstanding / bounded consistent hash)
//! → optional network/PCIe hop → queued on the host → batched and
//! dispatched by the shared [`HostCore`] machinery → latency committed
//! at batch completion, *including* hop and any crash-retry delay
//! (retries keep the original arrival timestamp, so failures land in
//! the tail where they belong).

use crate::autoscale::{decide, ScaleDecision, ScaleSignals};
use crate::failure::{validate_schedule, FailureKind};
use crate::fleet::{plan_placement, tenant_swap_ms, FleetSpec, FleetTenantSpec, PlacementPlan};
use crate::report::{FleetHostReport, FleetReport, FleetTenantReport, ReplicaSample};
use crate::resilience::{BrownoutConfig, RetryPolicy};
use crate::route::{Candidate, OutstandingIndex, RouterPolicy, RouterState};
use crate::shard::{self, Scope};
use rand::{rngs::StdRng, Rng, SeedableRng};
use std::collections::{BTreeMap, HashMap, VecDeque};
use tpu_core::TpuConfig;
use tpu_serve::report::percentile;
use tpu_serve::sim::{self, EventQueue};
use tpu_serve::weights::ModelWeights;
use tpu_serve::workload::ArrivalSource;
use tpu_serve::{HostCore, HostEvent, ServeReport, ServiceCurve};
use tpu_telemetry::{HostProbe, MetricsRecorder, RequestProbe, RunTelemetry};

/// Everything that can happen in the fleet.
#[derive(Debug, Clone, Copy, PartialEq)]
enum FleetEvent {
    /// The front end generates a request for `tenant`.
    Arrival { tenant: usize },
    /// A routed request reaches its replica after the network hop.
    Deliver {
        tenant: usize,
        replica: usize,
        arrived_ms: f64,
    },
    /// A host-internal event (timer / die completion), epoch-tagged so
    /// events scheduled before a crash go stale.
    Host {
        host: usize,
        epoch: u32,
        event: HostEvent,
    },
    /// Autoscaler evaluation tick.
    Autoscale,
    /// The `index`-th entry of the failure schedule strikes.
    Failure { index: usize },
    /// A backed-off re-route of a displaced request (retry policy
    /// only; the legacy path re-routes displaced work immediately).
    /// `ts` is the request's original front-end arrival time.
    Retry { tenant: usize, ts: f64 },
    /// The hedging delay elapsed for the request that arrived at `ts`:
    /// enqueue a tied copy on a second replica if the original hasn't
    /// dispatched yet.
    HedgeFire { tenant: usize, ts: f64 },
}

struct HostRt {
    core: HostCore,
    healthy: bool,
    /// The front-end↔host network partition flag: a partitioned host
    /// looks dead to the router (its replicas leave every serving
    /// index) but keeps draining the requests already queued on it —
    /// their completions still count. Orthogonal to `healthy`: a host
    /// can crash while partitioned, and a recovery while partitioned
    /// restores the core without making it routable.
    partitioned: bool,
    epoch: u32,
    events: u64,
    crashes: usize,
    weight_used: u64,
    live_slots: usize,
    /// `slot_owner[slot]` = tenant index (slots are append-only).
    slot_owner: Vec<usize>,
    /// `slot_replica[slot]` = the owning tenant's replica index — the
    /// O(1) reverse map that replaces the per-completion linear scan
    /// over `TenantRt::replicas` (replicas never move hosts or slots).
    slot_replica: Vec<usize>,
    /// The [`HostCore::weights_epoch`] this host's cached replica
    /// warmth bits reflect; when the core's epoch has moved past it, a
    /// [`refresh_host_warmth`] pass re-derives the bits and fixes the
    /// swap-affinity warm-index memberships.
    warm_epoch: u64,
}

struct ReplicaRt {
    host: usize,
    slot: usize,
    /// Accepts new routes (false once the autoscaler drains it).
    routable: bool,
    /// Still placed (false once fully drained and retired).
    live: bool,
    /// Routed but not yet completed (queued + in flight + in hop).
    outstanding: usize,
    /// Autoscaler window watermark into the slot's latency log.
    window_mark: usize,
    /// Autoscaler window watermark into the slot's busy time.
    busy_mark: f64,
    /// Cached warmth bit (swap-affinity routing only): whether the
    /// replica's host had a die warm for its model as of the host's
    /// [`HostRt::warm_epoch`]. Meaningful only while the replica is in
    /// the serving index; recomputed fresh at every (re)insert.
    warm: bool,
}

struct TenantRt {
    spec: FleetTenantSpec,
    curve: ServiceCurve,
    hop_ms: f64,
    gen: Box<dyn ArrivalSource>,
    /// A front-end arrival has been scheduled but not yet fired (the
    /// source counts arrivals as emitted when they are *scheduled*).
    pending_arrival: bool,
    replicas: Vec<ReplicaRt>,
    router: RouterState,
    /// Requests routed but not yet delivered (hop in flight).
    in_hop: usize,
    /// Requests displaced by a crash and not yet re-routed.
    displaced_pending: usize,
    /// Requests with no live replica to go to (all hosts down); they
    /// re-route on recovery or scale-up, keeping their arrival times.
    parked: VecDeque<f64>,
    retries: usize,
    /// Every request has been generated *and* delivered; replicas
    /// flush partial batches.
    drained: bool,
    last_scale_ms: f64,
    /// The serving replicas — live, routable, healthy host — keyed by
    /// `(outstanding, replica)`, maintained update-on-delta at every
    /// eligibility or outstanding-count transition. Routing and the
    /// replica-count samples read it in O(log replicas) / O(1) instead
    /// of scanning (and allocating) per request.
    index: OutstandingIndex,
    /// The *warm* subset of `index` (swap-affinity routing only):
    /// serving replicas whose host has a die warm for the tenant's
    /// model, keyed by the same `(outstanding, replica)` order. The
    /// `SwapAware` pick is `warm.least()` falling back to
    /// `index.least()` — the same `(cold, outstanding, replica)`
    /// minimum as the legacy per-arrival scan, without the O(replicas)
    /// walk. Maintained only when `swap_indexed`.
    warm: OutstandingIndex,
    /// Reused candidate scratch buffer for the scan-based policies
    /// (round-robin, consistent hash) — no per-request allocation.
    cand_buf: Vec<Candidate>,
    /// `false` restores the pre-index per-arrival candidate scan (the
    /// `TPU_CLUSTER_ROUTER=scan` baseline escape hatch; decisions are
    /// identical either way).
    use_index: bool,
    /// `use_index` and the fleet routes with [`RouterPolicy::SwapAware`]
    /// — the warm subset index is live.
    swap_indexed: bool,
    /// The tenant's model identity in the weight-swap subsystem
    /// (co-located fleets only; `None` keeps its slots weight-free).
    weights: Option<ModelWeights>,
    /// Retry/backoff/hedging runtime ([`FleetSpec::retry`] only;
    /// `None` replays the legacy immediate-infinite-retry path bit for
    /// bit).
    retry_rt: Option<RetryRt>,
    /// Requests rejected at admission by a tripped brownout controller.
    shed: usize,
    /// Displaced requests abandoned by the retry policy (attempts
    /// exhausted or retry budget empty).
    dropped: usize,
    /// Tied hedge copies actually launched.
    hedges: usize,
    /// Hedged requests whose *hedge* copy dispatched first.
    hedge_wins: usize,
}

/// Where a hedged request's copies stand, keyed by the request's
/// arrival-timestamp bits in [`RetryRt::hedge_pending`].
#[derive(Debug, Clone, Copy)]
enum HedgeTie {
    /// The primary copy is routed (queued or in its hop) and the hedge
    /// timer is armed; no tied copy exists yet.
    Pending { primary: usize },
    /// Both copies are queued on distinct replicas; whichever
    /// dispatches first cancels the other at its queue.
    Tied { primary: usize, hedge: usize },
}

/// Per-tenant retry/backoff/hedging state (present iff the fleet sets
/// [`FleetSpec::retry`]).
struct RetryRt {
    policy: RetryPolicy,
    /// Backoff jitter stream — `stream_seed(seed, 0xB0FF_0000 + gt)`
    /// for *global* tenant `gt`, so shards draw identical jitter.
    rng: StdRng,
    /// Retries already spent per displaced request, keyed by the
    /// request's arrival-timestamp bits. Entries are dropped when the
    /// request is abandoned; a served retry's entry is left behind
    /// (harmlessly — the map only ever holds displaced requests).
    attempts: HashMap<u64, u32>,
    /// Token-bucket retry budget level (lazily refilled; meaningful
    /// only when the policy carries a [`crate::resilience::RetryBudget`]).
    tokens: f64,
    last_refill_ms: f64,
    /// Outstanding hedge ties by arrival-timestamp bits.
    hedge_pending: HashMap<u64, HedgeTie>,
    /// Ring of recent completion latencies feeding the hedge-delay
    /// quantile (capacity = the hedge config's `window`).
    lat_window: VecDeque<f64>,
    /// Total completions observed (the hedge delay stays floored at
    /// `min_delay_ms` until 20 samples exist).
    lat_seen: usize,
}

/// One brownout controller: a ring of recent completion SLO outcomes
/// over a placement-connected component, tripping sheds on sustained
/// burn and clearing with hysteresis.
struct BrownoutRt {
    cfg: BrownoutConfig,
    /// Ring of the last `cfg.window` completions (`true` = SLO miss or
    /// abandoned request).
    ring: Vec<bool>,
    pos: usize,
    filled: bool,
    misses: usize,
    tripped: bool,
    /// When the controller last changed state (floor for clearing).
    changed_ms: f64,
}

impl BrownoutRt {
    fn new(cfg: BrownoutConfig) -> Self {
        BrownoutRt {
            cfg,
            ring: vec![false; cfg.window],
            pos: 0,
            filled: false,
            misses: 0,
            tripped: false,
            changed_ms: f64::NEG_INFINITY,
        }
    }

    /// Record one completion outcome and re-evaluate the trip state.
    /// Returns `Some(new_state)` when the controller flipped.
    fn observe(&mut self, miss: bool, now: f64) -> Option<bool> {
        self.misses -= self.ring[self.pos] as usize;
        self.ring[self.pos] = miss;
        self.misses += miss as usize;
        self.pos += 1;
        if self.pos == self.ring.len() {
            self.pos = 0;
            self.filled = true;
        }
        if !self.filled {
            return None;
        }
        let frac = self.misses as f64 / self.ring.len() as f64;
        if !self.tripped && frac >= self.cfg.slo_burn_threshold {
            self.tripped = true;
            self.changed_ms = now;
            return Some(true);
        }
        if self.tripped
            && frac <= self.cfg.clear_threshold
            && now - self.changed_ms >= self.cfg.min_trip_ms
        {
            self.tripped = false;
            self.changed_ms = now;
            return Some(false);
        }
        None
    }
}

/// The brownout controllers for one scoped run: one [`BrownoutRt`] per
/// placement-connected component (`group_of[tenant]` → group), so the
/// single-threaded reference and the sharded engine — where a shard
/// *is* one component — observe identical completion streams.
struct BrownoutCtl {
    cfg: BrownoutConfig,
    group_of: Vec<usize>,
    groups: Vec<BrownoutRt>,
}

impl BrownoutCtl {
    /// Union-find the local tenants over shared hosts in `plan` and
    /// build one controller per component.
    fn new(cfg: BrownoutConfig, plan: &[Vec<usize>], hosts: usize) -> Self {
        let n = plan.len();
        let mut parent: Vec<usize> = (0..n + hosts).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (t, hs) in plan.iter().enumerate() {
            for &h in hs {
                let a = find(&mut parent, t);
                let b = find(&mut parent, n + h);
                // Lower root wins, so group ids are stable in tenant
                // order regardless of union order.
                let (lo, hi) = (a.min(b), a.max(b));
                parent[hi] = lo;
            }
        }
        let mut dense: HashMap<usize, usize> = HashMap::new();
        let mut groups = Vec::new();
        let group_of = (0..n)
            .map(|t| {
                let root = find(&mut parent, t);
                *dense.entry(root).or_insert_with(|| {
                    groups.push(BrownoutRt::new(cfg));
                    groups.len() - 1
                })
            })
            .collect();
        BrownoutCtl {
            cfg,
            group_of,
            groups,
        }
    }

    /// Whether an arrival for `tenant` at `priority` is shed right now.
    fn sheds(&self, tenant: usize, priority: u8) -> bool {
        priority <= self.cfg.max_priority_shed && self.groups[self.group_of[tenant]].tripped
    }
}

/// The single serving-eligibility rule: a replica is routable traffic's
/// candidate iff it is live, routable, and its host is healthy and
/// reachable (not partitioned from the front end). The
/// `OutstandingIndex` mirrors exactly the replicas satisfying this
/// predicate, so every site that tests eligibility must go through it —
/// a second inlined copy that drifts would silently desync the index
/// from the scan.
#[inline]
fn serving(r: &ReplicaRt, hosts: &[HostRt]) -> bool {
    r.live && r.routable && hosts[r.host].healthy && !hosts[r.host].partitioned
}

impl TenantRt {
    fn eligible(&self, replica: usize, hosts: &[HostRt]) -> bool {
        serving(&self.replicas[replica], hosts)
    }

    fn fill_candidates(&mut self, hosts: &[HostRt]) {
        self.cand_buf.clear();
        for (i, r) in self.replicas.iter().enumerate() {
            if serving(r, hosts) {
                self.cand_buf.push(Candidate {
                    replica: i,
                    outstanding: r.outstanding,
                });
            }
        }
    }

    fn serving_replicas(&self, hosts: &[HostRt]) -> usize {
        if self.use_index {
            self.index.len()
        } else {
            self.replicas.iter().filter(|r| serving(r, hosts)).count()
        }
    }

    fn has_candidates(&self, hosts: &[HostRt]) -> bool {
        if self.use_index {
            !self.index.is_empty()
        } else {
            self.replicas.iter().any(|r| serving(r, hosts))
        }
    }

    /// Front-end arrivals not yet delivered into a host queue: still to
    /// be emitted by the source, or scheduled and waiting to fire.
    fn undelivered(&self) -> usize {
        self.gen.remaining() + self.pending_arrival as usize
    }
}

/// Pick a replica for one request of `tenant`, or `None` when nothing
/// is routable. Least-outstanding reads the delta-maintained index —
/// the same `(outstanding, replica)` minimum as the legacy candidate
/// scan, without the per-request O(replicas) walk; the scan policies
/// (and the `scan` baseline mode) go through the reused candidate
/// buffer.
fn pick_replica(
    trs: &mut [TenantRt],
    hosts: &[HostRt],
    spec: &FleetSpec,
    tenant: usize,
) -> Option<usize> {
    if spec.router == RouterPolicy::SwapAware {
        // Swap affinity: prefer warm replicas, then fewest outstanding,
        // then lowest index. The indexed path reads the delta-maintained
        // warm subset (falling back to the full serving index when no
        // replica is warm) — the identical `(cold, outstanding, replica)`
        // minimum as the scan below, since warm always beats cold.
        if trs[tenant].swap_indexed {
            let tr = &mut trs[tenant];
            return tr.warm.least().or_else(|| tr.index.least());
        }
        let tr = &trs[tenant];
        // The pre-index baseline (`TPU_CLUSTER_ROUTER=scan`), verbatim:
        // resolve warmth per candidate against live host state.
        return tr
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| serving(r, hosts))
            .map(|(i, r)| {
                let cold = !hosts[r.host].core.slot_has_warm_die(r.slot);
                (cold, r.outstanding, i)
            })
            .min()
            .map(|(_, _, i)| i);
    }
    let tr = &mut trs[tenant];
    if !tr.use_index {
        // The pre-index hot path, verbatim: collect the eligible
        // replicas into a fresh `Vec` per request and scan it.
        let cands: Vec<Candidate> = tr
            .replicas
            .iter()
            .enumerate()
            .filter(|(_, r)| serving(r, hosts))
            .map(|(i, r)| Candidate {
                replica: i,
                outstanding: r.outstanding,
            })
            .collect();
        return tr.router.pick(spec.router, tenant, &cands);
    }
    if spec.router == RouterPolicy::LeastOutstanding {
        return tr.index.least();
    }
    tr.fill_candidates(hosts);
    let TenantRt {
        router, cand_buf, ..
    } = tr;
    router.pick(spec.router, tenant, cand_buf)
}

/// Apply a delta to a replica's outstanding count, keeping the
/// least-outstanding index in sync when the replica is serving.
fn set_outstanding(
    trs: &mut [TenantRt],
    hosts: &[HostRt],
    tenant: usize,
    replica: usize,
    new_outstanding: usize,
) {
    let in_index = trs[tenant].use_index && trs[tenant].eligible(replica, hosts);
    let tr = &mut trs[tenant];
    let old = tr.replicas[replica].outstanding;
    tr.replicas[replica].outstanding = new_outstanding;
    if in_index {
        tr.index.update(old, new_outstanding, replica);
        if tr.swap_indexed && tr.replicas[replica].warm {
            tr.warm.update(old, new_outstanding, replica);
        }
    }
}

/// A host's health flipped: add (`true`) or drop (`false`) every
/// routable replica it carries from its tenant's serving index.
fn reindex_host_replicas(trs: &mut [TenantRt], hosts: &[HostRt], host: usize, now_serving: bool) {
    for (&tenant, &replica) in hosts[host].slot_owner.iter().zip(&hosts[host].slot_replica) {
        let tr = &mut trs[tenant];
        if !tr.use_index {
            continue;
        }
        let r = &mut tr.replicas[replica];
        if r.live && r.routable {
            if now_serving {
                // Warmth is re-derived fresh at insert (the host's dies
                // were wiped by the crash that removed it), so the warm
                // subset never trusts a bit cached across an outage.
                let warm = tr.swap_indexed && hosts[host].core.slot_has_warm_die(r.slot);
                r.warm = warm;
                let o = r.outstanding;
                tr.index.insert(o, replica);
                if warm {
                    tr.warm.insert(o, replica);
                }
            } else {
                let (o, warm) = (r.outstanding, r.warm);
                tr.index.remove(o, replica);
                if tr.swap_indexed && warm {
                    tr.warm.remove(o, replica);
                }
            }
        }
    }
}

/// Re-derive the cached warmth bits for one host's replicas after its
/// die weight state changed (swap begun, swap completed), moving
/// serving replicas between the swap-affinity warm index and the cold
/// remainder. One integer compare when nothing changed — the common
/// case for every non-co-located fleet.
fn refresh_host_warmth(trs: &mut [TenantRt], hosts: &mut [HostRt], host: usize) {
    let h = &mut hosts[host];
    let epoch = h.core.weights_epoch();
    if epoch == h.warm_epoch {
        return;
    }
    h.warm_epoch = epoch;
    if !h.healthy {
        // Crashed hosts' replicas are out of every index; their bits
        // are re-derived at recover-time reinsert.
        return;
    }
    for (&tenant, &replica) in h.slot_owner.iter().zip(&h.slot_replica) {
        let tr = &mut trs[tenant];
        if !tr.swap_indexed {
            continue;
        }
        let r = &mut tr.replicas[replica];
        let warm = h.core.slot_has_warm_die(r.slot);
        if warm == r.warm {
            continue;
        }
        r.warm = warm;
        if r.live && r.routable {
            let o = r.outstanding;
            if warm {
                tr.warm.insert(o, replica);
            } else {
                tr.warm.remove(o, replica);
            }
        }
    }
}

/// The outcome of [`run_fleet`]: the fleet-wide report plus each
/// host's own [`ServeReport`] (host 0's is what the 1-host parity test
/// compares against `tpu_serve::run`).
#[derive(Debug, Clone, PartialEq)]
pub struct FleetRun {
    /// Fleet-wide per-tenant and per-host outcomes.
    pub report: FleetReport,
    /// Per-host serving reports, in host index order.
    pub host_reports: Vec<ServeReport>,
    /// The initial placement the engine actually used (the same plan
    /// `tpu_cluster place` prints; a property test pins the equality).
    pub placement: PlacementPlan,
}

/// Run the fleet simulation to completion.
///
/// # Panics
///
/// Panics on a degenerate setup (no hosts, no tenants, infeasible
/// placement, a failure schedule naming an unknown host) and on an
/// unservable end state (requests still parked because every replica
/// of a tenant stayed down through the end of the run).
pub fn run_fleet(spec: &FleetSpec, tenants: &[FleetTenantSpec], cfg: &TpuConfig) -> FleetRun {
    run_fleet_telemetry(spec, tenants, cfg, &mut RunTelemetry::off())
}

/// [`run_fleet`] with instruments attached. The engine only *observes*
/// through `tel` — no event, RNG draw, or decision changes — so the
/// returned [`FleetRun`] is bit-identical to the uninstrumented run and
/// the recorded artifacts are bit-identical across same-seed runs.
/// Hosts record onto their own probes (`pid` = host index); fleet-level
/// moments (retries, parks, scale decisions, recoveries) land on a
/// front-end track at `pid` = host count.
///
/// # Panics
///
/// As [`run_fleet`].
pub fn run_fleet_telemetry(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    tel: &mut RunTelemetry,
) -> FleetRun {
    assert!(!spec.hosts.is_empty(), "need at least one host");
    assert!(!tenants.is_empty(), "need at least one tenant");
    if let Some(a) = &spec.autoscale {
        a.validate();
    }
    let dies_per_host: Vec<usize> = spec.hosts.iter().map(|h| h.dies).collect();
    if let Err(errors) = validate_schedule(&spec.failures, &dies_per_host) {
        panic!("invalid failure schedule:\n{}", errors.join("\n"));
    }
    if let Some(c) = &spec.colocate {
        c.validate();
    }

    let placement = plan_placement(spec, tenants, cfg);

    // Engine selection (see `crate::shard`): partition the fleet into
    // the connected components of the tenant↔host placement graph and
    // run them on worker threads, byte-identical to the single-threaded
    // reference kept behind `TPU_CLUSTER_ENGINE=single`. Sharding
    // requires a static replica set (no autoscaler — scale-up couples
    // components) and no instruments (artifacts interleave hosts in
    // global orders the shards don't see); anything else runs the
    // reference engine.
    let choice = shard::engine_choice();
    let tel_off = tel.tracer.is_none()
        && tel.metrics.is_none()
        && tel.profile.is_none()
        && tel.requests.is_none()
        && tel.monitor.is_none();
    if choice != shard::EngineChoice::Single && spec.autoscale.is_none() && tel_off {
        let scopes = shard::partition(spec, &placement.assignments);
        let workers = shard::shard_workers();
        let shard_now = match choice {
            shard::EngineChoice::Sharded => true,
            _ => scopes.len() >= 2 && workers >= 2,
        };
        if shard_now {
            return run_fleet_sharded(spec, tenants, cfg, placement, scopes, workers);
        }
    }

    let scope = Scope::identity(spec, &placement.assignments);
    let out = run_scoped(spec, tenants, cfg, tel, &scope);
    assemble(spec, placement, out)
}

/// What one scoped (whole-fleet or single-shard) run hands back for
/// report assembly or cross-shard merging.
struct ScopedRun {
    hosts: Vec<HostRt>,
    trs: Vec<TenantRt>,
    events_processed: u64,
    /// Replica-count samples in event order: t=0, every failure and
    /// autoscale event, and the deduplicated closing sample. Tenant
    /// columns are in *local* index order (global for the identity
    /// scope).
    timeline: Vec<ReplicaSample>,
    /// `(global failure index, sample-after-the-event)` per failure
    /// event processed, in pop order — what the sharded merge replays
    /// to reconstruct the global timeline.
    fail_samples: Vec<(usize, ReplicaSample)>,
    makespan_ms: f64,
}

/// Run the fleet event loop over one [`Scope`] — the whole fleet for
/// the single-threaded reference, one connected component for a shard.
/// All seeds, model identities, and probe labels use **global** ids
/// via the scope mapping, so a component's sub-run replays exactly the
/// global run restricted to that component.
fn run_scoped(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    tel: &mut RunTelemetry,
    scope: &Scope,
) -> ScopedRun {
    let mut hosts: Vec<HostRt> = scope
        .hosts
        .iter()
        .map(|&gh| HostRt {
            // Host 0 shares the master seed so a 1-host fleet replays
            // tpu_serve's service-jitter stream exactly.
            core: HostCore::new(
                spec.hosts[gh].dies,
                spec.hosts[gh].dispatch,
                sim::stream_seed(spec.seed, gh as u64),
            ),
            healthy: true,
            partitioned: false,
            epoch: 0,
            events: 0,
            crashes: 0,
            weight_used: 0,
            live_slots: 0,
            slot_owner: Vec::new(),
            slot_replica: Vec::new(),
            warm_epoch: 0,
        })
        .collect();

    // Tracing: one probe per host records die slices and per-request
    // span trees; the front end gets its own process track for
    // fleet-level instants.
    let mut fe_probe = if tel.tracer.is_some() {
        for (h, host) in hosts.iter_mut().enumerate() {
            let gh = scope.hosts[h];
            host.core.set_probe(HostProbe::new(
                gh as u32,
                &format!("host {gh}"),
                spec.hosts[gh].dies,
            ));
        }
        Some(HostProbe::new(spec.hosts.len() as u32, "front-end", 0))
    } else {
        None
    };
    // Request logging: one probe per host buffers a decomposed record
    // per served request; the run log absorbs them in host-index order
    // at end of run, so the artifact is a pure function of the seed.
    if tel.requests.is_some() {
        for (h, host) in hosts.iter_mut().enumerate() {
            host.core
                .set_request_probe(RequestProbe::new(scope.hosts[h] as u32));
        }
    }

    // The indexed least-outstanding router is on unless the
    // `TPU_CLUSTER_ROUTER=scan` baseline escape hatch restores the
    // pre-index per-arrival scan (identical decisions, only slower —
    // `bench_cluster` measures the two in one run).
    let use_index = !matches!(std::env::var("TPU_CLUSTER_ROUTER").as_deref(), Ok("scan"));
    // Swap-affinity routing additionally maintains the warm subset
    // index; the `scan` hatch restores the per-arrival warmth scan.
    let swap_indexed = use_index && spec.router == RouterPolicy::SwapAware;

    let mut trs: Vec<TenantRt> = scope
        .tenants
        .iter()
        .enumerate()
        .map(|(t, &gt)| {
            let ft = &tenants[gt];
            assert!(
                ft.tenant.requests > 0,
                "tenant {} has no requests",
                ft.tenant.name
            );
            let curve = ft.tenant.effective_curve(cfg);
            let weight = ft.weight_bytes();
            // Co-location: the tenant is model `gt` — its *global*
            // index, so shards charge identical swap stalls — and its
            // batches pay the calibrated cost on a model change.
            let weights = spec.colocate.map(|c| ModelWeights {
                model: gt,
                bytes: weight,
                swap_ms: tenant_swap_ms(ft, cfg, c.swap_scale),
            });
            let mut index = OutstandingIndex::new();
            let mut warm = OutstandingIndex::new();
            let replicas: Vec<ReplicaRt> = scope.plan[t]
                .iter()
                .enumerate()
                .map(|(replica, &host)| {
                    let slot = hosts[host].core.add_slot(ft.tenant.clone(), curve);
                    if let Some(mw) = weights {
                        hosts[host].core.set_slot_weights(slot, mw);
                    }
                    hosts[host].slot_owner.push(t);
                    hosts[host].slot_replica.push(replica);
                    hosts[host].weight_used += weight;
                    hosts[host].live_slots += 1;
                    if use_index {
                        index.insert(0, replica);
                    }
                    let warm_bit = swap_indexed && hosts[host].core.slot_has_warm_die(slot);
                    if warm_bit {
                        warm.insert(0, replica);
                    }
                    ReplicaRt {
                        host,
                        slot,
                        routable: true,
                        live: true,
                        outstanding: 0,
                        window_mark: 0,
                        busy_mark: 0.0,
                        warm: warm_bit,
                    }
                })
                .collect();
            TenantRt {
                curve,
                hop_ms: spec.hop.hop_ms(&ft.tenant.workload),
                gen: ft.tenant.arrivals.source(
                    &ft.tenant.name,
                    ft.tenant.requests,
                    sim::stream_seed(spec.seed, gt as u64),
                ),
                pending_arrival: false,
                replicas,
                router: RouterState::new(),
                in_hop: 0,
                displaced_pending: 0,
                parked: VecDeque::new(),
                retries: 0,
                drained: false,
                last_scale_ms: f64::NEG_INFINITY,
                index,
                warm,
                cand_buf: Vec::new(),
                use_index,
                swap_indexed,
                weights,
                retry_rt: spec.retry.map(|policy| RetryRt {
                    policy,
                    rng: StdRng::seed_from_u64(sim::stream_seed(
                        spec.seed,
                        0xB0FF_0000 + gt as u64,
                    )),
                    attempts: HashMap::new(),
                    tokens: policy.budget.map_or(0.0, |b| b.tokens),
                    last_refill_ms: 0.0,
                    hedge_pending: HashMap::new(),
                    lat_window: VecDeque::new(),
                    lat_seen: 0,
                }),
                shed: 0,
                dropped: 0,
                hedges: 0,
                hedge_wins: 0,
                spec: ft.clone(),
            }
        })
        .collect();

    // Hedging needs to see dispatches to resolve ties first-wins; the
    // log is a no-op for every fleet that doesn't opt in.
    if spec.retry.is_some_and(|r| r.hedge.is_some()) {
        for host in hosts.iter_mut() {
            host.core.enable_dispatch_log();
        }
    }
    // Graceful degradation (opt-in): one brownout controller per
    // placement-connected component sheds the lowest-priority
    // admissions while its component's SLO burn stays high.
    let mut brownout: Option<BrownoutCtl> = spec
        .brownout
        .map(|cfg| BrownoutCtl::new(cfg, &scope.plan, hosts.len()));

    let mut q: EventQueue<FleetEvent> = EventQueue::new();
    for (t, tr) in trs.iter_mut().enumerate() {
        let at = tr
            .gen
            .next_arrival_ms(0.0)
            .expect("a source emits at least one arrival");
        tr.pending_arrival = true;
        q.schedule(at, FleetEvent::Arrival { tenant: t });
    }
    for (i, (_, f)) in scope.failures.iter().enumerate() {
        q.schedule(f.at_ms, FleetEvent::Failure { index: i });
    }
    if let Some(a) = &spec.autoscale {
        q.schedule(a.interval_ms, FleetEvent::Autoscale);
    }

    let mut timeline = vec![sample_now(0.0, &trs, &hosts)];
    let mut fail_samples: Vec<(usize, ReplicaSample)> = Vec::new();
    let mut events_processed = 0u64;
    // Per-event-type tallies for the engine profile; see EVENT_NAMES.
    let mut counts = [0u64; 10];
    let mut failures_processed = 0usize;

    while let Some((now, event)) = q.pop() {
        events_processed += 1;
        if let Some(m) = tel.metrics.as_mut() {
            if m.due(now) {
                let t = m.advance(now);
                sample_metrics(m, t, now, &trs, &hosts);
            }
        }
        if let Some(mon) = tel.monitor.as_mut() {
            if mon.due(now) {
                let t = mon.advance(now);
                fleet_gauges(now, &trs, &hosts, &mut |name, v| mon.record(&name, v));
                mon.close_sample(t);
            }
        }
        match event {
            FleetEvent::Arrival { tenant } => {
                counts[0] += 1;
                trs[tenant].pending_arrival = false;
                // Graceful degradation (opt-in): a tripped brownout
                // controller rejects the lowest-priority admissions at
                // the front door, before any routing work.
                if brownout
                    .as_ref()
                    .is_some_and(|b| b.sheds(tenant, trs[tenant].spec.tenant.priority))
                {
                    if let Some(at) = trs[tenant].gen.next_arrival_ms(now) {
                        trs[tenant].pending_arrival = true;
                        q.schedule(at, FleetEvent::Arrival { tenant });
                    }
                    trs[tenant].shed += 1;
                    if let Some(p) = fe_probe.as_mut() {
                        p.instant("fleet", "shed", now);
                    }
                    if let Some(l) = tel.requests.as_mut() {
                        l.note_shed(&trs[tenant].spec.tenant.name, now);
                    }
                    // The shed may have been the tenant's last
                    // undelivered request: flush now-drained replicas.
                    for h in maybe_mark_drained(&mut hosts, &mut trs, tenant, usize::MAX) {
                        try_dispatch_host(&mut q, &mut hosts, &mut trs, h, now);
                    }
                    continue;
                }
                let picked = pick_replica(&mut trs, &hosts, spec, tenant);
                // Schedule the next arrival before delivering, so the
                // zero-hop path makes schedule calls in exactly
                // tpu_serve::run's order (next arrival, then timer
                // re-arm inside the delivery tail).
                if let Some(at) = trs[tenant].gen.next_arrival_ms(now) {
                    trs[tenant].pending_arrival = true;
                    q.schedule(at, FleetEvent::Arrival { tenant });
                }
                match picked {
                    Some(replica) => {
                        // Hedging (opt-in): arm the tied-copy timer at
                        // the delay the recent completion tail implies,
                        // measured past the hop so the primary is
                        // always delivered before the hedge can fire.
                        if let Some(delay) = hedge_delay(&trs[tenant]) {
                            let hop = trs[tenant].hop_ms;
                            let rt = trs[tenant].retry_rt.as_mut().expect("hedge implies policy");
                            rt.hedge_pending
                                .insert(now.to_bits(), HedgeTie::Pending { primary: replica });
                            q.schedule(
                                now + hop + delay,
                                FleetEvent::HedgeFire { tenant, ts: now },
                            );
                        }
                        deliver_or_hop(&mut q, &mut hosts, &mut trs, tenant, replica, now, now);
                    }
                    None => {
                        // Every replica is down: park the request; it
                        // re-routes on recovery or scale-up.
                        if let Some(p) = fe_probe.as_mut() {
                            p.instant("fleet", "park", now);
                        }
                        trs[tenant].parked.push_back(now);
                    }
                }
            }
            FleetEvent::Deliver {
                tenant,
                replica,
                arrived_ms,
            } => {
                counts[1] += 1;
                trs[tenant].in_hop -= 1;
                let (host, slot) = {
                    let r = &trs[tenant].replicas[replica];
                    (r.host, r.slot)
                };
                if hosts[host].healthy {
                    hosts[host].core.enqueue(slot, arrived_ms);
                    hosts[host].events += 1;
                    finish_delivery(&mut q, &mut hosts, &mut trs, tenant, host, slot, now);
                } else {
                    // The host crashed while the request was in the
                    // hop: retry it elsewhere at its original arrival
                    // time. A mid-hop request can't be tied yet, so
                    // any hedge entry is still pending — discard it
                    // (retries are never hedged).
                    let o = trs[tenant].replicas[replica].outstanding;
                    set_outstanding(&mut trs, &hosts, tenant, replica, o - 1);
                    maybe_retire(&mut hosts, &mut trs, tenant, replica);
                    if let Some(rt) = trs[tenant].retry_rt.as_mut() {
                        rt.hedge_pending.remove(&arrived_ms.to_bits());
                    }
                    if retry_or_drop(
                        &mut q,
                        &mut hosts,
                        &mut trs,
                        spec,
                        tenant,
                        arrived_ms,
                        now,
                        &mut fe_probe,
                        tel,
                        &mut brownout,
                    ) {
                        for h in maybe_mark_drained(&mut hosts, &mut trs, tenant, usize::MAX) {
                            try_dispatch_host(&mut q, &mut hosts, &mut trs, h, now);
                        }
                    }
                }
            }
            FleetEvent::Host { host, epoch, event } => {
                if epoch != hosts[host].epoch {
                    counts[5] += 1;
                    continue; // scheduled before a crash; stale
                }
                hosts[host].events += 1;
                match event {
                    HostEvent::Timer { slot, generation } => {
                        counts[2] += 1;
                        if !hosts[host].core.on_timer(slot, generation) {
                            continue; // stale timer; the queue changed
                        }
                    }
                    HostEvent::WeightSwap { die } => {
                        counts[3] += 1;
                        // Bookkeeping only: the die's pending model
                        // becomes active. No capacity changed (the die
                        // stays busy until its DieFree), so skip the
                        // dispatch pass — but the promotion cooled the
                        // die's previous model, so refresh warmth.
                        hosts[host].core.on_weight_swap(die);
                        refresh_host_warmth(&mut trs, &mut hosts, host);
                        continue;
                    }
                    HostEvent::DieFree { die, generation } => {
                        counts[4] += 1;
                        if let Some(done) = hosts[host].core.on_die_free(die, generation) {
                            let tenant = hosts[host].slot_owner[done.slot];
                            let replica = hosts[host].slot_replica[done.slot];
                            let o = trs[tenant].replicas[replica].outstanding;
                            set_outstanding(
                                &mut trs,
                                &hosts,
                                tenant,
                                replica,
                                o - done.completions,
                            );
                            maybe_retire(&mut hosts, &mut trs, tenant, replica);
                            // The batch's latencies were just committed
                            // at the end of the slot's buffer.
                            let from = hosts[host].core.latency_count(done.slot) - done.completions;
                            observe_completions(
                                &mut trs,
                                &hosts,
                                &mut brownout,
                                &mut fe_probe,
                                tenant,
                                host,
                                done.slot,
                                from,
                                now,
                            );
                            if let Some(m) = tel.metrics.as_mut() {
                                // Feed them to the tenant sketch too.
                                let series = format!("latency/{}", trs[tenant].spec.tenant.name);
                                for l in hosts[host].core.slot_latencies_from(done.slot, from) {
                                    m.observe(&series, l);
                                }
                            }
                            if let Some(mon) = tel.monitor.as_mut() {
                                let spec = &trs[tenant].spec.tenant;
                                for l in hosts[host].core.slot_latencies_from(done.slot, from) {
                                    mon.observe_latency(&spec.name, l, spec.slo_ms);
                                }
                                mon.observe_service(
                                    &spec.name,
                                    host,
                                    die,
                                    done.end_ms - done.start_ms - done.swap_ms,
                                    done.completions,
                                );
                            }
                        }
                    }
                }
                try_dispatch_host(&mut q, &mut hosts, &mut trs, host, now);
            }
            FleetEvent::Autoscale => {
                counts[6] += 1;
                let cfg_a = spec.autoscale.as_ref().expect("tick implies config");
                // Serving counts before the pass, so scale decisions
                // can be traced as front-end instants afterwards.
                let before: Option<Vec<usize>> = fe_probe
                    .as_ref()
                    .map(|_| trs.iter().map(|tr| tr.serving_replicas(&hosts)).collect());
                for t in 0..trs.len() {
                    autoscale_tenant(&mut q, &mut hosts, &mut trs, spec, t, now, cfg_a);
                }
                // Rescue path: parked requests mean every replica of a
                // tenant is unreachable — effectively infinite queue
                // depth — so try to place a replica regardless of the
                // window signals or cooldown. If nothing can be placed
                // and no failure event is still pending, the fleet can
                // never serve them: fail loudly instead of ticking
                // forever.
                for t in 0..trs.len() {
                    if trs[t].parked.is_empty() {
                        continue;
                    }
                    unpark(&mut q, &mut hosts, &mut trs, spec, t, now);
                    if trs[t].parked.is_empty() {
                        continue;
                    }
                    let rescued = try_scale_up(&mut q, &mut hosts, &mut trs, spec, t, now);
                    if !rescued && failures_processed == scope.failures.len() {
                        panic!(
                            "tenant {t} ({}) has {} parked requests, no healthy \
                             replica, no pending recovery, and nowhere to place a \
                             new replica — the fleet is unservable",
                            trs[t].spec.tenant.name,
                            trs[t].parked.len()
                        );
                    }
                }
                if let Some(p) = fe_probe.as_mut() {
                    let before = before.expect("snapshot taken when tracing");
                    for (t, tr) in trs.iter().enumerate() {
                        let after = tr.serving_replicas(&hosts);
                        if after > before[t] {
                            p.instant("scale-up", &tr.spec.tenant.name, now);
                        } else if after < before[t] {
                            p.instant("scale-down", &tr.spec.tenant.name, now);
                        }
                    }
                }
                timeline.push(sample_now(now, &trs, &hosts));
                let active = trs.iter().any(|tr| {
                    tr.undelivered() > 0
                        || tr.in_hop > 0
                        || tr.displaced_pending > 0
                        || !tr.parked.is_empty()
                        || tr.replicas.iter().any(|r| r.outstanding > 0)
                });
                if active {
                    q.schedule(now + cfg_a.interval_ms, FleetEvent::Autoscale);
                }
            }
            FleetEvent::Failure { index } => {
                counts[7] += 1;
                failures_processed += 1;
                let (fail_id, f) = scope.failures[index];
                match f.kind {
                    FailureKind::Crash => {
                        if hosts[f.host].healthy {
                            // Serving replicas on this host leave the
                            // routing index before the health flip
                            // (they are already out if partitioned).
                            if !hosts[f.host].partitioned {
                                reindex_host_replicas(&mut trs, &hosts, f.host, false);
                            }
                            hosts[f.host].healthy = false;
                            hosts[f.host].epoch += 1;
                            hosts[f.host].crashes += 1;
                            let displaced = hosts[f.host].core.crash(now);
                            // The wipe bumped the weights epoch; the
                            // replicas are already out of every index
                            // and re-derive warmth at recover, so just
                            // sync the cache marker.
                            hosts[f.host].warm_epoch = hosts[f.host].core.weights_epoch();
                            // Two phases: first count every displaced
                            // request as pending so no re-delivery can
                            // prematurely mark its tenant drained (and
                            // flush partial batches) while siblings are
                            // still waiting to be re-routed.
                            let mut requeue: Vec<(usize, f64)> = Vec::new();
                            for (slot, arrivals) in displaced {
                                let tenant = hosts[f.host].slot_owner[slot];
                                let replica = hosts[f.host].slot_replica[slot];
                                let o = trs[tenant].replicas[replica].outstanding;
                                set_outstanding(
                                    &mut trs,
                                    &hosts,
                                    tenant,
                                    replica,
                                    o - arrivals.len(),
                                );
                                maybe_retire(&mut hosts, &mut trs, tenant, replica);
                                trs[tenant].displaced_pending += arrivals.len();
                                requeue.extend(arrivals.into_iter().map(|ts| (tenant, ts)));
                            }
                            for (tenant, ts) in requeue {
                                trs[tenant].displaced_pending -= 1;
                                // Hedge interplay: a displaced copy's
                                // tie is broken. A still-queued sibling
                                // on another host serves the request
                                // alone (no retry); a sole pending copy
                                // falls through to the retry layer.
                                let tie = trs[tenant]
                                    .retry_rt
                                    .as_mut()
                                    .and_then(|rt| rt.hedge_pending.remove(&ts.to_bits()));
                                if matches!(tie, Some(HedgeTie::Tied { .. })) {
                                    continue;
                                }
                                if retry_or_drop(
                                    &mut q,
                                    &mut hosts,
                                    &mut trs,
                                    spec,
                                    tenant,
                                    ts,
                                    now,
                                    &mut fe_probe,
                                    tel,
                                    &mut brownout,
                                ) {
                                    for h in
                                        maybe_mark_drained(&mut hosts, &mut trs, tenant, usize::MAX)
                                    {
                                        try_dispatch_host(&mut q, &mut hosts, &mut trs, h, now);
                                    }
                                }
                            }
                        }
                    }
                    FailureKind::Recover => {
                        if !hosts[f.host].healthy {
                            if let Some(p) = fe_probe.as_mut() {
                                p.instant("fault", &format!("recover host{}", f.host), now);
                            }
                            hosts[f.host].healthy = true;
                            // A recovery behind a partition restores
                            // the core but not routability; the
                            // reinsert and unpark happen at rejoin.
                            if !hosts[f.host].partitioned {
                                reindex_host_replicas(&mut trs, &hosts, f.host, true);
                                for t in 0..trs.len() {
                                    unpark(&mut q, &mut hosts, &mut trs, spec, t, now);
                                }
                            }
                        }
                    }
                    FailureKind::SlowStart { factor } => {
                        hosts[f.host].core.set_slow_factor(factor);
                    }
                    FailureKind::SlowEnd => {
                        hosts[f.host].core.set_slow_factor(1.0);
                    }
                    FailureKind::PartitionStart => {
                        if !hosts[f.host].partitioned {
                            if let Some(p) = fe_probe.as_mut() {
                                p.instant("fault", &format!("partition host{}", f.host), now);
                            }
                            // The host looks dead to the router but
                            // keeps draining its queues; a crashed
                            // host's replicas are already out of every
                            // index.
                            if hosts[f.host].healthy {
                                reindex_host_replicas(&mut trs, &hosts, f.host, false);
                            }
                            hosts[f.host].partitioned = true;
                        }
                    }
                    FailureKind::PartitionEnd => {
                        if hosts[f.host].partitioned {
                            if let Some(p) = fe_probe.as_mut() {
                                p.instant("fault", &format!("rejoin host{}", f.host), now);
                            }
                            hosts[f.host].partitioned = false;
                            // Rejoin with whatever stale queues built
                            // up while unreachable; routable again iff
                            // the host is also healthy.
                            if hosts[f.host].healthy {
                                reindex_host_replicas(&mut trs, &hosts, f.host, true);
                                for t in 0..trs.len() {
                                    unpark(&mut q, &mut hosts, &mut trs, spec, t, now);
                                }
                            }
                        }
                    }
                    FailureKind::DieFail { die } => {
                        // Partial degradation: the die leaves the pool
                        // whether or not the host is up (the outage
                        // survives a crash/recover cycle); a displaced
                        // in-flight batch re-enters through the retry
                        // layer. In-flight requests resolved any hedge
                        // ties at dispatch, so no tie check is needed.
                        if let Some((slot, arrivals)) = hosts[f.host].core.fail_die(die, now) {
                            let tenant = hosts[f.host].slot_owner[slot];
                            let replica = hosts[f.host].slot_replica[slot];
                            let o = trs[tenant].replicas[replica].outstanding;
                            set_outstanding(&mut trs, &hosts, tenant, replica, o - arrivals.len());
                            maybe_retire(&mut hosts, &mut trs, tenant, replica);
                            trs[tenant].displaced_pending += arrivals.len();
                            for ts in arrivals {
                                trs[tenant].displaced_pending -= 1;
                                if retry_or_drop(
                                    &mut q,
                                    &mut hosts,
                                    &mut trs,
                                    spec,
                                    tenant,
                                    ts,
                                    now,
                                    &mut fe_probe,
                                    tel,
                                    &mut brownout,
                                ) {
                                    for h in
                                        maybe_mark_drained(&mut hosts, &mut trs, tenant, usize::MAX)
                                    {
                                        try_dispatch_host(&mut q, &mut hosts, &mut trs, h, now);
                                    }
                                }
                            }
                        }
                        // The weight wipe cooled the die; re-derive the
                        // cached warmth for swap-affinity routing.
                        refresh_host_warmth(&mut trs, &mut hosts, f.host);
                    }
                    FailureKind::DieRecover { die } => {
                        hosts[f.host].core.recover_die(die);
                        if hosts[f.host].healthy {
                            // The pool grew: queued work may dispatch.
                            try_dispatch_host(&mut q, &mut hosts, &mut trs, f.host, now);
                        }
                    }
                    FailureKind::DieSlow { die, factor } => {
                        hosts[f.host].core.set_die_slow(die, factor);
                    }
                }
                let sample = sample_now(now, &trs, &hosts);
                fail_samples.push((fail_id, sample.clone()));
                timeline.push(sample);
            }
            FleetEvent::Retry { tenant, ts } => {
                counts[8] += 1;
                // The backoff elapsed: re-route at the original
                // arrival time (or park if every replica is down).
                trs[tenant].displaced_pending -= 1;
                route_request(&mut q, &mut hosts, &mut trs, spec, tenant, ts, now);
            }
            FleetEvent::HedgeFire { tenant, ts } => {
                counts[9] += 1;
                let bits = ts.to_bits();
                // Still pending? Dispatched or displaced requests had
                // their entries removed; this fire is then stale.
                let pending = match trs[tenant]
                    .retry_rt
                    .as_ref()
                    .and_then(|rt| rt.hedge_pending.get(&bits))
                {
                    Some(&HedgeTie::Pending { primary }) => Some(primary),
                    _ => None,
                };
                let Some(primary) = pending else { continue };
                // Tie to the least-outstanding serving replica other
                // than the one still holding the request.
                let second = trs[tenant]
                    .replicas
                    .iter()
                    .enumerate()
                    .filter(|&(i, r)| i != primary && serving(r, &hosts))
                    .min_by_key(|&(i, r)| (r.outstanding, i))
                    .map(|(i, _)| i);
                let rt = trs[tenant].retry_rt.as_mut().expect("fire implies policy");
                let Some(second) = second else {
                    // Nowhere to hedge to; the primary stays solo.
                    rt.hedge_pending.remove(&bits);
                    continue;
                };
                rt.hedge_pending.insert(
                    bits,
                    HedgeTie::Tied {
                        primary,
                        hedge: second,
                    },
                );
                trs[tenant].hedges += 1;
                if let Some(p) = fe_probe.as_mut() {
                    p.instant("fleet", "hedge", now);
                }
                // The tied copy injects straight into the second
                // replica's queue (the hedge delay already dominates
                // the hop) and keeps the original arrival time, so a
                // hedge win is a real latency win.
                let o = trs[tenant].replicas[second].outstanding;
                set_outstanding(&mut trs, &hosts, tenant, second, o + 1);
                let (host, slot) = {
                    let r = &trs[tenant].replicas[second];
                    (r.host, r.slot)
                };
                hosts[host].core.enqueue(slot, ts);
                hosts[host].events += 1;
                finish_delivery(&mut q, &mut hosts, &mut trs, tenant, host, slot, now);
            }
        }
    }

    for (t, tr) in trs.iter().enumerate() {
        assert!(
            tr.parked.is_empty(),
            "tenant {t} ({}) ends with {} unserved parked requests: every \
             replica stayed down; give the scenario a recovery or capacity",
            tr.spec.tenant.name,
            tr.parked.len()
        );
        assert!(
            tr.undelivered() == 0 && tr.in_hop == 0 && tr.displaced_pending == 0,
            "tenant {t} finished with work left (engine bug)"
        );
        let served: usize = tr
            .replicas
            .iter()
            .map(|r| hosts[r.host].core.latency_count(r.slot))
            .sum();
        assert_eq!(
            served + tr.dropped + tr.shed,
            tr.spec.tenant.requests,
            "tenant {t} lost requests (engine bug)"
        );
    }

    let makespan_ms = hosts
        .iter()
        .map(|h| h.core.makespan_ms())
        .fold(0.0, f64::max);
    // Close the timeline at the makespan, unless the last recorded
    // sample already covers that instant with the same counts.
    let last_t = timeline.last().map(|s| s.t_ms).unwrap_or(0.0);
    let closing = sample_now(makespan_ms.max(last_t), &trs, &hosts);
    if timeline.last() != Some(&closing) {
        timeline.push(closing);
    }

    if let Some(tr) = tel.tracer.as_mut() {
        for host in hosts.iter_mut() {
            if let Some(p) = host.core.take_probe() {
                tr.absorb(p.into_tracer());
            }
        }
        if let Some(p) = fe_probe.take() {
            tr.absorb(p.into_tracer());
        }
    }
    if let Some(log) = tel.requests.as_mut() {
        for host in hosts.iter_mut() {
            if let Some(p) = host.core.take_request_probe() {
                log.absorb(p);
            }
        }
    }
    if let Some(m) = tel.metrics.as_mut() {
        // The final partial interval's latency percentiles.
        m.flush_sketches(makespan_ms);
    }
    if let Some(mon) = tel.monitor.as_mut() {
        mon.finish();
    }
    if let Some(p) = tel.profile.as_mut() {
        const EVENT_NAMES: [&str; 10] = [
            "arrival",
            "deliver",
            "timer",
            "weight-swap",
            "die-free",
            "stale-host",
            "autoscale",
            "failure",
            "retry",
            "hedge-fire",
        ];
        p.event_counts = EVENT_NAMES
            .iter()
            .zip(counts)
            .map(|(n, c)| (n.to_string(), c))
            .collect();
        p.wheel = q.wheel_profile();
    }

    ScopedRun {
        hosts,
        trs,
        events_processed,
        timeline,
        fail_samples,
        makespan_ms,
    }
}

/// Run the independent placement components on worker threads and
/// merge, byte-identical to the single-threaded reference: shard
/// results scatter back to global host/tenant positions, and the
/// replica timeline is replayed from the per-failure samples in the
/// exact `(time, failure index)` order the reference engine pops them.
fn run_fleet_sharded(
    spec: &FleetSpec,
    tenants: &[FleetTenantSpec],
    cfg: &TpuConfig,
    placement: PlacementPlan,
    scopes: Vec<Scope>,
    workers: usize,
) -> FleetRun {
    let weights: Vec<u64> = scopes
        .iter()
        .map(|s| shard::scope_weight(s, tenants))
        .collect();
    let assignment = shard::assign_workers(&weights, workers);

    let scopes_ref = &scopes;
    let mut results: Vec<Option<ScopedRun>> = (0..scopes.len()).map(|_| None).collect();
    std::thread::scope(|sc| {
        let handles: Vec<_> = assignment
            .iter()
            .map(|comps| {
                sc.spawn(move || {
                    comps
                        .iter()
                        .map(|&c| {
                            let out = run_scoped(
                                spec,
                                tenants,
                                cfg,
                                &mut RunTelemetry::off(),
                                &scopes_ref[c],
                            );
                            (c, out)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            match h.join() {
                Ok(outs) => {
                    for (c, out) in outs {
                        results[c] = Some(out);
                    }
                }
                // Re-raise scenario panics (e.g. an unservable fleet)
                // with their original message.
                Err(e) => std::panic::resume_unwind(e),
            }
        }
    });

    // Scatter shard state back to global positions; replica host
    // indices return to global space so report assembly reads the
    // right cores.
    let mut hosts: Vec<Option<HostRt>> = (0..spec.hosts.len()).map(|_| None).collect();
    let mut trs: Vec<Option<TenantRt>> = (0..tenants.len()).map(|_| None).collect();
    let mut events_processed = 0u64;
    let mut makespan_ms = 0.0f64;
    let mut samples: Vec<(usize, usize, ReplicaSample)> = Vec::new();
    for (c, (scope, out)) in scopes.iter().zip(results).enumerate() {
        let out = out.expect("every component ran");
        events_processed += out.events_processed;
        makespan_ms = makespan_ms.max(out.makespan_ms);
        for (local, host) in out.hosts.into_iter().enumerate() {
            hosts[scope.hosts[local]] = Some(host);
        }
        for (local, mut tr) in out.trs.into_iter().enumerate() {
            for r in &mut tr.replicas {
                r.host = scope.hosts[r.host];
            }
            trs[scope.tenants[local]] = Some(tr);
        }
        for (fail_id, sample) in out.fail_samples {
            samples.push((fail_id, c, sample));
        }
    }
    let hosts: Vec<HostRt> = hosts.into_iter().map(|h| h.expect("host ran")).collect();
    let trs: Vec<TenantRt> = trs.into_iter().map(|t| t.expect("tenant ran")).collect();

    // Reconstruct the global replica timeline. Serving counts change
    // only at failure events here (no autoscaler in sharded runs), and
    // the reference engine pops same-time failures in schedule order,
    // so replaying the per-shard samples sorted by `(time, global
    // failure index)` over a running counts vector reproduces its
    // sample sequence exactly — including the t=0 sample and the
    // deduplicated closing sample at the makespan.
    samples.sort_by(|a, b| a.2.t_ms.total_cmp(&b.2.t_ms).then(a.0.cmp(&b.0)));
    let mut counts_now: Vec<usize> = placement.assignments.iter().map(|p| p.len()).collect();
    let mut timeline = vec![ReplicaSample {
        t_ms: 0.0,
        replicas: counts_now.clone(),
    }];
    for (_, c, sample) in samples {
        for (local, &gt) in scopes[c].tenants.iter().enumerate() {
            counts_now[gt] = sample.replicas[local];
        }
        timeline.push(ReplicaSample {
            t_ms: sample.t_ms,
            replicas: counts_now.clone(),
        });
    }
    let last_t = timeline.last().map(|s| s.t_ms).unwrap_or(0.0);
    let closing = ReplicaSample {
        t_ms: makespan_ms.max(last_t),
        replicas: counts_now,
    };
    if timeline.last() != Some(&closing) {
        timeline.push(closing);
    }

    assemble(
        spec,
        placement,
        ScopedRun {
            hosts,
            trs,
            events_processed,
            timeline,
            fail_samples: Vec::new(),
            makespan_ms,
        },
    )
}

/// Assemble the [`FleetRun`] from a finished (whole-fleet or merged)
/// run's state. Host and replica indices are global here.
fn assemble(spec: &FleetSpec, placement: PlacementPlan, out: ScopedRun) -> FleetRun {
    let ScopedRun {
        hosts,
        trs,
        events_processed,
        timeline,
        makespan_ms,
        ..
    } = out;

    let host_reports: Vec<ServeReport> = hosts
        .iter()
        .map(|h| h.core.report(h.core.makespan_ms(), h.events))
        .collect();

    let tenant_reports: Vec<FleetTenantReport> = trs
        .iter()
        .enumerate()
        .map(|(t, tr)| {
            let mut merged: Vec<f64> = tr
                .replicas
                .iter()
                .flat_map(|r| hosts[r.host].core.slot_latencies(r.slot))
                .collect();
            merged.sort_unstable_by(|a, b| a.total_cmp(b));
            let n = merged.len();
            let batches: usize = tr
                .replicas
                .iter()
                .map(|r| hosts[r.host].core.slot_batches(r.slot))
                .sum();
            let dispatched: usize = tr
                .replicas
                .iter()
                .map(|r| hosts[r.host].core.slot_dispatched(r.slot))
                .sum();
            let slo_ms = tr.spec.tenant.slo_ms;
            let slo_hits = merged.iter().filter(|&&l| l <= slo_ms).count();
            let counts: Vec<usize> = timeline.iter().map(|s| s.replicas[t]).collect();
            let swaps: usize = tr
                .replicas
                .iter()
                .map(|r| hosts[r.host].core.slot_swaps(r.slot))
                .sum();
            let swap_ms: f64 = tr
                .replicas
                .iter()
                .map(|r| hosts[r.host].core.slot_swap_ms(r.slot))
                .sum();
            FleetTenantReport {
                name: tr.spec.tenant.name.clone(),
                workload: tr.spec.tenant.workload.clone(),
                priority: tr.spec.tenant.priority,
                requests: n,
                offered: tr.spec.tenant.requests,
                dropped: tr.dropped,
                shed: tr.shed,
                hedges: tr.hedges,
                hedge_wins: tr.hedge_wins,
                retries: tr.retries,
                batches,
                mean_batch: dispatched as f64 / batches.max(1) as f64,
                mean_ms: merged.iter().sum::<f64>() / n.max(1) as f64,
                p50_ms: percentile(&merged, 0.50),
                p95_ms: percentile(&merged, 0.95),
                p99_ms: percentile(&merged, 0.99),
                slo_ms,
                slo_attainment: slo_hits as f64 / n.max(1) as f64,
                throughput_rps: n as f64 / makespan_ms.max(f64::MIN_POSITIVE) * 1000.0,
                replicas_final: *counts.last().expect("timeline non-empty"),
                replicas_min: counts.iter().copied().min().unwrap_or(0),
                replicas_max: counts.iter().copied().max().unwrap_or(0),
                swaps,
                swap_ms,
            }
        })
        .collect();

    let host_rows: Vec<FleetHostReport> = hosts
        .iter()
        .enumerate()
        .map(|(h, hr)| {
            let busy = hr.core.busy_ms();
            FleetHostReport {
                host: h,
                dies: hr.core.die_count(),
                batches: host_reports[h].dies.iter().map(|d| d.batches).sum(),
                busy_ms: busy,
                utilization: (busy
                    / (hr.core.die_count() as f64 * makespan_ms.max(f64::MIN_POSITIVE)))
                .min(1.0),
                crashes: hr.crashes,
                slots: hr.slot_owner.len(),
                resident_models: hr.live_slots,
                resident_bytes: hr.weight_used,
                swaps: hr.core.swaps(),
                swap_ms: hr.core.swap_ms(),
            }
        })
        .collect();

    FleetRun {
        report: FleetReport {
            tenants: tenant_reports,
            hosts: host_rows,
            replica_timeline: timeline,
            makespan_ms,
            events_processed,
            colocated: spec.colocate.is_some(),
            resilient: spec.retry.is_some() || spec.brownout.is_some(),
        },
        host_reports,
        placement,
    }
}

/// The shared tail of every delivery: check whether the tenant just
/// became fully delivered (flush its other replicas), re-arm the
/// receiving slot's timer, and dispatch — in exactly the order
/// `tpu_serve::run` uses, so the 1-host fleet replays it bit for bit.
fn finish_delivery(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    tenant: usize,
    host: usize,
    slot: usize,
    now: f64,
) {
    let flush_hosts = maybe_mark_drained(hosts, trs, tenant, host);
    let epoch = hosts[host].epoch;
    hosts[host].core.after_arrival(slot, now, &mut |at, e| {
        q.schedule(
            at,
            FleetEvent::Host {
                host,
                epoch,
                event: e,
            },
        )
    });
    try_dispatch_host(q, hosts, trs, host, now);
    for h in flush_hosts {
        try_dispatch_host(q, hosts, trs, h, now);
    }
}

/// Mark the tenant drained once every request has been generated and
/// delivered: all live replicas flush partial batches. Returns the
/// *other* hosts (not `delivered_host`) that need a dispatch pass; the
/// caller runs them after its own, preserving single-host event order.
fn maybe_mark_drained(
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    tenant: usize,
    delivered_host: usize,
) -> Vec<usize> {
    let tr = &mut trs[tenant];
    // Cheap flags first: `pending_arrival` is true for nearly every
    // delivery mid-run, so the virtual `remaining()` call on the boxed
    // arrival source is skipped on the hot path.
    if tr.drained
        || tr.pending_arrival
        || tr.in_hop > 0
        || tr.displaced_pending > 0
        || !tr.parked.is_empty()
        || tr.gen.remaining() > 0
    {
        return Vec::new();
    }
    tr.drained = true;
    let mut flush = Vec::new();
    for r in &tr.replicas {
        if r.live {
            hosts[r.host].core.set_draining(r.slot, true);
            if r.host != delivered_host && !flush.contains(&r.host) {
                flush.push(r.host);
            }
        }
    }
    flush
}

/// Dispatch-ready work on one host, scheduling its events with the
/// current epoch. Dispatches can begin weight swaps (warming the new
/// model's die, displacing the old), so the warmth cache is refreshed
/// on the way out.
fn try_dispatch_host(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    host: usize,
    now: f64,
) {
    let epoch = hosts[host].epoch;
    hosts[host].core.try_dispatch(now, &mut |at, e| {
        q.schedule(
            at,
            FleetEvent::Host {
                host,
                epoch,
                event: e,
            },
        )
    });
    refresh_host_warmth(trs, hosts, host);
    resolve_ties(q, hosts, trs, host, now);
}

/// First-wins hedge resolution: every request that just dispatched on
/// `host` cancels its tied sibling's still-queued copy at that
/// sibling's queue, so exactly one copy ever executes. Runs directly
/// after each dispatch pass — before any other host can dispatch — so
/// two copies of one request can never both reach a die. A no-op for
/// fleets without hedging (the dispatch log only exists when it's on).
fn resolve_ties(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    host: usize,
    now: f64,
) {
    let mut dispatched: Vec<(usize, f64)> = Vec::new();
    hosts[host].core.drain_dispatched(&mut dispatched);
    for (slot, ts) in dispatched {
        let tenant = hosts[host].slot_owner[slot];
        let Some(tie) = trs[tenant]
            .retry_rt
            .as_mut()
            .and_then(|rt| rt.hedge_pending.remove(&ts.to_bits()))
        else {
            continue;
        };
        let winner = hosts[host].slot_replica[slot];
        let loser = match tie {
            // No tied copy was launched; removing the entry just
            // staled the pending hedge timer.
            HedgeTie::Pending { .. } => continue,
            HedgeTie::Tied { primary, hedge } => {
                if winner == hedge {
                    trs[tenant].hedge_wins += 1;
                    primary
                } else {
                    hedge
                }
            }
        };
        let (lh, lslot) = {
            let r = &trs[tenant].replicas[loser];
            (r.host, r.slot)
        };
        let epoch = hosts[lh].epoch;
        let canceled = hosts[lh].core.cancel_queued(lslot, ts, now, &mut |at, e| {
            q.schedule(
                at,
                FleetEvent::Host {
                    host: lh,
                    epoch,
                    event: e,
                },
            )
        });
        if canceled {
            let o = trs[tenant].replicas[loser].outstanding;
            set_outstanding(trs, hosts, tenant, loser, o - 1);
            maybe_retire(hosts, trs, tenant, loser);
        }
    }
}

/// The hedge-fire delay for one tenant's fresh arrival, or `None` when
/// hedging is off. The delay is the configured quantile over the
/// recent completion window, floored at `min_delay_ms` — and pinned to
/// the floor until 20 completions exist (a tail estimate over fewer
/// samples is noise).
fn hedge_delay(tr: &TenantRt) -> Option<f64> {
    let rt = tr.retry_rt.as_ref()?;
    let h = rt.policy.hedge?;
    if rt.lat_seen < 20 {
        return Some(h.min_delay_ms);
    }
    let mut lat: Vec<f64> = rt.lat_window.iter().copied().collect();
    lat.sort_unstable_by(|a, b| a.total_cmp(b));
    Some(percentile(&lat, h.quantile).max(h.min_delay_ms))
}

/// Feed one completed batch's just-committed latencies to the owning
/// tenant's hedge-delay window and its component's brownout
/// controller. A no-op unless one of those consumers exists.
#[allow(clippy::too_many_arguments)]
fn observe_completions(
    trs: &mut [TenantRt],
    hosts: &[HostRt],
    brownout: &mut Option<BrownoutCtl>,
    fe_probe: &mut Option<HostProbe>,
    tenant: usize,
    host: usize,
    slot: usize,
    from: usize,
    now: f64,
) {
    let hedging = trs[tenant]
        .retry_rt
        .as_ref()
        .is_some_and(|rt| rt.policy.hedge.is_some());
    if brownout.is_none() && !hedging {
        return;
    }
    let lats = hosts[host].core.slot_latencies_from(slot, from);
    let slo = trs[tenant].spec.tenant.slo_ms;
    if hedging {
        let rt = trs[tenant].retry_rt.as_mut().expect("hedging checked");
        let window = rt.policy.hedge.expect("hedging checked").window;
        for &l in &lats {
            if rt.lat_window.len() == window {
                rt.lat_window.pop_front();
            }
            rt.lat_window.push_back(l);
            rt.lat_seen += 1;
        }
    }
    if let Some(b) = brownout.as_mut() {
        let g = b.group_of[tenant];
        for &l in &lats {
            if let Some(state) = b.groups[g].observe(l > slo, now) {
                if let Some(p) = fe_probe.as_mut() {
                    let what = if state {
                        "brownout-trip"
                    } else {
                        "brownout-clear"
                    };
                    p.instant("fleet", what, now);
                }
            }
        }
    }
}

/// One displaced request hits the retry layer. With no policy this is
/// the legacy path verbatim: count the retry and re-route immediately,
/// with no bound. With a policy: bounded attempts (`max_attempts`
/// counts the original send), a lazily-refilled token-bucket retry
/// budget, and deterministic exponential backoff with seeded jitter —
/// the re-route happens at a later [`FleetEvent::Retry`]. Returns
/// `true` when the request was abandoned; the caller must then run the
/// drained-flush check, since the drop may have been the tenant's last
/// outstanding piece of work.
#[allow(clippy::too_many_arguments)]
fn retry_or_drop(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    spec: &FleetSpec,
    tenant: usize,
    ts: f64,
    now: f64,
    fe_probe: &mut Option<HostProbe>,
    tel: &mut RunTelemetry,
    brownout: &mut Option<BrownoutCtl>,
) -> bool {
    if trs[tenant].retry_rt.is_none() {
        trs[tenant].retries += 1;
        if let Some(p) = fe_probe.as_mut() {
            p.instant("fleet", "retry", now);
        }
        if let Some(l) = tel.requests.as_mut() {
            l.note_retry(&trs[tenant].spec.tenant.name, ts);
        }
        route_request(q, hosts, trs, spec, tenant, ts, now);
        return false;
    }
    let bits = ts.to_bits();
    let rt = trs[tenant].retry_rt.as_mut().expect("checked above");
    let spent = rt.attempts.get(&bits).copied().unwrap_or(0);
    let exhausted = spent + 1 >= rt.policy.max_attempts;
    // Lazily refill the budget bucket before judging this retry.
    let over_budget = if let Some(b) = rt.policy.budget {
        rt.tokens = (rt.tokens + (now - rt.last_refill_ms) * b.refill_per_ms).min(b.tokens);
        rt.last_refill_ms = now;
        rt.tokens < 1.0
    } else {
        false
    };
    if exhausted || over_budget {
        rt.attempts.remove(&bits);
        trs[tenant].dropped += 1;
        if let Some(p) = fe_probe.as_mut() {
            p.instant("fleet", "drop", now);
        }
        if let Some(l) = tel.requests.as_mut() {
            l.note_drop(&trs[tenant].spec.tenant.name, ts);
        }
        // An abandoned request is burn: feed the component's brownout
        // controller so retry-budget pressure can trip sheds.
        if let Some(b) = brownout.as_mut() {
            let g = b.group_of[tenant];
            if let Some(state) = b.groups[g].observe(true, now) {
                if let Some(p) = fe_probe.as_mut() {
                    let what = if state {
                        "brownout-trip"
                    } else {
                        "brownout-clear"
                    };
                    p.instant("fleet", what, now);
                }
            }
        }
        return true;
    }
    rt.attempts.insert(bits, spent + 1);
    if rt.policy.budget.is_some() {
        rt.tokens -= 1.0;
    }
    let u = rt.rng.gen_range(0.0..1.0);
    let delay = rt.policy.backoff_ms(spent + 1, u);
    trs[tenant].retries += 1;
    if let Some(p) = fe_probe.as_mut() {
        p.instant("fleet", "backoff", now);
    }
    if let Some(l) = tel.requests.as_mut() {
        l.note_retry(&trs[tenant].spec.tenant.name, ts);
    }
    // Count the request as displaced until its Retry fires, so the
    // drained check can't trip while it waits out the backoff.
    trs[tenant].displaced_pending += 1;
    q.schedule(now + delay, FleetEvent::Retry { tenant, ts });
    false
}

/// Route one request (fresh, retried, or unparked) at time `now`,
/// keeping its original arrival timestamp `ts` for latency accounting.
fn route_request(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    spec: &FleetSpec,
    tenant: usize,
    ts: f64,
    now: f64,
) {
    match pick_replica(trs, hosts, spec, tenant) {
        None => trs[tenant].parked.push_back(ts),
        Some(replica) => deliver_or_hop(q, hosts, trs, tenant, replica, ts, now),
    }
}

/// Hand one routed request (front-end arrival time `ts`) to `replica`:
/// either schedule the network hop or deliver straight into the host
/// queue. The single delivery path shared by fresh arrivals, crash
/// retries, and unparked requests.
fn deliver_or_hop(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    tenant: usize,
    replica: usize,
    ts: f64,
    now: f64,
) {
    let o = trs[tenant].replicas[replica].outstanding;
    set_outstanding(trs, hosts, tenant, replica, o + 1);
    let hop = trs[tenant].hop_ms;
    if hop > 0.0 {
        trs[tenant].in_hop += 1;
        q.schedule(
            now + hop,
            FleetEvent::Deliver {
                tenant,
                replica,
                arrived_ms: ts,
            },
        );
    } else {
        let (host, slot) = {
            let r = &trs[tenant].replicas[replica];
            (r.host, r.slot)
        };
        hosts[host].core.enqueue(slot, ts);
        hosts[host].events += 1;
        finish_delivery(q, hosts, trs, tenant, host, slot, now);
    }
}

/// Retire a drained replica once its last outstanding request clears.
fn maybe_retire(hosts: &mut [HostRt], trs: &mut [TenantRt], tenant: usize, replica: usize) {
    let weight = trs[tenant].spec.weight_bytes();
    let r = &mut trs[tenant].replicas[replica];
    if r.live && !r.routable && r.outstanding == 0 {
        r.live = false;
        hosts[r.host].weight_used -= weight;
        hosts[r.host].live_slots -= 1;
    }
}

/// Re-route parked requests while candidates exist.
fn unpark(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    spec: &FleetSpec,
    tenant: usize,
    now: f64,
) {
    while let Some(&ts) = trs[tenant].parked.front() {
        if !trs[tenant].has_candidates(hosts) {
            break;
        }
        trs[tenant].parked.pop_front();
        route_request(q, hosts, trs, spec, tenant, ts, now);
    }
}

/// Evaluate and apply one tenant's autoscaling decision.
fn autoscale_tenant(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    spec: &FleetSpec,
    tenant: usize,
    now: f64,
    cfg: &crate::autoscale::AutoscaleConfig,
) {
    // Gather the window signals and advance the watermarks. Window
    // latencies include draining replicas (their completions are real
    // tail samples), but the utilization signal counts only *serving*
    // replicas' busy time — busy time burned by draining or crashed
    // replicas must not inflate the per-serving-replica average and
    // trigger spurious scale-ups.
    let mut window: Vec<f64> = Vec::new();
    let mut busy_delta = 0.0;
    {
        let tr = &mut trs[tenant];
        for r in &mut tr.replicas {
            let core = &hosts[r.host].core;
            window.extend(core.slot_latencies_from(r.slot, r.window_mark));
            r.window_mark = core.latency_count(r.slot);
            let busy = core.slot_busy_ms(r.slot);
            let delta = busy - r.busy_mark;
            r.busy_mark = busy;
            if serving(r, hosts) {
                busy_delta += delta;
            }
        }
    }
    window.sort_unstable_by(|a, b| a.total_cmp(b));
    let window_p99 = if window.is_empty() {
        None
    } else {
        Some(percentile(&window, 0.99))
    };
    let serving = trs[tenant].serving_replicas(hosts);
    let util = busy_delta / (cfg.interval_ms * serving.max(1) as f64);
    let decision = decide(
        cfg,
        &ScaleSignals {
            window_p99,
            slo_ms: trs[tenant].spec.tenant.slo_ms,
            replica_util: util,
            replicas: serving,
            min_replicas: trs[tenant].spec.min_replicas,
            max_replicas: trs[tenant].spec.max_replicas,
            since_last_action_ms: now - trs[tenant].last_scale_ms,
        },
    );
    match decision {
        ScaleDecision::Hold => {}
        ScaleDecision::Up => {
            try_scale_up(q, hosts, trs, spec, tenant, now);
        }
        ScaleDecision::Down => {
            let victim = trs[tenant]
                .replicas
                .iter()
                .enumerate()
                .filter(|(_, r)| self::serving(r, hosts))
                .min_by_key(|(i, r)| (r.outstanding, *i))
                .map(|(i, _)| i);
            if let Some(replica) = victim {
                let (host, slot) = {
                    let tr = &mut trs[tenant];
                    let r = &mut tr.replicas[replica];
                    r.routable = false;
                    let (o, warm) = (r.outstanding, r.warm);
                    let (h, s) = (r.host, r.slot);
                    if tr.use_index {
                        // The victim was serving (the filter above);
                        // draining removes it from the routable set.
                        tr.index.remove(o, replica);
                        if tr.swap_indexed && warm {
                            tr.warm.remove(o, replica);
                        }
                    }
                    (h, s)
                };
                hosts[host].core.set_draining(slot, true);
                try_dispatch_host(q, hosts, trs, host, now);
                maybe_retire(hosts, trs, tenant, replica);
                trs[tenant].last_scale_ms = now;
            }
        }
    }
}

/// Place one more replica of a tenant on the best eligible host
/// (healthy, free weight memory, not already hosting it), route any
/// parked requests to it, and stamp the cooldown. Returns whether a
/// replica was placed.
fn try_scale_up(
    q: &mut EventQueue<FleetEvent>,
    hosts: &mut [HostRt],
    trs: &mut [TenantRt],
    spec: &FleetSpec,
    tenant: usize,
    now: f64,
) -> bool {
    // The ceiling counts *live* replicas, including ones on crashed
    // hosts (they rejoin on recovery): a transient outage must not let
    // the tenant durably exceed its configured max_replicas.
    let live = trs[tenant].replicas.iter().filter(|r| r.live).count();
    if live >= trs[tenant].spec.max_replicas {
        return false;
    }
    let weight = trs[tenant].spec.weight_bytes();
    let target = hosts
        .iter()
        .enumerate()
        .filter(|(h, hr)| {
            hr.healthy
                && !hr.partitioned
                && hr.weight_used + weight <= spec.hosts[*h].weight_capacity_bytes
                && !trs[tenant].replicas.iter().any(|r| r.live && r.host == *h)
        })
        .min_by_key(|(h, hr)| (hr.live_slots, *h))
        .map(|(h, _)| h);
    let Some(host) = target else {
        return false;
    };
    let slot = hosts[host]
        .core
        .add_slot(trs[tenant].spec.tenant.clone(), trs[tenant].curve);
    if let Some(mw) = trs[tenant].weights {
        hosts[host].core.set_slot_weights(slot, mw);
    }
    hosts[host].slot_owner.push(tenant);
    hosts[host].slot_replica.push(trs[tenant].replicas.len());
    hosts[host].weight_used += weight;
    hosts[host].live_slots += 1;
    if trs[tenant].drained {
        hosts[host].core.set_draining(slot, true);
    }
    let mark = hosts[host].core.latency_count(slot);
    let busy = hosts[host].core.slot_busy_ms(slot);
    let warm_bit = trs[tenant].swap_indexed && hosts[host].core.slot_has_warm_die(slot);
    if trs[tenant].use_index {
        let replica = trs[tenant].replicas.len();
        trs[tenant].index.insert(0, replica);
        if warm_bit {
            trs[tenant].warm.insert(0, replica);
        }
    }
    trs[tenant].replicas.push(ReplicaRt {
        host,
        slot,
        routable: true,
        live: true,
        outstanding: 0,
        window_mark: mark,
        busy_mark: busy,
        warm: warm_bit,
    });
    trs[tenant].last_scale_ms = now;
    unpark(q, hosts, trs, spec, tenant, now);
    true
}

/// Emit one cadence sample's fleet gauges: per tenant the outstanding
/// / serving-replica / parked / cumulative-retry / cumulative-arrival
/// counts and live-replica placement, per host the die utilization,
/// raw busy-time, backlog, resident weight sets, and pending swaps.
/// Shared by the metrics recorder and the health monitor so an offline
/// monitor replay from the metrics artifact sees exactly the gauge
/// values the online monitor saw.
fn fleet_gauges(now: f64, trs: &[TenantRt], hosts: &[HostRt], emit: &mut dyn FnMut(String, f64)) {
    for tr in trs {
        let name = &tr.spec.tenant.name;
        let outstanding: usize = tr.replicas.iter().map(|r| r.outstanding).sum();
        emit(format!("outstanding/{name}"), outstanding as f64);
        emit(
            format!("replicas/{name}"),
            tr.serving_replicas(hosts) as f64,
        );
        emit(format!("parked/{name}"), tr.parked.len() as f64);
        emit(format!("retries/{name}"), tr.retries as f64);
        // Requests delivered out of the front end so far (monotone) —
        // the monitor's outage demand gate.
        emit(
            format!("arrived/{name}"),
            (tr.gen.total() - tr.undelivered()) as f64,
        );
        // Live-replica placement per host; retired placements keep
        // emitting 0 so a stale snapshot can't pin demand on a host
        // the autoscaler vacated.
        let mut placed: BTreeMap<usize, usize> = BTreeMap::new();
        for r in &tr.replicas {
            *placed.entry(r.host).or_insert(0) += r.live as usize;
        }
        for (h, n) in placed {
            emit(format!("placed/{name}/host{h}"), n as f64);
        }
    }
    for (h, host) in hosts.iter().enumerate() {
        let util = if now > 0.0 {
            (host.core.busy_ms() / (host.core.die_count() as f64 * now)).min(1.0)
        } else {
            0.0
        };
        emit(format!("util/host{h}"), util);
        emit(format!("busy/host{h}"), host.core.busy_ms());
        let backlog: usize = (0..host.core.slot_count())
            .map(|s| host.core.outstanding(s))
            .sum();
        emit(format!("backlog/host{h}"), backlog as f64);
        emit(format!("resident/host{h}"), host.live_slots as f64);
        emit(
            format!("pending_swaps/host{h}"),
            host.core.pending_swaps() as f64,
        );
    }
}

/// Record one cadence sample of the fleet probe series at stamp `t`.
fn sample_metrics(m: &mut MetricsRecorder, t: f64, now: f64, trs: &[TenantRt], hosts: &[HostRt]) {
    fleet_gauges(now, trs, hosts, &mut |name, v| m.record(&name, t, v));
}

/// Snapshot the per-tenant serving replica counts.
fn sample_now(t_ms: f64, trs: &[TenantRt], hosts: &[HostRt]) -> ReplicaSample {
    ReplicaSample {
        t_ms,
        replicas: trs.iter().map(|tr| tr.serving_replicas(hosts)).collect(),
    }
}
