//! Front-end request routing across a tenant's replicas.
//!
//! The router sees, per request, the tenant's *candidate* replicas —
//! live, routable, on healthy hosts — together with each candidate's
//! outstanding request count (routed but not yet completed). All three
//! policies are deterministic: no RNG, ties break by replica index, and
//! the consistent-hash ring is rebuilt only when the candidate set
//! changes, so a fixed seed yields a bit-identical routing trace.

use serde::{Deserialize, Serialize};

/// How the front-end picks a replica for each request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum RouterPolicy {
    /// Cycle through the candidate replicas per tenant.
    RoundRobin,
    /// Send each request to the candidate with the fewest outstanding
    /// requests (queued + in flight + in hop), ties to the lowest
    /// replica index — the classic least-outstanding-requests balancer.
    LeastOutstanding,
    /// Consistent hashing with bounded load: each request hashes onto a
    /// ring of replica virtual nodes and walks clockwise past replicas
    /// whose outstanding count exceeds `bound` × the fair share. Keeps
    /// per-replica affinity (cache-friendly) without letting a hot
    /// shard melt.
    ConsistentHash {
        /// Virtual nodes per replica on the ring.
        vnodes: usize,
        /// Load bound as a multiple of the mean outstanding load (> 1).
        bound: f64,
    },
    /// Swap-affinity routing for co-located fleets: prefer candidates
    /// whose host already has a die *warm* for the tenant's model (its
    /// weights loaded or loading — no swap stall to dispatch there),
    /// then fewest outstanding, then lowest replica index. The fleet
    /// engine resolves warmth against live host state; a bare
    /// [`RouterState::pick`] has no host view and degrades to
    /// least-outstanding.
    SwapAware,
}

/// One routable replica, as the router sees it.
#[derive(Debug, Clone, Copy)]
pub struct Candidate {
    /// Fleet-wide replica index (stable across the replica's life).
    pub replica: usize,
    /// Requests routed to it and not yet completed.
    pub outstanding: usize,
}

/// SplitMix64 finalizer: the deterministic hash behind the ring.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Per-tenant router state (round-robin cursors, hash rings, request
/// counters).
#[derive(Debug, Default, Clone)]
pub struct RouterState {
    rr_cursor: u64,
    requests_routed: u64,
    ring: Vec<(u64, usize)>,
    ring_members: Vec<usize>,
}

impl RouterState {
    /// Fresh state for one tenant.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pick a replica for the next request, or `None` when no candidate
    /// exists (all hosts down — the caller parks the request).
    pub fn pick(
        &mut self,
        policy: RouterPolicy,
        tenant: usize,
        candidates: &[Candidate],
    ) -> Option<usize> {
        if candidates.is_empty() {
            return None;
        }
        let choice = match policy {
            RouterPolicy::RoundRobin => {
                let i = (self.rr_cursor % candidates.len() as u64) as usize;
                self.rr_cursor += 1;
                candidates[i].replica
            }
            RouterPolicy::LeastOutstanding | RouterPolicy::SwapAware => {
                least_outstanding(candidates)
            }
            RouterPolicy::ConsistentHash { vnodes, bound } => {
                assert!(vnodes > 0, "need at least one virtual node");
                assert!(bound > 1.0, "load bound must exceed 1");
                self.rebuild_ring_if_stale(tenant, vnodes, candidates);
                let key = mix((tenant as u64) << 48 ^ self.requests_routed);
                let total: usize = candidates.iter().map(|c| c.outstanding).sum();
                let cap = (((total + 1) as f64) * bound / candidates.len() as f64).ceil() as usize;
                let start = self.ring.partition_point(|&(h, _)| h < key);
                let n = self.ring.len();
                let mut pick = None;
                for k in 0..n {
                    let (_, replica) = self.ring[(start + k) % n];
                    let c = candidates
                        .iter()
                        .find(|c| c.replica == replica)
                        .expect("ring members are candidates");
                    if c.outstanding < cap {
                        pick = Some(replica);
                        break;
                    }
                }
                // Every replica at the bound (tiny candidate sets under
                // bursts): degrade to least-outstanding.
                pick.unwrap_or_else(|| least_outstanding(candidates))
            }
        };
        self.requests_routed += 1;
        Some(choice)
    }

    fn rebuild_ring_if_stale(&mut self, tenant: usize, vnodes: usize, candidates: &[Candidate]) {
        // Compare without collecting: this runs once per request and
        // the candidate set rarely changes.
        if candidates.len() == self.ring_members.len()
            && candidates
                .iter()
                .zip(&self.ring_members)
                .all(|(c, &m)| c.replica == m)
        {
            return;
        }
        let members: Vec<usize> = candidates.iter().map(|c| c.replica).collect();
        self.ring = members
            .iter()
            .flat_map(|&r| {
                (0..vnodes)
                    .map(move |v| (mix((tenant as u64) << 40 ^ (r as u64) << 16 ^ v as u64), r))
            })
            .collect();
        self.ring.sort_unstable();
        self.ring_members = members;
    }
}

fn least_outstanding(candidates: &[Candidate]) -> usize {
    candidates
        .iter()
        .min_by_key(|c| (c.outstanding, c.replica))
        .expect("caller checked non-empty")
        .replica
}

/// The indexed least-outstanding balancer over a tenant's *routable*
/// replicas, maintained update-on-delta by the fleet engine instead of
/// re-scanned per request. Replicas are bucketed by outstanding count,
/// each bucket a replica-index bitmap, with a lazily-advanced floor
/// cursor over the buckets: moving a replica between counts is two bit
/// flips, and [`OutstandingIndex::least`] finds the first set bit of
/// the least non-empty bucket — O(1) amortized, no allocation, no
/// ordered-tree walk. `least` is the same `(outstanding, replica)`
/// minimum — ties to the lowest replica index — that
/// [`RouterPolicy::LeastOutstanding`]'s candidate scan computes, so
/// swapping the engine onto the index changes no routing decision (the
/// differential tests below pin that). Membership tracks eligibility:
/// the engine inserts a replica when it becomes routable (placement,
/// host recovery) and removes it when it stops being so (crash, drain,
/// retirement).
#[derive(Debug, Default, Clone)]
pub struct OutstandingIndex {
    /// `buckets[count]` = bitmap over replica indices at that count.
    buckets: Vec<Vec<u64>>,
    /// Set bits per bucket (emptiness without scanning words).
    bucket_len: Vec<usize>,
    /// Total tracked replicas.
    len: usize,
    /// No non-empty bucket lies below this count (advanced lazily in
    /// [`Self::least`], reset by inserts — the classic lazy minimum).
    floor: usize,
}

impl OutstandingIndex {
    /// An empty index (no routable replicas).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of routable replicas tracked.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no replica is routable.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Track a replica that just became routable.
    pub fn insert(&mut self, outstanding: usize, replica: usize) {
        if self.buckets.len() <= outstanding {
            self.buckets.resize_with(outstanding + 1, Vec::new);
            self.bucket_len.resize(outstanding + 1, 0);
        }
        let bucket = &mut self.buckets[outstanding];
        let word = replica / 64;
        if bucket.len() <= word {
            bucket.resize(word + 1, 0);
        }
        let bit = 1u64 << (replica % 64);
        debug_assert!(bucket[word] & bit == 0, "replica {replica} already tracked");
        bucket[word] |= bit;
        self.bucket_len[outstanding] += 1;
        self.len += 1;
        self.floor = self.floor.min(outstanding);
    }

    /// Stop tracking a replica (crashed host, draining, retired).
    pub fn remove(&mut self, outstanding: usize, replica: usize) {
        let word = replica / 64;
        let bit = 1u64 << (replica % 64);
        debug_assert!(
            self.buckets
                .get(outstanding)
                .and_then(|b| b.get(word))
                .is_some_and(|w| w & bit != 0),
            "replica {replica} was not tracked at {outstanding}"
        );
        self.buckets[outstanding][word] &= !bit;
        self.bucket_len[outstanding] -= 1;
        self.len -= 1;
    }

    /// Move a tracked replica between outstanding counts (one routed
    /// request in, or a completed batch out).
    pub fn update(&mut self, old_outstanding: usize, new_outstanding: usize, replica: usize) {
        self.remove(old_outstanding, replica);
        self.insert(new_outstanding, replica);
    }

    /// The replica with the fewest outstanding requests, ties to the
    /// lowest replica index; `None` when nothing is routable.
    pub fn least(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        while self.bucket_len[self.floor] == 0 {
            self.floor += 1;
        }
        let bucket = &self.buckets[self.floor];
        let (word, bits) = bucket
            .iter()
            .enumerate()
            .find(|&(_, &w)| w != 0)
            .expect("bucket_len said non-empty");
        Some(word * 64 + bits.trailing_zeros() as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cands(outstanding: &[usize]) -> Vec<Candidate> {
        outstanding
            .iter()
            .enumerate()
            .map(|(replica, &outstanding)| Candidate {
                replica,
                outstanding,
            })
            .collect()
    }

    #[test]
    fn round_robin_cycles_candidates() {
        let mut s = RouterState::new();
        let c = cands(&[0, 0, 0]);
        let picks: Vec<usize> = (0..6)
            .map(|_| s.pick(RouterPolicy::RoundRobin, 0, &c).unwrap())
            .collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn least_outstanding_prefers_idle_then_lowest_index() {
        let mut s = RouterState::new();
        assert_eq!(
            s.pick(RouterPolicy::LeastOutstanding, 0, &cands(&[4, 1, 3])),
            Some(1)
        );
        assert_eq!(
            s.pick(RouterPolicy::LeastOutstanding, 0, &cands(&[2, 2, 2])),
            Some(0),
            "ties break to the lowest replica index"
        );
    }

    #[test]
    fn empty_candidate_set_parks() {
        let mut s = RouterState::new();
        assert_eq!(s.pick(RouterPolicy::LeastOutstanding, 0, &[]), None);
    }

    #[test]
    fn consistent_hash_is_deterministic_and_sticky() {
        let policy = RouterPolicy::ConsistentHash {
            vnodes: 16,
            bound: 2.0,
        };
        let c = cands(&[0, 0, 0, 0]);
        let mut a = RouterState::new();
        let mut b = RouterState::new();
        let pa: Vec<usize> = (0..64).map(|_| a.pick(policy, 3, &c).unwrap()).collect();
        let pb: Vec<usize> = (0..64).map(|_| b.pick(policy, 3, &c).unwrap()).collect();
        assert_eq!(pa, pb, "same state, same trace");
        let hit: std::collections::BTreeSet<usize> = pa.iter().copied().collect();
        assert!(hit.len() >= 3, "64 keys spread over the ring: {hit:?}");
    }

    #[test]
    fn consistent_hash_bounds_the_load() {
        let policy = RouterPolicy::ConsistentHash {
            vnodes: 8,
            bound: 1.25,
        };
        let mut s = RouterState::new();
        // Replica 0 is far over the fair share: the walk must skip it.
        // total=40, cap = ceil(41 * 1.25 / 2) = 26; replica 0 at 40.
        for _ in 0..32 {
            let pick = s.pick(policy, 1, &cands(&[40, 0])).unwrap();
            assert_eq!(pick, 1, "overloaded replica is skipped");
        }
    }

    /// Regression pin for the indexed-router swap: with equal
    /// outstanding counts, both the legacy candidate scan and the
    /// indexed structure must pick the *lowest replica index*.
    #[test]
    fn scan_and_index_break_ties_to_the_lowest_replica() {
        let mut s = RouterState::new();
        let tied = cands(&[3, 3, 3, 3]);
        assert_eq!(s.pick(RouterPolicy::LeastOutstanding, 0, &tied), Some(0));

        let mut idx = OutstandingIndex::new();
        for c in &tied {
            idx.insert(c.outstanding, c.replica);
        }
        assert_eq!(idx.least(), Some(0), "index ties break to lowest replica");

        // Remove the lowest; the tie moves to the next index, in both.
        idx.remove(3, 0);
        assert_eq!(idx.least(), Some(1));
        assert_eq!(
            s.pick(
                RouterPolicy::LeastOutstanding,
                0,
                &cands(&[usize::MAX, 3, 3, 3])[1..]
            ),
            Some(1)
        );
    }

    /// Differential: an arbitrary sequence of insert/remove/delta
    /// updates leaves the index agreeing with a fresh least-outstanding
    /// scan of the same replica population at every step.
    #[test]
    fn index_matches_scan_under_random_updates() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut idx = OutstandingIndex::new();
        // tracked[replica] = Some(outstanding) while routable.
        let mut tracked: Vec<Option<usize>> = vec![None; 24];
        for _ in 0..4_000 {
            let replica = rng.gen_range(0..tracked.len());
            match tracked[replica] {
                None => {
                    let outstanding = rng.gen_range(0..4usize);
                    idx.insert(outstanding, replica);
                    tracked[replica] = Some(outstanding);
                }
                Some(outstanding) => {
                    if rng.gen_range(0..4usize) == 0 {
                        idx.remove(outstanding, replica);
                        tracked[replica] = None;
                    } else {
                        let next = if outstanding > 0 && rng.gen_range(0..2usize) == 0 {
                            outstanding - 1
                        } else {
                            outstanding + 1
                        };
                        idx.update(outstanding, next, replica);
                        tracked[replica] = Some(next);
                    }
                }
            }
            let scan: Vec<Candidate> = tracked
                .iter()
                .enumerate()
                .filter_map(|(replica, o)| {
                    o.map(|outstanding| Candidate {
                        replica,
                        outstanding,
                    })
                })
                .collect();
            assert_eq!(idx.len(), scan.len());
            let expected = if scan.is_empty() {
                None
            } else {
                Some(least_outstanding(&scan))
            };
            assert_eq!(idx.least(), expected, "index diverged from the scan");
        }
    }

    #[test]
    fn ring_rebuilds_when_candidates_change() {
        let policy = RouterPolicy::ConsistentHash {
            vnodes: 8,
            bound: 2.0,
        };
        let mut s = RouterState::new();
        let _ = s.pick(policy, 0, &cands(&[0, 0, 0]));
        let before = s.ring.len();
        let _ = s.pick(policy, 0, &cands(&[0, 0])); // one replica gone
        assert_eq!(s.ring.len(), 16);
        assert_eq!(before, 24);
    }
}
