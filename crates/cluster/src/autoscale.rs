//! Reactive replica autoscaling from tail-latency and utilization
//! signals.
//!
//! Every `interval_ms` the fleet engine computes, per tenant, the p99
//! of the latencies completed *since the last tick* (the window) and
//! the mean per-replica utilization (busy time accumulated by the
//! tenant's replicas over the interval, divided by replicas). The
//! decision rule is deliberately simple and fully deterministic:
//!
//! * **up** when the window p99 breaches `p99_up_frac` × SLO *or*
//!   utilization exceeds `util_up`, the tenant is below its replica
//!   ceiling, and the cooldown has elapsed;
//! * **down** when the window p99 sits below `p99_down_frac` × SLO
//!   *and* utilization is under `util_down`, the tenant is above its
//!   floor, and the cooldown has elapsed;
//! * **hold** otherwise.
//!
//! Cooldowns damp oscillation: after any action the tenant holds for
//! `cooldown_ms` regardless of signals.

use serde::{Deserialize, Serialize};

/// Autoscaler tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleConfig {
    /// Evaluation period, ms.
    pub interval_ms: f64,
    /// Scale up when window p99 > this fraction of the SLO.
    pub p99_up_frac: f64,
    /// Scale down only when window p99 < this fraction of the SLO.
    pub p99_down_frac: f64,
    /// Scale up when mean per-replica utilization exceeds this.
    pub util_up: f64,
    /// Scale down only when mean per-replica utilization is below this.
    pub util_down: f64,
    /// Minimum time between actions for one tenant, ms.
    pub cooldown_ms: f64,
}

impl AutoscaleConfig {
    /// A reasonable reactive controller: 20 ms ticks, scale up on SLO
    /// breach or >85% utilization, scale down under 50% of SLO and
    /// <25% utilization, 40 ms cooldown.
    pub fn reactive() -> Self {
        AutoscaleConfig {
            interval_ms: 20.0,
            p99_up_frac: 1.0,
            p99_down_frac: 0.5,
            util_up: 0.85,
            util_down: 0.25,
            cooldown_ms: 40.0,
        }
    }

    /// Reject degenerate configurations up front.
    ///
    /// # Panics
    ///
    /// Panics on a nonpositive interval or cooldown, or thresholds out
    /// of order.
    pub fn validate(&self) {
        assert!(self.interval_ms > 0.0, "interval must be positive");
        assert!(self.cooldown_ms >= 0.0, "cooldown must be nonnegative");
        assert!(
            self.p99_down_frac < self.p99_up_frac,
            "down threshold must sit below up threshold"
        );
        assert!(
            self.util_down < self.util_up,
            "utilization thresholds out of order"
        );
    }
}

/// What the controller wants for one tenant this tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleDecision {
    /// Add one replica.
    Up,
    /// Drain one replica.
    Down,
    /// Leave the count alone.
    Hold,
}

/// One tenant's observed state at an autoscaler tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScaleSignals {
    /// p99 of the latencies completed during the window; `None` when no
    /// request completed — an idle tenant, which can only scale down on
    /// the utilization signal.
    pub window_p99: Option<f64>,
    /// The tenant's latency target, ms.
    pub slo_ms: f64,
    /// Mean per-replica utilization over the window.
    pub replica_util: f64,
    /// Serving replicas right now.
    pub replicas: usize,
    /// Autoscaler floor.
    pub min_replicas: usize,
    /// Autoscaler ceiling.
    pub max_replicas: usize,
    /// Time since this tenant's last scaling action, ms.
    pub since_last_action_ms: f64,
}

/// The pure decision rule (see module docs).
pub fn decide(cfg: &AutoscaleConfig, s: &ScaleSignals) -> ScaleDecision {
    if s.since_last_action_ms < cfg.cooldown_ms {
        return ScaleDecision::Hold;
    }
    let p99 = s.window_p99.unwrap_or(0.0);
    if (p99 > cfg.p99_up_frac * s.slo_ms || s.replica_util > cfg.util_up)
        && s.replicas < s.max_replicas
    {
        return ScaleDecision::Up;
    }
    if p99 < cfg.p99_down_frac * s.slo_ms
        && s.replica_util < cfg.util_down
        && s.replicas > s.min_replicas
    {
        return ScaleDecision::Down;
    }
    ScaleDecision::Hold
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AutoscaleConfig {
        AutoscaleConfig::reactive()
    }

    fn signals(
        window_p99: Option<f64>,
        replica_util: f64,
        replicas: usize,
        min_replicas: usize,
        max_replicas: usize,
        since_last_action_ms: f64,
    ) -> ScaleSignals {
        ScaleSignals {
            window_p99,
            slo_ms: 7.0,
            replica_util,
            replicas,
            min_replicas,
            max_replicas,
            since_last_action_ms,
        }
    }

    #[test]
    fn breached_slo_scales_up() {
        let d = decide(&cfg(), &signals(Some(9.0), 0.5, 2, 1, 4, 100.0));
        assert_eq!(d, ScaleDecision::Up);
    }

    #[test]
    fn hot_replicas_scale_up_even_inside_slo() {
        let d = decide(&cfg(), &signals(Some(3.0), 0.95, 2, 1, 4, 100.0));
        assert_eq!(d, ScaleDecision::Up);
    }

    #[test]
    fn quiet_and_cold_scales_down_to_the_floor_only() {
        let d = decide(&cfg(), &signals(Some(1.0), 0.1, 3, 2, 4, 100.0));
        assert_eq!(d, ScaleDecision::Down);
        let at_floor = decide(&cfg(), &signals(Some(1.0), 0.1, 2, 2, 4, 100.0));
        assert_eq!(at_floor, ScaleDecision::Hold);
    }

    #[test]
    fn ceiling_blocks_scale_up() {
        let d = decide(&cfg(), &signals(Some(20.0), 1.5, 4, 1, 4, 100.0));
        assert_eq!(d, ScaleDecision::Hold);
    }

    #[test]
    fn cooldown_holds_everything() {
        let d = decide(&cfg(), &signals(Some(20.0), 1.5, 2, 1, 4, 10.0));
        assert_eq!(d, ScaleDecision::Hold);
    }

    #[test]
    fn idle_window_scales_down_on_utilization_alone() {
        let d = decide(&cfg(), &signals(None, 0.05, 3, 1, 4, 100.0));
        assert_eq!(d, ScaleDecision::Down);
    }

    #[test]
    #[should_panic(expected = "thresholds out of order")]
    fn degenerate_config_rejected() {
        AutoscaleConfig {
            util_up: 0.2,
            util_down: 0.5,
            ..AutoscaleConfig::reactive()
        }
        .validate();
    }
}
