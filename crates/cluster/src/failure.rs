//! Failure injection: host crashes, slow stragglers, and recoveries on
//! a deterministic schedule.
//!
//! A failure schedule is an explicit list of [`FailureEvent`]s — fully
//! reproducible by construction — or one generated from a seed by
//! [`seeded_outages`], which draws exponential time-between-failure
//! gaps per host from the fleet's master seed. Either way the schedule
//! is fixed before the simulation starts, so a fixed seed yields a
//! bit-identical run.
//!
//! Semantics (implemented by the fleet engine):
//!
//! * **Crash** — the host's queued *and* in-flight requests are
//!   displaced and retried on surviving replicas (keeping their
//!   original arrival timestamps, so retry cost lands in the tail);
//!   its scheduled events go stale via an epoch bump.
//! * **SlowStart/SlowEnd** — a straggler: future batch service times on
//!   the host are scaled by `factor` until the matching `SlowEnd`.
//! * **Recover** — the host rejoins with idle dies and empty queues.
//! * **PartitionStart/PartitionEnd** — a front-end↔host network
//!   partition: the router stops sending (the host looks dead to
//!   placement and routing) but the host keeps draining the work it
//!   already holds, rejoining with whatever queue is left.
//! * **DieFail/DieRecover** — partial degradation: one die leaves the
//!   host's dispatch pool (its in-flight batch is displaced and
//!   retried) and later rejoins cold.
//! * **DieSlow** — one die runs at `factor`× service time (`1.0`
//!   restores full speed).
//!
//! Correlated failures — whole racks or power domains going down
//! together — are expressed in the same per-host vocabulary: the
//! [`crate::topology::FleetTopology`] constructors expand a domain
//! event into one `FailureEvent` per member host at the same
//! timestamp, so the engine (and the sharded engine's partitioner)
//! never needs a second failure representation.
//!
//! Schedules are validated before the run starts by
//! [`validate_schedule`]: non-finite or negative times, out-of-range
//! host or die indices, and impossible transitions (crashing a
//! crashed host, recovering a healthy one) are rejected with
//! line-item messages instead of panicking mid-simulation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tpu_serve::sim;

/// What happens to the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The host dies; its work is displaced and retried elsewhere.
    Crash,
    /// The host rejoins the fleet, idle and healthy.
    Recover,
    /// The host becomes a straggler: service times × `factor`.
    SlowStart {
        /// Service-time multiplier (> 1 for a straggler).
        factor: f64,
    },
    /// The straggler returns to full speed.
    SlowEnd,
    /// The front-end↔host link partitions: the router treats the host
    /// as dead, but it keeps draining its in-flight and queued work.
    PartitionStart,
    /// The partition heals; the host rejoins the routing pool with
    /// whatever (stale) queues it still holds.
    PartitionEnd,
    /// One die fails: its in-flight batch is displaced and retried,
    /// and the die leaves the dispatch pool until [`Self::DieRecover`].
    DieFail {
        /// Which die on the host.
        die: usize,
    },
    /// A failed die rejoins the dispatch pool, cold (no warm weights).
    DieRecover {
        /// Which die on the host.
        die: usize,
    },
    /// One die runs at `factor`× service time (`1.0` restores full
    /// speed); composes multiplicatively with host-level stragglers.
    DieSlow {
        /// Which die on the host.
        die: usize,
        /// Per-die service-time multiplier (> 0, finite).
        factor: f64,
    },
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When it strikes, ms.
    pub at_ms: f64,
    /// Which host.
    pub host: usize,
    /// What happens.
    pub kind: FailureKind,
}

impl FailureEvent {
    /// A crash at `at_ms`.
    pub fn crash(at_ms: f64, host: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::Crash,
        }
    }

    /// A recovery at `at_ms`.
    pub fn recover(at_ms: f64, host: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::Recover,
        }
    }

    /// A straggler window `[at_ms, until_ms)` at `factor`× service
    /// time, expanded to its start/end event pair.
    pub fn slow_window(at_ms: f64, until_ms: f64, host: usize, factor: f64) -> [Self; 2] {
        assert!(until_ms > at_ms, "straggler window must have extent");
        assert!(factor > 1.0, "a straggler is slower, not faster");
        [
            FailureEvent {
                at_ms,
                host,
                kind: FailureKind::SlowStart { factor },
            },
            FailureEvent {
                at_ms: until_ms,
                host,
                kind: FailureKind::SlowEnd,
            },
        ]
    }

    /// A front-end↔host partition window `[at_ms, until_ms)`, expanded
    /// to its start/end event pair.
    pub fn partition_window(at_ms: f64, until_ms: f64, host: usize) -> [Self; 2] {
        assert!(until_ms > at_ms, "partition window must have extent");
        [
            FailureEvent {
                at_ms,
                host,
                kind: FailureKind::PartitionStart,
            },
            FailureEvent {
                at_ms: until_ms,
                host,
                kind: FailureKind::PartitionEnd,
            },
        ]
    }

    /// A die failure at `at_ms`.
    pub fn die_fail(at_ms: f64, host: usize, die: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::DieFail { die },
        }
    }

    /// A die recovery at `at_ms`.
    pub fn die_recover(at_ms: f64, host: usize, die: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::DieRecover { die },
        }
    }

    /// A per-die slowdown (or restore, at `factor` 1.0) at `at_ms`.
    pub fn die_slow(at_ms: f64, host: usize, die: usize, factor: f64) -> Self {
        assert!(factor > 0.0, "die slowdown factor must be positive");
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::DieSlow { die, factor },
        }
    }
}

/// Validate a failure schedule against a fleet of `dies_per_host`
/// hosts (one entry per host) **before** the run starts, replaying the
/// per-host state machine in the order the engine would fire the
/// events — ascending `(at_ms, schedule index)`, matching the event
/// queue's `(time, seq)` pop order. Returns every problem found as a
/// line-item message:
///
/// * non-finite or negative `at_ms`;
/// * host index out of range;
/// * `Crash` of an already-crashed host, `Recover` of a healthy one;
/// * `PartitionStart` of an already-partitioned host, `PartitionEnd`
///   of an unpartitioned one;
/// * die index out of range, `DieFail` of an already-failed die,
///   `DieRecover` of a healthy one;
/// * non-finite or nonpositive `SlowStart`/`DieSlow` factors.
///
/// Events with an invalid time or host are excluded from the state
/// replay (they can't meaningfully advance it). Crash/recover state is
/// tracked independently of partition and die state — a host may
/// crash while partitioned, and its dies keep their degradation
/// across the crash.
pub fn validate_schedule(
    failures: &[FailureEvent],
    dies_per_host: &[usize],
) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    let mut order: Vec<usize> = (0..failures.len()).collect();
    order.sort_by(|&a, &b| {
        failures[a]
            .at_ms
            .total_cmp(&failures[b].at_ms)
            .then(a.cmp(&b))
    });
    let mut healthy = vec![true; dies_per_host.len()];
    let mut partitioned = vec![false; dies_per_host.len()];
    let mut die_ok: Vec<Vec<bool>> = dies_per_host.iter().map(|&d| vec![true; d]).collect();
    for i in order {
        let f = &failures[i];
        let at = f.at_ms;
        let mut bad = |msg: String| errors.push(format!("failure[{i}] at {at} ms: {msg}"));
        if !f.at_ms.is_finite() || f.at_ms < 0.0 {
            bad(format!("time {} is not finite and non-negative", f.at_ms));
            continue;
        }
        if f.host >= dies_per_host.len() {
            bad(format!(
                "host {} out of range (fleet has {} hosts)",
                f.host,
                dies_per_host.len()
            ));
            continue;
        }
        let dies = dies_per_host[f.host];
        match f.kind {
            FailureKind::Crash => {
                if !healthy[f.host] {
                    bad(format!("host {} is already crashed", f.host));
                } else {
                    healthy[f.host] = false;
                }
            }
            FailureKind::Recover => {
                if healthy[f.host] {
                    bad(format!("host {} is already healthy", f.host));
                } else {
                    healthy[f.host] = true;
                }
            }
            FailureKind::SlowStart { factor } => {
                if !(factor.is_finite() && factor > 0.0) {
                    bad(format!("straggler factor {factor} must be finite and > 0"));
                }
            }
            FailureKind::SlowEnd => {}
            FailureKind::PartitionStart => {
                if partitioned[f.host] {
                    bad(format!("host {} is already partitioned", f.host));
                } else {
                    partitioned[f.host] = true;
                }
            }
            FailureKind::PartitionEnd => {
                if !partitioned[f.host] {
                    bad(format!("host {} is not partitioned", f.host));
                } else {
                    partitioned[f.host] = false;
                }
            }
            FailureKind::DieFail { die } => {
                if die >= dies {
                    bad(format!(
                        "die {die} out of range (host {} has {dies} dies)",
                        f.host
                    ));
                } else if !die_ok[f.host][die] {
                    bad(format!("die {die} on host {} is already failed", f.host));
                } else {
                    die_ok[f.host][die] = false;
                }
            }
            FailureKind::DieRecover { die } => {
                if die >= dies {
                    bad(format!(
                        "die {die} out of range (host {} has {dies} dies)",
                        f.host
                    ));
                } else if die_ok[f.host][die] {
                    bad(format!("die {die} on host {} is already healthy", f.host));
                } else {
                    die_ok[f.host][die] = true;
                }
            }
            FailureKind::DieSlow { die, factor } => {
                if die >= dies {
                    bad(format!(
                        "die {die} out of range (host {} has {dies} dies)",
                        f.host
                    ));
                }
                if !(factor.is_finite() && factor > 0.0) {
                    bad(format!("die factor {factor} must be finite and > 0"));
                }
            }
        }
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Generate a crash/recover schedule for `hosts` hosts over
/// `horizon_ms`: per host, exponential gaps with mean `mtbf_ms`
/// between failures, each outage lasting `mttr_ms`. Host streams
/// derive from `seed` (stream `0xFA11 + host`), so the schedule is a
/// pure function of its arguments. Events are sorted by
/// `(time, host)`.
///
/// Generation is clamped to the horizon: no event lands after
/// `horizon_ms` (an outage still open at the horizon recovers exactly
/// there), and the crash times drawn for a host are a prefix of the
/// crash times the same seed draws at any longer horizon — see the
/// determinism test.
///
/// # Panics
///
/// Panics on nonpositive horizon, MTBF, or MTTR.
pub fn seeded_outages(
    seed: u64,
    hosts: usize,
    horizon_ms: f64,
    mtbf_ms: f64,
    mttr_ms: f64,
) -> Vec<FailureEvent> {
    assert!(horizon_ms > 0.0 && mtbf_ms > 0.0 && mttr_ms > 0.0);
    let mut events = Vec::new();
    for host in 0..hosts {
        let mut rng = StdRng::seed_from_u64(sim::stream_seed(seed, 0xFA11 + host as u64));
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mtbf_ms * u.ln();
            if t >= horizon_ms {
                break;
            }
            events.push(FailureEvent::crash(t, host));
            events.push(FailureEvent::recover((t + mttr_ms).min(horizon_ms), host));
            t += mttr_ms;
        }
    }
    events.sort_by(|a, b| {
        a.at_ms
            .partial_cmp(&b.at_ms)
            .expect("finite failure times")
            .then(a.host.cmp(&b.host))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible_and_sorted() {
        let a = seeded_outages(42, 4, 1000.0, 400.0, 50.0);
        let b = seeded_outages(42, 4, 1000.0, 400.0, 50.0);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "sorted by time");
        }
        assert_ne!(a, seeded_outages(43, 4, 1000.0, 400.0, 50.0));
    }

    #[test]
    fn every_crash_gets_a_recovery() {
        let events = seeded_outages(7, 3, 2000.0, 300.0, 75.0);
        let crashes = events
            .iter()
            .filter(|e| e.kind == FailureKind::Crash)
            .count();
        let recoveries = events
            .iter()
            .filter(|e| e.kind == FailureKind::Recover)
            .count();
        assert_eq!(crashes, recoveries);
        assert!(crashes > 0, "a 2 s horizon at 300 ms MTBF must crash");
    }

    #[test]
    fn slow_window_expands_to_a_pair() {
        let [start, end] = FailureEvent::slow_window(10.0, 60.0, 2, 3.0);
        assert_eq!(start.at_ms, 10.0);
        assert_eq!(end.at_ms, 60.0);
        assert_eq!(start.kind, FailureKind::SlowStart { factor: 3.0 });
        assert_eq!(end.kind, FailureKind::SlowEnd);
    }

    #[test]
    #[should_panic(expected = "slower")]
    fn fast_straggler_rejected() {
        let _ = FailureEvent::slow_window(0.0, 1.0, 0, 0.5);
    }

    #[test]
    fn seeded_outages_clamp_to_the_horizon_without_perturbing_the_stream() {
        let short = seeded_outages(42, 6, 500.0, 200.0, 80.0);
        let long = seeded_outages(42, 6, 2000.0, 200.0, 80.0);
        assert!(
            short.iter().all(|e| e.at_ms <= 500.0),
            "no event may land past the horizon"
        );
        // Per host, the short horizon's crash times are exactly the
        // long horizon's crashes below 500 ms — clamping the recovery
        // must not consume or shift any RNG draws.
        for host in 0..6 {
            let crashes = |evs: &[FailureEvent], cap: f64| -> Vec<f64> {
                evs.iter()
                    .filter(|e| e.host == host && e.kind == FailureKind::Crash && e.at_ms < cap)
                    .map(|e| e.at_ms)
                    .collect()
            };
            assert_eq!(
                crashes(&short, 500.0),
                crashes(&long, 500.0),
                "host {host}: crash-time prefix must be horizon-independent"
            );
        }
        // And the schedule stays a valid alternation per host.
        assert!(validate_schedule(&short, &[2; 6]).is_ok());
    }

    #[test]
    fn validate_schedule_accepts_the_legal_vocabulary() {
        let mut evs = vec![
            FailureEvent::crash(10.0, 0),
            FailureEvent::recover(20.0, 0),
            FailureEvent::crash(20.0, 0), // recover then crash in the same ms
            FailureEvent::recover(30.0, 0),
            FailureEvent::die_fail(5.0, 1, 1),
            FailureEvent::die_recover(15.0, 1, 1),
            FailureEvent::die_slow(16.0, 1, 0, 2.5),
            FailureEvent::die_slow(18.0, 1, 0, 1.0),
        ];
        evs.extend(FailureEvent::slow_window(1.0, 9.0, 1, 3.0));
        evs.extend(FailureEvent::partition_window(12.0, 22.0, 1));
        assert_eq!(validate_schedule(&evs, &[2, 2]), Ok(()));
    }

    #[test]
    fn validate_schedule_reports_line_item_errors() {
        let evs = vec![
            FailureEvent::crash(f64::NAN, 0),
            FailureEvent::crash(-1.0, 0),
            FailureEvent::crash(5.0, 9),
            FailureEvent::crash(6.0, 0),
            FailureEvent::crash(7.0, 0),   // double crash
            FailureEvent::recover(8.0, 1), // recover of healthy host
            FailureEvent {
                at_ms: 9.0,
                host: 1,
                kind: FailureKind::PartitionEnd, // not partitioned
            },
            FailureEvent::die_fail(10.0, 1, 7), // die out of range
            FailureEvent::die_recover(11.0, 1, 0), // die already healthy
            FailureEvent {
                at_ms: 12.0,
                host: 0,
                kind: FailureKind::SlowStart { factor: -2.0 },
            },
        ];
        let errs = validate_schedule(&evs, &[2, 2]).unwrap_err();
        assert_eq!(errs.len(), 9);
        let has = |needle: &str| {
            assert!(
                errs.iter().any(|e| e.contains(needle)),
                "missing {needle:?} in {errs:#?}"
            )
        };
        has("not finite");
        has("out of range (fleet has 2 hosts)");
        has("already crashed");
        has("already healthy");
        has("not partitioned");
        has("die 7 out of range");
        has("die 0 on host 1 is already healthy");
        has("factor -2 must be finite and > 0");
        // Line items carry the schedule index and timestamp.
        has("failure[4] at 7 ms");
    }

    #[test]
    fn validate_schedule_replays_in_time_order_not_list_order() {
        // Listed out of order, but by (time, index) it is a legal
        // crash → recover sequence.
        let evs = vec![FailureEvent::recover(20.0, 0), FailureEvent::crash(10.0, 0)];
        assert_eq!(validate_schedule(&evs, &[2]), Ok(()));
    }
}
