//! Failure injection: host crashes, slow stragglers, and recoveries on
//! a deterministic schedule.
//!
//! A failure schedule is an explicit list of [`FailureEvent`]s — fully
//! reproducible by construction — or one generated from a seed by
//! [`seeded_outages`], which draws exponential time-between-failure
//! gaps per host from the fleet's master seed. Either way the schedule
//! is fixed before the simulation starts, so a fixed seed yields a
//! bit-identical run.
//!
//! Semantics (implemented by the fleet engine):
//!
//! * **Crash** — the host's queued *and* in-flight requests are
//!   displaced and retried on surviving replicas (keeping their
//!   original arrival timestamps, so retry cost lands in the tail);
//!   its scheduled events go stale via an epoch bump.
//! * **SlowStart/SlowEnd** — a straggler: future batch service times on
//!   the host are scaled by `factor` until the matching `SlowEnd`.
//! * **Recover** — the host rejoins with idle dies and empty queues.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tpu_serve::sim;

/// What happens to the host.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FailureKind {
    /// The host dies; its work is displaced and retried elsewhere.
    Crash,
    /// The host rejoins the fleet, idle and healthy.
    Recover,
    /// The host becomes a straggler: service times × `factor`.
    SlowStart {
        /// Service-time multiplier (> 1 for a straggler).
        factor: f64,
    },
    /// The straggler returns to full speed.
    SlowEnd,
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FailureEvent {
    /// When it strikes, ms.
    pub at_ms: f64,
    /// Which host.
    pub host: usize,
    /// What happens.
    pub kind: FailureKind,
}

impl FailureEvent {
    /// A crash at `at_ms`.
    pub fn crash(at_ms: f64, host: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::Crash,
        }
    }

    /// A recovery at `at_ms`.
    pub fn recover(at_ms: f64, host: usize) -> Self {
        FailureEvent {
            at_ms,
            host,
            kind: FailureKind::Recover,
        }
    }

    /// A straggler window `[at_ms, until_ms)` at `factor`× service
    /// time, expanded to its start/end event pair.
    pub fn slow_window(at_ms: f64, until_ms: f64, host: usize, factor: f64) -> [Self; 2] {
        assert!(until_ms > at_ms, "straggler window must have extent");
        assert!(factor > 1.0, "a straggler is slower, not faster");
        [
            FailureEvent {
                at_ms,
                host,
                kind: FailureKind::SlowStart { factor },
            },
            FailureEvent {
                at_ms: until_ms,
                host,
                kind: FailureKind::SlowEnd,
            },
        ]
    }
}

/// Generate a crash/recover schedule for `hosts` hosts over
/// `horizon_ms`: per host, exponential gaps with mean `mtbf_ms`
/// between failures, each outage lasting `mttr_ms`. Host streams
/// derive from `seed` (stream `0xFA11 + host`), so the schedule is a
/// pure function of its arguments. Events are sorted by
/// `(time, host)`.
///
/// # Panics
///
/// Panics on nonpositive horizon, MTBF, or MTTR.
pub fn seeded_outages(
    seed: u64,
    hosts: usize,
    horizon_ms: f64,
    mtbf_ms: f64,
    mttr_ms: f64,
) -> Vec<FailureEvent> {
    assert!(horizon_ms > 0.0 && mtbf_ms > 0.0 && mttr_ms > 0.0);
    let mut events = Vec::new();
    for host in 0..hosts {
        let mut rng = StdRng::seed_from_u64(sim::stream_seed(seed, 0xFA11 + host as u64));
        let mut t = 0.0;
        loop {
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            t += -mtbf_ms * u.ln();
            if t >= horizon_ms {
                break;
            }
            events.push(FailureEvent::crash(t, host));
            events.push(FailureEvent::recover(t + mttr_ms, host));
            t += mttr_ms;
        }
    }
    events.sort_by(|a, b| {
        a.at_ms
            .partial_cmp(&b.at_ms)
            .expect("finite failure times")
            .then(a.host.cmp(&b.host))
    });
    events
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_schedules_are_reproducible_and_sorted() {
        let a = seeded_outages(42, 4, 1000.0, 400.0, 50.0);
        let b = seeded_outages(42, 4, 1000.0, 400.0, 50.0);
        assert_eq!(a, b);
        for w in a.windows(2) {
            assert!(w[0].at_ms <= w[1].at_ms, "sorted by time");
        }
        assert_ne!(a, seeded_outages(43, 4, 1000.0, 400.0, 50.0));
    }

    #[test]
    fn every_crash_gets_a_recovery() {
        let events = seeded_outages(7, 3, 2000.0, 300.0, 75.0);
        let crashes = events
            .iter()
            .filter(|e| e.kind == FailureKind::Crash)
            .count();
        let recoveries = events
            .iter()
            .filter(|e| e.kind == FailureKind::Recover)
            .count();
        assert_eq!(crashes, recoveries);
        assert!(crashes > 0, "a 2 s horizon at 300 ms MTBF must crash");
    }

    #[test]
    fn slow_window_expands_to_a_pair() {
        let [start, end] = FailureEvent::slow_window(10.0, 60.0, 2, 3.0);
        assert_eq!(start.at_ms, 10.0);
        assert_eq!(end.at_ms, 60.0);
        assert_eq!(start.kind, FailureKind::SlowStart { factor: 3.0 });
        assert_eq!(end.kind, FailureKind::SlowEnd);
    }

    #[test]
    #[should_panic(expected = "slower")]
    fn fast_straggler_rejected() {
        let _ = FailureEvent::slow_window(0.0, 1.0, 0, 0.5);
    }
}
