//! Property tests for the scale math and renderer robustness.

use proptest::prelude::*;
use tpu_plot::{escape, BarChart, Chart, Scale, Series};

proptest! {
    /// normalize is monotone for any valid domain and in-range inputs.
    #[test]
    fn linear_normalize_is_monotone(
        lo in -1e6f64..1e6,
        span in 1e-3f64..1e6,
        a in 0.0f64..1.0,
        b in 0.0f64..1.0,
    ) {
        let hi = lo + span;
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        let va = lo + a * span;
        let vb = lo + b * span;
        let na = Scale::Linear.normalize(va, lo, hi);
        let nb = Scale::Linear.normalize(vb, lo, hi);
        prop_assert!(na <= nb + 1e-12, "{na} > {nb}");
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&na));
    }

    /// Log10 normalize of endpoints is exactly 0 and 1, and interior
    /// points stay interior.
    #[test]
    fn log10_normalize_respects_endpoints(
        lo in 1e-6f64..1e3,
        ratio in 1.001f64..1e6,
        t in 0.0f64..1.0,
    ) {
        let hi = lo * ratio;
        prop_assert!(Scale::Log10.normalize(lo, lo, hi).abs() < 1e-9);
        prop_assert!((Scale::Log10.normalize(hi, lo, hi) - 1.0).abs() < 1e-9);
        let mid = lo * ratio.powf(t);
        let n = Scale::Log10.normalize(mid, lo, hi);
        prop_assert!((-1e-9..=1.0 + 1e-9).contains(&n));
    }

    /// Ticks are strictly increasing and inside the domain for every
    /// scale.
    #[test]
    fn ticks_are_sorted_and_in_domain(
        lo in 0.001f64..100.0,
        ratio in 1.5f64..1e5,
        scale_idx in 0usize..3,
    ) {
        let hi = lo * ratio;
        let scale = [Scale::Linear, Scale::Log10, Scale::Log2][scale_idx];
        let ticks = scale.ticks(lo, hi);
        prop_assert!(ticks.len() >= 2);
        for w in ticks.windows(2) {
            prop_assert!(w[0].value < w[1].value);
        }
        let eps = (hi - lo) * 1e-9;
        for t in &ticks {
            prop_assert!(t.value >= lo - eps && t.value <= hi + eps,
                "tick {} outside [{lo}, {hi}]", t.value);
            prop_assert!(!t.label.is_empty());
        }
    }

    /// Any finite positive dataset renders without error on any axis
    /// combination, and the output is structurally sane.
    #[test]
    fn chart_renders_arbitrary_positive_data(
        points in prop::collection::vec((1e-3f64..1e6, 1e-3f64..1e6), 2..40),
        x_scale in 0usize..3,
        y_scale in 0usize..3,
    ) {
        let scales = [Scale::Linear, Scale::Log10, Scale::Log2];
        let svg = Chart::new("prop")
            .x_axis("x", scales[x_scale])
            .y_axis("y", scales[y_scale])
            .series(Series::line("s", points))
            .render()
            .expect("positive finite data always renders");
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
        prop_assert_eq!(svg.matches('<').count(), svg.matches('>').count());
    }

    /// Escaping is idempotent-safe: no raw markup characters survive.
    #[test]
    fn escape_removes_all_markup(s in "\\PC*") {
        let e = escape(&s);
        prop_assert!(!e.contains('<'));
        prop_assert!(!e.contains('>'));
        prop_assert!(!e.contains('"'));
        // Every '&' in the output starts a known entity.
        for chunk in e.split('&').skip(1) {
            prop_assert!(
                chunk.starts_with("amp;") || chunk.starts_with("lt;")
                    || chunk.starts_with("gt;") || chunk.starts_with("quot;")
                    || chunk.starts_with("apos;"),
                "raw ampersand in {e}"
            );
        }
    }

    /// Bar charts render for any positive values, linear or log.
    #[test]
    fn bars_render_arbitrary_positive_values(
        vals in prop::collection::vec(1e-2f64..1e3, 1..6),
        log in any::<bool>(),
    ) {
        let groups: Vec<String> = (0..vals.len()).map(|i| format!("g{i}")).collect();
        let group_refs: Vec<&str> = groups.iter().map(String::as_str).collect();
        let mut chart = BarChart::new("b", &group_refs).bars("only", &vals);
        if log {
            chart = chart.log_y();
        }
        let svg = chart.render().expect("positive bars always render");
        prop_assert!(svg.contains("<rect"));
    }
}
