//! Stacked-breakdown bar charts (latency phase attribution: one bar
//! per tenant, segments for queue / swap / service time).

use crate::chart::PALETTE;
use crate::error::PlotError;
use crate::scale::Scale;
use crate::svg::{Anchor, SvgDocument};

/// A stacked bar chart: `categories` along the x axis, one bar per
/// category built by stacking the `segments` bottom-up in segment
/// order.
///
/// # Examples
///
/// ```
/// use tpu_plot::StackedBars;
///
/// let svg = StackedBars::new("tail attribution", &["queue", "swap", "service"])
///     .bar("MLP0", &[0.4, 0.0, 1.1])
///     .bar("CNN1", &[2.3, 0.9, 4.0])
///     .y_label("ms per tail request")
///     .render()
///     .expect("valid chart");
/// assert!(svg.contains("CNN1"));
/// ```
#[derive(Debug, Clone)]
pub struct StackedBars {
    title: String,
    segments: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    y_label: String,
}

impl StackedBars {
    /// Start a chart with the segment labels (legend, stacking order
    /// bottom-up). Categories along the x axis are defined, in order,
    /// by the [`StackedBars::bar`] calls.
    pub fn new(title: impl Into<String>, segments: &[&str]) -> Self {
        StackedBars {
            title: title.into(),
            segments: segments.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            y_label: String::new(),
        }
    }

    /// Supply one category's segment values, in segment order. Values
    /// must be finite and non-negative (a stack has no direction for a
    /// negative part).
    pub fn bar(mut self, category: &str, values: &[f64]) -> Self {
        self.rows.push((category.to_string(), values.to_vec()));
        self
    }

    /// Label the y axis.
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Render to an SVG string.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::NoData`] with no rows,
    /// [`PlotError::RaggedGroups`] when a row's width differs from the
    /// segment count, and [`PlotError::NonFinitePoint`] on NaN,
    /// infinite, or negative values.
    pub fn render(&self) -> Result<String, PlotError> {
        if self.rows.is_empty() {
            return Err(PlotError::NoData);
        }
        for (cat, vals) in &self.rows {
            if vals.len() != self.segments.len() {
                return Err(PlotError::RaggedGroups {
                    expected: self.segments.len(),
                    found: vals.len(),
                });
            }
            if vals.iter().any(|v| !v.is_finite() || *v < 0.0) {
                return Err(PlotError::NonFinitePoint {
                    series: cat.clone(),
                });
            }
        }

        let max_total = self
            .rows
            .iter()
            .map(|(_, v)| v.iter().sum::<f64>())
            .fold(f64::MIN, f64::max);
        // All-zero stacks still render (empty plot area, zero-height bars).
        let y_hi = if max_total > 0.0 {
            max_total * 1.1
        } else {
            1.0
        };
        let scale = Scale::Linear;
        scale.check_domain(0.0, y_hi)?;

        let (width, height) = (720.0, 420.0);
        let (left, right, top, bottom) = (70.0, 20.0, 40.0, 70.0);
        let plot_w = width - left - right;
        let plot_h = height - top - bottom;
        let mut doc = SvgDocument::new(width, height);
        doc.text(
            width / 2.0,
            22.0,
            &self.title,
            14.0,
            Anchor::Middle,
            "#111111",
        );

        for t in scale.ticks(0.0, y_hi) {
            let uy = scale.normalize(t.value, 0.0, y_hi);
            if !(0.0..=1.0).contains(&uy) {
                continue;
            }
            let py = top + (1.0 - uy) * plot_h;
            doc.dashed_line(left, py, left + plot_w, py, "#cccccc");
            doc.text(left - 6.0, py + 3.5, &t.label, 10.0, Anchor::End, "#333333");
        }

        let slot = plot_w / self.rows.len() as f64;
        let bar_w = slot * 0.6;
        for (ci, (cat, vals)) in self.rows.iter().enumerate() {
            let x = left + ci as f64 * slot + slot * 0.2;
            let total: f64 = vals.iter().sum();
            let mut stacked = 0.0;
            for (si, &v) in vals.iter().enumerate() {
                if v <= 0.0 {
                    continue; // zero slices would draw invisible rects
                }
                let y0 = scale.normalize(stacked, 0.0, y_hi).clamp(0.0, 1.0);
                stacked += v;
                let y1 = scale.normalize(stacked, 0.0, y_hi).clamp(0.0, 1.0);
                doc.rect(
                    x,
                    top + (1.0 - y1) * plot_h,
                    bar_w,
                    (y1 - y0) * plot_h,
                    PALETTE[si % PALETTE.len()],
                    Some("#444444"),
                );
            }
            // Total caption above the stack.
            let uy = scale.normalize(total, 0.0, y_hi).clamp(0.0, 1.0);
            doc.text(
                x + bar_w / 2.0,
                top + (1.0 - uy) * plot_h - 4.0,
                &trim_total(total),
                8.5,
                Anchor::Middle,
                "#333333",
            );
            doc.text(
                x + bar_w / 2.0,
                top + plot_h + 16.0,
                cat,
                10.0,
                Anchor::Middle,
                "#333333",
            );
        }

        // Legend under the category labels.
        let mut lx = left;
        let ly = height - 22.0;
        for (si, s) in self.segments.iter().enumerate() {
            doc.rect(
                lx,
                ly - 9.0,
                10.0,
                10.0,
                PALETTE[si % PALETTE.len()],
                Some("#444444"),
            );
            doc.text(lx + 14.0, ly, s, 10.0, Anchor::Start, "#111111");
            lx += 18.0 + 7.0 * s.len() as f64;
        }
        doc.line(
            left,
            top + plot_h,
            left + plot_w,
            top + plot_h,
            "#000000",
            1.0,
        );
        doc.line(left, top, left, top + plot_h, "#000000", 1.0);
        doc.vertical_text(18.0, top + plot_h / 2.0, &self.y_label, 11.0);

        Ok(doc.finish())
    }
}

fn trim_total(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> StackedBars {
        StackedBars::new("tail attribution", &["queue", "swap", "service"])
            .bar("MLP0", &[0.4, 0.0, 1.1])
            .bar("CNN1", &[2.3, 0.9, 4.0])
    }

    #[test]
    fn renders_categories_segments_and_totals() {
        let svg = chart().y_label("ms per tail request").render().unwrap();
        for label in ["MLP0", "CNN1", "queue", "swap", "service"] {
            assert!(svg.contains(label), "{label} missing");
        }
        assert!(svg.contains("7.20"), "stack total caption");
        assert!(svg.contains("ms per tail request"));
    }

    #[test]
    fn zero_segments_are_skipped_not_drawn() {
        let svg = chart().render().unwrap();
        // Background + 2 MLP0 slices (swap is zero) + 3 CNN1 slices
        // + 3 legend swatches.
        assert_eq!(svg.matches("<rect").count(), 1 + 2 + 3 + 3);
    }

    #[test]
    fn all_zero_stacks_still_render() {
        let svg = StackedBars::new("t", &["a"]).bar("x", &[0.0]).render();
        assert!(svg.unwrap().starts_with("<svg"));
    }

    #[test]
    fn empty_ragged_and_negative_inputs_error() {
        assert_eq!(
            StackedBars::new("t", &["a"]).render().unwrap_err(),
            PlotError::NoData
        );
        assert_eq!(
            StackedBars::new("t", &["a", "b"])
                .bar("x", &[1.0])
                .render()
                .unwrap_err(),
            PlotError::RaggedGroups {
                expected: 2,
                found: 1
            }
        );
        assert!(matches!(
            StackedBars::new("t", &["a"])
                .bar("x", &[-1.0])
                .render()
                .unwrap_err(),
            PlotError::NonFinitePoint { .. }
        ));
    }

    #[test]
    fn same_input_renders_identical_bytes() {
        assert_eq!(chart().render().unwrap(), chart().render().unwrap());
    }
}
