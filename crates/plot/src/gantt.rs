//! Band timelines (Gantt-style): one labelled lane per subject, filled
//! spans over a shared linear time axis.
//!
//! The health monitor renders incident timelines with this — one lane
//! per incident, a colored band from open to resolve, an optional tick
//! where the incident was acknowledged — but the API takes plain
//! slices so any span-shaped data plots the same way.

use crate::error::PlotError;
use crate::svg::{Anchor, SvgDocument};

/// One filled band within a lane.
#[derive(Debug, Clone, PartialEq)]
pub struct Band {
    /// Span start on the time axis.
    pub start: f64,
    /// Span end on the time axis (`>= start`).
    pub end: f64,
    /// Fill color (any SVG color string).
    pub color: String,
    /// Optional marker time drawn as a vertical tick inside the band.
    pub marker: Option<f64>,
}

/// One labelled lane of bands.
#[derive(Debug, Clone, PartialEq)]
pub struct Lane {
    /// Label drawn in the left gutter.
    pub label: String,
    /// Bands drawn in the lane, in the order given.
    pub bands: Vec<Band>,
}

const WIDTH: f64 = 860.0;
const LANE_H: f64 = 22.0;
const GUTTER: f64 = 150.0;
const TOP: f64 = 40.0;
const BOTTOM: f64 = 34.0;
const RIGHT: f64 = 20.0;

/// Render labelled lanes of time bands as a standalone SVG. The time
/// domain is `[t_min, t_max]`; lanes are drawn top to bottom in the
/// order given. Identical input renders identical bytes.
///
/// # Errors
///
/// [`PlotError::NoData`] when no lane is given,
/// [`PlotError::EmptyDomain`] when the domain is empty or not finite,
/// and [`PlotError::NonFinitePoint`] when a band is not finite.
///
/// # Examples
///
/// ```
/// use tpu_plot::{band_timeline, Band, Lane};
///
/// let svg = band_timeline(
///     "incidents",
///     &[Lane {
///         label: "rack0".to_string(),
///         bands: vec![Band { start: 0.3, end: 0.7, color: "#c0392b".to_string(), marker: None }],
///     }],
///     0.0,
///     1.0,
/// )?;
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), tpu_plot::PlotError>(())
/// ```
pub fn band_timeline(
    title: &str,
    lanes: &[Lane],
    t_min: f64,
    t_max: f64,
) -> Result<String, PlotError> {
    if lanes.is_empty() {
        return Err(PlotError::NoData);
    }
    if !(t_min.is_finite() && t_max.is_finite()) || t_max <= t_min {
        return Err(PlotError::EmptyDomain {
            lo: t_min,
            hi: t_max,
        });
    }
    for lane in lanes {
        for b in &lane.bands {
            let finite =
                b.start.is_finite() && b.end.is_finite() && b.marker.is_none_or(f64::is_finite);
            if !finite || b.end < b.start {
                return Err(PlotError::NonFinitePoint {
                    series: lane.label.clone(),
                });
            }
        }
    }
    let height = TOP + lanes.len() as f64 * LANE_H + BOTTOM;
    let plot_w = WIDTH - GUTTER - RIGHT;
    let x = |t: f64| GUTTER + (t - t_min) / (t_max - t_min) * plot_w;
    let mut doc = SvgDocument::new(WIDTH, height);
    doc.text(WIDTH / 2.0, 20.0, title, 13.0, Anchor::Middle, "#222222");
    // Time gridlines at 5 even divisions.
    for i in 0..=5 {
        let t = t_min + (t_max - t_min) * i as f64 / 5.0;
        let gx = x(t);
        doc.dashed_line(gx, TOP, gx, height - BOTTOM, "#cccccc");
        doc.text(
            gx,
            height - BOTTOM + 14.0,
            &format!("{t:.2}"),
            9.0,
            Anchor::Middle,
            "#333333",
        );
    }
    doc.text(
        GUTTER + plot_w / 2.0,
        height - 6.0,
        "sim time (ms)",
        10.0,
        Anchor::Middle,
        "#333333",
    );
    for (i, lane) in lanes.iter().enumerate() {
        let y = TOP + i as f64 * LANE_H;
        if i > 0 {
            doc.line(GUTTER, y, WIDTH - RIGHT, y, "#eeeeee", 0.5);
        }
        doc.text(
            GUTTER - 8.0,
            y + LANE_H * 0.68,
            &lane.label,
            10.0,
            Anchor::End,
            "#222222",
        );
        for b in &lane.bands {
            let x0 = x(b.start.max(t_min));
            let x1 = x(b.end.min(t_max));
            // Keep zero-length (still-open, single-fold) bands visible.
            let w = (x1 - x0).max(1.5);
            doc.rect(x0, y + 3.0, w, LANE_H - 6.0, &b.color, Some("#555555"));
            if let Some(m) = b.marker {
                if m >= t_min && m <= t_max {
                    let mx = x(m);
                    doc.line(mx, y + 2.0, mx, y + LANE_H - 2.0, "#000000", 1.0);
                }
            }
        }
    }
    doc.line(GUTTER, TOP, GUTTER, height - BOTTOM, "#333333", 1.0);
    Ok(doc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lanes() -> Vec<Lane> {
        vec![
            Lane {
                label: "rack0".to_string(),
                bands: vec![Band {
                    start: 0.3,
                    end: 0.7,
                    color: "#c0392b".to_string(),
                    marker: Some(0.4),
                }],
            },
            Lane {
                label: "cell000".to_string(),
                bands: vec![Band {
                    start: 0.35,
                    end: 0.9,
                    color: "#e67e22".to_string(),
                    marker: None,
                }],
            },
        ]
    }

    #[test]
    fn renders_lanes_and_is_deterministic() {
        let build = || band_timeline("incidents", &lanes(), 0.0, 1.0).expect("renders");
        let svg = build();
        assert_eq!(svg, build());
        assert!(svg.contains("rack0") && svg.contains("cell000"));
        assert!(svg.contains("#c0392b"));
        assert!(svg.trim_end().ends_with("</svg>"));
    }

    #[test]
    fn rejects_empty_and_malformed_input() {
        assert_eq!(
            band_timeline("t", &[], 0.0, 1.0).unwrap_err(),
            PlotError::NoData
        );
        assert!(matches!(
            band_timeline("t", &lanes(), 1.0, 1.0).unwrap_err(),
            PlotError::EmptyDomain { .. }
        ));
        let bad = vec![Lane {
            label: "x".to_string(),
            bands: vec![Band {
                start: 0.5,
                end: 0.1,
                color: "#000".to_string(),
                marker: None,
            }],
        }];
        assert!(matches!(
            band_timeline("t", &bad, 0.0, 1.0).unwrap_err(),
            PlotError::NonFinitePoint { .. }
        ));
    }
}
