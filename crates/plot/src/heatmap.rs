//! Row × column heat grids over a linear time axis.
//!
//! The health monitor's fleet heatmap (hosts × cadence folds, shaded
//! by per-fold busy rate) renders through this; like every chart here
//! the API takes plain slices and identical input produces identical
//! bytes.

use crate::error::PlotError;
use crate::svg::{Anchor, SvgDocument};

const WIDTH: f64 = 860.0;
const ROW_H: f64 = 16.0;
const GUTTER: f64 = 110.0;
const TOP: f64 = 40.0;
const BOTTOM: f64 = 34.0;
const RIGHT: f64 = 20.0;

/// Linear white → deep-blue shade for a unit-interval value.
fn shade(v: f64) -> String {
    let v = v.clamp(0.0, 1.0);
    let r = (255.0 - 213.0 * v).round() as u8;
    let g = (255.0 - 179.0 * v).round() as u8;
    let b = (255.0 - 75.0 * v).round() as u8;
    format!("#{r:02x}{g:02x}{b:02x}")
}

/// Render a heat grid: one row per label, one column per time stamp,
/// each cell shaded by its value relative to the grid maximum. `rows`
/// pairs each label with its per-column values (`f64::NAN` marks a
/// missing cell, drawn as a gap).
///
/// # Errors
///
/// [`PlotError::NoData`] when there are no rows or no columns,
/// [`PlotError::RaggedGroups`] when a row's width differs from the
/// column count, and [`PlotError::NonFinitePoint`] for an infinite
/// cell or a non-finite column stamp.
///
/// # Examples
///
/// ```
/// let svg = tpu_plot::heat_grid(
///     "fleet utilization",
///     &[0.0, 1.0],
///     &[("host0".to_string(), vec![0.2, 0.9])],
/// )?;
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), tpu_plot::PlotError>(())
/// ```
pub fn heat_grid(
    title: &str,
    cols: &[f64],
    rows: &[(String, Vec<f64>)],
) -> Result<String, PlotError> {
    if rows.is_empty() || cols.is_empty() {
        return Err(PlotError::NoData);
    }
    if cols.iter().any(|t| !t.is_finite()) {
        return Err(PlotError::NonFinitePoint {
            series: "columns".to_string(),
        });
    }
    let mut max = 0.0f64;
    for (label, values) in rows {
        if values.len() != cols.len() {
            return Err(PlotError::RaggedGroups {
                expected: cols.len(),
                found: values.len(),
            });
        }
        for &v in values {
            if v.is_infinite() {
                return Err(PlotError::NonFinitePoint {
                    series: label.clone(),
                });
            }
            if !v.is_nan() {
                max = max.max(v.abs());
            }
        }
    }
    let height = TOP + rows.len() as f64 * ROW_H + BOTTOM;
    let plot_w = WIDTH - GUTTER - RIGHT;
    let cell_w = plot_w / cols.len() as f64;
    let mut doc = SvgDocument::new(WIDTH, height);
    doc.text(WIDTH / 2.0, 20.0, title, 13.0, Anchor::Middle, "#222222");
    for (i, (label, values)) in rows.iter().enumerate() {
        let y = TOP + i as f64 * ROW_H;
        doc.text(
            GUTTER - 8.0,
            y + ROW_H * 0.7,
            label,
            9.0,
            Anchor::End,
            "#222222",
        );
        for (j, &v) in values.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            let rel = if max > 0.0 { v.abs() / max } else { 0.0 };
            doc.rect(
                GUTTER + j as f64 * cell_w,
                y,
                cell_w,
                ROW_H,
                &shade(rel),
                None,
            );
        }
    }
    // Stamp labels at 5 even divisions of the column range.
    let (t0, t1) = (cols[0], cols[cols.len() - 1]);
    for i in 0..=5 {
        let frac = i as f64 / 5.0;
        let t = t0 + (t1 - t0) * frac;
        doc.text(
            GUTTER + plot_w * frac,
            height - BOTTOM + 14.0,
            &format!("{t:.2}"),
            9.0,
            Anchor::Middle,
            "#333333",
        );
    }
    doc.text(
        GUTTER + plot_w / 2.0,
        height - 6.0,
        "sim time (ms)",
        10.0,
        Anchor::Middle,
        "#333333",
    );
    doc.line(GUTTER, TOP, GUTTER, height - BOTTOM, "#333333", 1.0);
    Ok(doc.finish())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_grid_and_is_deterministic() {
        let rows = vec![
            ("host0".to_string(), vec![0.1, 0.8, 0.0]),
            ("host1".to_string(), vec![0.5, f64::NAN, 1.0]),
        ];
        let build = || heat_grid("fleet", &[0.0, 1.0, 2.0], &rows).expect("renders");
        let svg = build();
        assert_eq!(svg, build());
        assert!(svg.contains("host0") && svg.contains("host1"));
        // NaN cell leaves a gap: 5 cells drawn, not 6.
        assert_eq!(svg.matches("<rect").count(), 1 + 5, "background + cells");
    }

    #[test]
    fn shade_spans_white_to_saturated() {
        assert_eq!(shade(0.0), "#ffffff");
        assert_eq!(shade(1.0), "#2a4cb4");
        assert_eq!(shade(-1.0), "#ffffff", "clamped below");
        assert_eq!(shade(2.0), "#2a4cb4", "clamped above");
    }

    #[test]
    fn rejects_empty_ragged_and_infinite_input() {
        assert_eq!(heat_grid("t", &[0.0], &[]).unwrap_err(), PlotError::NoData);
        assert_eq!(
            heat_grid("t", &[], &[("h".to_string(), vec![])]).unwrap_err(),
            PlotError::NoData
        );
        assert!(matches!(
            heat_grid("t", &[0.0, 1.0], &[("h".to_string(), vec![0.5])]).unwrap_err(),
            PlotError::RaggedGroups {
                expected: 2,
                found: 1
            }
        ));
        assert!(matches!(
            heat_grid("t", &[0.0], &[("h".to_string(), vec![f64::INFINITY])]).unwrap_err(),
            PlotError::NonFinitePoint { .. }
        ));
    }
}
