//! # tpu-plot — dependency-free SVG charts for the paper's figures
//!
//! The ISCA 2017 TPU paper's evaluation is communicated through a handful
//! of chart shapes: log-log rooflines with per-application markers
//! (Figures 5-8), grouped relative-performance/Watt bars (Figure 9),
//! power-vs-utilization line plots (Figure 10), and the 0.25x-4x
//! design-space sweep (Figure 11). This crate renders all of them as
//! standalone SVG files with no dependencies beyond `std`.
//!
//! - [`Chart`] + [`Series`]: XY charts over [`Scale::Linear`],
//!   [`Scale::Log10`], or [`Scale::Log2`] axes, with line and scatter
//!   series and the paper's marker shapes ([`Marker::Star`] for the TPU,
//!   [`Marker::Triangle`] for the K80, [`Marker::Circle`] for Haswell).
//! - [`BarChart`]: grouped bars with an optional log y axis.
//! - [`StackedBars`]: stacked breakdown bars (latency phase attribution).
//! - [`cdf`] / [`tail_curve`]: empirical latency CDFs and log-scale
//!   exceedance curves for `tpu_analyze`.
//! - [`band_timeline`] / [`heat_grid`]: incident band timelines and
//!   host-by-fold heat grids for the fleet health monitor.
//! - [`SvgDocument`]: the low-level escaped-SVG builder all of them use.
//!
//! # Examples
//!
//! ```
//! use tpu_plot::{Chart, Marker, Scale, Series};
//!
//! // A miniature Figure 5: the TPU roofline and one application point.
//! let svg = Chart::new("TPU (die) roofline")
//!     .x_axis("MACs per weight byte", Scale::Log10)
//!     .y_axis("TeraOps/s", Scale::Log10)
//!     .series(Series::line("roofline", vec![(1.0, 0.068), (1351.0, 92.0), (10_000.0, 92.0)]))
//!     .series(Series::scatter("CNN0", vec![(2888.0, 86.0)], Marker::Star))
//!     .render()?;
//! assert!(svg.starts_with("<svg"));
//! # Ok::<(), tpu_plot::PlotError>(())
//! ```

#![warn(missing_docs)]

mod bars;
mod breakdown;
mod chart;
mod dist;
mod error;
mod gantt;
mod heatmap;
mod scale;
mod svg;
mod timeseries;

pub use bars::BarChart;
pub use breakdown::StackedBars;
pub use chart::{Chart, Marker, Series, PALETTE};
pub use dist::{cdf, tail_curve};
pub use error::PlotError;
pub use gantt::{band_timeline, Band, Lane};
pub use heatmap::heat_grid;
pub use scale::{Scale, Tick};
pub use svg::{escape, Anchor, SvgDocument};
pub use timeseries::timeseries;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn public_types_are_debug() {
        fn assert_debug<T: std::fmt::Debug>() {}
        assert_debug::<Chart>();
        assert_debug::<BarChart>();
        assert_debug::<Series>();
        assert_debug::<Scale>();
        assert_debug::<Marker>();
        assert_debug::<PlotError>();
        assert_debug::<SvgDocument>();
    }
}
