//! XY charts: line series and scatter markers over linear or log axes.
//!
//! This covers the paper's rooflines (Figures 5-8: log-log lines plus
//! per-app markers), the power curves (Figure 10: linear lines), and the
//! design-space sweep (Figure 11: log2-x lines).

use crate::error::PlotError;
use crate::scale::Scale;
use crate::svg::{Anchor, SvgDocument};

/// Default palette: distinguishable on white, colorblind-friendly order.
pub const PALETTE: [&str; 8] = [
    "#d62728", // red
    "#1f77b4", // blue
    "#2ca02c", // green
    "#ff7f0e", // orange
    "#9467bd", // purple
    "#8c564b", // brown
    "#17becf", // cyan
    "#7f7f7f", // gray
];

/// Marker shape for scatter series (the paper uses stars for the TPU,
/// triangles for the K80, and circles for Haswell in Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Marker {
    /// No marker; line only.
    None,
    /// A filled circle.
    Circle,
    /// A filled square.
    Square,
    /// A filled upward triangle.
    Triangle,
    /// A filled five-pointed star.
    Star,
}

/// One named series: points in data coordinates plus its visual style.
#[derive(Debug, Clone)]
pub struct Series {
    name: String,
    points: Vec<(f64, f64)>,
    marker: Marker,
    line: bool,
    color: Option<&'static str>,
}

impl Series {
    /// A connected line through `points`.
    pub fn line(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
            marker: Marker::None,
            line: true,
            color: None,
        }
    }

    /// Unconnected markers at `points`.
    pub fn scatter(name: impl Into<String>, points: Vec<(f64, f64)>, marker: Marker) -> Self {
        Series {
            name: name.into(),
            points,
            marker,
            line: false,
            color: None,
        }
    }

    /// Draw both the connecting line and a marker at each point.
    pub fn with_markers(mut self, marker: Marker) -> Self {
        self.marker = marker;
        self
    }

    /// Override the palette color.
    pub fn with_color(mut self, color: &'static str) -> Self {
        self.color = Some(color);
        self
    }

    /// The series label used in the legend.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The data points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// Pixel geometry shared by the chart renderers.
#[derive(Debug, Clone, Copy)]
struct Frame {
    width: f64,
    height: f64,
    left: f64,
    right: f64,
    top: f64,
    bottom: f64,
}

impl Frame {
    const DEFAULT: Frame = Frame {
        width: 640.0,
        height: 420.0,
        left: 70.0,
        right: 20.0,
        top: 40.0,
        bottom: 55.0,
    };

    fn plot_w(&self) -> f64 {
        self.width - self.left - self.right
    }

    fn plot_h(&self) -> f64 {
        self.height - self.top - self.bottom
    }

    /// Map a unit-interval pair onto pixel coordinates (y grows upward in
    /// data space, downward in SVG space).
    fn place(&self, ux: f64, uy: f64) -> (f64, f64) {
        (
            self.left + ux * self.plot_w(),
            self.top + (1.0 - uy) * self.plot_h(),
        )
    }
}

/// An XY chart under construction.
///
/// # Examples
///
/// ```
/// use tpu_plot::{Chart, Scale, Series};
///
/// let roofline = Series::line("TPU", vec![(1.0, 0.068), (1350.0, 92.0), (10_000.0, 92.0)]);
/// let svg = Chart::new("TPU roofline")
///     .x_axis("MACs per weight byte", Scale::Log10)
///     .y_axis("TeraOps/s", Scale::Log10)
///     .series(roofline)
///     .render()
///     .expect("valid chart");
/// assert!(svg.contains("TPU roofline"));
/// ```
#[derive(Debug, Clone)]
pub struct Chart {
    title: String,
    x_label: String,
    y_label: String,
    x_scale: Scale,
    y_scale: Scale,
    series: Vec<Series>,
    x_domain: Option<(f64, f64)>,
    y_domain: Option<(f64, f64)>,
    frame: Frame,
}

impl Chart {
    /// Start a chart with a title. Axes default to linear.
    pub fn new(title: impl Into<String>) -> Self {
        Chart {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            x_scale: Scale::Linear,
            y_scale: Scale::Linear,
            series: Vec::new(),
            x_domain: None,
            y_domain: None,
            frame: Frame::DEFAULT,
        }
    }

    /// Label and scale of the x axis.
    pub fn x_axis(mut self, label: impl Into<String>, scale: Scale) -> Self {
        self.x_label = label.into();
        self.x_scale = scale;
        self
    }

    /// Label and scale of the y axis.
    pub fn y_axis(mut self, label: impl Into<String>, scale: Scale) -> Self {
        self.y_label = label.into();
        self.y_scale = scale;
        self
    }

    /// Fix the x domain instead of deriving it from the data.
    pub fn x_domain(mut self, lo: f64, hi: f64) -> Self {
        self.x_domain = Some((lo, hi));
        self
    }

    /// Fix the y domain instead of deriving it from the data.
    pub fn y_domain(mut self, lo: f64, hi: f64) -> Self {
        self.y_domain = Some((lo, hi));
        self
    }

    /// Add a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn derive_domain(
        &self,
        pick: impl Fn(&(f64, f64)) -> f64,
        scale: Scale,
        fixed: Option<(f64, f64)>,
    ) -> Result<(f64, f64), PlotError> {
        if let Some(d) = fixed {
            scale.check_domain(d.0, d.1)?;
            return Ok(d);
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for s in &self.series {
            for p in s.points() {
                let v = pick(p);
                if !v.is_finite() {
                    return Err(PlotError::NonFinitePoint {
                        series: s.name().to_string(),
                    });
                }
                lo = lo.min(v);
                hi = hi.max(v);
            }
        }
        if !lo.is_finite() || !hi.is_finite() {
            return Err(PlotError::NoData);
        }
        // Pad so extreme points are not drawn on the frame itself.
        let (lo, hi) = match scale {
            Scale::Linear => {
                let pad = 0.05 * (hi - lo).max(f64::MIN_POSITIVE);
                let lo = if lo >= 0.0 && lo < 0.3 * (hi - lo) {
                    0.0
                } else {
                    lo - pad
                };
                (lo, hi + pad)
            }
            Scale::Log10 | Scale::Log2 => (lo / 1.3, hi * 1.3),
        };
        let (lo, hi) = if lo == hi {
            (lo - 0.5, hi + 0.5)
        } else {
            (lo, hi)
        };
        scale.check_domain(lo, hi)?;
        Ok((lo, hi))
    }

    /// Render to an SVG string.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::NoData`] when no series were added,
    /// [`PlotError::NonFinitePoint`] when a point is NaN/infinite, and
    /// domain errors when a fixed or derived domain is invalid for the
    /// chosen scale.
    pub fn render(&self) -> Result<String, PlotError> {
        if self.series.is_empty() || self.series.iter().all(|s| s.points().is_empty()) {
            return Err(PlotError::NoData);
        }
        let (x_lo, x_hi) = self.derive_domain(|p| p.0, self.x_scale, self.x_domain)?;
        let (y_lo, y_hi) = self.derive_domain(|p| p.1, self.y_scale, self.y_domain)?;

        let f = self.frame;
        let mut doc = SvgDocument::new(f.width, f.height);
        doc.text(
            f.width / 2.0,
            22.0,
            &self.title,
            14.0,
            Anchor::Middle,
            "#111111",
        );

        // Gridlines + tick labels.
        for t in self.x_scale.ticks(x_lo, x_hi) {
            let ux = self.x_scale.normalize(t.value, x_lo, x_hi);
            if !(-1e-9..=1.0 + 1e-9).contains(&ux) {
                continue;
            }
            let (px, _) = f.place(ux, 0.0);
            doc.dashed_line(px, f.top, px, f.top + f.plot_h(), "#cccccc");
            doc.text(
                px,
                f.top + f.plot_h() + 16.0,
                &t.label,
                10.0,
                Anchor::Middle,
                "#333333",
            );
        }
        for t in self.y_scale.ticks(y_lo, y_hi) {
            let uy = self.y_scale.normalize(t.value, y_lo, y_hi);
            if !(-1e-9..=1.0 + 1e-9).contains(&uy) {
                continue;
            }
            let (_, py) = f.place(0.0, uy);
            doc.dashed_line(f.left, py, f.left + f.plot_w(), py, "#cccccc");
            doc.text(
                f.left - 6.0,
                py + 3.5,
                &t.label,
                10.0,
                Anchor::End,
                "#333333",
            );
        }

        // Axes frame.
        doc.line(f.left, f.top, f.left, f.top + f.plot_h(), "#000000", 1.0);
        doc.line(
            f.left,
            f.top + f.plot_h(),
            f.left + f.plot_w(),
            f.top + f.plot_h(),
            "#000000",
            1.0,
        );
        doc.text(
            f.left + f.plot_w() / 2.0,
            f.height - 12.0,
            &self.x_label,
            11.0,
            Anchor::Middle,
            "#333333",
        );
        doc.vertical_text(18.0, f.top + f.plot_h() / 2.0, &self.y_label, 11.0);

        // Series.
        for (i, s) in self.series.iter().enumerate() {
            let color = s.color.unwrap_or(PALETTE[i % PALETTE.len()]);
            let px_points: Vec<(f64, f64)> = s
                .points()
                .iter()
                .map(|&(x, y)| {
                    let ux = self.x_scale.normalize(x, x_lo, x_hi).clamp(0.0, 1.0);
                    let uy = self.y_scale.normalize(y, y_lo, y_hi).clamp(0.0, 1.0);
                    f.place(ux, uy)
                })
                .collect();
            if s.line {
                doc.polyline(&px_points, color, 1.8);
            }
            for &(px, py) in &px_points {
                draw_marker(&mut doc, s.marker, px, py, color);
            }
        }

        // Legend: one row per series, upper-right inside the plot.
        let legend_x = f.left + f.plot_w() - 150.0;
        for (i, s) in self.series.iter().enumerate() {
            let color = s.color.unwrap_or(PALETTE[i % PALETTE.len()]);
            let y = f.top + 14.0 + i as f64 * 15.0;
            if s.line {
                doc.line(legend_x, y - 3.5, legend_x + 18.0, y - 3.5, color, 2.0);
            }
            draw_marker(
                &mut doc,
                if s.marker == Marker::None && !s.line {
                    Marker::Circle
                } else {
                    s.marker
                },
                legend_x + 9.0,
                y - 3.5,
                color,
            );
            doc.text(legend_x + 24.0, y, s.name(), 10.0, Anchor::Start, "#111111");
        }

        Ok(doc.finish())
    }
}

fn draw_marker(doc: &mut SvgDocument, marker: Marker, px: f64, py: f64, color: &str) {
    const R: f64 = 4.0;
    match marker {
        Marker::None => {}
        Marker::Circle => doc.circle(px, py, R, color),
        Marker::Square => doc.rect(px - R, py - R, 2.0 * R, 2.0 * R, color, None),
        Marker::Triangle => {
            doc.polygon(&[(px, py - R), (px - R, py + R), (px + R, py + R)], color);
        }
        Marker::Star => {
            let mut pts = Vec::with_capacity(10);
            for k in 0..10 {
                let r = if k % 2 == 0 { 1.6 * R } else { 0.7 * R };
                let a = std::f64::consts::PI * (k as f64 / 5.0) - std::f64::consts::FRAC_PI_2;
                pts.push((px + r * a.cos(), py + r * a.sin()));
            }
            doc.polygon(&pts, color);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_chart() -> Chart {
        Chart::new("t").series(Series::line("a", vec![(0.0, 0.0), (1.0, 2.0), (2.0, 1.0)]))
    }

    #[test]
    fn renders_title_labels_and_series_name() {
        let svg = Chart::new("My <Chart>")
            .x_axis("x & y", Scale::Linear)
            .y_axis("tops", Scale::Linear)
            .series(Series::line("se&ries", vec![(0.0, 1.0), (1.0, 2.0)]))
            .render()
            .unwrap();
        assert!(svg.contains("My &lt;Chart&gt;"));
        assert!(svg.contains("x &amp; y"));
        assert!(svg.contains("se&amp;ries"));
        assert!(svg.contains("<polyline"));
    }

    #[test]
    fn no_data_is_an_error() {
        assert_eq!(Chart::new("t").render().unwrap_err(), PlotError::NoData);
        let empty = Chart::new("t").series(Series::line("a", vec![]));
        assert_eq!(empty.render().unwrap_err(), PlotError::NoData);
    }

    #[test]
    fn nan_point_is_an_error() {
        let c = Chart::new("t").series(Series::line("bad", vec![(0.0, f64::NAN), (1.0, 1.0)]));
        assert!(matches!(
            c.render().unwrap_err(),
            PlotError::NonFinitePoint { .. }
        ));
    }

    #[test]
    fn log_axis_with_zero_point_is_an_error() {
        let c = simple_chart().x_axis("x", Scale::Log10);
        assert!(matches!(
            c.render().unwrap_err(),
            PlotError::NonPositiveLog { .. }
        ));
    }

    #[test]
    fn fixed_domain_is_respected() {
        let svg = simple_chart()
            .x_domain(0.0, 10.0)
            .y_domain(0.0, 10.0)
            .render()
            .unwrap();
        // Ticks at 10 exist because the domain reaches 10.
        assert!(svg.contains(">10</text>"));
    }

    #[test]
    fn scatter_draws_markers_not_lines() {
        let svg = Chart::new("pts")
            .series(Series::scatter(
                "s",
                vec![(1.0, 1.0), (2.0, 2.0)],
                Marker::Star,
            ))
            .render()
            .unwrap();
        assert!(svg.contains("<polygon"));
        // Only the legend sample could be a polyline; stars are polygons.
        assert_eq!(svg.matches("<polyline").count(), 0);
    }

    #[test]
    fn all_marker_shapes_render() {
        for m in [
            Marker::Circle,
            Marker::Square,
            Marker::Triangle,
            Marker::Star,
        ] {
            let svg = Chart::new("m")
                .series(Series::scatter("s", vec![(1.0, 1.0)], m))
                .render()
                .unwrap();
            assert!(svg.len() > 200);
        }
    }

    #[test]
    fn loglog_roofline_knee_is_monotone_in_pixels() {
        // The ridge-point x must land strictly between the endpoints.
        let svg = Chart::new("roofline")
            .x_axis("intensity", Scale::Log10)
            .y_axis("TOPS", Scale::Log10)
            .series(Series::line(
                "tpu",
                vec![(1.0, 0.068), (1350.0, 92.0), (10_000.0, 92.0)],
            ))
            .render()
            .unwrap();
        assert!(svg.contains("polyline"));
    }

    #[test]
    fn palette_cycles_for_many_series() {
        let mut c = Chart::new("many");
        for i in 0..10 {
            c = c.series(Series::line(
                format!("s{i}"),
                vec![(0.0, i as f64), (1.0, i as f64)],
            ));
        }
        let svg = c.render().unwrap();
        for color in PALETTE {
            assert!(svg.contains(color), "missing {color}");
        }
    }

    #[test]
    fn constant_series_still_renders() {
        let svg = Chart::new("flat")
            .series(Series::line("c", vec![(0.0, 5.0), (1.0, 5.0)]))
            .render()
            .unwrap();
        assert!(svg.contains("polyline"));
    }
}
