//! Grouped bar charts (Figure 9: relative performance/Watt per
//! comparison, total vs incremental accounting, GM vs WM).

use crate::chart::PALETTE;
use crate::error::PlotError;
use crate::scale::Scale;
use crate::svg::{Anchor, SvgDocument};

/// A grouped bar chart: `categories` along the x axis, one bar per
/// `group` within each category.
///
/// # Examples
///
/// ```
/// use tpu_plot::BarChart;
///
/// let svg = BarChart::new("Perf/Watt", &["GM", "WM"])
///     .bars("GPU/CPU", &[2.1, 2.9])
///     .bars("TPU/CPU", &[34.0, 83.0])
///     .log_y()
///     .render()
///     .expect("valid chart");
/// assert!(svg.contains("TPU/CPU"));
/// ```
#[derive(Debug, Clone)]
pub struct BarChart {
    title: String,
    groups: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    y_label: String,
    log_y: bool,
}

impl BarChart {
    /// Start a chart with the group labels (legend). Categories along the
    /// x axis are defined, in order, by the [`BarChart::bars`] calls.
    pub fn new(title: impl Into<String>, groups: &[&str]) -> Self {
        BarChart {
            title: title.into(),
            groups: groups.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            y_label: String::new(),
            log_y: false,
        }
    }

    /// Supply the group values for one category, in group order.
    pub fn bars(mut self, category: &str, values: &[f64]) -> Self {
        self.rows.push((category.to_string(), values.to_vec()));
        self
    }

    /// Label the y axis.
    pub fn y_label(mut self, label: impl Into<String>) -> Self {
        self.y_label = label.into();
        self
    }

    /// Use a base-10 log y axis (needed when ratios span 1x-200x).
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Render to an SVG string.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::NoData`] with no rows,
    /// [`PlotError::RaggedGroups`] when a row's width differs from the
    /// group count, [`PlotError::NonFinitePoint`] on NaN values, and
    /// [`PlotError::NonPositiveLog`] when `log_y` meets a non-positive
    /// value.
    pub fn render(&self) -> Result<String, PlotError> {
        if self.rows.is_empty() {
            return Err(PlotError::NoData);
        }
        for (cat, vals) in &self.rows {
            if vals.len() != self.groups.len() {
                return Err(PlotError::RaggedGroups {
                    expected: self.groups.len(),
                    found: vals.len(),
                });
            }
            for &v in vals {
                if !v.is_finite() {
                    return Err(PlotError::NonFinitePoint {
                        series: cat.clone(),
                    });
                }
                if self.log_y && v <= 0.0 {
                    return Err(PlotError::NonPositiveLog { bound: v });
                }
            }
        }

        let max = self
            .rows
            .iter()
            .flat_map(|(_, v)| v)
            .cloned()
            .fold(f64::MIN, f64::max);
        let (scale, y_lo, y_hi) = if self.log_y {
            let min = self
                .rows
                .iter()
                .flat_map(|(_, v)| v)
                .cloned()
                .fold(f64::MAX, f64::min);
            (Scale::Log10, (min / 2.0).min(1.0), max * 1.3)
        } else {
            (Scale::Linear, 0.0, max * 1.1)
        };
        scale.check_domain(y_lo, y_hi)?;

        let (width, height) = (720.0, 420.0);
        let (left, right, top, bottom) = (70.0, 20.0, 40.0, 70.0);
        let plot_w = width - left - right;
        let plot_h = height - top - bottom;
        let mut doc = SvgDocument::new(width, height);
        doc.text(
            width / 2.0,
            22.0,
            &self.title,
            14.0,
            Anchor::Middle,
            "#111111",
        );

        for t in scale.ticks(y_lo, y_hi) {
            let uy = scale.normalize(t.value, y_lo, y_hi);
            if !(0.0..=1.0).contains(&uy) {
                continue;
            }
            let py = top + (1.0 - uy) * plot_h;
            doc.dashed_line(left, py, left + plot_w, py, "#cccccc");
            doc.text(left - 6.0, py + 3.5, &t.label, 10.0, Anchor::End, "#333333");
        }

        let n_cat = self.rows.len() as f64;
        let n_grp = self.groups.len() as f64;
        let slot = plot_w / n_cat;
        let bar_w = (slot * 0.8) / n_grp;
        for (ci, (cat, vals)) in self.rows.iter().enumerate() {
            let x0 = left + ci as f64 * slot + slot * 0.1;
            for (gi, &v) in vals.iter().enumerate() {
                let uy = scale.normalize(v, y_lo, y_hi).clamp(0.0, 1.0);
                let bar_h = uy * plot_h;
                let x = x0 + gi as f64 * bar_w;
                doc.rect(
                    x,
                    top + plot_h - bar_h,
                    bar_w * 0.92,
                    bar_h,
                    PALETTE[gi % PALETTE.len()],
                    Some("#444444"),
                );
                // Value caption above the bar.
                doc.text(
                    x + bar_w * 0.46,
                    top + plot_h - bar_h - 4.0,
                    &trim_value(v),
                    8.5,
                    Anchor::Middle,
                    "#333333",
                );
            }
            doc.text(
                x0 + slot * 0.4,
                top + plot_h + 16.0,
                cat,
                10.0,
                Anchor::Middle,
                "#333333",
            );
        }

        // Legend under the category labels.
        let mut lx = left;
        let ly = height - 22.0;
        for (gi, g) in self.groups.iter().enumerate() {
            doc.rect(
                lx,
                ly - 9.0,
                10.0,
                10.0,
                PALETTE[gi % PALETTE.len()],
                Some("#444444"),
            );
            doc.text(lx + 14.0, ly, g, 10.0, Anchor::Start, "#111111");
            lx += 18.0 + 7.0 * g.len() as f64;
        }
        doc.line(
            left,
            top + plot_h,
            left + plot_w,
            top + plot_h,
            "#000000",
            1.0,
        );
        doc.line(left, top, left, top + plot_h, "#000000", 1.0);
        doc.vertical_text(18.0, top + plot_h / 2.0, &self.y_label, 11.0);

        Ok(doc.finish())
    }
}

fn trim_value(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chart() -> BarChart {
        BarChart::new("fig9", &["GM", "WM"])
            .bars("GPU/CPU", &[2.1, 2.9])
            .bars("TPU/CPU", &[34.0, 83.0])
    }

    #[test]
    fn renders_categories_groups_and_values() {
        let svg = chart().y_label("relative perf/Watt").render().unwrap();
        assert!(svg.contains("GPU/CPU"));
        assert!(svg.contains("GM"));
        assert!(svg.contains("WM"));
        assert!(svg.contains("83"));
        assert!(svg.contains("relative perf/Watt"));
    }

    #[test]
    fn empty_chart_is_an_error() {
        let c = BarChart::new("t", &["g"]);
        assert_eq!(c.render().unwrap_err(), PlotError::NoData);
    }

    #[test]
    fn ragged_rows_are_rejected() {
        let c = BarChart::new("t", &["g1", "g2"]).bars("a", &[1.0]);
        assert_eq!(
            c.render().unwrap_err(),
            PlotError::RaggedGroups {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn nan_is_rejected() {
        let c = BarChart::new("t", &["g"]).bars("a", &[f64::NAN]);
        assert!(matches!(
            c.render().unwrap_err(),
            PlotError::NonFinitePoint { .. }
        ));
    }

    #[test]
    fn log_axis_rejects_zero_bars() {
        let c = BarChart::new("t", &["g"]).bars("a", &[0.0]).log_y();
        assert!(matches!(
            c.render().unwrap_err(),
            PlotError::NonPositiveLog { .. }
        ));
    }

    #[test]
    fn log_axis_renders_wide_ratio_span() {
        let svg = BarChart::new("t", &["g"])
            .bars("x", &[1.2])
            .bars("y", &[196.0])
            .log_y()
            .render()
            .unwrap();
        // Decade gridline labels appear.
        assert!(svg.contains(">10</text>"));
        assert!(svg.contains(">100</text>"));
    }

    #[test]
    fn bar_count_matches_rows_times_groups() {
        let svg = chart().render().unwrap();
        // 4 bars + 2 legend swatches; all are <rect> beyond the background.
        let rects = svg.matches("<rect").count();
        assert_eq!(rects, 1 + 4 + 2);
    }
}
