//! Time-series line charts for telemetry probe output.
//!
//! The observability layer (`tpu_telemetry`) samples probe series on a
//! fixed sim-time cadence; this helper turns any set of named
//! `(t_ms, value)` series into one multi-line [`Chart`] so the CLIs can
//! render `--metrics-out` probes straight to SVG. It takes plain
//! slices, not telemetry types, so the plot crate stays dependency-free.

use crate::chart::{Chart, Series};
use crate::error::PlotError;
use crate::scale::Scale;

/// Render named `(t_ms, value)` series as one linear-axis line chart
/// over simulated time. Series are drawn in the order given (palette
/// colors cycle); empty series are skipped so a probe that never fired
/// doesn't poison the axis ranges.
///
/// # Errors
///
/// Returns [`PlotError`] when no series has any points or a value is
/// non-finite.
///
/// # Examples
///
/// ```
/// let svg = tpu_plot::timeseries(
///     "die utilization",
///     "utilization",
///     &[("util/host0".to_string(), vec![(0.0, 0.0), (1.0, 0.8)])],
/// )?;
/// assert!(svg.starts_with("<svg"));
/// # Ok::<(), tpu_plot::PlotError>(())
/// ```
pub fn timeseries(
    title: &str,
    y_label: &str,
    series: &[(String, Vec<(f64, f64)>)],
) -> Result<String, PlotError> {
    let mut chart = Chart::new(title)
        .x_axis("sim time (ms)", Scale::Linear)
        .y_axis(y_label, Scale::Linear);
    for (name, points) in series {
        if points.is_empty() {
            continue;
        }
        chart = chart.series(Series::line(name.clone(), points.clone()));
    }
    chart.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_multiple_series_and_skips_empty_ones() {
        let svg = timeseries(
            "queue depth",
            "requests",
            &[
                ("queued/MLP0".to_string(), vec![(0.0, 1.0), (2.0, 5.0)]),
                ("queued/CNN0".to_string(), vec![(0.0, 2.0), (2.0, 3.0)]),
                ("parked/MLP0".to_string(), Vec::new()),
            ],
        )
        .expect("chart renders");
        assert!(svg.contains("queued/MLP0") && svg.contains("queued/CNN0"));
        assert!(!svg.contains("parked/MLP0"));
    }

    #[test]
    fn same_input_renders_identical_bytes() {
        let build = || {
            timeseries(
                "u",
                "v",
                &[("util/host0".to_string(), vec![(0.0, 0.1), (5.0, 0.9)])],
            )
            .expect("chart renders")
        };
        assert_eq!(build(), build());
    }
}
