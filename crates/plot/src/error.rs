//! Error type for chart construction.

use std::error::Error;
use std::fmt;

/// Why a chart could not be built or rendered.
#[derive(Debug, Clone, PartialEq)]
pub enum PlotError {
    /// The axis domain is empty or not finite.
    EmptyDomain {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A logarithmic scale was given a non-positive bound.
    NonPositiveLog {
        /// The offending bound.
        bound: f64,
    },
    /// The chart has no series (or a bar chart has no groups).
    NoData,
    /// A series point is not finite and cannot be placed.
    NonFinitePoint {
        /// Name of the series containing the point.
        series: String,
    },
    /// Grouped bars were given rows of inconsistent width.
    RaggedGroups {
        /// Expected row width (number of groups).
        expected: usize,
        /// Width actually found.
        found: usize,
    },
}

impl fmt::Display for PlotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlotError::EmptyDomain { lo, hi } => {
                write!(f, "axis domain [{lo}, {hi}] is empty or not finite")
            }
            PlotError::NonPositiveLog { bound } => {
                write!(f, "log scale requires a positive domain, got {bound}")
            }
            PlotError::NoData => write!(f, "chart has no data"),
            PlotError::NonFinitePoint { series } => {
                write!(f, "series `{series}` contains a non-finite point")
            }
            PlotError::RaggedGroups { expected, found } => {
                write!(f, "bar rows must all have {expected} groups, found {found}")
            }
        }
    }
}

impl Error for PlotError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            PlotError::EmptyDomain { lo: 1.0, hi: 1.0 },
            PlotError::NonPositiveLog { bound: 0.0 },
            PlotError::NoData,
            PlotError::NonFinitePoint {
                series: "tpu".into(),
            },
            PlotError::RaggedGroups {
                expected: 2,
                found: 3,
            },
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase(), "{msg}");
            assert!(!msg.ends_with('.'), "{msg}");
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PlotError>();
    }
}
