//! Axis scales: mapping data coordinates onto the unit interval and
//! generating human-friendly tick positions.
//!
//! The paper's figures use three kinds of axes: linear (Figure 10's
//! utilization and Watts), base-10 log-log (the Figure 5-8 rooflines),
//! and base-2 log (Figure 11's 0.25x-4x parameter scaling). [`Scale`]
//! covers all three.

use crate::error::PlotError;

/// An axis scale.
///
/// # Examples
///
/// ```
/// use tpu_plot::Scale;
///
/// // The roofline's log-log axes: intensity 10 sits halfway between
/// // 1 and 100.
/// assert_eq!(Scale::Log10.normalize(10.0, 1.0, 100.0), 0.5);
/// // Figure 11's 0.25x-4x sweep: 1x is the midpoint of the octaves.
/// assert_eq!(Scale::Log2.normalize(1.0, 0.25, 4.0), 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Linear interpolation between the domain endpoints.
    Linear,
    /// Base-10 logarithmic; the domain must be strictly positive.
    Log10,
    /// Base-2 logarithmic; the domain must be strictly positive.
    Log2,
}

impl Scale {
    /// Validate a domain for this scale.
    ///
    /// # Errors
    ///
    /// Returns [`PlotError::EmptyDomain`] when `lo >= hi` or either bound
    /// is not finite, and [`PlotError::NonPositiveLog`] when a log scale
    /// is given a non-positive bound.
    pub fn check_domain(self, lo: f64, hi: f64) -> Result<(), PlotError> {
        if !lo.is_finite() || !hi.is_finite() || lo >= hi {
            return Err(PlotError::EmptyDomain { lo, hi });
        }
        if self != Scale::Linear && lo <= 0.0 {
            return Err(PlotError::NonPositiveLog { bound: lo });
        }
        Ok(())
    }

    /// Map `v` onto `[0, 1]` given the domain `[lo, hi]`.
    ///
    /// Values outside the domain extrapolate beyond the unit interval;
    /// callers clip at the chart level so that out-of-range points are
    /// visible failures rather than silent distortions.
    pub fn normalize(self, v: f64, lo: f64, hi: f64) -> f64 {
        match self {
            Scale::Linear => (v - lo) / (hi - lo),
            Scale::Log10 => (v.log10() - lo.log10()) / (hi.log10() - lo.log10()),
            Scale::Log2 => (v.log2() - lo.log2()) / (hi.log2() - lo.log2()),
        }
    }

    /// Generate tick positions (data coordinates) with printed labels for
    /// the domain `[lo, hi]`.
    ///
    /// Linear scales produce 1/2/5-stepped "nice" ticks; `Log10` produces
    /// decade ticks (1, 10, 100, ...); `Log2` produces octave ticks
    /// (0.25, 0.5, 1, 2, 4, ...). The endpoints are always covered by at
    /// least two ticks.
    pub fn ticks(self, lo: f64, hi: f64) -> Vec<Tick> {
        match self {
            Scale::Linear => linear_ticks(lo, hi),
            Scale::Log10 => log_ticks(lo, hi, 10.0),
            Scale::Log2 => log_ticks(lo, hi, 2.0),
        }
    }
}

/// One axis tick: a data-coordinate position plus its printed label.
///
/// # Examples
///
/// ```
/// use tpu_plot::Scale;
///
/// let ticks = Scale::Log10.ticks(1.0, 1000.0);
/// let labels: Vec<&str> = ticks.iter().map(|t| t.label.as_str()).collect();
/// assert_eq!(labels, ["1", "10", "100", "1000"]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tick {
    /// Position in data coordinates.
    pub value: f64,
    /// Label drawn next to the axis.
    pub label: String,
}

impl Tick {
    fn new(value: f64) -> Self {
        Tick {
            value,
            label: format_tick(value),
        }
    }
}

/// Render a tick value compactly: integers without a decimal point,
/// sub-unit values with enough digits to distinguish them.
fn format_tick(v: f64) -> String {
    let a = v.abs();
    if a >= 1e6 {
        // Large magnitudes as powers of ten keep roofline axes readable.
        format!("{v:.0e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else if a >= 1.0 {
        format!("{v:.1}")
    } else {
        let s = format!("{v:.3}");
        s.trim_end_matches('0').trim_end_matches('.').to_string()
    }
}

/// "Nice number" step selection: the largest of 1, 2, 5 x 10^k producing
/// at most `max_ticks` intervals.
fn nice_step(span: f64, max_ticks: usize) -> f64 {
    debug_assert!(span > 0.0 && max_ticks >= 2);
    let raw = span / max_ticks as f64;
    let mag = 10f64.powf(raw.log10().floor());
    for mult in [1.0, 2.0, 5.0, 10.0] {
        let step = mult * mag;
        if span / step <= max_ticks as f64 {
            return step;
        }
    }
    10.0 * mag
}

fn linear_ticks(lo: f64, hi: f64) -> Vec<Tick> {
    let step = nice_step(hi - lo, 8);
    let first = (lo / step).ceil() * step;
    let mut ticks = Vec::new();
    let mut v = first;
    // Guard the loop count so pathological float steps cannot spin.
    for _ in 0..64 {
        if v > hi + step * 1e-9 {
            break;
        }
        // Snap near-zero values that arise from float cancellation.
        let snapped = if v.abs() < step * 1e-9 { 0.0 } else { v };
        ticks.push(Tick::new(snapped));
        v += step;
    }
    if ticks.len() < 2 {
        ticks = vec![Tick::new(lo), Tick::new(hi)];
    }
    ticks
}

fn log_ticks(lo: f64, hi: f64, base: f64) -> Vec<Tick> {
    // The epsilon absorbs ln-ratio rounding (ln(1000)/ln(10) is
    // 2.9999999999999996, which would otherwise drop the 1000 tick).
    let log = |v: f64| v.ln() / base.ln();
    let first = (log(lo) - 1e-9).ceil() as i32;
    let last = (log(hi) + 1e-9).floor() as i32;
    let mut ticks: Vec<Tick> = (first..=last).map(|e| Tick::new(base.powi(e))).collect();
    // A domain inside one decade/octave still needs endpoints.
    if ticks.len() < 2 {
        ticks = vec![Tick::new(lo), Tick::new(hi)];
    }
    ticks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_normalize_is_affine() {
        assert_eq!(Scale::Linear.normalize(0.0, 0.0, 10.0), 0.0);
        assert_eq!(Scale::Linear.normalize(10.0, 0.0, 10.0), 1.0);
        assert_eq!(Scale::Linear.normalize(5.0, 0.0, 10.0), 0.5);
    }

    #[test]
    fn log10_normalize_midpoint_is_geometric_mean() {
        let mid = Scale::Log10.normalize(10.0, 1.0, 100.0);
        assert!((mid - 0.5).abs() < 1e-12);
    }

    #[test]
    fn log2_normalize_covers_octaves() {
        assert!((Scale::Log2.normalize(1.0, 0.25, 4.0) - 0.5).abs() < 1e-12);
        assert_eq!(Scale::Log2.normalize(0.25, 0.25, 4.0), 0.0);
        assert_eq!(Scale::Log2.normalize(4.0, 0.25, 4.0), 1.0);
    }

    #[test]
    fn out_of_domain_extrapolates() {
        assert!(Scale::Linear.normalize(-5.0, 0.0, 10.0) < 0.0);
        assert!(Scale::Log10.normalize(1000.0, 1.0, 100.0) > 1.0);
    }

    #[test]
    fn domain_validation_rejects_bad_ranges() {
        assert!(Scale::Linear.check_domain(1.0, 1.0).is_err());
        assert!(Scale::Linear.check_domain(2.0, 1.0).is_err());
        assert!(Scale::Linear.check_domain(f64::NAN, 1.0).is_err());
        assert!(Scale::Log10.check_domain(0.0, 10.0).is_err());
        assert!(Scale::Log10.check_domain(-1.0, 10.0).is_err());
        assert!(Scale::Log10.check_domain(0.1, 10.0).is_ok());
        assert!(Scale::Linear.check_domain(-5.0, 5.0).is_ok());
    }

    #[test]
    fn linear_ticks_are_nice_and_cover_domain() {
        let ticks = Scale::Linear.ticks(0.0, 100.0);
        assert!(ticks.len() >= 3);
        assert_eq!(ticks.first().unwrap().value, 0.0);
        assert_eq!(ticks.last().unwrap().value, 100.0);
        // 1/2/5 steps only.
        let step = ticks[1].value - ticks[0].value;
        let mant = step / 10f64.powf(step.log10().floor());
        assert!(
            [1.0, 2.0, 5.0].iter().any(|m| (mant - m).abs() < 1e-9),
            "step {step}"
        );
    }

    #[test]
    fn log10_ticks_are_decades() {
        let ticks = Scale::Log10.ticks(1.0, 10_000.0);
        let values: Vec<f64> = ticks.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![1.0, 10.0, 100.0, 1000.0, 10_000.0]);
    }

    #[test]
    fn log2_ticks_are_octaves() {
        let ticks = Scale::Log2.ticks(0.25, 4.0);
        let values: Vec<f64> = ticks.iter().map(|t| t.value).collect();
        assert_eq!(values, vec![0.25, 0.5, 1.0, 2.0, 4.0]);
    }

    #[test]
    fn narrow_log_domain_falls_back_to_endpoints() {
        let ticks = Scale::Log10.ticks(2.0, 8.0); // no decade inside
        assert_eq!(ticks.len(), 2);
        assert_eq!(ticks[0].value, 2.0);
        assert_eq!(ticks[1].value, 8.0);
    }

    #[test]
    fn tick_labels_are_compact() {
        assert_eq!(format_tick(10.0), "10");
        assert_eq!(format_tick(0.25), "0.25");
        assert_eq!(format_tick(2.5), "2.5");
        assert_eq!(format_tick(1e7), "1e7");
        assert_eq!(format_tick(0.0), "0");
    }

    #[test]
    fn fractional_linear_domain_gets_ticks() {
        let ticks = Scale::Linear.ticks(0.0, 1.0);
        assert!(ticks.len() >= 3);
        assert!(ticks
            .iter()
            .all(|t| t.value >= -1e-12 && t.value <= 1.0 + 1e-12));
    }
}
